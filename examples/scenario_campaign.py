#!/usr/bin/env python
"""Scenario campaign: fit once, replay the emulator across many futures.

This script is the scenario-engine counterpart of the quickstart:

1. fit the emulator on a small synthetic ensemble and save it as an
   artifact (``repro.fit`` + ``repro.save``),
2. list the registered forcing pathways and compose a *new* one from
   components — registered with zero edits to the core,
3. ``repro.run_campaign`` the artifact across 3 scenarios x 2
   realizations, sharded over 4 workers, streaming chunks with bounded
   memory,
4. verify the sharded campaign is bit-identical to the serial run (every
   run is pinned to its own ``SeedSequence.spawn`` stream),
5. print the campaign manifest and the storage "boost factor": how many
   bytes of archive-equivalent output one small artifact emitted,
6. stand up the on-demand serving tier over the same artifact — an
   ``EmulationService`` backed by a persistent ``ChunkStore`` — and show
   a request served cold (synthesized + stored) then hot (from cache),
7. run the whole thing *observed*: a live ``/metrics`` endpoint
   (Prometheus text exposition + ``/healthz`` + ``/readyz``), a
   background ``ResourceSampler`` publishing ``resource.*`` gauges, a
   campaign progress heartbeat, and the serving SLO report.

Run with:  PYTHONPATH=src python examples/scenario_campaign.py

Tracing: set ``REPRO_TRACE=trace.jsonl`` to record every span this
script opens (fit, SHT, plan cache, campaign runs, serving, chunk
store) and profile it with ``python tools/tracereport.py trace.jsonl``.

Live scraping (what CI does): set ``REPRO_METRICS_PORT=9464`` to bind
the metrics server to a fixed port, and ``REPRO_METRICS_HOLD=60`` to
keep the process (and the endpoint) alive for up to that many seconds
after the workload finishes so an external scraper can hit
``/metrics``.  Touching the file named by ``REPRO_METRICS_RELEASE``
releases the hold early.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

import repro
from repro.obs import DEFAULT_SERVING_SLOS, ResourceSampler, start_metrics_server
from repro.scenarios import GHGRamp, Stabilisation
from repro.storage import campaign_storage_report, format_bytes


def _hold_for_scrapers(server) -> None:
    """Keep the metrics endpoint alive for an external scraper (CI).

    Waits up to ``REPRO_METRICS_HOLD`` seconds (default: no hold), or
    until the sentinel file named by ``REPRO_METRICS_RELEASE`` appears —
    whichever comes first.
    """
    hold_seconds = float(os.environ.get("REPRO_METRICS_HOLD", "0"))
    if hold_seconds <= 0:
        return
    release = os.environ.get("REPRO_METRICS_RELEASE")
    deadline = time.monotonic() + hold_seconds
    print(f"\nHolding metrics endpoint at {server.url} "
          f"for up to {hold_seconds:.0f}s"
          + (f" (touch {release} to release)" if release else ""))
    while time.monotonic() < deadline:
        if release and os.path.exists(release):
            print("  release sentinel observed — continuing")
            return
        time.sleep(0.2)
    print("  hold expired — continuing")


def main() -> None:
    print("=" * 70)
    print("Exascale climate emulator reproduction — scenario campaign")
    print("=" * 70)

    # 7. Operational observability: everything below runs *watched*.
    #    The server and sampler are read-only consumers of the metrics
    #    registry — outputs stay bit-identical with them on or off.
    port = int(os.environ.get("REPRO_METRICS_PORT", "0"))
    server = start_metrics_server(port, slos=DEFAULT_SERVING_SLOS)
    sampler = ResourceSampler(interval_seconds=1.0)
    sampler.start()
    print(f"\nMetrics server: {server.url}/metrics "
          f"(health: /healthz, readiness: /readyz)")

    # 1. Fit once, save the artifact: the campaign replays the artifact,
    #    never the training data.
    sim_config = repro.Era5LikeConfig(
        lmax=12, n_years=4, steps_per_year=24, n_ensemble=2, forcing_growth=0.8,
    )
    simulations = repro.Era5LikeGenerator(sim_config, seed=1).generate()
    emulator = repro.fit(simulations, lmax=12, n_harmonics=2, var_order=1,
                         tile_size=36, rho_grid=(0.3, 0.7))

    # 2. The scenario catalogue, and a new composed pathway.  Registering
    #    it touches neither repro/data/forcing.py nor repro/core.
    print("\nRegistered forcing pathways:")
    for name, description in sorted(repro.list_scenarios().items()):
        print(f"  {name:16s} {description}")

    @repro.register_scenario("delayed-drawdown", overwrite=True,
                             description="ramp, then a net-negative drawdown after year 2")
    def _delayed_drawdown(start_level: float = 2.5) -> repro.ScenarioSpec:
        return repro.ScenarioSpec("delayed-drawdown", (
            GHGRamp(base=start_level, rate=0.5),
            Stabilisation(base=0.0, amplitude=-1.5, timescale_years=1.0,
                          delay_years=2.0),
        ))

    scenario_names = ["ssp-low", "ssp-high", "delayed-drawdown"]

    with tempfile.TemporaryDirectory() as tmp_dir:
        artifact_path = repro.save(emulator, os.path.join(tmp_dir, "emulator.npz"))
        print(f"\nSaved artifact: {format_bytes(os.path.getsize(artifact_path))}")

        # 3. + 4. The campaign: 3 scenarios x 2 realizations, streamed in
        #    year-sized chunks, sharded over 4 workers — and bit-identical
        #    to the serial run because run i always draws from the
        #    SeedSequence child with spawn_key (i,).
        campaign_args = dict(n_realizations=2, n_times=4 * 24, seed=2024,
                             collect="global-mean")
        serial = repro.run_campaign(artifact_path, scenario_names, **campaign_args)

        beats: list[dict] = []
        sharded = repro.run_campaign(artifact_path, scenario_names,
                                     max_workers=4, progress=beats.append,
                                     **campaign_args)
        final_beat = beats[-1]
        print(f"\nProgress heartbeat: {len(beats)} beats, last = "
              f"{final_beat['runs_done']}/{final_beat['runs_total']} runs, "
              f"{final_beat['runs_per_second']:.1f} runs/s")
        identical = all(
            np.array_equal(a.collected, b.collected)
            for a, b in zip(serial.runs, sharded.runs)
        )
        print(f"\nCampaign: {sharded.n_runs} runs "
              f"({len(scenario_names)} scenarios x 2 realizations), "
              f"4 workers, chunks of {sharded.chunk_size} steps")
        print(f"  sharded == serial (bit-identical): {identical}")
        if not identical:
            raise SystemExit("sharded campaign diverged from the serial run")

        print("\n  run  scenario          r  seed-key  chunks        mean[K]")
        for record in sharded.runs:
            mean_k = float(record.collected.mean())
            print(f"  {record.index:3d}  {record.scenario:16s} "
                  f"{record.realization}  {str(record.spawn_key):8s} "
                  f"{str(record.chunk_sizes):12s}  {mean_k:8.2f}")

        manifest_path = sharded.save(os.path.join(tmp_dir, "manifest.json"))
        print(f"\nManifest written: {os.path.basename(manifest_path)}")

        # 5. The boost factor: emitted output volume per artifact byte.
        report = campaign_storage_report(sharded)
        print("\nStorage accounting (the 'boosting' direction):")
        print(f"  artifact:          {format_bytes(report['artifact_bytes'])}")
        print(f"  campaign output:   {format_bytes(report['campaign_output_bytes'])} "
              f"across {report['n_runs']} runs")
        print(f"  boost factor:      {report['boost_factor']:.1f}x "
              f"(grows with scenarios, realizations and record length)")
        print(f"  campaign wall:     {report['wall_seconds']:.2f} s "
              f"({report['runs_per_second']:.1f} runs/s, "
              f"{format_bytes(int(report['output_bytes_per_second']))}/s)")

        # 6. The serving tier: the same artifact answers field requests
        #    on demand, write-through to a persistent chunk store.
        service = repro.serve(emulator, seed=2024,
                              store=os.path.join(tmp_dir, "chunk-store"))
        request = repro.FieldRequest("delayed-drawdown", realization=0,
                                     year_start=0, year_stop=2)
        cold = service.get(request)     # synthesized, cached, stored
        hot = service.get(request)      # served from the chunk cache
        stats = service.stats()
        print("\nOn-demand serving (same artifact, chunk store attached):")
        print(f"  request:           {request.scenario} r{request.realization} "
              f"years [{request.year_start}, {request.year_stop}) -> "
              f"field {cold.shape}, bit-identical on re-request: "
              f"{np.array_equal(cold, hot)}")
        print(f"  service counters:  {stats['requests']} requests, "
              f"{stats['request_hits']} hits, "
              f"{format_bytes(stats['served_bytes'])} served")
        print(f"  chunk store:       {stats['store']['n_chunks']} chunks, "
              f"{format_bytes(stats['store']['encoded_bytes'])} on disk")

        # 7b. Watch the service against the sampler: attach the service
        #     so cache/store footprints are sampled too, then report the
        #     serving SLOs over the latency actually recorded above.
        sampler.stop()
        watched = ResourceSampler(interval_seconds=1.0, service=service)
        values = watched.sample_once()
        print("\nResource watchdog (one sample):")
        print(f"  rss:               {format_bytes(int(values['resource.rss_bytes']))}")
        print(f"  open fds:          {int(values['resource.open_fds'])}, "
              f"threads: {int(values['resource.threads'])}")
        print(f"  chunk cache:       "
              f"{format_bytes(int(values['resource.chunk_cache_bytes']))}, "
              f"store: {format_bytes(int(values['resource.store_bytes']))}")

        slo = service.slo_report()
        print("\nServing SLO report:")
        for entry in slo["slos"]:
            for stat, detail in entry["objectives"].items():
                status = "OK " if detail["ok"] else "VIOLATED"
                observed = ("n/a" if detail["observed"] is None
                            else f"{detail['observed'] * 1e3:.2f} ms")
                print(f"  {entry['name']} {stat} <= "
                      f"{detail['target'] * 1e3:.1f} ms: {status} "
                      f"(observed {observed})")
        if not slo["ok"]:
            print("  (SLO violations are informational in this toy run)")

        _hold_for_scrapers(server)

    server.stop()


if __name__ == "__main__":
    main()
