#!/usr/bin/env python
"""Storage savings: how an emulator replaces petabytes of archived output.

Reproduces the paper's motivating storage arithmetic: the CMIP context
figures, the size of hourly/kilometre-scale archives, the footprint of the
emulator parameters that can regenerate statistically consistent members on
demand, and the dollar savings at NCAR's $45/TB/year storage cost.

Run with:  python examples/storage_savings.py
"""

from __future__ import annotations

from repro.sht.grid import Grid
from repro.storage import (
    CMIP6_ARCHIVE,
    StorageScenario,
    format_bytes,
    savings_report,
)


def main() -> None:
    print("Context figures quoted in the paper:")
    for key, value in CMIP6_ARCHIVE.items():
        print(f"  {key:35s} {format_bytes(value)}")

    scenarios = [
        ("ERA5 hourly, single field, 35 years (the paper's training set)",
         StorageScenario("era5-hourly", Grid.era5(), 35, 8760), 720, True),
        ("10-member hourly ensemble at 25 km, single field",
         StorageScenario("ensemble-25km", Grid.era5(), 35, 8760, n_ensemble=10), 720, True),
        ("CMIP-style archive: 10 members x 100 fields, 35 years hourly",
         StorageScenario("cmip-style", Grid.era5(), 35, 8760, n_ensemble=10, n_variables=100),
         720, True),
        ("100-member kilometre-scale (3.5 km) hourly ensemble, 10 years",
         StorageScenario("km-scale", Grid.from_resolution(0.034), 10, 8760, n_ensemble=100),
         5219, False),
    ]

    print("\nRaw archive vs emulator parameters:")
    for title, scenario, lmax, full_cov in scenarios:
        report = savings_report(scenario, lmax=lmax, store_full_covariance=full_cov)
        print(f"\n  {title}")
        print(f"    raw archive:        {format_bytes(report['raw_bytes'])}")
        print(f"    emulator footprint: {format_bytes(report['emulator_bytes'])}"
              f"  (L = {lmax}, {'full' if full_cov else 'diagonal'} innovation covariance)")
        print(f"    compression:        {report['compression_factor']:.0f}x")
        print(f"    saved:              {report['saved_petabytes']:.3f} PB"
              f"  (~${report['annual_savings_usd']:,.0f} per year at $45/TB/yr)")

    print("\nThe larger the ensemble, the resolution, and the number of archived")
    print("fields, the more the one-off emulator fit replaces — which is the")
    print("'saving petabytes' argument of the paper's title.")


if __name__ == "__main__":
    main()
