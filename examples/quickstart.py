#!/usr/bin/env python
"""Quickstart: fit the climate emulator and generate emulations.

This script walks the full pipeline of the paper (Fig. 3) at a small,
laptop-friendly configuration, using the top-level facade API:

1. generate a synthetic ERA5-like simulation ensemble,
2. ``repro.fit`` the spherical-harmonic emulator (distributed-lag trend,
   scale field, diagonal VAR, innovation covariance + mixed-precision
   Cholesky, all compute backends resolved by name through the registries),
3. draw emulations with ``repro.emulate`` and compare them statistically
   with the simulations,
4. stream a longer scenario run chunk by chunk with ``emulate_stream``,
5. print the storage accounting, including the *measured* size of the
   serialisable emulator artifact.

Run with:  PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.stats import consistency_report, field_moments
from repro.storage import format_bytes


def main() -> None:
    print("=" * 70)
    print("Exascale climate emulator reproduction — quickstart")
    print("=" * 70)

    # 1. Synthetic "simulations" (stands in for ERA5 / CESM2-LENS2 output).
    sim_config = repro.Era5LikeConfig(
        lmax=16,              # spherical-harmonic band-limit of the data
        n_years=5,
        steps_per_year=36,    # a coarse synthetic calendar
        n_ensemble=2,
        forcing_growth=0.8,
    )
    print(f"\nGenerating simulations: {sim_config.n_ensemble} members x "
          f"{sim_config.n_times} steps on a "
          f"{sim_config.resolved_grid().ntheta}x{sim_config.resolved_grid().nphi} grid ...")
    simulations = repro.Era5LikeGenerator(sim_config, seed=1).generate()
    stats = field_moments(simulations.data, simulations.grid)
    print(f"  global mean temperature: {stats['mean']:.2f} K, "
          f"std: {stats['std']:.2f} K, {simulations.n_data_points:,} data points")

    # 2. Fit through the facade.  The SHT implementation and the Cholesky
    #    precision policy are both named backends resolved from the shared
    #    registries; list them to see what is available.
    print(f"\nAvailable SHT backends:      {repro.SHT_BACKENDS.names()}")
    print(f"Available Cholesky variants: {repro.CHOLESKY_VARIANTS.names()}")
    emulator = repro.fit(
        simulations,
        lmax=16,
        n_harmonics=2,
        var_order=2,
        tile_size=64,
        precision_variant="DP/SP",   # mixed-precision covariance factorisation
        sht_method="fast",           # the paper's FFT/Wigner transform
    )
    print(f"\nFitted: {emulator.config.describe()}")
    print(f"  spectral state size L^2 = {emulator.config.n_coeffs}, "
          f"Cholesky variant = {emulator.spectral_model.cholesky.variant}")

    # 3. Emulate and check statistical consistency.
    print("\nGenerating 3 emulation members ...")
    emulations = repro.emulate(emulator, 3, rng=np.random.default_rng(7))
    report = consistency_report(simulations, emulations, lmax=16)
    print("  consistency with the simulations:")
    for key, value in report.as_dict().items():
        print(f"    {key:28s} {value:10.4f}")
    print(f"  verdict: {'CONSISTENT' if report.is_consistent() else 'INCONSISTENT'}")

    # 4. Stream a longer scenario run with bounded memory: chunks arrive one
    #    model year at a time and could be written straight to disk.
    n_stream_years = 20
    forcing = np.linspace(1.0, 5.0, n_stream_years)
    print(f"\nStreaming a {n_stream_years}-year scenario run, one year per chunk:")
    total_steps = 0
    for chunk in emulator.emulate_stream(
        n_realizations=1,
        n_times=n_stream_years * sim_config.steps_per_year,
        annual_forcing=forcing,
        rng=np.random.default_rng(99),
    ):
        total_steps += chunk.n_times
    print(f"  streamed {total_steps} steps in year-sized chunks of "
          f"{sim_config.steps_per_year} (peak memory ~one chunk)")

    # 5. Storage accounting: theoretical parameter bytes and the *measured*
    #    serialised artifact size.
    summary = emulator.storage_summary()
    print("\nStorage accounting:")
    print(f"  raw training data (float32): {format_bytes(summary['raw_bytes_float32'])}")
    print(f"  emulator parameters:         {format_bytes(summary['parameter_bytes'])}")
    print(f"  measured artifact (NPZ):     {format_bytes(summary['measured_artifact_bytes'])}")
    print(f"  compression factor:          {summary['compression_factor']:.1f}x theoretical, "
          f"{summary['measured_compression_factor']:.1f}x measured "
          f"(grows with record length and ensemble size)")


if __name__ == "__main__":
    main()
