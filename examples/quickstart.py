#!/usr/bin/env python
"""Quickstart: fit the climate emulator and generate emulations.

This script walks the full pipeline of the paper (Fig. 3) at a small,
laptop-friendly configuration:

1. generate a synthetic ERA5-like simulation ensemble,
2. fit the spherical-harmonic emulator (distributed-lag trend, scale field,
   diagonal VAR, innovation covariance + mixed-precision Cholesky),
3. draw emulations and compare them statistically with the simulations,
4. print the storage accounting.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ClimateEmulator, EmulatorConfig
from repro.data import Era5LikeConfig, Era5LikeGenerator
from repro.stats import consistency_report, field_moments
from repro.storage import format_bytes


def main() -> None:
    print("=" * 70)
    print("Exascale climate emulator reproduction — quickstart")
    print("=" * 70)

    # 1. Synthetic "simulations" (stands in for ERA5 / CESM2-LENS2 output).
    sim_config = Era5LikeConfig(
        lmax=16,              # spherical-harmonic band-limit of the data
        n_years=5,
        steps_per_year=36,    # a coarse synthetic calendar
        n_ensemble=2,
        forcing_growth=0.8,
    )
    print(f"\nGenerating simulations: {sim_config.n_ensemble} members x "
          f"{sim_config.n_times} steps on a "
          f"{sim_config.resolved_grid().ntheta}x{sim_config.resolved_grid().nphi} grid ...")
    simulations = Era5LikeGenerator(sim_config, seed=1).generate()
    stats = field_moments(simulations.data, simulations.grid)
    print(f"  global mean temperature: {stats['mean']:.2f} K, "
          f"std: {stats['std']:.2f} K, {simulations.n_data_points:,} data points")

    # 2. Fit the emulator.
    config = EmulatorConfig(
        lmax=16,
        n_harmonics=2,
        var_order=2,
        tile_size=64,
        precision_variant="DP/SP",   # mixed-precision covariance factorisation
    )
    print(f"\nFitting the emulator: {config.describe()}")
    emulator = ClimateEmulator(config)
    emulator.fit(simulations)
    print(f"  spectral state size L^2 = {config.n_coeffs}, "
          f"Cholesky variant = {emulator.spectral_model.cholesky.variant}")

    # 3. Emulate.
    print("\nGenerating 3 emulation members ...")
    emulations = emulator.emulate(n_realizations=3, rng=np.random.default_rng(7))
    report = consistency_report(simulations, emulations, lmax=16)
    print("  consistency with the simulations:")
    for key, value in report.as_dict().items():
        print(f"    {key:28s} {value:10.4f}")
    print(f"  verdict: {'CONSISTENT' if report.is_consistent() else 'INCONSISTENT'}")

    # 4. Storage accounting.
    summary = emulator.storage_summary()
    print("\nStorage accounting:")
    print(f"  raw training data (float32): {format_bytes(summary['raw_bytes_float32'])}")
    print(f"  emulator parameters:         {format_bytes(summary['parameter_bytes'])}")
    print(f"  compression factor:          {summary['compression_factor']:.1f}x "
          f"(grows with record length and ensemble size)")


if __name__ == "__main__":
    main()
