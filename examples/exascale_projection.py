#!/usr/bin/env python
"""Exascale performance projection across Frontier, Alps, Leonardo and Summit.

Reproduces the shape of the paper's machine-scale results with the
calibrated analytic performance model: Table I (1,024 nodes of each system),
the largest runs of Fig. 8, and the Summit weak/strong scaling of Fig. 7.

Run with:  python examples/exascale_projection.py
"""

from __future__ import annotations

from repro.linalg.policies import VARIANTS
from repro.systems import SYSTEMS, CholeskyPerformanceModel
from repro.systems.catalog import PAPER_NODE_COUNTS
from repro.tuning import scaling_efficiencies


def table1() -> None:
    print("Table I — DP/HP Cholesky on 1,024 nodes of each system")
    print(f"{'system':10s} {'GPU':28s} {'#GPUs':>7s} {'matrix':>8s} "
          f"{'PFlop/s':>9s} {'TF/s/GPU':>9s}")
    sizes = {"frontier": 8_390_000, "alps": 10_490_000, "leonardo": 8_390_000, "summit": 6_290_000}
    for name, machine in SYSTEMS.items():
        estimate = CholeskyPerformanceModel(machine).estimate(sizes[name], 1024, "DP/HP")
        print(f"{machine.name:10s} {machine.node.gpu.name:28s} {estimate.workers:7d} "
              f"{sizes[name]/1e6:7.2f}M {estimate.pflops:9.1f} {estimate.tflops_per_worker:9.1f}")


def largest_runs() -> None:
    print("\nFig. 8 — largest runs (DP/HP)")
    runs = {
        "frontier": (PAPER_NODE_COUNTS["largest_run"]["frontier"], 27_240_000),
        "alps": (PAPER_NODE_COUNTS["largest_run"]["alps"], 15_730_000),
        "summit": (PAPER_NODE_COUNTS["largest_run"]["summit"], 12_580_000),
        "leonardo": (PAPER_NODE_COUNTS["largest_run"]["leonardo"], 8_390_000),
    }
    for name, (nodes, size) in runs.items():
        machine = SYSTEMS[name]
        estimate = CholeskyPerformanceModel(machine).estimate(size, nodes, "DP/HP")
        print(f"  {machine.name:10s} {nodes:6d} nodes, {size/1e6:6.2f}M matrix: "
              f"{estimate.eflops:6.3f} EFlop/s")


def summit_scaling() -> None:
    print("\nFig. 7 — Summit scaling (per-GPU efficiency vs the smallest allocation)")
    model = CholeskyPerformanceModel(SYSTEMS["summit"])
    weak_gpus = [384, 1536, 3072, 6144, 12288]
    strong_gpus = [3072, 6144, 12288]
    fixed = model.memory_bound_matrix_size(512)
    print(f"  {'variant':10s} {'weak: ' + str(weak_gpus):48s} strong ({fixed/1e6:.1f}M): {strong_gpus}")
    for variant in VARIANTS:
        weak = scaling_efficiencies(model.weak_scaling(weak_gpus, variant))
        strong = scaling_efficiencies(model.strong_scaling(fixed, strong_gpus, variant))
        weak_str = " ".join(f"{100*e:4.0f}%" for e in weak)
        strong_str = " ".join(f"{100*e:4.0f}%" for e in strong)
        print(f"  {variant:10s} {weak_str:48s} {strong_str}")


def main() -> None:
    table1()
    largest_runs()
    summit_scaling()
    print("\nNote: these are calibrated performance-model projections; see")
    print("EXPERIMENTS.md for the comparison against the paper's measured values.")


if __name__ == "__main__":
    main()
