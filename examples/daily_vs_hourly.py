#!/usr/bin/env python
"""Daily versus hourly temporal resolution (the tau = 365 / 8760 code path).

The paper trains two emulators: one on 83 years of daily data and one on 35
years of hourly data, differing only in the temporal resolution parameter
``tau`` of Eq. (2) and in the record length.  This example fits both
configurations on synthetic data (with a proportionally scaled calendar),
generates emulations from each, and compares the consistency diagnostics
and the temporal autocorrelation structure they capture.

Run with:  python examples/daily_vs_hourly.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ClimateEmulator, EmulatorConfig
from repro.data import Era5LikeConfig, Era5LikeGenerator
from repro.stats import consistency_report, temporal_autocorrelation


def run_case(label: str, steps_per_year: int, n_years: int, diurnal: float) -> None:
    print(f"\n--- {label}: tau = {steps_per_year} steps/year, {n_years} years ---")
    sims = Era5LikeGenerator(
        Era5LikeConfig(
            lmax=12, n_years=n_years, steps_per_year=steps_per_year, n_ensemble=2,
            diurnal_amplitude_k=diurnal, ar_coefficient=0.7, forcing_growth=0.8,
        ),
        seed=21,
    ).generate()
    emulator = ClimateEmulator(
        EmulatorConfig(lmax=12, n_harmonics=3 if diurnal > 0 else 2, var_order=2,
                       tile_size=48, precision_variant="DP/SP")
    )
    emulator.fit(sims)
    emulations = emulator.emulate(n_realizations=2, rng=np.random.default_rng(4))

    report = consistency_report(sims, emulations, lmax=12)
    print(f"  consistency: mean diff {report.global_mean_diff_k:+.3f} K, "
          f"std ratio {report.global_std_ratio:.3f}, KS {report.ks_distance:.3f} "
          f"-> {'consistent' if report.is_consistent() else 'inconsistent'}")

    sim_acf = temporal_autocorrelation(sims.data, max_lag=3, grid=sims.grid)
    emu_acf = temporal_autocorrelation(emulations.data, max_lag=3, grid=sims.grid)
    print(f"  global-mean autocorrelation lags 1-3:")
    print(f"    simulations: {np.round(sim_acf, 3)}")
    print(f"    emulations:  {np.round(emu_acf, 3)}")
    print(f"  data points: {sims.n_data_points:,} (simulations), "
          f"{emulations.n_data_points:,} (emulations)")


def main() -> None:
    # The synthetic calendar is shorter than the real one so the example runs
    # in seconds: the "daily-like" case uses a coarse year, the "hourly-like"
    # case a finer year with a diurnal harmonic, exercising both tau paths.
    run_case("daily-like record (long, coarse tau)", steps_per_year=24, n_years=6, diurnal=0.0)
    run_case("hourly-like record (short, fine tau)", steps_per_year=96, n_years=2, diurnal=2.0)
    print("\nBoth temporal resolutions run through the identical pipeline; only")
    print("tau and the number of harmonics K differ, as in the paper (Section IV-A).")


if __name__ == "__main__":
    main()
