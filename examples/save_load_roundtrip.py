#!/usr/bin/env python
"""Fit once, emulate anywhere: the emulator artifact round trip.

The paper's storage argument is that the fitted emulator's *parameters*
replace petabytes of raw ensemble output.  This script makes that concrete:

1. generate a synthetic simulation ensemble and fit the emulator,
2. ``repro.save`` the fitted emulator to a single NPZ artifact and compare
   the *measured* file size against the raw ensemble bytes,
3. ``repro.load`` it back (as a consumer on another machine would — the raw
   training data is not in the file) and verify the reload is bit-exact:
   the same seeded generator produces identical emulations,
4. stream a scenario run from the loaded artifact with bounded memory.

Run with:  PYTHONPATH=src python examples/save_load_roundtrip.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

import repro
from repro.storage import format_bytes, measured_artifact_report


def main() -> None:
    print("=" * 70)
    print("Emulator artifact: fit once, emulate anywhere")
    print("=" * 70)

    # 1. Train on a synthetic ensemble.
    sim_config = repro.Era5LikeConfig(
        lmax=12, n_years=6, steps_per_year=24, n_ensemble=3, forcing_growth=0.8,
    )
    simulations = repro.Era5LikeGenerator(sim_config, seed=3).generate()
    print(f"\nTraining data: {simulations.n_ensemble} members x "
          f"{simulations.n_times} steps on {simulations.grid.shape}, "
          f"{format_bytes(simulations.storage_bytes(np.float32))} as float32")

    emulator = repro.fit(simulations, lmax=12, var_order=2, tile_size=36,
                         precision_variant="DP/SP")

    # 2. Persist the fitted parameters and measure what they cost on disk.
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "emulator.npz")
        repro.save(emulator, path)
        artifact_bytes = os.path.getsize(path)
        raw_bytes = simulations.storage_bytes(np.float32)
        print(f"\nSaved artifact:    {path}")
        print(f"  artifact size:   {format_bytes(artifact_bytes)} (measured on disk)")
        print(f"  raw ensemble:    {format_bytes(raw_bytes)}")
        print(f"  ratio:           {raw_bytes / artifact_bytes:.1f}x smaller — and the "
              f"artifact regenerates unlimited members")

        report = measured_artifact_report(emulator)
        print(f"  theoretical parameter bytes: "
              f"{format_bytes(report['parameter_bytes'])} "
              f"(format overhead {report['format_overhead_factor']:.2f}x)")

        # 3. Reload and verify bit-exactness.  The loaded emulator carries no
        #    raw training data, only fitted parameters + a training summary.
        loaded = repro.load(path)
        assert loaded.training is None
        original = emulator.emulate(2, rng=np.random.default_rng(123))
        reloaded = loaded.emulate(2, rng=np.random.default_rng(123))
        exact = np.array_equal(original.data, reloaded.data)
        print(f"\nReloaded emulator reproduces the original bit-exactly: {exact}")
        if not exact:
            raise SystemExit("round trip was not bit-exact!")

        # 4. Stream a 50-year scenario from the artifact, one year at a time.
        n_years = 50
        forcing = np.linspace(1.0, 6.0, n_years)
        peak_chunk = 0
        total = 0
        for chunk in repro.emulate_stream(
            path,
            n_realizations=1,
            n_times=n_years * sim_config.steps_per_year,
            annual_forcing=forcing,
            rng=np.random.default_rng(7),
        ):
            peak_chunk = max(peak_chunk, chunk.data.nbytes)
            total += chunk.n_times
        print(f"\nStreamed a {n_years}-year scenario ({total} steps) from the "
              f"artifact; peak chunk memory {format_bytes(peak_chunk)}")

    print("\nDone: the raw ensemble can be deleted; the artifact is the emulator.")


if __name__ == "__main__":
    main()
