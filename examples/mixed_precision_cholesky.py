#!/usr/bin/env python
"""Mixed-precision tile Cholesky: accuracy / storage / speed trade-offs.

Demonstrates the HPC core of the paper on a real covariance matrix: the
four precision variants (DP, DP/SP, DP/SP/HP, DP/HP), their factor accuracy,
their storage footprint, the sender- versus receiver-side conversion counts,
and a projected time-to-solution on Summit using the performance model.

Run with:  python examples/mixed_precision_cholesky.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import ClimateEmulator, EmulatorConfig
from repro.data import Era5LikeConfig, Era5LikeGenerator
from repro.linalg import MixedPrecisionCholesky, TiledSymmetricMatrix, generate_cholesky_tasks
from repro.linalg.policies import VARIANTS
from repro.storage import format_bytes
from repro.systems import SUMMIT, CholeskyPerformanceModel


def fitted_covariance(lmax: int = 14) -> np.ndarray:
    """Fit a small emulator and return its innovation covariance."""
    sims = Era5LikeGenerator(
        Era5LikeConfig(lmax=lmax, n_years=4, steps_per_year=24, n_ensemble=2),
        seed=3,
    ).generate()
    emulator = ClimateEmulator(EmulatorConfig(lmax=lmax, var_order=2, tile_size=49))
    emulator.fit(sims)
    return np.asarray(emulator.spectral_model.covariance)


def main() -> None:
    print("Fitting an emulator to obtain a real innovation covariance ...")
    cov = fitted_covariance()
    n = cov.shape[0]
    print(f"  covariance order: {n} x {n} (L^2 with L = {int(np.sqrt(n))})\n")

    reference = MixedPrecisionCholesky(tile_size=49, variant="DP").factorize(cov)

    print(f"{'variant':10s} {'time (ms)':>10s} {'factor err':>12s} "
          f"{'recon err':>12s} {'storage':>12s} {'conversions':>12s}")
    for variant in VARIANTS:
        solver = MixedPrecisionCholesky(tile_size=49, variant=variant, jitter=1e-6)
        start = time.perf_counter()
        result = solver.factorize(cov)
        elapsed = (time.perf_counter() - start) * 1e3
        print(f"{variant:10s} {elapsed:10.1f} {result.factor_error(reference.lower()):12.2e} "
              f"{result.relative_error(cov):12.2e} {format_bytes(result.storage_bytes):>12s} "
              f"{result.conversions:12d}")

    print("\nSender- vs receiver-side conversion (DP/HP policy):")
    for side in ("sender", "receiver"):
        tiled = TiledSymmetricMatrix.from_dense(cov, 49, "DP/HP")
        tasks = generate_cholesky_tasks(tiled, conversion=side)
        conversions = sum(t.metadata.get("conversions", 0) for t in tasks)
        print(f"  {side:9s}: {conversions} conversions across {len(tasks)} tasks")

    print("\nProjected time-to-solution on Summit (performance model), 8.39M covariance:")
    model = CholeskyPerformanceModel(SUMMIT)
    for variant in VARIANTS:
        estimate = model.estimate(8_390_000, 2048, variant)
        print(f"  {variant:10s} {estimate.total_s:8.0f} s   {estimate.pflops:7.1f} PFlop/s")


if __name__ == "__main__":
    main()
