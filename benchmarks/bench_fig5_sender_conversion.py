"""E4 — Figure 5: sender-based precision conversion on 128 Summit nodes.

The paper compares its new sender-side conversion (plus latency-first
collectives) against the earlier receiver-side implementation on 128 Summit
nodes, reporting speedups of ~1.15x (DP), ~1.06x (DP/SP) and ~1.53x (DP/HP)
across covariance sizes 0.66M-1.27M.  This benchmark regenerates the series
with the calibrated performance model and cross-checks the mechanism (fewer
conversions, fewer wire bytes) with the real task generator.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.linalg import TiledSymmetricMatrix, generate_cholesky_tasks
from repro.systems import SUMMIT, CholeskyPerformanceModel

SIZES = [660_000, 860_000, 1_060_000, 1_270_000]
NODES = 128
PAPER_SPEEDUPS = {"DP": 1.15, "DP/SP": 1.06, "DP/HP": 1.53}


@pytest.mark.benchmark(group="fig5")
def test_fig5_sender_vs_receiver_conversion(benchmark):
    new_model = CholeskyPerformanceModel(SUMMIT, conversion="sender", collective_priority="latency")
    old_model = CholeskyPerformanceModel(SUMMIT, conversion="receiver", collective_priority="bandwidth")

    def sweep():
        out = {}
        for variant in PAPER_SPEEDUPS:
            out[variant] = [
                (n, new_model.estimate(n, NODES, variant).pflops,
                 old_model.estimate(n, NODES, variant).pflops)
                for n in SIZES
            ]
        return out

    results = benchmark(sweep)

    rows = []
    speedups = {}
    for variant, series in results.items():
        for n, new_pf, old_pf in series:
            rows.append([variant, f"{n/1e6:.2f}M", f"{new_pf:.2f}", f"{old_pf:.2f}",
                         f"{new_pf/old_pf:.2f}", f"{PAPER_SPEEDUPS[variant]:.2f}"])
        largest = series[-1]
        speedups[variant] = largest[1] / largest[2]
    print_table(
        "Fig. 5 — sender-based conversion, 128 Summit nodes (768 V100)",
        ["variant", "matrix", "new (PFlop/s)", "old (PFlop/s)", "speedup", "paper"],
        rows,
    )

    # Shape: DP/HP benefits the most (it ships the most convertible tiles),
    # and every variant is at least as fast with the new scheme.
    assert speedups["DP/HP"] > speedups["DP/SP"]
    assert speedups["DP/HP"] > 1.2
    assert all(s >= 0.99 for s in speedups.values())
    # Absolute rates are in the paper's ballpark (Fig. 5 tops out near 14 PFlop/s).
    assert 5.0 < results["DP/HP"][-1][1] < 30.0


@pytest.mark.benchmark(group="fig5")
def test_fig5_conversion_counts_from_task_generator(benchmark, bench_covariance):
    """Sender-side conversion performs strictly fewer conversions."""

    def build(side):
        tiled = TiledSymmetricMatrix.from_dense(bench_covariance, 24, "DP/HP")
        tasks = generate_cholesky_tasks(tiled, conversion=side)
        return sum(t.metadata.get("conversions", 0) for t in tasks)

    sender = benchmark(build, "sender")
    receiver = build("receiver")
    print_table(
        "Fig. 5 — precision conversions per factorisation (DP/HP policy)",
        ["conversion side", "conversions"],
        [["sender", sender], ["receiver", receiver]],
    )
    assert sender < receiver
