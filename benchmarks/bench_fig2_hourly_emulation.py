"""E2 — Figure 2: hourly simulations versus emulations.

The paper plots hourly ERA5 surface temperature next to a single emulation
for two days (Jan 1 and Jun 1, 2019) to illustrate statistical consistency.
This benchmark fits the emulator on the synthetic ERA5-like ensemble with a
diurnal cycle, generates an emulation of the same length, and reports the
quantitative consistency diagnostics for a "winter" day and a "summer" day
(the seasonal extremes of the synthetic calendar) plus the whole record.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.stats import consistency_report, field_moments
from repro.stats.distributions import quantile_table


@pytest.mark.benchmark(group="fig2")
def test_fig2_hourly_emulation_consistency(benchmark, bench_simulations, bench_emulator):
    rng = np.random.default_rng(19)

    emulations = benchmark(
        bench_emulator.emulate, 2, bench_simulations.n_times, None, rng
    )

    report = consistency_report(bench_simulations, emulations, lmax=12)
    print_table(
        "Fig. 2 — simulation vs emulation consistency (whole record)",
        ["metric", "value"],
        [[k, f"{v:.4f}"] for k, v in report.as_dict().items()],
    )

    steps = bench_simulations.steps_per_year
    days = {"winter (step 0)": 0, "summer (mid-year)": steps // 2}
    rows = []
    for label, step in days.items():
        sim_day = bench_simulations.data[:, step::steps]
        emu_day = emulations.data[:, step::steps]
        sim_stats = field_moments(sim_day, bench_simulations.grid)
        emu_stats = field_moments(emu_day, bench_simulations.grid)
        rows.append(
            [label, f"{sim_stats['mean']:.2f}", f"{emu_stats['mean']:.2f}",
             f"{sim_stats['std']:.2f}", f"{emu_stats['std']:.2f}"]
        )
    print_table(
        "Fig. 2 — seasonal snapshots (area-weighted K)",
        ["day", "sim mean", "emu mean", "sim std", "emu std"],
        rows,
    )

    sim_q = quantile_table(bench_simulations.data)
    emu_q = quantile_table(emulations.data)
    print_table(
        "Fig. 2 — temperature quantiles (K)",
        ["quantile", "simulation", "emulation"],
        [[f"{q:.2f}", f"{sim_q[q]:.2f}", f"{emu_q[q]:.2f}"] for q in sim_q],
    )

    assert report.is_consistent()
    for q in sim_q:
        assert abs(sim_q[q] - emu_q[q]) < 6.0

    for label, step in days.items():
        sim_day = field_moments(bench_simulations.data[:, step::steps], bench_simulations.grid)
        emu_day = field_moments(emulations.data[:, step::steps], bench_simulations.grid)
        assert abs(sim_day["mean"] - emu_day["mean"]) < 2.0
        assert abs(sim_day["std"] / emu_day["std"] - 1.0) < 0.3
