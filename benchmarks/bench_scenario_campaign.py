"""E11 — scenario campaign: serial vs sharded ensemble replay.

The campaign runner is the scale story of the scenario engine: one fitted
emulator replayed across scenarios x realizations, sharded over
``concurrent.futures`` workers with per-run ``SeedSequence``-spawned
streams.  This benchmark measures the serial and sharded wall-clock of the
same campaign, verifies they are bit-identical, and prints a JSON summary
line so the run log doubles as a machine-readable record.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

try:
    from benchmarks._report import emit_summary
    from benchmarks.conftest import print_table
except ImportError:  # run as a script with benchmarks/ as sys.path[0]
    from _report import emit_summary
    from conftest import print_table
from repro.scenarios.campaign import run_campaign
from repro.storage.accounting import campaign_storage_report, format_bytes

SCENARIO_NAMES = ["ssp-low", "ssp-medium", "ssp-high", "overshoot"]
N_REALIZATIONS = 2
N_TIMES = 4 * 24          # four model years of the benchmark calendar
SEED = 2024
WORKERS = 4


def _campaign(emulator, max_workers: int):
    return run_campaign(
        emulator, SCENARIO_NAMES, N_REALIZATIONS, n_times=N_TIMES,
        seed=SEED, collect="global-mean", max_workers=max_workers,
    )


@pytest.mark.benchmark(group="campaign")
def test_campaign_serial_vs_sharded(benchmark, bench_emulator):
    t0 = time.perf_counter()
    serial = _campaign(bench_emulator, max_workers=1)
    t_serial = time.perf_counter() - t0

    sharded = benchmark(lambda: _campaign(bench_emulator, max_workers=WORKERS))
    t_sharded = benchmark.stats.stats.mean if benchmark.stats else float("nan")

    # Sharding must not change a single bit of any run.
    assert sharded.n_runs == serial.n_runs == len(SCENARIO_NAMES) * N_REALIZATIONS
    for serial_run, sharded_run in zip(serial.runs, sharded.runs):
        assert serial_run.to_dict() == sharded_run.to_dict()
        assert np.array_equal(serial_run.collected, sharded_run.collected)

    report = campaign_storage_report(sharded)
    rows = [
        [record.scenario, record.realization, str(record.spawn_key),
         len(record.chunk_sizes), format_bytes(record.output_bytes)]
        for record in sharded.runs
    ]
    print_table(
        f"E11 — campaign runs ({len(SCENARIO_NAMES)} scenarios x "
        f"{N_REALIZATIONS} realizations, {N_TIMES} steps each)",
        ["scenario", "r", "seed-key", "chunks", "output"],
        rows,
    )
    print_table(
        "E11 — serial vs sharded wall-clock",
        ["mode", "workers", "seconds", "runs/s"],
        [
            ["serial", 1, t_serial, serial.n_runs / t_serial],
            ["sharded", WORKERS, t_sharded, sharded.n_runs / t_sharded],
        ],
    )
    summary = {
        "benchmark": "scenario_campaign",
        "n_runs": sharded.n_runs,
        "n_times": N_TIMES,
        "workers": WORKERS,
        "serial_seconds": round(t_serial, 4),
        "sharded_seconds": round(t_sharded, 4),
        "speedup": round(t_serial / t_sharded, 2) if t_sharded else None,
        "bit_identical": True,
        "campaign_output_bytes": report["campaign_output_bytes"],
        "artifact_bytes": report["artifact_bytes"],
        "boost_factor": round(report["boost_factor"], 2),
        "manifest_wall_seconds": round(report["wall_seconds"], 4),
        "manifest_runs_per_second": round(report["runs_per_second"], 2),
    }
    emit_summary(summary)

    assert report["boost_factor"] > 1.0
    assert sharded.total_output_bytes == serial.total_output_bytes
