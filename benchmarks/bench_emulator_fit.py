"""E12 — emulator fit and generation cost scaling.

Section III-A quotes O(T) per-location trend fits, O(T L^3) for the SHT of
the record, O(L^4 T) for the empirical covariance and O(L^6) for its
Cholesky; emulation generation costs O(L^3 T).  This benchmark measures the
fit and generation wall-clock at two band-limits and record lengths and
checks the expected growth pattern, plus the storage summary produced by
the fitted emulator.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import ClimateEmulator, EmulatorConfig
from repro.data import Era5LikeConfig, Era5LikeGenerator
from repro.storage import format_bytes


def _make_sims(lmax, n_years, steps):
    cfg = Era5LikeConfig(lmax=lmax, n_years=n_years, steps_per_year=steps,
                         n_ensemble=2, forcing_growth=1.0)
    return Era5LikeGenerator(cfg, seed=5).generate()


def _make_emulator(lmax):
    return ClimateEmulator(
        EmulatorConfig(lmax=lmax, n_harmonics=2, var_order=2,
                       tile_size=max(16, lmax * lmax // 4), rho_grid=(0.5,))
    )


@pytest.mark.benchmark(group="emulator-fit")
@pytest.mark.parametrize("lmax", [8, 16])
def test_emulator_fit_cost(benchmark, lmax):
    sims = _make_sims(lmax, n_years=3, steps=24)
    emulator = _make_emulator(lmax)

    benchmark.pedantic(emulator.fit, args=(sims,), iterations=1, rounds=1)

    summary = emulator.storage_summary()
    print_table(
        f"E12 — emulator fit at L={lmax} (T={sims.n_times}, R=2)",
        ["L", "coefficients", "parameters", "parameter bytes", "training bytes (f32)",
         "compression"],
        [[lmax, lmax * lmax, summary["n_parameters"],
          format_bytes(summary["parameter_bytes"]),
          format_bytes(summary["raw_bytes_float32"]),
          f"{summary['compression_factor']:.1f}x"]],
    )
    assert emulator.is_fitted


@pytest.mark.benchmark(group="emulator-fit")
def test_emulation_generation_cost(benchmark, bench_emulator, bench_simulations):
    """Generation is the cheap path: O(L^3 T) with no refitting."""
    rng = np.random.default_rng(1)

    out = benchmark(bench_emulator.emulate, 1, bench_simulations.n_times, None, rng)

    assert out.data.shape[1] == bench_simulations.n_times
    print_table(
        "E12 — single-member emulation generation",
        ["time steps", "grid", "data points"],
        [[out.n_times, f"{out.grid.ntheta}x{out.grid.nphi}", out.n_data_points]],
    )


@pytest.mark.benchmark(group="emulator-fit")
def test_fit_cost_grows_with_record_length(benchmark):
    """Doubling T roughly doubles the fit cost (the O(T) / O(L^4 T) terms)."""
    import time

    def measure():
        timings = {}
        for n_years in (2, 4):
            sims = _make_sims(10, n_years=n_years, steps=24)
            emulator = _make_emulator(10)
            start = time.perf_counter()
            emulator.fit(sims)
            timings[n_years] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(measure, iterations=1, rounds=1)
    print_table(
        "E12 — fit wall-clock vs record length (L=10)",
        ["years", "seconds"],
        [[y, f"{t:.3f}"] for y, t in timings.items()],
    )
    assert timings[4] > timings[2] * 0.8
