"""E6 — Figure 7: weak and strong scaling on Summit.

Paper results: weak scaling holds 92-111% per-GPU efficiency from 384 to
12,288 V100 GPUs for every precision variant; strong scaling from 3,072 to
12,288 GPUs retains ~55% (DP), ~72% (DP/SP), ~60% (DP/SP/HP) and ~56%
(DP/HP) per-GPU efficiency.  This benchmark regenerates both studies with
the performance model and adds a small real-execution cross-check with the
discrete-event simulator.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.linalg import TiledSymmetricMatrix, generate_cholesky_tasks
from repro.linalg.policies import VARIANTS
from repro.runtime import DistributedSimulator
from repro.systems import SUMMIT, CholeskyPerformanceModel

WEAK_GPUS = [384, 1536, 3072, 6144, 12288]
STRONG_GPUS = [3072, 6144, 12288]
PAPER_STRONG = {"DP": 0.55, "DP/SP": 0.72, "DP/SP/HP": 0.60, "DP/HP": 0.56}


@pytest.mark.benchmark(group="fig7")
def test_fig7_weak_scaling(benchmark):
    model = CholeskyPerformanceModel(SUMMIT)

    def sweep():
        return {v: model.weak_scaling(WEAK_GPUS, v) for v in VARIANTS}

    studies = benchmark(sweep)
    rows = []
    for variant, study in studies.items():
        eff = study.efficiencies()
        rows.append([variant] + [f"{100 * e:.0f}%" for e in eff])
    print_table(
        "Fig. 7 (left) — weak scaling efficiency per GPU (baseline: 384 GPUs; paper: 92-111%)",
        ["variant"] + [str(g) for g in WEAK_GPUS],
        rows,
    )
    for study in studies.values():
        eff = study.efficiencies()
        assert all(0.7 < e < 1.25 for e in eff)


@pytest.mark.benchmark(group="fig7")
def test_fig7_strong_scaling(benchmark):
    model = CholeskyPerformanceModel(SUMMIT)
    fixed_size = model.memory_bound_matrix_size(512)

    def sweep():
        return {v: model.strong_scaling(fixed_size, STRONG_GPUS, v) for v in VARIANTS}

    studies = benchmark(sweep)
    rows = []
    final_eff = {}
    for variant, study in studies.items():
        eff = study.efficiencies()
        final_eff[variant] = eff[-1]
        rows.append([variant] + [f"{100 * e:.0f}%" for e in eff] + [f"{100 * PAPER_STRONG[variant]:.0f}%"])
    print_table(
        f"Fig. 7 (right) — strong scaling efficiency (fixed size {fixed_size/1e6:.2f}M)",
        ["variant"] + [str(g) for g in STRONG_GPUS] + ["paper @12288"],
        rows,
    )
    for variant, eff in final_eff.items():
        assert 0.35 < eff < 0.85
    # Efficiency decreases monotonically for every variant.
    for study in studies.values():
        eff = study.efficiencies()
        assert eff[0] >= eff[1] >= eff[2]


@pytest.mark.benchmark(group="fig7")
def test_fig7_simulator_cross_check(benchmark, bench_covariance):
    """The discrete-event simulator shows the same qualitative behaviour:
    per-worker efficiency degrades when the same DAG is spread over more
    workers (strong scaling), for a real (small) covariance DAG."""
    tiled = TiledSymmetricMatrix.from_dense(bench_covariance, 18, "DP/HP")
    tasks = generate_cholesky_tasks(tiled)
    tile_bytes = tiled.tile_bytes_map()

    def run(workers):
        sim = DistributedSimulator(SUMMIT.subset(max(1, workers // 6)), workers=workers,
                                   task_overhead_us=5.0)
        return sim.run(tasks, tile_bytes)

    small = benchmark.pedantic(run, args=(2,), iterations=1, rounds=1)
    large = run(16)
    eff = large.efficiency_vs(small)
    print_table(
        "Fig. 7 — simulator cross-check (real 144x144 covariance DAG)",
        ["workers", "makespan (ms)", "per-worker GFlop/s", "efficiency vs 2 workers"],
        [
            [2, f"{small.makespan_s * 1e3:.2f}", f"{small.achieved_gflops / 2:.2f}", "100%"],
            [16, f"{large.makespan_s * 1e3:.2f}", f"{large.achieved_gflops / 16:.2f}", f"{100 * eff:.0f}%"],
        ],
    )
    assert large.makespan_s <= small.makespan_s
    assert eff < 1.0
