"""E6 — Figure 7: weak and strong scaling on Summit.

Paper results: weak scaling holds 92-111% per-GPU efficiency from 384 to
12,288 V100 GPUs for every precision variant; strong scaling from 3,072 to
12,288 GPUs retains ~55% (DP), ~72% (DP/SP), ~60% (DP/SP/HP) and ~56%
(DP/HP) per-GPU efficiency.  This benchmark regenerates both studies with
the performance model and adds a small real-DAG cross-check using the
runtime's dependency analysis (Brent's bound on a real covariance DAG).
"""

import pytest

from benchmarks.conftest import print_table
from repro.linalg import TiledSymmetricMatrix, generate_cholesky_tasks
from repro.linalg.policies import VARIANTS
from repro.runtime import build_task_graph
from repro.systems import SUMMIT, CholeskyPerformanceModel
from repro.tuning import scaling_efficiencies

WEAK_GPUS = [384, 1536, 3072, 6144, 12288]
STRONG_GPUS = [3072, 6144, 12288]
PAPER_STRONG = {"DP": 0.55, "DP/SP": 0.72, "DP/SP/HP": 0.60, "DP/HP": 0.56}


@pytest.mark.benchmark(group="fig7")
def test_fig7_weak_scaling(benchmark):
    model = CholeskyPerformanceModel(SUMMIT)

    def sweep():
        return {v: model.weak_scaling(WEAK_GPUS, v) for v in VARIANTS}

    studies = benchmark(sweep)
    rows = []
    for variant, series in studies.items():
        eff = scaling_efficiencies(series)
        rows.append([variant] + [f"{100 * e:.0f}%" for e in eff])
    print_table(
        "Fig. 7 (left) — weak scaling efficiency per GPU (baseline: 384 GPUs; paper: 92-111%)",
        ["variant"] + [str(g) for g in WEAK_GPUS],
        rows,
    )
    for series in studies.values():
        eff = scaling_efficiencies(series)
        assert all(0.7 < e < 1.25 for e in eff)


@pytest.mark.benchmark(group="fig7")
def test_fig7_strong_scaling(benchmark):
    model = CholeskyPerformanceModel(SUMMIT)
    fixed_size = model.memory_bound_matrix_size(512)

    def sweep():
        return {v: model.strong_scaling(fixed_size, STRONG_GPUS, v) for v in VARIANTS}

    studies = benchmark(sweep)
    rows = []
    final_eff = {}
    for variant, series in studies.items():
        eff = scaling_efficiencies(series)
        final_eff[variant] = eff[-1]
        rows.append([variant] + [f"{100 * e:.0f}%" for e in eff] + [f"{100 * PAPER_STRONG[variant]:.0f}%"])
    print_table(
        f"Fig. 7 (right) — strong scaling efficiency (fixed size {fixed_size/1e6:.2f}M)",
        ["variant"] + [str(g) for g in STRONG_GPUS] + ["paper @12288"],
        rows,
    )
    for variant, eff in final_eff.items():
        assert 0.35 < eff < 0.85
    # Efficiency decreases monotonically for every variant.
    for series in studies.values():
        eff = scaling_efficiencies(series)
        assert eff[0] >= eff[1] >= eff[2]


@pytest.mark.benchmark(group="fig7")
def test_fig7_dag_bound_cross_check(benchmark, bench_covariance):
    """The runtime's DAG analysis shows the same qualitative behaviour:
    per-worker efficiency degrades when the same DAG is spread over more
    workers (strong scaling), for a real (small) covariance DAG.

    Brent's bound gives the makespan of a work-conserving schedule as
    ``max(T1 / w, T_inf)``; once the critical path ``T_inf`` binds,
    adding workers stops helping and efficiency falls — the structural
    cause of the strong-scaling roll-off in Fig. 7 (right).
    """
    tiled = TiledSymmetricMatrix.from_dense(bench_covariance, 18, "DP/HP")
    tasks = generate_cholesky_tasks(tiled)
    graph = benchmark(lambda: build_task_graph(tasks))

    total = graph.total_flops()
    critical, _ = graph.critical_path()

    def makespan(workers: int) -> float:
        return max(total / workers, critical)

    small, large = makespan(2), makespan(16)
    eff = (total / 16 / large) / (total / 2 / small)
    print_table(
        "Fig. 7 — DAG-bound cross-check (real 144x144 covariance DAG)",
        ["workers", "makespan (flops)", "efficiency vs 2 workers"],
        [
            [2, f"{small:.3g}", "100%"],
            [16, f"{large:.3g}", f"{100 * eff:.0f}%"],
        ],
    )
    assert large <= small
    assert eff < 1.0
    assert graph.average_parallelism() < 16
