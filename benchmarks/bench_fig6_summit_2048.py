"""E5 — Figure 6: precision variants on 2,048 Summit nodes.

The paper reports, for covariance sizes 2.1M-8.39M on 12,288 V100 GPUs:
DP reaching 61.7% of the DP peak, and speedups over DP of ~2.0x (DP/SP),
~3.2x (DP/SP/HP) and ~5.2x (DP/HP), with DP/HP peaking at ~305 PFlop/s.
This benchmark regenerates the four curves with the performance model.
"""

import pytest

from benchmarks.conftest import print_table
from repro.linalg.policies import VARIANTS
from repro.systems import SUMMIT, CholeskyPerformanceModel

NODES = 2_048
SIZES = [2_100_000, 3_150_000, 4_190_000, 5_240_000, 6_290_000, 7_340_000, 8_390_000]
PAPER = {"DP": 1.0, "DP/SP": 2.0, "DP/SP/HP": 3.2, "DP/HP": 5.2}


@pytest.mark.benchmark(group="fig6")
def test_fig6_precision_variants_at_scale(benchmark):
    model = CholeskyPerformanceModel(SUMMIT)

    def sweep():
        return {
            variant: [model.estimate(n, NODES, variant) for n in SIZES]
            for variant in VARIANTS
        }

    results = benchmark(sweep)
    allocation = SUMMIT.subset(NODES)
    dp_peak = allocation.theoretical_peak_pflops("fp64")

    rows = []
    at_largest = {}
    for variant in VARIANTS:
        series = results[variant]
        at_largest[variant] = series[-1].pflops
        rows.append(
            [variant]
            + [f"{e.pflops:.1f}" for e in series]
        )
    print_table(
        f"Fig. 6 — Cholesky PFlop/s on {NODES} Summit nodes (sizes {SIZES[0]/1e6:.1f}M..{SIZES[-1]/1e6:.2f}M)",
        ["variant"] + [f"{n/1e6:.2f}M" for n in SIZES],
        rows,
    )

    summary = []
    for variant in VARIANTS:
        speedup = at_largest[variant] / at_largest["DP"]
        summary.append([variant, f"{at_largest[variant]:.1f}",
                        f"{speedup:.2f}", f"{PAPER[variant]:.1f}"])
    summary.append(["DP % of peak", f"{100 * at_largest['DP'] / dp_peak:.1f}%", "", "61.7%"])
    print_table(
        "Fig. 6 — speedups over DP at the largest size (paper values for comparison)",
        ["variant", "PFlop/s", "speedup vs DP", "paper"],
        summary,
    )

    # Shape assertions.
    assert at_largest["DP"] < at_largest["DP/SP"] < at_largest["DP/SP/HP"] < at_largest["DP/HP"]
    assert 0.40 < at_largest["DP"] / dp_peak < 0.75
    assert 1.5 < at_largest["DP/SP"] / at_largest["DP"] < 2.6
    assert 3.5 < at_largest["DP/HP"] / at_largest["DP"] < 7.0
    assert 150.0 < at_largest["DP/HP"] < 450.0  # paper: 304.84 PFlop/s
    # Performance improves with problem size for every variant.
    for variant in VARIANTS:
        values = [e.pflops for e in results[variant]]
        assert values == sorted(values)
