"""E12 — batched + plan-cached synthesis vs the per-run serial path.

The inverse-SHT synthesis loop is the hot path the emulator exists to make
cheap: one fitted artifact is replayed into arbitrarily many realizations,
and every realization pays ``O(L^3)`` synthesis per time slice.  This
benchmark measures what this PR's tentpole bought at ``lmax = 48``:

* **per-run serial (seed path)** — what the campaign runner used to do per
  run: build the transform plan in the worker (no cache) and synthesise
  each realization's coefficient stream through the literal per-degree
  Eq. (7) accumulation (kept as
  :meth:`SHTPlan.wigner_contraction_inverse_reference`);
* **batched + cached** — one :func:`repro.sht.plancache.get_plan` lookup
  (warm after the first build) and a single stacked
  :meth:`SHTPlan.inverse` call over all runs, which flattens the batch
  into per-order GEMMs and cache-blocked FFT passes.

The two paths must agree: every run draws its coefficients from its own
``SeedSequence``-spawned generator, and the batched output is asserted
bit-identical to synthesising each run's stream alone.  A second section
replays a real campaign (``run_campaign`` with and without ``batch_size``)
and checks bit-identical manifests.  A JSON summary line is printed so the
run log doubles as a machine-readable record.

Run as a script: ``PYTHONPATH=src python benchmarks/bench_batched_synthesis.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.sht.grid import Grid
from repro.sht.plancache import clear_plan_cache, get_plan, plan_cache_stats
from repro.sht.transform import SHTPlan

try:
    from benchmarks._report import emit_summary, soft_gate, write_report
except ImportError:  # run as a script with benchmarks/ as sys.path[0]
    from _report import emit_summary, soft_gate, write_report

LMAX = 48                 # acceptance criterion: >= 2x speedup at lmax >= 48
N_RUNS = 16               # realizations synthesised per round
N_TIMES = 24              # one model year of the benchmark calendar
SEED = 2024
TARGET_SPEEDUP = 2.0


def _check_speedup(speedup: float) -> None:
    """Enforce the speedup target via the shared soft gate.

    Correctness (bit-exactness) is always asserted; only the wall-clock
    ratio goes through ``REPRO_BENCH_SOFT``.
    """
    soft_gate(
        speedup >= TARGET_SPEEDUP,
        f"batched+cached synthesis only {speedup:.2f}x faster than the "
        f"per-run serial path (target {TARGET_SPEEDUP}x)",
    )


def _run_coefficients(lmax: int) -> np.ndarray:
    """Stacked per-run coefficient streams, one SeedSequence child per run."""
    k = lmax * lmax
    seeds = np.random.SeedSequence(SEED).spawn(N_RUNS)
    runs = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        runs.append(
            rng.standard_normal((N_TIMES, k)) + 1j * rng.standard_normal((N_TIMES, k))
        )
    return np.stack(runs)


def _serial_reference_seconds(grid: Grid, coeffs: np.ndarray) -> tuple[float, np.ndarray]:
    """The seed path: per-worker plan build + per-run reference synthesis."""
    t0 = time.perf_counter()
    plan = SHTPlan(lmax=LMAX, grid=grid)  # built in-worker, uncached
    fields = []
    for run in coeffs:
        c = plan.wigner_contraction_inverse_reference(run)
        fields.append(plan.synthesis_from_fourier(c))
    return time.perf_counter() - t0, np.stack(fields)


def _batched_cached_seconds(grid: Grid, coeffs: np.ndarray) -> tuple[float, np.ndarray]:
    """The new path: warm plan-cache lookup + one stacked inverse."""
    t0 = time.perf_counter()
    plan = get_plan("fast", LMAX, grid)
    fields = plan.inverse(coeffs)
    return time.perf_counter() - t0, fields


def run_benchmark() -> dict:
    """Execute both paths, verify bit-exactness and return the summary."""
    grid = Grid.for_bandlimit(LMAX)
    coeffs = _run_coefficients(LMAX)

    clear_plan_cache()
    t_warm0 = time.perf_counter()
    plan = get_plan("fast", LMAX, grid)          # first build: the one cache miss
    plan.inverse(coeffs[:2])                     # warm the synthesis operators
    warmup_seconds = time.perf_counter() - t_warm0

    t_serial, serial_fields = _serial_reference_seconds(grid, coeffs)
    t_batched, batched_fields = _batched_cached_seconds(grid, coeffs)

    # Correctness: the two contraction formulations agree to reassociation
    # error, and the batched stack is bit-identical to per-run synthesis of
    # the same seeded streams through the same (new) path.
    max_diff = float(np.max(np.abs(serial_fields - batched_fields)))
    assert max_diff < 1e-10, f"paths diverged: max |diff| = {max_diff}"
    bit_identical = all(
        np.array_equal(batched_fields[b], plan.inverse(coeffs[b]))
        for b in range(N_RUNS)
    )
    assert bit_identical, "batched synthesis is not bit-identical to per-run"

    speedup = t_serial / t_batched
    stats = plan_cache_stats()
    summary = {
        "benchmark": "batched_synthesis",
        "lmax": LMAX,
        "n_runs": N_RUNS,
        "n_times": N_TIMES,
        "serial_reference_seconds": round(t_serial, 4),
        "batched_cached_seconds": round(t_batched, 4),
        "speedup": round(speedup, 2),
        "warmup_seconds": round(warmup_seconds, 4),
        "bit_identical": bit_identical,
        "plan_cache": {"size": stats["size"], "hits": stats["hits"],
                       "misses": stats["misses"]},
    }
    return summary


def run_campaign_benchmark() -> dict:
    """End-to-end check: a real campaign, per-run vs batched, bit-identical."""
    import repro
    from repro.data import Era5LikeConfig, Era5LikeGenerator

    sims = Era5LikeGenerator(
        Era5LikeConfig(lmax=16, n_years=3, steps_per_year=24, n_ensemble=2,
                       forcing_growth=1.0),
        seed=7,
    ).generate()
    emulator = repro.fit(sims, lmax=16, var_order=1, tile_size=32,
                         n_harmonics=2, rho_grid=(0.3, 0.7))
    scenarios = ["ssp-low", "ssp-medium", "ssp-high", "overshoot"]

    t0 = time.perf_counter()
    serial = repro.run_campaign(emulator, scenarios, 4, n_times=96, seed=SEED)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = repro.run_campaign(emulator, scenarios, 4, n_times=96, seed=SEED,
                                 batch_size=4)
    t_batched = time.perf_counter() - t0

    identical = all(
        a.to_dict() == b.to_dict() and np.array_equal(a.collected, b.collected)
        for a, b in zip(serial.runs, batched.runs)
    )
    assert identical, "batched campaign is not bit-identical to per-run"
    return {
        "benchmark": "batched_campaign",
        "n_runs": serial.n_runs,
        "per_run_seconds": round(t_serial, 4),
        "batched_seconds": round(t_batched, 4),
        "speedup": round(t_serial / t_batched, 2),
        "bit_identical": identical,
    }


def test_batched_synthesis_speedup():
    """Pytest entry point mirroring the script run."""
    summary = run_benchmark()
    emit_summary(summary)
    assert summary["bit_identical"]
    _check_speedup(summary["speedup"])
    campaign = run_campaign_benchmark()
    emit_summary(campaign)
    assert campaign["bit_identical"]


if __name__ == "__main__":
    result = run_benchmark()
    emit_summary(result)
    _check_speedup(result["speedup"])
    campaign = run_campaign_benchmark()
    emit_summary(campaign)
    write_report("batched_synthesis", {"synthesis": result, "campaign": campaign})
