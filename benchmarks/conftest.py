"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section: it computes the same rows/series the paper reports
(via real small-scale execution where possible and the calibrated
performance model for machine-scale numbers), prints them so the run log
doubles as the reproduction record, and times a representative kernel with
``pytest-benchmark``.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimateEmulator, EmulatorConfig
from repro.data import Era5LikeConfig, Era5LikeGenerator


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned table to stdout (captured in the benchmark log)."""
    str_rows = [[f"{v:.4g}" if isinstance(v, float) else str(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in str_rows:
        print("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))


@pytest.fixture(scope="session")
def bench_rng() -> np.random.Generator:
    """Deterministic generator for the benchmark harness."""
    return np.random.default_rng(2024)


@pytest.fixture(scope="session")
def bench_simulations():
    """Training simulations shared by the science benchmarks (lmax=12)."""
    config = Era5LikeConfig(
        lmax=12, n_years=4, steps_per_year=24, n_ensemble=2,
        diurnal_amplitude_k=1.5, forcing_growth=1.0,
    )
    return Era5LikeGenerator(config, seed=7).generate()


@pytest.fixture(scope="session")
def bench_emulator(bench_simulations):
    """An emulator fitted on the shared benchmark simulations."""
    emulator = ClimateEmulator(
        EmulatorConfig(
            lmax=12, n_harmonics=2, var_order=2, tile_size=36,
            precision_variant="DP", rho_grid=(0.3, 0.7),
        )
    )
    emulator.fit(bench_simulations)
    return emulator


@pytest.fixture(scope="session")
def bench_covariance(bench_emulator) -> np.ndarray:
    """The fitted innovation covariance (144 x 144), used by solver benches."""
    return np.asarray(bench_emulator.spectral_model.covariance)
