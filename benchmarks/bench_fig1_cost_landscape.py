"""E1 — Figure 1: emulator-design cost landscape.

Regenerates the cost-versus-resolution landscape: the O(L^3 T + L^4)
axisymmetric and O(L^4 T + L^6) anisotropic cost curves, the catalogue of
existing emulators, the placement of this work (3.5 km, hourly), and the
245,280x spatio-temporal resolution factor quoted in the introduction.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.complexity import (
    EXISTING_EMULATORS,
    THIS_WORK,
    cost_landscape,
    design_cost,
    resolution_factor,
)


@pytest.mark.benchmark(group="fig1")
def test_fig1_cost_landscape(benchmark):
    resolutions = [500.0, 250.0, 100.0, 25.0, 10.0, 3.5]

    landscape = benchmark(cost_landscape, resolutions, 35.0, 8760.0)

    rows = [
        [f"{r:.1f}", int(l), f"{a:.3e}", f"{an:.3e}"]
        for r, l, a, an in zip(
            landscape["resolution_km"],
            landscape["bandlimit"],
            landscape["axisymmetric_flops"],
            landscape["anisotropic_flops"],
        )
    ]
    print_table(
        "Fig. 1 — design cost vs spatial resolution (35 years, hourly)",
        ["res (km)", "L", "axisymmetric flops", "anisotropic flops"],
        rows,
    )

    points = [
        [p.name, f"{p.spatial_resolution_km:.0f}", f"{p.temporal_points_per_year:.0f}",
         "axisym" if p.axisymmetric else "anisotropic", f"{p.cost():.2e}"]
        for p in EXISTING_EMULATORS + (THIS_WORK,)
    ]
    print_table(
        "Fig. 1 — published emulators vs this work",
        ["emulator", "res (km)", "time pts/yr", "class", "design cost (flops)"],
        points,
    )

    factors = resolution_factor()
    print_table(
        "Fig. 1 — resolution improvement over prior state of the art",
        ["spatial", "temporal", "combined (paper: 245,280)"],
        [[f"{factors['spatial_factor']:.1f}x", f"{factors['temporal_factor']:.0f}x",
          f"{factors['combined_factor']:.0f}x"]],
    )

    # Shape assertions: anisotropic always costs more, costs grow as the
    # resolution refines, and this work sits far beyond every prior design.
    assert np.all(landscape["anisotropic_flops"] > landscape["axisymmetric_flops"])
    assert np.all(np.diff(landscape["anisotropic_flops"]) > 0)
    assert THIS_WORK.cost() > 1e3 * max(p.cost() for p in EXISTING_EMULATORS)
    assert 200_000 < factors["combined_factor"] < 300_000


@pytest.mark.benchmark(group="fig1")
def test_fig1_cost_scaling_exponents(benchmark):
    """The fitted log-log slope of the cost curves matches L^6 / L^4 T."""
    bandlimits = np.array([45, 90, 180, 360, 720])

    def costs():
        return np.array([design_cost(l, 35 * 8760, axisymmetric=False) for l in bandlimits])

    values = benchmark(costs)
    slope = np.polyfit(np.log(bandlimits), np.log(values), 1)[0]
    print_table("Fig. 1 — anisotropic cost scaling exponent", ["fitted slope", "expected"],
                [[f"{slope:.2f}", "between 4 (T-dominated) and 6 (Cholesky-dominated)"]])
    assert 3.8 < slope < 6.2
