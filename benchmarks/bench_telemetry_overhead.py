"""E15 — telemetry overhead: the spans on the synthesis hot path are near-free.

The observability layer promises two things the test-suite and this
benchmark pin together:

* **bit-inert** — emitted arrays are bit-identical with tracing on, off,
  or toggled mid-run (hard-asserted here against a span-free
  re-composition of the same arithmetic);
* **near-free when disabled** — the instrumented batched synthesis path
  (the ``bench_batched_synthesis`` workload: a stacked
  runs x times coefficient batch through :meth:`SHTPlan.inverse`) costs
  at most ``MAX_DISABLED_OVERHEAD`` more than the identical arithmetic
  with no spans at all.

The baseline re-composes :meth:`SHTPlan.inverse` from the plan's own
un-instrumented pieces (Wigner contraction + blocked synthesis FFTs), so
the *only* difference between the timed paths is the telemetry layer:
span bookkeeping plus the always-on duration histograms.  Tracing
*enabled* (in-memory sink) is measured and reported too, but only the
disabled gate is enforced — enabled tracing buys trace records and is
allowed to cost more.

The wall-clock gate is soft-gated by ``REPRO_BENCH_SOFT=1`` for noisy
shared runners, like the other benchmark jobs.  Run as a script:
``PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py`` — this
also writes a ``BENCH_telemetry_overhead.json`` artifact (override the
location with ``REPRO_BENCH_OUT``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import tracing
from repro.sht import transform
from repro.sht.grid import Grid
from repro.sht.transform import SHTPlan

try:
    from benchmarks._report import emit_summary, soft_gate, write_report
except ImportError:  # run as a script with benchmarks/ as sys.path[0]
    from _report import emit_summary, soft_gate, write_report

LMAX = 48                 # the bench_batched_synthesis workload scale
N_RUNS = 16               # realizations in the stacked batch
N_TIMES = 24              # one model year of the benchmark calendar
SEED = 2024
ROUNDS = 7                # timing repeats; min-of-rounds is compared
MAX_DISABLED_OVERHEAD = 0.02


def _coefficients(plan: SHTPlan) -> np.ndarray:
    """A stacked ``(N_RUNS, N_TIMES, L**2)`` coefficient batch."""
    rng = np.random.default_rng(SEED)
    return plan.random_coefficients(rng, shape=(N_RUNS, N_TIMES))


def _baseline_inverse(plan: SHTPlan, coeffs: np.ndarray) -> np.ndarray:
    """The exact arithmetic of :meth:`SHTPlan.inverse`, with no telemetry.

    Mirrors the production method step for step (contraction, then
    blocked synthesis FFTs over ``_SYNTHESIS_BLOCK`` leading slices) so
    the output is bit-identical and the timed difference is spans alone.
    """
    c = plan.wigner_contraction_inverse(np.asarray(coeffs, dtype=np.complex128))
    lead = c.shape[:-2]
    n_flat = int(np.prod(lead)) if lead else 1
    if n_flat <= transform._SYNTHESIS_BLOCK:
        return plan.synthesis_from_fourier(c, real=True)
    flat = c.reshape((n_flat,) + c.shape[-2:])
    out = np.empty((n_flat,) + plan.grid.shape, dtype=np.float64)
    for start in range(0, n_flat, transform._SYNTHESIS_BLOCK):
        block = flat[start:start + transform._SYNTHESIS_BLOCK]
        out[start:start + transform._SYNTHESIS_BLOCK] = (
            plan.synthesis_from_fourier(block, real=True)
        )
    return out.reshape(lead + plan.grid.shape)


def _timed_once(func, *args) -> float:
    """Wall-clock of a single call."""
    t0 = time.perf_counter()
    func(*args)
    return time.perf_counter() - t0


def run_benchmark() -> dict:
    plan = SHTPlan(lmax=LMAX, grid=Grid.for_bandlimit(LMAX))
    coeffs = _coefficients(plan)

    # Bit-inertness first: baseline == instrumented, tracing off and on,
    # and across a mid-run toggle.
    reference = _baseline_inverse(plan, coeffs)
    assert np.array_equal(reference, plan.inverse(coeffs)), \
        "instrumented synthesis (tracing disabled) changed bits"
    with tracing():
        assert np.array_equal(reference, plan.inverse(coeffs)), \
            "instrumented synthesis (tracing enabled) changed bits"
    assert np.array_equal(reference, plan.inverse(coeffs)), \
        "instrumented synthesis after a tracing toggle changed bits"

    # The asserts above warmed every path.  Interleave the gated pair
    # round-robin (baseline, then disabled, each round) so clock drift
    # and cache state hit both variants equally; min-of-rounds compares.
    t_baseline = t_disabled = t_enabled = float("inf")
    for _ in range(ROUNDS):
        t_baseline = min(t_baseline, _timed_once(_baseline_inverse, plan, coeffs))
        t_disabled = min(t_disabled, _timed_once(plan.inverse, coeffs))
    with tracing():
        plan.inverse(coeffs)
        for _ in range(ROUNDS):
            t_enabled = min(t_enabled, _timed_once(plan.inverse, coeffs))

    disabled_overhead = t_disabled / t_baseline - 1.0
    enabled_overhead = t_enabled / t_baseline - 1.0
    return {
        "benchmark": "telemetry_overhead",
        "lmax": LMAX,
        "n_slices": N_RUNS * N_TIMES,
        "rounds": ROUNDS,
        "baseline_seconds": round(t_baseline, 6),
        "disabled_seconds": round(t_disabled, 6),
        "enabled_seconds": round(t_enabled, 6),
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "bit_inert": True,
    }


def _check_overhead(summary: dict) -> None:
    """Enforce the disabled-overhead bound via the shared soft gate."""
    soft_gate(
        summary["disabled_overhead"] <= MAX_DISABLED_OVERHEAD,
        f"telemetry-disabled synthesis is "
        f"{summary['disabled_overhead'] * 100:.2f}% slower than the "
        f"span-free baseline (bound {MAX_DISABLED_OVERHEAD * 100:.0f}%)",
    )


def test_telemetry_overhead():
    """Pytest entry point mirroring the script run."""
    summary = run_benchmark()
    emit_summary(summary)
    assert summary["bit_inert"]
    _check_overhead(summary)


if __name__ == "__main__":
    summary = run_benchmark()
    emit_summary(summary)
    write_report("telemetry_overhead", summary)
    _check_overhead(summary)
