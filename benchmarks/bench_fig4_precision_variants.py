"""E3 — Figure 4: emulations under DP, DP/SP and DP/HP covariance factors.

The paper shows that emulated fields remain statistically consistent with
the simulations when the covariance Cholesky runs in the mixed-precision
variants.  This benchmark factorises the *same* fitted covariance with each
variant, generates emulations from each factor, and reports both the factor
accuracy and the field-level consistency diagnostics.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core import ClimateEmulator, EmulatorConfig
from repro.linalg import MixedPrecisionCholesky
from repro.stats import consistency_report

VARIANTS = ("DP", "DP/SP", "DP/HP")


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("variant", VARIANTS)
def test_fig4_emulation_across_precision_variants(benchmark, variant, bench_simulations):
    emulator = ClimateEmulator(
        EmulatorConfig(
            lmax=12, n_harmonics=2, var_order=2, tile_size=36,
            precision_variant=variant, covariance_jitter=1e-5, rho_grid=(0.5,),
        )
    )
    benchmark.pedantic(emulator.fit, args=(bench_simulations,), iterations=1, rounds=1)

    emulations = emulator.emulate(n_realizations=2, rng=np.random.default_rng(3))
    report = consistency_report(bench_simulations, emulations, lmax=12)
    print_table(
        f"Fig. 4 — consistency of emulations with the {variant} factor",
        ["metric", "value"],
        [[k, f"{v:.4f}"] for k, v in report.as_dict().items()],
    )
    assert report.is_consistent(mean_tol_k=1.5, std_ratio_tol=0.3, ks_tol=0.2)


@pytest.mark.benchmark(group="fig4")
def test_fig4_factor_accuracy_vs_variant(benchmark, bench_covariance):
    """Factor error against the DP reference grows DP < DP/SP < DP/HP."""
    reference = MixedPrecisionCholesky(tile_size=36, variant="DP", jitter=1e-5).factorize(
        bench_covariance
    )

    def factor_all():
        return {
            v: MixedPrecisionCholesky(tile_size=36, variant=v, jitter=1e-5).factorize(
                bench_covariance
            )
            for v in VARIANTS
        }

    results = benchmark(factor_all)
    rows = []
    errors = {}
    for variant, result in results.items():
        err = result.factor_error(reference.lower())
        recon = result.relative_error(bench_covariance)
        errors[variant] = err
        rows.append([variant, f"{err:.3e}", f"{recon:.3e}",
                     f"{result.storage_bytes / result.dense_bytes:.3f}"])
    print_table(
        "Fig. 4 — factor accuracy and storage vs precision variant",
        ["variant", "factor err vs DP", "||LL^T-U||/||U||", "tiled bytes / dense bytes"],
        rows,
    )
    assert errors["DP"] < 1e-12
    assert errors["DP"] < errors["DP/SP"] < errors["DP/HP"] < 0.1
