"""E13 — on-demand serving: cold vs hot latency, concurrent throughput.

The serving subsystem exists so that "serve heavy traffic from millions
of users" does not mean "re-synthesize every field on every request".
This benchmark measures what the chunk tiers buy on a real fitted
emulator at ``lmax = 16``:

* **cold** — a fresh :class:`~repro.serving.service.EmulationService`
  answering a multi-year request by synthesis (plan cache warm, so this
  isolates serving, not plan construction);
* **hot** — the same request answered from the in-memory chunk cache;
* **concurrent identical** — many threads issuing one cold request
  simultaneously: single-flight locking must synthesize **exactly
  once** (asserted via ``service.stats()``);
* **throughput** — many threads hammering mixed cached requests.

Bit-exactness is a hard gate in every mode: served fields are asserted
identical to direct :meth:`ClimateEmulator.emulate` output (single-year
and nugget-free requests) and to the canonical year-chunked
``emulate_stream`` (general requests).  The timing gate (``>= 5x`` hot
over cold) is soft-gated by ``REPRO_BENCH_SOFT=1`` for noisy shared
runners, like the other benchmark jobs.

Run as a script: ``PYTHONPATH=src python benchmarks/bench_serving.py``
— this also writes a ``BENCH_serving.json`` summary artifact (override
the location with ``REPRO_BENCH_OUT``).
"""

from __future__ import annotations

import threading
import time

import numpy as np

import repro
from repro.data import Era5LikeConfig, Era5LikeGenerator

try:
    from benchmarks._report import emit_summary, soft_gate, write_report
except ImportError:  # run as a script with benchmarks/ as sys.path[0]
    from _report import emit_summary, soft_gate, write_report

LMAX = 16
SPY = 24                  # steps per model year of the benchmark calendar
N_YEARS = 4               # years per benchmark request
SEED = 2024
TARGET_SPEEDUP = 5.0      # acceptance: hot path >= 5x over cold
N_CONCURRENT = 8
N_THROUGHPUT_THREADS = 8
N_THROUGHPUT_REQUESTS = 200


def _check_speedup(speedup: float) -> None:
    """Enforce the hot-vs-cold target via the shared soft gate.

    Bit-exactness always asserts; only the wall-clock ratio goes
    through ``REPRO_BENCH_SOFT``.
    """
    soft_gate(
        speedup >= TARGET_SPEEDUP,
        f"hot (cached) serving only {speedup:.2f}x faster than cold "
        f"synthesis (target {TARGET_SPEEDUP}x)",
    )


def _fit_emulator():
    sims = Era5LikeGenerator(
        Era5LikeConfig(lmax=LMAX, n_years=3, steps_per_year=SPY, n_ensemble=2,
                       forcing_growth=1.0),
        seed=7,
    ).generate()
    return repro.fit(sims, lmax=LMAX, var_order=1, tile_size=32,
                     n_harmonics=2, rho_grid=(0.3, 0.7))


def _canonical(emulator, scenario, realization, n_years, include_nugget=True):
    """Reference bits: the canonical year-chunked stream."""
    rng = np.random.default_rng(
        np.random.SeedSequence(0, spawn_key=(realization,))
    )
    chunks = emulator.emulate_stream(
        n_realizations=1, n_times=n_years * SPY, annual_forcing=scenario,
        rng=rng, chunk_size=SPY, include_nugget=include_nugget,
    )
    return np.concatenate([c.data for c in chunks], axis=1)[0]


def run_latency_benchmark(emulator) -> dict:
    """Cold vs hot request latency, with the bit-exactness hard gates."""
    request = repro.FieldRequest("ssp-high", realization=0, year_start=0,
                                 year_stop=N_YEARS)
    # Warm the SHT plan cache so "cold" isolates serving, not plan builds.
    repro.get_plan(emulator.config.sht_method, LMAX,
                   emulator.training_summary.grid)

    service = repro.serve(emulator, seed=0)
    t0 = time.perf_counter()
    cold = service.get(request)
    cold_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    hot = service.get(request)
    hot_seconds = time.perf_counter() - t0

    # Hard gates: cold == hot == canonical stream; direct-emulate
    # equality for the request shapes that pin it exactly.
    reference = _canonical(emulator, "ssp-high", 0, N_YEARS)
    assert np.array_equal(cold, reference), "cold path diverged from stream"
    assert np.array_equal(hot, reference), "hot path diverged from cold"

    single = repro.FieldRequest("ssp-high", realization=1)
    rng = np.random.default_rng(np.random.SeedSequence(0, spawn_key=(1,)))
    direct = emulator.emulate(1, n_times=SPY, annual_forcing="ssp-high", rng=rng)
    assert np.array_equal(service.get(single), direct.data[0]), (
        "single-year request diverged from direct emulate"
    )

    nugget_free = repro.FieldRequest("ssp-high", realization=2, year_start=0,
                                     year_stop=N_YEARS, include_nugget=False)
    rng = np.random.default_rng(np.random.SeedSequence(0, spawn_key=(2,)))
    direct = emulator.emulate(1, n_times=N_YEARS * SPY, annual_forcing="ssp-high",
                              rng=rng, include_nugget=False)
    assert np.array_equal(service.get(nugget_free), direct.data[0]), (
        "nugget-free request diverged from direct emulate"
    )

    speedup = cold_seconds / hot_seconds if hot_seconds else float("inf")
    return {
        "benchmark": "serving_latency",
        "lmax": LMAX,
        "n_years": N_YEARS,
        "steps_per_year": SPY,
        "cold_seconds": round(cold_seconds, 5),
        "hot_seconds": round(hot_seconds, 5),
        "speedup": round(speedup, 2),
        "bit_identical": True,
        "served_bytes_per_request": int(reference.nbytes),
    }


def run_concurrency_benchmark(emulator) -> dict:
    """N threads, one identical cold request: synthesized exactly once."""
    service = repro.serve(emulator, seed=0)
    request = repro.FieldRequest("ssp-low", realization=0, year_start=0,
                                 year_stop=N_YEARS)
    barrier = threading.Barrier(N_CONCURRENT)
    outputs: list = [None] * N_CONCURRENT

    def worker(i: int) -> None:
        barrier.wait()
        outputs[i] = service.get(request)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(N_CONCURRENT)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    stats = service.stats()
    flights = stats["synthesis"]["flights"]
    assert flights == 1, (
        f"{N_CONCURRENT} concurrent identical requests ran {flights} "
        f"synthesis flights; single-flight requires exactly 1"
    )
    assert stats["synthesis"]["chunks"] == N_YEARS
    reference = _canonical(emulator, "ssp-low", 0, N_YEARS)
    assert all(np.array_equal(o, reference) for o in outputs), (
        "concurrent outputs diverged"
    )
    return {
        "benchmark": "serving_concurrent_identical",
        "n_threads": N_CONCURRENT,
        "synthesis_flights": flights,
        "synthesized_chunks": stats["synthesis"]["chunks"],
        "wall_seconds": round(wall, 5),
        "bit_identical": True,
    }


def run_throughput_benchmark(emulator) -> dict:
    """Threads hammering mixed (mostly cached) requests: requests/second."""
    service = repro.serve(emulator, seed=0)
    scenarios = ["ssp-low", "ssp-medium", "ssp-high"]
    requests = [
        repro.FieldRequest(scenario, realization=r, year_start=start,
                           year_stop=start + 1)
        for scenario in scenarios
        for r in range(2)
        for start in range(N_YEARS)
    ]
    for request in requests:   # warm every chunk once
        service.get(request)

    counter = {"served": 0}
    lock = threading.Lock()
    barrier = threading.Barrier(N_THROUGHPUT_THREADS)

    def worker(thread_index: int) -> None:
        local_rng = np.random.default_rng(thread_index)
        order = local_rng.permutation(len(requests))
        barrier.wait()
        served = 0
        for k in range(N_THROUGHPUT_REQUESTS // N_THROUGHPUT_THREADS):
            request = requests[order[k % len(order)]]
            service.get(request)
            served += 1
        with lock:
            counter["served"] += served

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(N_THROUGHPUT_THREADS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    stats = service.stats()
    return {
        "benchmark": "serving_throughput",
        "n_threads": N_THROUGHPUT_THREADS,
        "requests_served": counter["served"],
        "wall_seconds": round(wall, 5),
        "requests_per_second": round(counter["served"] / wall, 1),
        "request_hits": stats["request_hits"],
        "chunk_cache_bytes": stats["chunk_cache"]["bytes"],
    }


def run_all() -> dict:
    emulator = _fit_emulator()
    latency = run_latency_benchmark(emulator)
    concurrent = run_concurrency_benchmark(emulator)
    throughput = run_throughput_benchmark(emulator)
    return {
        "suite": "serving",
        "latency": latency,
        "concurrent_identical": concurrent,
        "throughput": throughput,
    }


def test_serving_benchmark():
    """Pytest entry point mirroring the script run."""
    summary = run_all()
    emit_summary(summary)
    assert summary["latency"]["bit_identical"]
    assert summary["concurrent_identical"]["synthesis_flights"] == 1
    _check_speedup(summary["latency"]["speedup"])


if __name__ == "__main__":
    summary = run_all()
    emit_summary(summary)
    write_report("serving", summary)
    _check_speedup(summary["latency"]["speedup"])
