"""Shared reporting helpers for the benchmark harness.

Every benchmark used to carry its own copy of three idioms: the
``REPRO_BENCH_SOFT`` timing-gate downgrade, the greppable
``JSON summary:`` line, and the ``BENCH_<name>.json`` artifact write.
They live here once, and the artifact is schema-versioned so CI
consumers can evolve without guessing: each report carries ``schema``,
``benchmark``, ``repro_version``, a ``git`` stamp (SHA + branch) and
UTC ``timestamp`` (the commit axis ``tools/benchwatch.py`` trajectories
are gated against), the benchmark's own ``summary`` dict, and a
:func:`repro.obs.metrics_snapshot` of the process-wide registry — so a
fit benchmark's report shows its plan-cache hit counts and SHT duration
histograms alongside the headline numbers.

The artifact path defaults to ``BENCH_<name>.json`` in the working
directory; ``REPRO_BENCH_OUT`` overrides it (CI uses this to land every
artifact in one upload directory).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone

from repro import __version__
from repro.obs import metrics_snapshot

#: Bump when the report layout changes shape (not when fields are added).
#: v2 added the ``git`` block and ``timestamp`` — the commit axis
#: ``tools/benchwatch.py`` trajectories are plotted and gated against.
#: Readers stay tolerant of v1 reports (both fields absent).
SCHEMA_VERSION = 2


def _git(*args: str) -> "str | None":
    """One git query against this repo, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    result = out.stdout.strip()
    return result if out.returncode == 0 and result else None


def git_stamp() -> dict:
    """The report's commit axis: ``{"sha", "branch"}`` (``None`` outside git)."""
    return {
        "sha": _git("rev-parse", "HEAD"),
        "branch": _git("rev-parse", "--abbrev-ref", "HEAD"),
    }


def soft_gate(condition: bool, message: str) -> None:
    """Assert a timing gate, unless soft mode downgrades it to a warning.

    Correctness assertions in benchmarks never go through here — only
    wall-clock gates, which are inherently noisy on shared CI runners.
    ``REPRO_BENCH_SOFT=1`` turns a miss into a loud warning while
    local/dedicated runs keep the hard gate.
    """
    if condition:
        return
    if os.environ.get("REPRO_BENCH_SOFT"):
        print(f"WARNING: {message} [REPRO_BENCH_SOFT set; not failing]")
        return
    raise AssertionError(message)


def emit_summary(summary: dict) -> None:
    """Print the one-line greppable ``JSON summary:`` record."""
    print(f"\nJSON summary: {json.dumps(summary, sort_keys=True)}")


def write_report(name: str, summary: dict) -> str:
    """Write the schema-versioned ``BENCH_<name>.json`` artifact.

    Returns the path written (``REPRO_BENCH_OUT`` overrides the
    default ``BENCH_<name>.json``).
    """
    report = {
        "schema": SCHEMA_VERSION,
        "benchmark": name,
        "repro_version": __version__,
        "python_version": platform.python_version(),
        "git": git_stamp(),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "summary": summary,
        "metrics": metrics_snapshot(),
    }
    out_path = os.environ.get("REPRO_BENCH_OUT", f"BENCH_{name}.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"wrote {out_path}")
    return out_path
