"""Autotuned vs default campaign execution: bit-identical, not slower.

``run_campaign(..., tune="auto")`` plans its execution knobs
(``executor``, ``max_workers``, ``batch_size``) from the measured
:class:`~repro.tuning.MachineProfile` and the campaign's
``T_compute + T_comm + T_latency`` cost model.  Every knob the planner
is allowed to move is bit-inert, so the contract this benchmark defends
has two halves:

* **Hard gate** — the tuned campaign's run records and collected outputs
  are bit-identical to the default campaign's, on a 64-run campaign
  (4 scenarios x 16 realizations).
* **Soft gate** — the tuned campaign is at least as fast as the default
  one (``speedup >= 1.0``).  Wall-clock ratios are inherently noisy on
  shared runners, so ``REPRO_BENCH_SOFT=1`` downgrades a miss to a loud
  warning; bit-exactness always asserts.

The tuned run's chosen plan and its predicted-vs-actual seconds land in
the JSON summary, so a regression report shows *what* the planner picked,
not just that it got slower.

Run as a script: ``PYTHONPATH=src python benchmarks/bench_autotune.py``.
"""

import time

import numpy as np

try:
    from benchmarks._report import emit_summary, soft_gate, write_report
except ImportError:  # run as a script with benchmarks/ as sys.path[0]
    from _report import emit_summary, soft_gate, write_report

SCENARIOS = ["ssp-low", "ssp-medium", "ssp-high", "overshoot"]
N_REALIZATIONS = 16       # 4 scenarios x 16 realizations = 64 runs
N_TIMES = 48
SEED = 2024
TARGET_SPEEDUP = 1.0      # tuned must not be slower than the default


def _check_speedup(speedup: float) -> None:
    soft_gate(
        speedup >= TARGET_SPEEDUP,
        f"tuned campaign only {speedup:.2f}x the default execution "
        f"(target >= {TARGET_SPEEDUP}x)",
    )


def _fit_emulator():
    import repro
    from repro.data import Era5LikeConfig, Era5LikeGenerator

    sims = Era5LikeGenerator(
        Era5LikeConfig(lmax=16, n_years=3, steps_per_year=24, n_ensemble=2),
        seed=7,
    ).generate()
    return repro.fit(sims, lmax=16, var_order=1, tile_size=32, n_harmonics=2)


def run_benchmark() -> dict:
    import repro
    from repro.tuning import load_or_calibrate

    emulator = _fit_emulator()

    # Warm both fixed costs outside the timed region: the SHT plan cache
    # (first campaign pays plan construction for everyone after it) and
    # the machine profile (the first tune="auto" on a host pays one-off
    # micro-calibration, then reads the cache).
    load_or_calibrate(None)
    repro.run_campaign(emulator, SCENARIOS[:1], 1, n_times=N_TIMES, seed=SEED)

    t0 = time.perf_counter()
    default = repro.run_campaign(
        emulator, SCENARIOS, N_REALIZATIONS, n_times=N_TIMES, seed=SEED
    )
    t_default = time.perf_counter() - t0

    t0 = time.perf_counter()
    tuned = repro.run_campaign(
        emulator, SCENARIOS, N_REALIZATIONS, n_times=N_TIMES, seed=SEED,
        tune="auto",
    )
    t_tuned = time.perf_counter() - t0

    # Hard gate: tuning may only move bit-inert knobs, so every run
    # record and every collected array must match the default campaign
    # bit for bit.
    identical = len(tuned.runs) == len(default.runs) and all(
        a.to_dict() == b.to_dict() and np.array_equal(a.collected, b.collected)
        for a, b in zip(default.runs, tuned.runs)
    )

    plan = dict(tuned.tuning or {})
    return {
        "campaign": {
            "n_runs": len(tuned.runs),
            "default_seconds": t_default,
            "tuned_seconds": t_tuned,
            "speedup": t_default / t_tuned,
        },
        "plan": plan,
        "bit_identical": identical,
    }


def test_autotuned_campaign():
    """Pytest entry point mirroring the script run."""
    summary = run_benchmark()
    emit_summary(summary)
    assert summary["bit_identical"]
    assert summary["campaign"]["n_runs"] >= 64
    _check_speedup(summary["campaign"]["speedup"])


if __name__ == "__main__":
    summary = run_benchmark()
    emit_summary(summary)
    assert summary["bit_identical"], "tuned campaign diverged from default"
    assert summary["campaign"]["n_runs"] >= 64
    _check_speedup(summary["campaign"]["speedup"])
    write_report("autotune", summary)
