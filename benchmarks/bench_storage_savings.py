"""E10 — storage savings: the "saving petabytes" arithmetic.

Regenerates the introduction's storage narrative: CMIP-class archive sizes,
the cost of kilometre-scale output, the footprint of the fitted emulator
parameters, and the resulting savings in petabytes and dollars per year at
NCAR's $45/TB/year rate.
"""

import pytest

from benchmarks.conftest import print_table
from repro.sht.grid import Grid
from repro.storage import (
    CMIP6_ARCHIVE,
    StorageScenario,
    format_bytes,
    savings_report,
)

SCENARIOS = [
    # (name, grid, years, steps/yr, members, variables, lmax, full covariance)
    ("ERA5 hourly single-field (paper training set)", Grid.era5(), 35, 8760, 1, 1, 720, True),
    ("10-member hourly ensemble at 25 km", Grid.era5(), 35, 8760, 10, 1, 720, True),
    ("CMIP-style archive (10 members x 100 fields)", Grid.era5(), 35, 8760, 10, 100, 720, True),
    ("100-member km-scale hourly ensemble", Grid.from_resolution(0.034), 10, 8760, 100, 1, 5219, False),
]


@pytest.mark.benchmark(group="storage")
def test_storage_savings_report(benchmark):
    def build():
        reports = []
        for name, grid, years, steps, members, variables, lmax, full in SCENARIOS:
            scenario = StorageScenario(
                name=name, grid=grid, n_years=years, steps_per_year=steps,
                n_ensemble=members, n_variables=variables,
            )
            reports.append(savings_report(scenario, lmax=lmax, store_full_covariance=full))
        return reports

    reports = benchmark(build)

    rows = [
        [r["scenario"], format_bytes(r["raw_bytes"]), format_bytes(r["emulator_bytes"]),
         f"{r['compression_factor']:.0f}x", f"{r['saved_petabytes']:.3f}",
         f"{r['annual_savings_usd']:.0f}"]
        for r in reports
    ]
    print_table(
        "E10 — raw archive vs emulator parameters ($45/TB/year)",
        ["scenario", "raw", "emulator", "compression", "PB saved", "$/year saved"],
        rows,
    )

    context = [[k, format_bytes(v)] for k, v in CMIP6_ARCHIVE.items()]
    print_table("E10 — context figures quoted in the paper", ["item", "size"], context)

    by_name = {r["scenario"]: r for r in reports}
    assert by_name["CMIP-style archive (10 members x 100 fields)"]["saved_petabytes"] > 1.0
    assert by_name["100-member km-scale hourly ensemble"]["saved_petabytes"] > 1.0
    assert by_name["100-member km-scale hourly ensemble"]["compression_factor"] > 1000.0
    # Every scenario saves storage and therefore money.
    assert all(r["annual_savings_usd"] > 0 for r in reports)


@pytest.mark.benchmark(group="storage")
def test_fitted_emulator_storage_summary(benchmark, bench_emulator):
    """The fitted (small) emulator reports the same accounting on real objects."""
    summary = benchmark(bench_emulator.storage_summary)
    print_table(
        "E10 — fitted benchmark emulator (L=12, 2 members, 4 years)",
        ["raw (f32)", "parameters", "compression"],
        [[format_bytes(summary["raw_bytes_float32"]),
          format_bytes(summary["parameter_bytes"]),
          f"{summary['compression_factor']:.2f}x"]],
    )
    assert summary["compression_factor"] > 1.0
