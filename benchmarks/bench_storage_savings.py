"""E10 — storage savings: the "saving petabytes" arithmetic.

Regenerates the introduction's storage narrative: CMIP-class archive sizes,
the cost of kilometre-scale output, the footprint of the fitted emulator
parameters, and the resulting savings in petabytes and dollars per year at
NCAR's $45/TB/year rate.
"""

import os
import tempfile

import numpy as np

try:
    import pytest
    from benchmarks.conftest import print_table
except ImportError:
    # Script mode (CI runs `python benchmarks/bench_storage_savings.py`
    # without pytest installed): shim the mark decorator and the table
    # printer so the module imports; only __main__ runs in that mode.
    class _MarkShim:
        @staticmethod
        def benchmark(**_kwargs):
            return lambda func: func

    class _PytestShim:
        mark = _MarkShim()

    pytest = _PytestShim()

    def print_table(title, headers, rows):
        print(f"\n=== {title} ===")
        print("  ".join(str(h) for h in headers))
        for row in rows:
            print("  ".join(str(v) for v in row))
from repro.scenarios.campaign import run_campaign
from repro.serving.request import FieldRequest
from repro.serving.service import EmulationService
from repro.sht.grid import Grid
from repro.storage import (
    CMIP6_ARCHIVE,
    ChunkStore,
    StorageScenario,
    cross_tier_storage_report,
    format_bytes,
    savings_report,
)

try:
    from benchmarks._report import emit_summary, write_report
except ImportError:  # run as a script with benchmarks/ as sys.path[0]
    from _report import emit_summary, write_report

SCENARIOS = [
    # (name, grid, years, steps/yr, members, variables, lmax, full covariance)
    ("ERA5 hourly single-field (paper training set)", Grid.era5(), 35, 8760, 1, 1, 720, True),
    ("10-member hourly ensemble at 25 km", Grid.era5(), 35, 8760, 10, 1, 720, True),
    ("CMIP-style archive (10 members x 100 fields)", Grid.era5(), 35, 8760, 10, 100, 720, True),
    ("100-member km-scale hourly ensemble", Grid.from_resolution(0.034), 10, 8760, 100, 1, 5219, False),
]


@pytest.mark.benchmark(group="storage")
def test_storage_savings_report(benchmark):
    def build():
        reports = []
        for name, grid, years, steps, members, variables, lmax, full in SCENARIOS:
            scenario = StorageScenario(
                name=name, grid=grid, n_years=years, steps_per_year=steps,
                n_ensemble=members, n_variables=variables,
            )
            reports.append(savings_report(scenario, lmax=lmax, store_full_covariance=full))
        return reports

    reports = benchmark(build)

    rows = [
        [r["scenario"], format_bytes(r["raw_bytes"]), format_bytes(r["emulator_bytes"]),
         f"{r['compression_factor']:.0f}x", f"{r['saved_petabytes']:.3f}",
         f"{r['annual_savings_usd']:.0f}"]
        for r in reports
    ]
    print_table(
        "E10 — raw archive vs emulator parameters ($45/TB/year)",
        ["scenario", "raw", "emulator", "compression", "PB saved", "$/year saved"],
        rows,
    )

    context = [[k, format_bytes(v)] for k, v in CMIP6_ARCHIVE.items()]
    print_table("E10 — context figures quoted in the paper", ["item", "size"], context)

    by_name = {r["scenario"]: r for r in reports}
    assert by_name["CMIP-style archive (10 members x 100 fields)"]["saved_petabytes"] > 1.0
    assert by_name["100-member km-scale hourly ensemble"]["saved_petabytes"] > 1.0
    assert by_name["100-member km-scale hourly ensemble"]["compression_factor"] > 1000.0
    # Every scenario saves storage and therefore money.
    assert all(r["annual_savings_usd"] > 0 for r in reports)


def run_cross_tier_benchmark(emulator, root) -> dict:
    """E10b — one store root, both tiers: campaign pre-warms serving.

    A store-backed campaign lands its chunks under serving addresses,
    an ``EmulationService`` over the same root serves them back with
    zero synthesis, and the cross-tier report measures the combined
    artifact-to-output boost.
    """
    scenarios = ["ssp-low", "ssp-high"]
    n_realizations, n_years, spy, seed = 2, 2, 24, 7

    manifest = run_campaign(
        emulator, scenarios, n_realizations,
        n_times=n_years * spy, seed=seed, store=root, collect="none",
    )
    service = EmulationService(emulator, seed=seed, store=ChunkStore(root))
    for scenario in scenarios:
        for realization in range(n_realizations):
            field = service.get(FieldRequest(
                scenario, realization=realization,
                year_start=0, year_stop=n_years,
            ))
            assert np.isfinite(field).all()
    report = cross_tier_storage_report(manifest, service)

    print_table(
        "E10b — cross-tier boost (campaign store pre-warms serving)",
        ["artifact", "campaign out", "served", "store shards",
         "boost", "prewarmed"],
        [[format_bytes(report["artifact_bytes"]),
          format_bytes(report["campaign_output_bytes"]),
          format_bytes(report["served_bytes"]),
          format_bytes(report["store_encoded_bytes"]),
          f"{report['cross_tier_boost_factor']:.1f}x",
          f"{report['prewarmed_fraction']:.2f}"]],
    )

    # The whole point: the campaign pre-warmed every chunk, so serving
    # synthesized nothing and the store stayed bit-lossless.
    assert report["synthesized_chunks"] == 0
    assert report["prewarmed_fraction"] == 1.0
    assert report["store_lossless"] and report["store_max_abs_error"] == 0.0
    assert report["cross_tier_boost_factor"] > 1.0

    return {
        "scenarios": scenarios,
        "n_realizations": n_realizations,
        "n_years": n_years,
        "cross_tier": report,
    }


@pytest.mark.benchmark(group="storage")
def test_cross_tier_boost_factor(benchmark, bench_emulator, tmp_path):
    """Pytest entry: the cross-tier flow against a fresh root each round."""
    roots = iter(range(10_000))

    def flow():
        return run_cross_tier_benchmark(
            bench_emulator, tmp_path / f"store-{next(roots)}"
        )

    summary = benchmark.pedantic(flow, rounds=1, iterations=1)
    emit_summary(summary)
    write_report("storage", summary)


@pytest.mark.benchmark(group="storage")
def test_fitted_emulator_storage_summary(benchmark, bench_emulator):
    """The fitted (small) emulator reports the same accounting on real objects."""
    summary = benchmark(bench_emulator.storage_summary)
    print_table(
        "E10 — fitted benchmark emulator (L=12, 2 members, 4 years)",
        ["raw (f32)", "parameters", "compression"],
        [[format_bytes(summary["raw_bytes_float32"]),
          format_bytes(summary["parameter_bytes"]),
          f"{summary['compression_factor']:.2f}x"]],
    )
    assert summary["compression_factor"] > 1.0


def _fit_script_emulator():
    """The same small fitted emulator the session fixtures use."""
    from repro.core import ClimateEmulator, EmulatorConfig
    from repro.data import Era5LikeConfig, Era5LikeGenerator

    sims = Era5LikeGenerator(
        Era5LikeConfig(lmax=12, n_years=4, steps_per_year=24, n_ensemble=2,
                       diurnal_amplitude_k=1.5, forcing_growth=1.0),
        seed=7,
    ).generate()
    emulator = ClimateEmulator(EmulatorConfig(
        lmax=12, n_harmonics=2, var_order=2, tile_size=36,
        precision_variant="DP", rho_grid=(0.3, 0.7),
    ))
    emulator.fit(sims)
    return emulator


if __name__ == "__main__":
    emulator = _fit_script_emulator()
    with tempfile.TemporaryDirectory() as scratch:
        summary = run_cross_tier_benchmark(
            emulator, os.path.join(scratch, "store")
        )
    emit_summary(summary)
    write_report("storage", summary)
