"""E9 — real mixed-precision Cholesky execution (accuracy and throughput).

Unlike the machine-scale figures (which use the calibrated performance
model), this benchmark runs the tile Cholesky *for real* through the local
runtime executor on the fitted covariance, measuring wall-clock time,
per-variant accuracy, storage, task counts and DAG parallelism — the
quantities that do not need a supercomputer to verify.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.linalg import MixedPrecisionCholesky, TiledSymmetricMatrix, generate_cholesky_tasks
from repro.linalg.flops import cholesky_flops
from repro.linalg.policies import VARIANTS
from repro.runtime import build_task_graph


@pytest.mark.benchmark(group="cholesky-real")
@pytest.mark.parametrize("variant", VARIANTS)
def test_real_mixed_precision_cholesky(benchmark, variant, bench_covariance):
    solver = MixedPrecisionCholesky(tile_size=36, variant=variant, jitter=1e-6)

    result = benchmark(solver.factorize, bench_covariance)

    rows = [[
        variant,
        result.n_tasks,
        f"{result.relative_error(bench_covariance):.2e}",
        f"{result.storage_bytes}",
        f"{result.conversions}",
    ]]
    print_table(
        "E9 — executed tile Cholesky on the fitted covariance (144 x 144)",
        ["variant", "tasks", "||LL^T-U||/||U||", "tiled bytes", "conversions"],
        rows,
    )
    # The DP bound reflects the 1e-6 diagonal jitter applied inside POTRF,
    # not the factorisation accuracy itself.
    tolerance = {"DP": 1e-5, "DP/SP": 1e-4, "DP/SP/HP": 5e-2, "DP/HP": 5e-2}[variant]
    assert result.relative_error(bench_covariance) < tolerance


@pytest.mark.benchmark(group="cholesky-real")
def test_cholesky_dag_structure(benchmark, bench_covariance):
    """DAG statistics: counts, flops, critical path and average parallelism."""
    tiled = TiledSymmetricMatrix.from_dense(bench_covariance, 18, "DP/HP")
    tasks = generate_cholesky_tasks(tiled)

    graph = benchmark(build_task_graph, tasks)

    span, _ = graph.critical_path()
    rows = [[
        graph.n_tasks,
        graph.n_edges,
        f"{graph.total_flops():.3e}",
        f"{cholesky_flops(bench_covariance.shape[0]):.3e}",
        f"{graph.average_parallelism():.1f}",
        graph.max_parallelism(),
    ]]
    print_table(
        "E9 — Cholesky DAG structure (tile size 18, 8x8 tiles)",
        ["tasks", "edges", "task flops", "n^3/3", "avg parallelism", "max width"],
        rows,
    )
    assert graph.total_flops() == pytest.approx(cholesky_flops(bench_covariance.shape[0]), rel=0.15)
    assert graph.average_parallelism() > 2.0


@pytest.mark.benchmark(group="cholesky-real")
def test_dense_reference_throughput(benchmark, bench_covariance):
    """Baseline: LAPACK dense Cholesky of the same covariance (for context)."""
    from repro.linalg import dense_cholesky

    lower = benchmark(dense_cholesky, bench_covariance)
    n = bench_covariance.shape[0]
    assert np.allclose(lower @ lower.T, bench_covariance, atol=1e-8 * n)
