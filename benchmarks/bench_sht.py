"""E11 — spherical harmonic transform cost and accuracy scaling.

Section III-A.2 gives the transform a per-time-slice cost of O(L^3) after
an O(L^2 log L) FFT stage, fully parallel across time slices.  This
benchmark measures the forward/inverse wall-clock scaling in L, the
round-trip accuracy, and the batched (many-time-slice) throughput that the
emulator fit relies on.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.sht import Grid, SHTPlan


@pytest.mark.benchmark(group="sht")
@pytest.mark.parametrize("lmax", [8, 16, 32])
def test_sht_roundtrip_scaling(benchmark, lmax, bench_rng):
    plan = SHTPlan(lmax=lmax, grid=Grid.for_bandlimit(lmax))
    coeffs = plan.random_coefficients(bench_rng)
    field = plan.inverse(coeffs)

    recovered = benchmark(plan.forward, field)

    err = float(np.max(np.abs(recovered - coeffs)))
    print_table(
        f"E11 — forward SHT at L={lmax}",
        ["L", "coefficients", "grid", "roundtrip max err"],
        [[lmax, plan.n_coeffs, f"{plan.grid.ntheta}x{plan.grid.nphi}", f"{err:.2e}"]],
    )
    assert err < 1e-9


@pytest.mark.benchmark(group="sht")
def test_sht_batched_throughput(benchmark, bench_rng):
    """Many time slices are transformed in one vectorised call."""
    lmax, n_times = 16, 64
    plan = SHTPlan(lmax=lmax, grid=Grid.for_bandlimit(lmax))
    coeffs = plan.random_coefficients(bench_rng, shape=(n_times,))
    fields = plan.inverse(coeffs)

    recovered = benchmark(plan.forward, fields)

    assert recovered.shape == (n_times, plan.n_coeffs)
    assert np.max(np.abs(recovered - coeffs)) < 1e-9


@pytest.mark.benchmark(group="sht")
def test_sht_cost_growth_with_bandlimit(benchmark):
    """Wall-clock grows super-linearly but sub-O(L^4) across band-limits."""
    timings = {}

    def measure():
        rng = np.random.default_rng(0)
        for lmax in (8, 16, 32):
            plan = SHTPlan(lmax=lmax, grid=Grid.for_bandlimit(lmax))
            field = plan.inverse(plan.random_coefficients(rng))
            start = time.perf_counter()
            for _ in range(3):
                plan.forward(field)
            timings[lmax] = (time.perf_counter() - start) / 3
        return timings

    results = benchmark.pedantic(measure, iterations=1, rounds=1)
    rows = [[l, f"{t * 1e3:.2f} ms"] for l, t in results.items()]
    print_table("E11 — forward SHT wall-clock vs band-limit", ["L", "time"], rows)
    growth = results[32] / max(results[8], 1e-9)
    # Doubling L twice should cost much more than 4x (super-linear) but the
    # precomputed-plan transform stays far below the naive O(L^4) growth
    # (which would be 256x).
    assert growth > 3.0
    assert growth < 300.0
