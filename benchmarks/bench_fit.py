"""E14 — GEMM-blocked analysis: `fit` vs the reference per-degree path.

Fitting is the paper's dominant compute phase: every residual field of a
reanalysis-scale ensemble pays a forward SHT (Section III-A), so after
PR 3 gave synthesis the per-order GEMM + blocked-FFT treatment, analysis
was the last seed-speed hot path.  This benchmark measures what closing
that asymmetry bought at ``lmax = 48``:

* **reference per-degree path** — the seed behaviour of ``repro.fit``:
  both Wigner contractions run through their literal per-degree Eq. (7)
  accumulations (kept as
  :meth:`SHTPlan.wigner_contraction_forward_reference` /
  :meth:`SHTPlan.wigner_contraction_inverse_reference`), with the full
  analysis intermediate materialised in one pass;
* **GEMM-blocked path** — the production ``repro.fit``: the forward
  contraction runs as ``2L-1`` BLAS GEMMs against precomputed analysis
  operators and both forward FFT stages are blocked over leading slices
  (``_ANALYSIS_BLOCK``), mirroring the synthesis side.

Correctness is a hard gate in every mode: the GEMM forward is asserted
within ``1e-12`` of the per-degree reference on the fitted spectral
series, batched analysis is asserted bit-identical per leading slice,
and the fitted state is asserted bit-identical for every ``batch_size``.
The wall-clock gate (``>= 2x`` fit speedup) is soft-gated by
``REPRO_BENCH_SOFT=1`` for noisy shared runners, like the other
benchmark jobs.

Run as a script: ``PYTHONPATH=src python benchmarks/bench_fit.py`` —
this also writes a ``BENCH_fit.json`` summary artifact (override the
location with ``REPRO_BENCH_OUT``).
"""

from __future__ import annotations

import time

import numpy as np

try:
    from benchmarks._report import emit_summary, soft_gate, write_report
except ImportError:  # run as a script with benchmarks/ as sys.path[0]
    from _report import emit_summary, soft_gate, write_report

import repro
from repro.data import Era5LikeConfig, Era5LikeGenerator
from repro.sht.plancache import get_plan
from repro.sht.transform import SHTPlan
from repro.util.compare import assert_states_bit_identical

LMAX = 48                 # acceptance criterion: >= 2x fit speedup at lmax = 48
SPY = 24                  # steps per model year of the benchmark calendar
N_YEARS = 6
N_ENSEMBLE = 2
TILE_SIZE = 128
TARGET_SPEEDUP = 2.0
PARITY_TOL = 1e-12        # GEMM forward vs per-degree reference


def _check_speedup(speedup: float) -> None:
    """Enforce the fit speedup target via the shared soft gate.

    Correctness (forward/reference parity, per-slice and per-batch-size
    bit-exactness) always asserts; only the wall-clock ratio goes
    through ``REPRO_BENCH_SOFT``.
    """
    soft_gate(
        speedup >= TARGET_SPEEDUP,
        f"GEMM-blocked fit only {speedup:.2f}x faster than the reference "
        f"per-degree path (target {TARGET_SPEEDUP}x)",
    )


def _training_ensemble():
    """The lmax=48 training ensemble shared by both timed paths."""
    return Era5LikeGenerator(
        Era5LikeConfig(lmax=LMAX, n_years=N_YEARS, steps_per_year=SPY,
                       n_ensemble=N_ENSEMBLE, forcing_growth=1.0),
        seed=7,
    ).generate()


def _fit(sims, batch_size=None):
    return repro.fit(sims, lmax=LMAX, var_order=1, tile_size=TILE_SIZE,
                     n_harmonics=2, rho_grid=(0.3, 0.7),
                     batch_size=batch_size)


def _timed_fit(sims, batch_size=None):
    t0 = time.perf_counter()
    emulator = _fit(sims, batch_size=batch_size)
    return time.perf_counter() - t0, emulator


def _reference_fit_seconds(sims) -> float:
    """Time ``fit`` on the seed-speed per-degree path, end to end.

    Two patches reproduce the seed behaviour exactly: the class-level
    swap routes every plan — including the cached one — through the
    literal per-degree Eq. (7) accumulations, and the block constants
    are lifted so both FFT stages materialise the full intermediate of
    the whole record in one pass (the contraction strategy dominates the
    gap; the unblocked single pass is what the seed `fit` allocated).
    The plan's precomputed tables are shared by both timed paths.
    """
    from repro.sht import transform

    originals = (SHTPlan.wigner_contraction_forward,
                 SHTPlan.wigner_contraction_inverse,
                 transform._ANALYSIS_BLOCK,
                 transform._SYNTHESIS_BLOCK)
    SHTPlan.wigner_contraction_forward = (
        SHTPlan.wigner_contraction_forward_reference)
    SHTPlan.wigner_contraction_inverse = (
        SHTPlan.wigner_contraction_inverse_reference)
    transform._ANALYSIS_BLOCK = transform._SYNTHESIS_BLOCK = 10**9
    try:
        seconds, _ = _timed_fit(sims)
    finally:
        (SHTPlan.wigner_contraction_forward,
         SHTPlan.wigner_contraction_inverse,
         transform._ANALYSIS_BLOCK,
         transform._SYNTHESIS_BLOCK) = originals
    return seconds


def run_benchmark() -> dict:
    """Execute both fit paths, verify correctness and return the summary."""
    sims = _training_ensemble()
    plan = get_plan("fast", LMAX, sims.grid)  # warm: shared by both paths
    _fit(sims)                                # warm BLAS/FFT working sets

    t_reference = _reference_fit_seconds(sims)
    t_gemm, emulator = _timed_fit(sims)
    speedup = t_reference / t_gemm

    # Hard gate 1: the GEMM forward matches the per-degree reference on
    # the real fitted inputs (the standardised residual fields).
    residuals = emulator.trend_model.residuals(
        sims.data, sims.forcing_annual, emulator.trend_fit
    )
    standardized = emulator.scale.standardize(residuals)
    gemm_coeffs = plan.forward(standardized)
    g = plan.longitude_fourier(standardized)
    reference_coeffs = plan.wigner_contraction_forward_reference(
        plan.colatitude_fourier(g)
    )
    forward_max_diff = float(np.max(np.abs(gemm_coeffs - reference_coeffs)))
    assert forward_max_diff <= PARITY_TOL, (
        f"GEMM forward diverged from the per-degree reference: "
        f"max |diff| = {forward_max_diff}"
    )

    # Hard gate 2: batched analysis is bit-identical per leading slice
    # (the guarantee that lets fit cap its working set with batch_size).
    per_slice = all(
        np.array_equal(gemm_coeffs[r], plan.forward(standardized[r]))
        for r in range(standardized.shape[0])
    )
    assert per_slice, "batched analysis is not bit-identical to per-slice"

    # Hard gate 3: the fitted state does not depend on batch_size
    # (assert_states_bit_identical raises with the failing leaf path).
    reference_state = emulator.state_dict()
    for batch_size in (1, N_ENSEMBLE):
        assert_states_bit_identical(
            reference_state, _fit(sims, batch_size=batch_size).state_dict()
        )
    batch_invariant = True

    return {
        "benchmark": "fit",
        "lmax": LMAX,
        "n_ensemble": N_ENSEMBLE,
        "n_times": N_YEARS * SPY,
        "tile_size": TILE_SIZE,
        "reference_fit_seconds": round(t_reference, 4),
        "gemm_fit_seconds": round(t_gemm, 4),
        "speedup": round(speedup, 2),
        "forward_max_diff": forward_max_diff,
        "forward_parity_tol": PARITY_TOL,
        "per_slice_bit_identical": per_slice,
        "batch_size_bit_identical": batch_invariant,
    }


def test_fit_benchmark():
    """Pytest entry point mirroring the script run."""
    summary = run_benchmark()
    emit_summary(summary)
    assert summary["per_slice_bit_identical"]
    assert summary["batch_size_bit_identical"]
    _check_speedup(summary["speedup"])


if __name__ == "__main__":
    summary = run_benchmark()
    emit_summary(summary)
    write_report("fit", summary)
    _check_speedup(summary["speedup"])
