"""E8 — Table I: DP/HP Cholesky on 1,024 nodes of each system.

Paper values: Frontier 223.7 PFlop/s (54.6 TFlop/s/GPU), Alps 384.2 (93.8),
Leonardo 243.1 (57.2), Summit 153.6 (25.0); GH200 outperforms MI250X by
~1.6x per GPU while A100 is roughly on par with MI250X.
"""

import pytest

from benchmarks.conftest import print_table
from repro.systems import SYSTEMS, CholeskyPerformanceModel

#: system -> (matrix size from Table I, paper PFlop/s, paper TFlop/s per GPU)
TABLE1 = {
    "frontier": (8_390_000, 223.7, 54.6),
    "alps": (10_490_000, 384.2, 93.8),
    "leonardo": (8_390_000, 243.1, 57.2),
    "summit": (6_290_000, 153.6, 25.0),
}
NODES = 1_024


@pytest.mark.benchmark(group="table1")
def test_table1_dp_hp_on_1024_nodes(benchmark):
    def sweep():
        return {
            name: CholeskyPerformanceModel(SYSTEMS[name]).estimate(size, NODES, "DP/HP")
            for name, (size, _, _) in TABLE1.items()
        }

    results = benchmark(sweep)

    rows = []
    for name, estimate in results.items():
        size, paper_pf, paper_per_gpu = TABLE1[name]
        rows.append(
            [
                SYSTEMS[name].name,
                SYSTEMS[name].node.gpu.name,
                estimate.workers,
                f"{size/1e6:.2f}M",
                f"{estimate.pflops:.1f}",
                f"{paper_pf:.1f}",
                f"{estimate.tflops_per_worker:.1f}",
                f"{paper_per_gpu:.1f}",
            ]
        )
    print_table(
        "Table I — DP/HP Cholesky on 1,024 nodes of each system",
        ["system", "GPU", "# GPUs", "matrix", "PFlop/s", "paper", "TF/s/GPU", "paper"],
        rows,
    )

    per_gpu = {name: est.tflops_per_worker for name, est in results.items()}
    # Cross-system ordering and ratios from the paper.
    assert per_gpu["alps"] > per_gpu["leonardo"] > per_gpu["summit"]
    assert per_gpu["alps"] > per_gpu["frontier"] > per_gpu["summit"]
    # GH200 outperforms MI250X by roughly 1.6x per GPU.
    assert 1.3 < per_gpu["alps"] / per_gpu["frontier"] < 2.1
    # A100 is roughly on par with MI250X (within ~25%).
    assert abs(per_gpu["leonardo"] - per_gpu["frontier"]) / per_gpu["frontier"] < 0.25
    # Absolute per-GPU rates land near Table I.
    for name, est in results.items():
        assert est.tflops_per_worker == pytest.approx(TABLE1[name][2], rel=0.3)
