"""E7 — Figure 8: largest-scale runs on Frontier, Alps, Summit and Leonardo.

Paper results (DP/HP variant): 0.976 EFlop/s on 9,025 Frontier nodes
(27.24M), 0.739 EFlop/s on 1,936 Alps nodes (15.73M), 0.375 EFlop/s on
3,072 Summit nodes (12.58M) and 0.243 EFlop/s on 1,024 Leonardo nodes
(8.39M), with run-up points on Frontier and Alps.  This benchmark
regenerates the whole figure with the performance model.
"""

import pytest

from benchmarks.conftest import print_table
from repro.systems import SYSTEMS, CholeskyPerformanceModel

#: (system, nodes, matrix size, paper EFlop/s)
RUNS = [
    ("frontier", 9_025, 27_240_000, 0.976),
    ("frontier", 6_400, 20_970_000, 0.715),
    ("frontier", 4_096, 16_780_000, 0.523),
    ("frontier", 2_048, 12_580_000, 0.316),
    ("alps", 1_936, 15_730_000, 0.739),
    ("alps", 1_600, 14_420_000, 0.623),
    ("alps", 1_024, 10_490_000, 0.364),
    ("summit", 3_072, 12_580_000, 0.375),
    ("leonardo", 1_024, 8_390_000, 0.243),
]


@pytest.mark.benchmark(group="fig8")
def test_fig8_largest_runs(benchmark):
    def sweep():
        out = []
        for system, nodes, size, paper in RUNS:
            model = CholeskyPerformanceModel(SYSTEMS[system])
            out.append((system, nodes, size, model.estimate(size, nodes, "DP/HP"), paper))
        return out

    results = benchmark(sweep)

    rows = [
        [system, nodes, f"{size/1e6:.2f}M", f"{est.eflops:.3f}", f"{paper:.3f}",
         f"{est.eflops/paper:.2f}x"]
        for system, nodes, size, est, paper in results
    ]
    print_table(
        "Fig. 8 — largest runs, DP/HP variant (model vs paper EFlop/s)",
        ["system", "nodes", "matrix", "model EFlop/s", "paper EFlop/s", "ratio"],
        rows,
    )

    headline = {
        (system, nodes): est.eflops
        for system, nodes, _, est, _ in results
    }
    # Ordering of the headline numbers holds: Frontier > Alps > Summit > Leonardo.
    assert headline[("frontier", 9_025)] > headline[("alps", 1_936)]
    assert headline[("alps", 1_936)] > headline[("summit", 3_072)]
    assert headline[("summit", 3_072)] > headline[("leonardo", 1_024)]
    # Frontier's largest run approaches (and in this model exceeds) an exaflop.
    assert headline[("frontier", 9_025)] > 0.9
    # Run-up points increase monotonically with allocation size per system.
    frontier = [est.eflops for s, n, _, est, _ in results if s == "frontier"]
    alps = [est.eflops for s, n, _, est, _ in results if s == "alps"]
    assert frontier == sorted(frontier, reverse=True)
    assert alps == sorted(alps, reverse=True)
    # Alps and Summit/Leonardo land within ~35% of the paper's absolute numbers.
    for system, nodes, _, est, paper in results:
        if system in ("alps", "summit", "leonardo"):
            assert abs(est.eflops - paper) / paper < 0.45
