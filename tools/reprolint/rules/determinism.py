"""Determinism rule: randomness and wall-clock reads inside ``src/repro``.

The emulator's outputs are contractually a pure function of
``(artifact, seed, request)`` — campaigns, the serving layer and every
bit-identity test depend on it.  That only holds if randomness flows
through explicitly passed ``numpy.random.Generator`` /
``SeedSequence`` objects and nothing consults process-global entropy or
the wall clock.  Inside ``src/repro`` this rule therefore forbids:

* ``np.random.seed(...)`` and every legacy global-state draw
  (``np.random.normal``, ``np.random.rand``, ...) — only the explicit
  constructors (``default_rng``, ``SeedSequence``, the bit generators)
  are allowed;
* the stdlib ``random`` module altogether;
* ``time.time``/``time.time_ns`` and ``datetime.now``/``utcnow``/
  ``today`` (monotonic timers like ``time.perf_counter`` remain fine:
  they feed stats, not outputs).

Benchmarks, tools and tests are out of scope: seeding a benchmark is
normal.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.reprolint.model import Finding, ModuleUnit
from tools.reprolint.rulebase import LINT_RULES, ProjectContext, Rule, dotted_name

__all__ = ["DeterminismRule"]

#: np.random attributes that construct explicit, passable RNG state.
_ALLOWED_NP_RANDOM = {
    "Generator", "SeedSequence", "BitGenerator", "default_rng",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
}
_WALL_CLOCK = {"time.time", "time.time_ns"}
_DATETIME_CALLS = {"now", "utcnow", "today", "fromtimestamp"}


@LINT_RULES.register(
    "determinism",
    description=(
        "src/repro must draw randomness from passed-in Generators/"
        "SeedSequences and never read global entropy or the wall clock"
    ),
)
class DeterminismRule(Rule):
    id = "determinism"
    hint = (
        "thread an np.random.Generator (seeded from a SeedSequence) through "
        "the call instead"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check_module(
        self, unit: ModuleUnit, ctx: ProjectContext
    ) -> Iterable[Finding]:
        findings: list[Finding] = []

        stdlib_random_names: set[str] = set()
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdlib_random_names.add(alias.asname or "random")
                        findings.append(
                            unit.finding(
                                self.id, node,
                                "stdlib `random` draws from hidden global "
                                f"state; {self.hint}",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    findings.append(
                        unit.finding(
                            self.id, node,
                            "stdlib `random` draws from hidden global state; "
                            f"{self.hint}",
                        )
                    )

        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            parts = name.split(".")
            # np.random.* / numpy.random.* legacy global-state API.
            if len(parts) >= 3 and parts[-3] in {"np", "numpy"} and parts[-2] == "random":
                if parts[-1] not in _ALLOWED_NP_RANDOM:
                    findings.append(
                        unit.finding(
                            self.id, node,
                            f"`{name}` uses numpy's hidden global RNG; "
                            f"{self.hint}",
                        )
                    )
            elif parts[0] in stdlib_random_names:
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"`{name}` draws from stdlib random's global state; "
                        f"{self.hint}",
                    )
                )
            elif name in _WALL_CLOCK:
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"`{name}` reads the wall clock, making outputs "
                        "time-dependent; use time.perf_counter for intervals "
                        "or pass timestamps in",
                    )
                )
            elif (
                len(parts) >= 2
                and parts[-1] in _DATETIME_CALLS
                and parts[-2] in {"datetime", "date"}
            ):
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"`{name}` reads the wall clock, making outputs "
                        "time-dependent; pass timestamps in explicitly",
                    )
                )
        return findings
