"""Index-recovery rule: no float ``sqrt`` feeding integer recovery.

PR 5's corruption bug in one line: ``round(np.sqrt((2**27)**2 - 1))``
rounds *up*, so ``coeff_lm`` fabricated ``m < -l`` pairs near large
perfect squares.  Recovering a band-limit (or any index) from a count
must use exact integer arithmetic — ``math.isqrt`` or the repo's
:func:`repro.sht.transform.bandlimit_from_coeff_count` — never a float
square root truncated through ``int(...)`` or rounded through
``round(...)``.

The rule flags any ``int(...)`` or ``round(...)`` call whose argument
contains a ``sqrt`` call (``math.sqrt``, ``np.sqrt``, bare ``sqrt``).
``int(round(...))`` without a sqrt inside, and ``np.sqrt`` in numeric
(non-index) expressions, are untouched.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.reprolint.model import Finding, ModuleUnit
from tools.reprolint.rulebase import LINT_RULES, ProjectContext, Rule, dotted_name

__all__ = ["IndexRecoveryRule"]


def _contains_sqrt(node: ast.AST) -> "ast.Call | None":
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call):
            name = dotted_name(inner.func)
            if name.split(".")[-1] == "sqrt":
                return inner
    return None


@LINT_RULES.register(
    "index-recovery",
    description=(
        "int()/round() over a float sqrt silently corrupts recovered "
        "indices; use math.isqrt or bandlimit_from_coeff_count"
    ),
)
class IndexRecoveryRule(Rule):
    id = "index-recovery"
    hint = (
        "use math.isqrt (exact for ints) or "
        "repro.sht.transform.bandlimit_from_coeff_count"
    )

    def check_module(
        self, unit: ModuleUnit, ctx: ProjectContext
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name) and node.func.id in {"int", "round"}):
                continue
            for arg in node.args:
                sqrt_call = _contains_sqrt(arg)
                if sqrt_call is not None:
                    sqrt_name = dotted_name(sqrt_call.func) or "sqrt"
                    findings.append(
                        unit.finding(
                            self.id, node,
                            f"`{node.func.id}({sqrt_name}(...))` recovers an "
                            f"integer through a float square root, which "
                            f"rounds the wrong way near large perfect "
                            f"squares; {self.hint}",
                        )
                    )
                    break
        return findings
