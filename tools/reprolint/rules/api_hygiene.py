"""API-hygiene rule: the public surface resolves, is documented, and is listed.

``repro.__init__.__all__`` *is* the public API.  For every name in it,
this rule checks — statically, by following ``from repro.x import name``
re-export chains through the source tree — that:

* the name resolves to a real definition (function, class or module
  constant) somewhere inside ``repro``, or to a ``repro`` submodule
  (``from repro import obs``) whose module docstring then stands in for
  the definition docstring;
* a function/class definition carries a non-empty docstring (the API
  reference is generated from docstrings, so an empty one is an empty
  reference entry);
* the name appears in the generated ``docs/api.md`` (dunders like
  ``__version__`` are exempt from the listing requirement);
* ``__all__`` itself is sorted, so diffs stay reviewable.

The rule runs when ``src/repro/__init__.py`` is among the scanned files
and reads re-export targets from disk as needed, so scanning ``src``
alone is enough.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from tools.reprolint.model import Finding, ModuleUnit
from tools.reprolint.rulebase import LINT_RULES, ProjectContext, Rule

__all__ = ["ApiHygieneRule"]

_PACKAGE_INIT = "src/repro/__init__.py"
_API_DOC = "docs/api.md"
_MAX_CHAIN = 8


def _module_relpath(module: str) -> "str | None":
    """Source path of a ``repro.*`` module ('' level-0 imports only)."""
    if module != "repro" and not module.startswith("repro."):
        return None
    base = "src/" + module.replace(".", "/")
    return base  # caller tries both <base>.py and <base>/__init__.py


class _Resolution:
    """Where a public name finally lives, or why it doesn't."""

    def __init__(self, node: "ast.AST | None", relpath: str = "", failed: str = ""):
        self.node = node
        self.relpath = relpath
        self.failed = failed


def _find_definition(tree: ast.Module, name: str):
    """The top-level def/class/assignment binding ``name``, if any."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if stmt.name == name:
                return stmt
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                return stmt
    return None


def _find_import(tree: ast.Module, name: str) -> "tuple[str, str] | None":
    """``(module, original_name)`` when ``name`` arrives via ``from..import``."""
    for stmt in tree.body:
        if isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
            for alias in stmt.names:
                if (alias.asname or alias.name) == name:
                    return stmt.module, alias.name
    return None


def _resolve(ctx: ProjectContext, relpath: str, name: str, depth: int = 0) -> _Resolution:
    if depth > _MAX_CHAIN:
        return _Resolution(None, failed=f"re-export chain deeper than {_MAX_CHAIN}")
    tree = ctx.parse(relpath)
    if tree is None:
        return _Resolution(None, failed=f"cannot read {relpath}")
    definition = _find_definition(tree, name)
    if definition is not None:
        return _Resolution(definition, relpath)
    imported = _find_import(tree, name)
    if imported is None:
        return _Resolution(None, failed=f"no definition or import in {relpath}")
    module, original = imported
    base = _module_relpath(module)
    if base is None:
        # Re-exported from outside repro (stdlib/numpy): resolvable, opaque.
        return _Resolution(None, relpath=relpath)
    resolution = _Resolution(None, failed=f"module {module} has no source file")
    for candidate in (f"{base}.py", f"{base}/__init__.py"):
        if ctx.read_text(candidate) is not None:
            if candidate == relpath and original == name:
                # ``from repro import obs`` inside repro/__init__.py binds
                # the submodule, never an attribute of the file itself.
                resolution = _Resolution(None, failed="self-import")
            else:
                resolution = _resolve(ctx, candidate, original, depth + 1)
            break
    if resolution.failed:
        # ``from repro[.pkg] import sub`` with no attribute of that name
        # binds the submodule; resolve it to its own source file.
        sub_base = _module_relpath(f"{module}.{original}")
        if sub_base is not None:
            for candidate in (f"{sub_base}.py", f"{sub_base}/__init__.py"):
                subtree = ctx.parse(candidate)
                if subtree is not None:
                    return _Resolution(subtree, candidate)
    return resolution


@LINT_RULES.register(
    "api-hygiene",
    description=(
        "every repro.__all__ symbol must resolve, carry a docstring, and "
        "appear in docs/api.md"
    ),
)
class ApiHygieneRule(Rule):
    id = "api-hygiene"
    hint = (
        "fix the export, add the docstring, or add the symbol to "
        "tools/gen_api_docs.py and regenerate docs/api.md"
    )

    def check_project(
        self, units: "list[ModuleUnit]", ctx: ProjectContext
    ) -> Iterable[Finding]:
        unit = next((u for u in units if u.relpath == _PACKAGE_INIT), None)
        if unit is None:
            return ()
        findings: list[Finding] = []

        all_node = None
        for stmt in unit.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        all_node = stmt.value
        if not isinstance(all_node, (ast.List, ast.Tuple)):
            findings.append(
                unit.finding(
                    self.id, unit.tree.body[0] if unit.tree.body else 1,
                    "repro/__init__.py has no literal __all__ list",
                )
            )
            return findings

        names: list[tuple[str, ast.AST]] = []
        for element in all_node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append((element.value, element))

        listed = [name for name, _ in names]
        if listed != sorted(listed):
            findings.append(
                unit.finding(
                    self.id, all_node,
                    "__all__ is not sorted; keep it sorted so additions "
                    "diff cleanly",
                )
            )

        api_text = ctx.read_text(_API_DOC)
        for name, node in names:
            resolution = _resolve(ctx, _PACKAGE_INIT, name)
            if resolution.failed:
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"__all__ exports {name!r} but it does not resolve "
                        f"({resolution.failed}); {self.hint}",
                    )
                )
                continue
            definition = resolution.node
            if isinstance(
                definition,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module),
            ):
                if not (ast.get_docstring(definition) or "").strip():
                    findings.append(
                        unit.finding(
                            self.id, node,
                            f"public {name!r} ({resolution.relpath}) has no "
                            f"docstring, so its generated reference entry "
                            f"is empty; {self.hint}",
                        )
                    )
            if name.startswith("__"):
                continue
            if api_text is None:
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"{_API_DOC} is missing, so {name!r} is undocumented; "
                        f"{self.hint}",
                    )
                )
            elif not re.search(rf"\b{re.escape(name)}\b", api_text):
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"public {name!r} does not appear in {_API_DOC}; "
                        f"{self.hint}",
                    )
                )
        return findings
