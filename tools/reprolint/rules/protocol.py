"""State-protocol rule: ``state_dict`` and ``from_state`` travel together.

Every pipeline stage serialises through the uniform
``state_dict()`` / ``from_state()`` protocol (PR 1), and the artifact
layer round-trips whatever the pair produces.  A class that grows one
half without the other either cannot be persisted or cannot be
restored — a gap that only surfaces when an artifact fails to load.
The rule requires per class:

* ``state_dict`` defined  ⇒  a ``from_state`` **classmethod** defined;
* ``from_state`` defined  ⇒  a ``state_dict`` method defined;
* ``from_state``, when present, carries the ``@classmethod`` decorator
  (an instance-method ``from_state`` cannot restore from scratch).

Inherited halves count only when defined in the same class body —
subclasses that override neither are fine because the base already
satisfies the pairing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.reprolint.model import Finding, ModuleUnit
from tools.reprolint.rulebase import LINT_RULES, ProjectContext, Rule, dotted_name

__all__ = ["StateProtocolRule"]


def _is_classmethod(func: ast.FunctionDef) -> bool:
    return any(
        dotted_name(decorator).split(".")[-1] == "classmethod"
        for decorator in func.decorator_list
    )


@LINT_RULES.register(
    "state-protocol",
    description=(
        "a class defining state_dict must define a from_state classmethod "
        "and vice versa"
    ),
)
class StateProtocolRule(Rule):
    id = "state-protocol"
    hint = (
        "add the missing half so the class round-trips through "
        "EmulatorArtifact like every other pipeline stage"
    )

    def check_module(
        self, unit: ModuleUnit, ctx: ProjectContext
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            state_dict = methods.get("state_dict")
            from_state = methods.get("from_state")
            if state_dict is not None and from_state is None:
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"{node.name} defines state_dict but no from_state "
                        f"classmethod; {self.hint}",
                    )
                )
            elif from_state is not None and state_dict is None:
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"{node.name} defines from_state but no state_dict; "
                        f"{self.hint}",
                    )
                )
            if (
                from_state is not None
                and isinstance(from_state, ast.FunctionDef)
                and not _is_classmethod(from_state)
            ):
                findings.append(
                    unit.finding(
                        self.id, from_state,
                        f"{node.name}.from_state is not a classmethod; "
                        f"restoration must not require an instance",
                    )
                )
        return findings
