"""Manifest-commit rule: chunk-store manifest state mutates only inside
the commit protocol.

``ChunkStore``'s multi-writer safety rests on one invariant: every
mutation of the manifest view (``self._chunks``, ``self._manifest_token``)
and every on-disk manifest write (``self._dump_manifest_locked``) happens
either in a ``*_locked`` method (whose caller owns both locks) or
lexically inside ``with self._flock_locked():`` — the cross-process
lockfile transaction.  A mutation outside that protocol is exactly the
lost-update bug the commit protocol exists to prevent: it can overwrite
entries a foreign process committed, or resurrect entries a foreign
process pruned.

Scope: classes under ``src/repro/storage/`` that define a
``_dump_manifest*`` method (i.e. they own a manifest).  ``__init__``
binding the initial empty view is fine; reads are fine — the rule
polices writes and commits only, complementing ``lock-discipline``
(which covers the in-process thread lock but cannot see the
cross-process file lock).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.reprolint.model import Finding, ModuleUnit
from tools.reprolint.rulebase import LINT_RULES, ProjectContext, Rule, dotted_name

__all__ = ["ManifestCommitRule"]

#: Instance attributes that make up the manifest view.
_MANIFEST_ATTRS = {"_chunks", "_manifest_token"}
#: Methods on the manifest mapping that mutate it in place.
_MUTATOR_CALLS = {"update", "pop", "popitem", "setdefault", "clear", "__setitem__"}
_INIT_METHODS = {"__init__", "__post_init__", "__new__"}


def _self_attr(node: ast.AST) -> "str | None":
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_flock_acquire(expr: ast.AST) -> bool:
    """Whether an expression is a ``self._flock_locked()``-style call."""
    return isinstance(expr, ast.Call) and dotted_name(expr.func).endswith(
        "_flock_locked"
    )


def _transaction_lines(body: "list[ast.stmt]") -> "set[int]":
    """Line numbers lexically inside a ``with ..._flock_locked():`` block."""
    lines: set[int] = set()
    for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
        if isinstance(stmt, ast.With) and any(
            _is_flock_acquire(item.context_expr) for item in stmt.items
        ):
            for inner in ast.walk(stmt):
                line = getattr(inner, "lineno", None)
                if line is not None:
                    lines.add(line)
    return lines


def _manifest_target(node: ast.AST) -> "str | None":
    """The manifest attribute a store/delete target touches, else ``None``.

    Matches both rebinding (``self._chunks = ...``) and item mutation
    (``self._chunks[addr] = ...`` / ``del self._chunks[addr]``).
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    attr = _self_attr(node)
    if attr in _MANIFEST_ATTRS:
        return attr
    return None


def _mutation_targets(stmt: ast.AST) -> Iterator[str]:
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = stmt.targets
    else:
        return
    for target in targets:
        attr = _manifest_target(target)
        if attr is not None:
            yield attr


@LINT_RULES.register(
    "manifest-commit",
    description=(
        "chunk-store manifest state (mapping, token, on-disk write) mutates "
        "only inside *_locked methods or a _flock_locked() transaction"
    ),
)
class ManifestCommitRule(Rule):
    id = "manifest-commit"
    hint = (
        "route the mutation through a `*_locked` helper or wrap it in "
        "`with self._flock_locked():` so foreign commits are re-read first"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/storage/")

    def _check_class(self, unit: ModuleUnit, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            node for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        owns_manifest = any(
            method.name.startswith("_dump_manifest") for method in methods
        )
        if not owns_manifest:
            return

        for method in methods:
            if method.name in _INIT_METHODS or method.name.endswith("_locked"):
                continue
            in_transaction = _transaction_lines(method.body)
            for node in ast.walk(method):
                if getattr(node, "lineno", None) in in_transaction:
                    continue
                for attr in _mutation_targets(node):
                    yield unit.finding(
                        self.id, node,
                        f"{cls.name}.{method.name} mutates self.{attr} "
                        f"outside the manifest commit protocol; {self.hint}",
                    )
                if isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    head, _, tail = name.rpartition(".")
                    if head == "self" and tail.startswith("_dump_manifest"):
                        yield unit.finding(
                            self.id, node,
                            f"{cls.name}.{method.name} writes the manifest "
                            f"({tail}) outside the commit protocol; "
                            f"{self.hint}",
                        )
                    elif (
                        tail in _MUTATOR_CALLS
                        and head.startswith("self.")
                        and head.removeprefix("self.") in _MANIFEST_ATTRS
                    ):
                        yield unit.finding(
                            self.id, node,
                            f"{cls.name}.{method.name} calls "
                            f"{head}.{tail}() outside the manifest commit "
                            f"protocol; {self.hint}",
                        )

    def check_module(
        self, unit: ModuleUnit, ctx: ProjectContext
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(unit, node))
        return findings
