"""Rule catalogue: importing this package registers every built-in rule.

Each module registers its rules in
:data:`tools.reprolint.rulebase.LINT_RULES` at import time (the same
pattern ``repro.sht.backends`` uses for SHT backends), so adding a rule
is: write the module, import it here, done — the engine, CLI, pragma
validation and ``--list-rules`` all pick it up from the registry.
"""

from tools.reprolint.rules import (  # noqa: F401  (imported for registration)
    api_hygiene,
    determinism,
    indexing,
    locking,
    manifest,
    protocol,
    storagewrite,
    style,
    telemetry,
)
from tools.reprolint.rules.api_hygiene import ApiHygieneRule
from tools.reprolint.rules.determinism import DeterminismRule
from tools.reprolint.rules.indexing import IndexRecoveryRule
from tools.reprolint.rules.locking import LockDisciplineRule
from tools.reprolint.rules.manifest import ManifestCommitRule
from tools.reprolint.rules.protocol import StateProtocolRule
from tools.reprolint.rules.storagewrite import NonFiniteWriteRule
from tools.reprolint.rules.style import BareExceptRule, MutableDefaultRule
from tools.reprolint.rules.telemetry import TelemetryHygieneRule

__all__ = [
    "ApiHygieneRule",
    "BareExceptRule",
    "DeterminismRule",
    "IndexRecoveryRule",
    "LockDisciplineRule",
    "ManifestCommitRule",
    "MutableDefaultRule",
    "NonFiniteWriteRule",
    "StateProtocolRule",
    "TelemetryHygieneRule",
]
