"""Baseline hygiene rules: mutable default arguments and silenced excepts.

Small, classic, and each has bitten a NumPy codebase somewhere:

* ``mutable-default`` — a ``def f(x, acc=[])`` default is evaluated once
  and shared across calls; in a cached/long-lived process (the serving
  layer, campaign workers) that is cross-request state leakage.
* ``bare-except`` — a bare ``except:`` catches ``KeyboardInterrupt`` and
  ``SystemExit``; an ``except ...: pass`` of any breadth silently eats
  the error.  Both hide exactly the corruption classes this repo's
  invariants exist to surface.  (``except BaseException:`` followed by
  cleanup + ``raise``, the tmp-file pattern in the storage layer, is
  explicitly fine: it re-raises.)
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.reprolint.model import Finding, ModuleUnit
from tools.reprolint.rulebase import LINT_RULES, ProjectContext, Rule, dotted_name

__all__ = ["BareExceptRule", "MutableDefaultRule"]

_MUTABLE_LITERALS = (
    ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp,
)
_MUTABLE_CALLS = {"dict", "list", "set", "OrderedDict", "defaultdict", "deque"}


@LINT_RULES.register(
    "mutable-default",
    description="default argument values must not be mutable containers",
)
class MutableDefaultRule(Rule):
    id = "mutable-default"
    hint = "default to None and create the container inside the function"

    def check_module(
        self, unit: ModuleUnit, ctx: ProjectContext
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(unit.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for default in (*node.args.defaults, *node.args.kw_defaults):
                if default is None:
                    continue
                mutable = isinstance(default, _MUTABLE_LITERALS) or (
                    isinstance(default, ast.Call)
                    and dotted_name(default.func).split(".")[-1] in _MUTABLE_CALLS
                )
                if mutable:
                    findings.append(
                        unit.finding(
                            self.id, default,
                            f"{node.name} has a mutable default argument, "
                            f"shared across every call; {self.hint}",
                        )
                    )
        return findings


@LINT_RULES.register(
    "bare-except",
    description="no bare `except:` and no `except ...: pass` error swallowing",
)
class BareExceptRule(Rule):
    id = "bare-except"
    hint = (
        "catch the narrowest exception type that the handler can actually "
        "handle, and never discard the error without acting on it"
    )

    def check_module(
        self, unit: ModuleUnit, ctx: ProjectContext
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"bare `except:` also catches KeyboardInterrupt and "
                        f"SystemExit; {self.hint}",
                    )
                )
            if len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"`except ...: pass` silently swallows the error; "
                        f"{self.hint}",
                    )
                )
        return findings
