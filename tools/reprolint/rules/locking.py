"""Lock-discipline race checker.

The repo's concurrency convention (``ChunkStore``, ``EmulationService``,
the SHT plan cache) is small and checkable:

* a class that creates a ``threading.Lock``/``RLock`` attribute owns
  shared mutable state, and every method that touches that state either
  does so inside ``with self._lock:`` or is named with the ``_locked``
  suffix (meaning: my caller holds the lock);
* a module with a module-level lock (``_LOCK = threading.Lock()``)
  follows the same convention for its module-level mutable globals.

"Shared mutable state" is derived, not declared: any attribute bound in
``__init__`` to a mutable container (dict/list/set literal or
comprehension, ``dict()``/``OrderedDict()``/``deque()``-style builtin
container calls, or an instantiation of a CamelCase class such as
``_ChunkCache(...)``) is lock-protected for **reads and writes**; any
*other* instance attribute written outside ``__init__`` (counters like
``self._hits += 1``) is lock-protected for **writes**.  Plain config
attributes assigned once in ``__init__`` (``self.encoding = str(...)``)
stay freely readable, which keeps the rule quiet on the hot read paths
that are deliberately lock-free.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from tools.reprolint.model import Finding, ModuleUnit
from tools.reprolint.rulebase import LINT_RULES, ProjectContext, Rule, dotted_name

__all__ = ["LockDisciplineRule"]

_LOCK_FACTORIES = {"Lock", "RLock"}
_CONTAINER_CALLS = {
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter",
}
_MUTABLE_LITERALS = (
    ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp,
)
_INIT_METHODS = {"__init__", "__post_init__", "__new__"}


def _is_lock_factory(call: ast.AST) -> bool:
    """Whether an expression is a ``threading.Lock()``/``RLock()`` call."""
    if not isinstance(call, ast.Call):
        return False
    name = dotted_name(call.func)
    return name.split(".")[-1] in _LOCK_FACTORIES


def _is_camelcase_instantiation(call: ast.AST) -> bool:
    """Heuristic: a call to ``_ChunkCache``-like names builds a mutable object."""
    if not isinstance(call, ast.Call):
        return False
    name = dotted_name(call.func).split(".")[-1]
    stripped = name.lstrip("_")
    return bool(stripped) and stripped[0].isupper() and not _is_lock_factory(call)


def _is_mutable_value(value: ast.AST) -> bool:
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func).split(".")[-1]
        if name in _CONTAINER_CALLS:
            return True
        return _is_camelcase_instantiation(value)
    return False


def _self_attr(node: ast.AST) -> "str | None":
    """The attribute name of a ``self.<attr>`` expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assigned_attrs(stmt: ast.stmt) -> Iterator[tuple[str, ast.AST]]:
    """``(attr, value)`` pairs for ``self.attr = value`` style statements."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            attr = _self_attr(target)
            if attr is not None:
                yield attr, stmt.value
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        attr = _self_attr(stmt.target)
        if attr is not None and stmt.value is not None:
            yield attr, stmt.value


def _with_guards(node: ast.With, lock_exprs: "set[str]") -> bool:
    """Whether a ``with`` statement acquires one of the given locks."""
    for item in node.items:
        expr = item.context_expr
        # Accept both `with self._lock:` and `with _LOCK:` spellings,
        # plus explicit `.acquire()`-less context-manager use only.
        if dotted_name(expr) in lock_exprs:
            return True
    return False


def _locked_lines(body: "list[ast.stmt]", lock_exprs: "set[str]") -> "set[int]":
    """Line numbers lexically inside a lock-acquiring ``with`` block."""
    lines: set[int] = set()
    for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
        if isinstance(stmt, ast.With) and _with_guards(stmt, lock_exprs):
            for inner in ast.walk(stmt):
                line = getattr(inner, "lineno", None)
                if line is not None:
                    lines.add(line)
    return lines


@LINT_RULES.register(
    "lock-discipline",
    description=(
        "shared mutable state of lock-owning classes/modules must be "
        "accessed under the lock or from *_locked methods"
    ),
)
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    hint = (
        "wrap the access in `with self._lock:` (or the module lock), or name "
        "the helper `..._locked` if every caller already holds the lock"
    )

    # ------------------------------------------------------------------ #
    # Class-level discipline
    # ------------------------------------------------------------------ #
    def _check_class(self, unit: ModuleUnit, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            node for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs: set[str] = set()
        for method in methods:
            for stmt in ast.walk(method):
                for attr, value in (
                    _assigned_attrs(stmt) if isinstance(stmt, ast.stmt) else ()
                ):
                    if _is_lock_factory(value):
                        lock_attrs.add(attr)
        if not lock_attrs:
            return

        protected_reads: set[str] = set()
        for method in methods:
            if method.name not in _INIT_METHODS:
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.stmt):
                    continue
                for attr, value in _assigned_attrs(stmt):
                    if attr not in lock_attrs and _is_mutable_value(value):
                        protected_reads.add(attr)

        lock_exprs = {f"self.{attr}" for attr in lock_attrs}
        for method in methods:
            if method.name in _INIT_METHODS or method.name.endswith("_locked"):
                continue
            locked = _locked_lines(method.body, lock_exprs)
            for node in ast.walk(method):
                if getattr(node, "lineno", None) in locked:
                    continue
                # Unlocked writes: any instance attribute (counters included).
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    for attr, _ in _assigned_attrs(node):
                        if attr in lock_attrs:
                            continue
                        yield unit.finding(
                            self.id, node,
                            f"{cls.name}.{method.name} writes self.{attr} "
                            f"without holding {'/'.join(sorted(lock_exprs))}; "
                            f"{self.hint}",
                        )
                # Unlocked reads of mutable containers / owned objects.
                elif isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    attr = _self_attr(node)
                    if attr in protected_reads:
                        yield unit.finding(
                            self.id, node,
                            f"{cls.name}.{method.name} reads shared mutable "
                            f"self.{attr} without holding "
                            f"{'/'.join(sorted(lock_exprs))}; {self.hint}",
                        )

    # ------------------------------------------------------------------ #
    # Module-level discipline
    # ------------------------------------------------------------------ #
    def _check_module_globals(self, unit: ModuleUnit) -> Iterator[Finding]:
        lock_names: set[str] = set()
        protected: set[str] = set()
        for stmt in unit.tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                value = stmt.value
                if value is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if _is_lock_factory(value):
                        lock_names.add(target.id)
                    elif _is_mutable_value(value):
                        protected.add(target.id)
        if not lock_names:
            return

        # Names functions rebind via `global` are shared state too
        # (counters); their module-level initializer may be immutable.
        written_globals: set[str] = set()
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Global):
                written_globals.update(node.names)
        protected |= written_globals - lock_names

        functions = [
            node for node in unit.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in functions:
            if func.name.endswith("_locked"):
                continue
            locked = _locked_lines(func.body, lock_names)
            # Parameters and locals shadow module globals.
            local_names = {arg.arg for arg in func.args.args}
            local_names |= {arg.arg for arg in func.args.kwonlyargs}
            declared_global: set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            for node in ast.walk(func):
                if isinstance(node, ast.Name) and node.id in protected:
                    if node.id in local_names and node.id not in declared_global:
                        continue
                    if node.lineno in locked:
                        continue
                    action = (
                        "writes" if isinstance(node.ctx, (ast.Store, ast.Del))
                        else "reads"
                    )
                    yield unit.finding(
                        self.id, node,
                        f"{func.name} {action} module-shared {node.id} "
                        f"without holding {'/'.join(sorted(lock_names))}; "
                        f"{self.hint}",
                    )

    def check_module(
        self, unit: ModuleUnit, ctx: ProjectContext
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(unit, node))
        findings.extend(self._check_module_globals(unit))
        return findings
