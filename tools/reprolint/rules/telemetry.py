"""Telemetry-hygiene rule: timing and instrument names go through ``repro.obs``.

The observability layer only stays trustworthy if it is the *single*
timing surface inside ``src/repro`` and its instrument namespace stays
machine-comparable.  Two properties, both statically checkable:

* **no ad-hoc timers or resource probes** — ``time.perf_counter``/
  ``monotonic``/``process_time`` calls inside ``src/repro`` (outside
  ``repro/obs`` itself) mean a hot path is being timed outside the span
  layer, so the measurement never reaches traces, histograms or
  ``tracereport``.  Time the region with ``repro.obs.span`` instead
  (the span's ``seconds``/``elapsed()`` replace the manual delta).
  Likewise raw OS resource probes (``resource.getrusage``,
  ``os.times``, ``os.getloadavg``) belong to
  ``repro.obs.sampler.ResourceSampler``, which publishes them as
  ``resource.*`` gauges — everything under ``src/repro/obs/`` (metrics,
  tracing, export, sampler, slo) is *inside* the layer and exempt.
  Legitimate exceptions go through the pragma mechanism.

* **well-formed, collision-free instrument names** — every literal name
  handed to ``span(...)``, ``counter_add``/``gauge_set``/``observe`` or
  a registry's ``add``/``set_gauge``/``observe`` must be dotted
  lowercase (``sht.plan_cache.hits``), and one name must keep one
  instrument kind across the whole tree: the registry raises at runtime
  when ``observe`` meets a counter name, and a ``span("x.y")`` implies
  a histogram ``x.y.seconds``, so this rule surfaces the conflict at
  lint time instead of in production.  ``f"{PREFIX}.tail"`` names are
  resolved when ``PREFIX`` is a module-level string constant; names the
  rule cannot resolve statically are skipped (the runtime check still
  guards them).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from tools.reprolint.model import Finding, ModuleUnit
from tools.reprolint.rulebase import LINT_RULES, ProjectContext, Rule, dotted_name

__all__ = ["TelemetryHygieneRule"]

#: Mirrors ``repro.obs.METRIC_NAME_RE`` (kept literal so the linter
#: never imports the package it analyses).
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

_TIMER_CALLS = {
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
}

#: Raw OS resource probes.  Like the timers, these belong inside the
#: telemetry layer: ``repro.obs.sampler`` publishes RSS/fd/thread
#: gauges for the whole process, so an ad-hoc ``getrusage`` elsewhere
#: in ``src/repro`` is a measurement that never reaches ``/metrics``.
_RESOURCE_CALLS = {
    "resource.getrusage", "os.times", "os.getloadavg",
}

#: Module-level helpers of ``repro.obs`` -> instrument kind.
_OBS_FUNCTIONS = {"counter_add": "counter", "gauge_set": "gauge", "observe": "histogram"}

#: Registry methods -> instrument kind (checked when the receiver looks
#: like a metrics registry: ``...metrics.add``, ``get_registry().add``).
_REGISTRY_METHODS = {"add": "counter", "set_gauge": "gauge", "observe": "histogram"}

_RECEIVER_HINTS = ("metrics", "registry")


def _module_str_constants(tree: ast.Module) -> dict:
    """Module-level ``NAME = "literal"`` bindings (for f-string prefixes)."""
    constants: dict = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant):
            if isinstance(stmt.value.value, str):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = stmt.value.value
    return constants


def _literal_name(node: ast.expr, constants: dict) -> "str | None":
    """The static string value of an instrument-name argument, if any."""
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            elif (
                isinstance(piece, ast.FormattedValue)
                and isinstance(piece.value, ast.Name)
                and piece.value.id in constants
            ):
                parts.append(constants[piece.value.id])
            else:
                return None
        return "".join(parts)
    return None


def _is_registry_receiver(func: ast.Attribute) -> bool:
    """Whether ``func.value`` plausibly denotes a metrics registry."""
    receiver = func.value
    if isinstance(receiver, ast.Call):
        callee = dotted_name(receiver.func) or ""
        return any(hint in callee.lower() for hint in _RECEIVER_HINTS)
    name = dotted_name(receiver) or ""
    return any(hint in name.lower() for hint in _RECEIVER_HINTS)


def _instruments(unit: ModuleUnit) -> Iterator[tuple]:
    """``(name, kind, node)`` for every statically-resolvable instrument."""
    constants = _module_str_constants(unit.tree)
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        kind = None
        if isinstance(func, ast.Name):
            if func.id == "span":
                kind = "span"
            else:
                kind = _OBS_FUNCTIONS.get(func.id)
        elif isinstance(func, ast.Attribute):
            if func.attr == "span" and (dotted_name(func) or "").endswith("obs.span"):
                kind = "span"
            elif func.attr in _REGISTRY_METHODS and _is_registry_receiver(func):
                kind = _REGISTRY_METHODS[func.attr]
        if kind is None:
            continue
        name = _literal_name(node.args[0], constants)
        if name is not None:
            yield name, kind, node


@LINT_RULES.register(
    "telemetry-hygiene",
    description=(
        "src/repro times hot paths through repro.obs spans only, and "
        "instrument names are dotted lowercase with one kind per name"
    ),
)
class TelemetryHygieneRule(Rule):
    id = "telemetry-hygiene"
    hint = (
        "time the region with repro.obs.span (its .seconds/.elapsed() "
        "replace manual perf_counter deltas), and keep instrument names "
        "dotted lowercase with a single instrument kind per name"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check_module(
        self, unit: ModuleUnit, ctx: ProjectContext
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        # Everything under src/repro/obs/ *is* the telemetry layer —
        # metrics/tracing and the operational half (export, sampler,
        # slo) alike — so raw timers and OS resource probes are its
        # implementation there and banned everywhere else.
        if not unit.relpath.startswith("src/repro/obs/"):
            for node in ast.walk(unit.tree):
                if isinstance(node, ast.Call):
                    callee = dotted_name(node.func)
                    if callee in _TIMER_CALLS:
                        findings.append(
                            unit.finding(
                                self.id, node,
                                f"`{callee}()` times a region outside the "
                                f"telemetry layer, so the measurement never "
                                f"reaches traces or histograms; {self.hint}",
                            )
                        )
                    elif callee in _RESOURCE_CALLS:
                        findings.append(
                            unit.finding(
                                self.id, node,
                                f"`{callee}()` probes process resources "
                                f"outside the telemetry layer, so the "
                                f"measurement never reaches the resource.* "
                                f"gauges or /metrics; publish it through "
                                f"repro.obs.ResourceSampler instead; "
                                f"{self.hint}",
                            )
                        )
        for name, kind, node in _instruments(unit):
            if not _NAME_RE.match(name):
                findings.append(
                    unit.finding(
                        self.id, node,
                        f"{kind} name {name!r} is not dotted lowercase "
                        f"(expected e.g. 'sht.plan_cache.hits'); {self.hint}",
                    )
                )
        return findings

    def check_project(
        self, units: "list[ModuleUnit]", ctx: ProjectContext
    ) -> Iterable[Finding]:
        # One instrument kind per name across the whole tree.  A span
        # feeds a histogram `<name>.seconds`, so it claims that name.
        seen: dict = {}
        findings: list[Finding] = []
        for unit in units:
            if not self.applies_to(unit.relpath):
                continue
            for name, kind, node in sorted(
                _instruments(unit), key=lambda item: item[2].lineno
            ):
                if kind == "span":
                    name, kind = f"{name}.seconds", "histogram"
                if not _NAME_RE.match(name):
                    continue  # already reported by check_module
                prior = seen.setdefault(name, (kind, unit.relpath, node.lineno))
                if prior[0] != kind:
                    findings.append(
                        unit.finding(
                            self.id, node,
                            f"instrument name {name!r} is used as a {kind} "
                            f"here but as a {prior[0]} at "
                            f"{prior[1]}:{prior[2]}; the registry raises on "
                            f"cross-kind reuse at runtime — rename one of "
                            f"them; {self.hint}",
                        )
                    )
        return findings
