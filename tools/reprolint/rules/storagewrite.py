"""Non-finite-write guard for the persistent storage layer.

PR 5's other corruption bug: an ``int16`` encode of a NaN chunk wrote an
all-zero payload behind a ``max_abs_error: nan`` manifest entry.  The
fix routes every shard write through :func:`_require_finite` *before*
anything touches disk.  This rule keeps that invariant structural: in
``src/repro/storage/``, any function that calls ``np.savez`` /
``np.savez_compressed`` / ``np.save`` must reach a
``*require_finite*``-named validator through the module's own call
graph (directly, or via helpers like ``_encode``), so a future writer
path cannot quietly skip validation.

The reachability check is transitive within the module: ``_write_shard``
passes because it calls ``_encode`` which calls ``_require_finite``.
A deliberately unvalidated writer (e.g. a lossless-only debug dump)
gets a pragma with its reason, not an exemption.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.reprolint.model import Finding, ModuleUnit
from tools.reprolint.rulebase import LINT_RULES, ProjectContext, Rule, dotted_name

__all__ = ["NonFiniteWriteRule"]

_WRITERS = {"savez", "savez_compressed", "save"}


@LINT_RULES.register(
    "nonfinite-write",
    description=(
        "storage/ shard writers must be dominated by a _require_finite-style "
        "validation call"
    ),
)
class NonFiniteWriteRule(Rule):
    id = "nonfinite-write"
    hint = (
        "call _require_finite (directly or through the encode helper) before "
        "the write, so lossy encodings can never persist NaN/Inf silently"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/storage/")

    def check_module(
        self, unit: ModuleUnit, ctx: ProjectContext
    ) -> Iterable[Finding]:
        # Module call graph keyed on bare function names: good enough for
        # a module's own helpers, which is the only scope that matters.
        functions: dict[str, ast.AST] = {}
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[node.name] = node

        calls: dict[str, set[str]] = {}
        for name, func in functions.items():
            called: set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    target = dotted_name(node.func).split(".")[-1]
                    if target:
                        called.add(target)
            calls[name] = called

        def reaches_validator(name: str, seen: "set[str]") -> bool:
            if name in seen:
                return False
            seen.add(name)
            for target in calls.get(name, ()):
                if "require_finite" in target:
                    return True
                if target in functions and reaches_validator(target, seen):
                    return True
            return False

        findings: list[Finding] = []
        for name, func in functions.items():
            writer_calls = [
                node for node in ast.walk(func)
                if isinstance(node, ast.Call)
                and dotted_name(node.func).split(".")[-1] in _WRITERS
                and dotted_name(node.func).split(".")[0] in {"np", "numpy"}
            ]
            if not writer_calls:
                continue
            if reaches_validator(name, set()):
                continue
            for call in writer_calls:
                findings.append(
                    unit.finding(
                        self.id, call,
                        f"{name} writes arrays to disk without any reachable "
                        f"*require_finite* validation; {self.hint}",
                    )
                )
        return findings
