"""Checked-in baseline of grandfathered findings.

The baseline exists so the analyzer can land (and gate CI) on a tree
with known, deliberately deferred findings without blessing *new* ones.
It is a JSON file of entries, each carrying a mandatory reason::

    {
      "entries": [
        {"rule": "lock-discipline",
         "path": "src/repro/serving/service.py",
         "contains": "self._requests += 1",
         "reason": "migrating to per-counter atomics in the next PR"}
      ]
    }

Matching is by ``(rule, path)`` plus a ``contains`` substring of the
offending line — line numbers are deliberately *not* part of an entry so
unrelated edits above a finding do not invalidate the baseline.  The
baseline must stay **minimal**: an entry that matches no current finding
is reported as a ``stale-baseline`` finding (and an entry without a
reason as ``bad-baseline``), so the file can only ever shrink toward
empty as findings are fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from tools.reprolint.model import Finding

__all__ = [
    "BAD_BASELINE",
    "STALE_BASELINE",
    "Baseline",
    "BaselineEntry",
]

#: Framework rule ids for baseline self-checks.
STALE_BASELINE = "stale-baseline"
BAD_BASELINE = "bad-baseline"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    contains: str
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and self.contains in finding.snippet
        )


class Baseline:
    """The parsed baseline file plus its own validity findings."""

    def __init__(self, entries: "list[BaselineEntry]", relpath: str):
        self.entries = entries
        self.relpath = relpath

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([], "<no baseline>")

    @classmethod
    def load(cls, path: Path, root: Path) -> "Baseline":
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        if not path.exists():
            return cls([], relpath)
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                rule=str(raw.get("rule", "")),
                path=str(raw.get("path", "")),
                contains=str(raw.get("contains", "")),
                reason=str(raw.get("reason", "")).strip(),
            )
            for raw in data.get("entries", [])
        ]
        return cls(entries, relpath)

    def apply(
        self, findings: "list[Finding]"
    ) -> "tuple[list[Finding], list[Finding], int]":
        """Split findings into (kept, baseline-self-findings, suppressed).

        Every baseline entry must carry a reason and match at least one
        current finding; violations surface as findings themselves so a
        rotten baseline fails the run exactly like a rotten tree.
        """
        kept: list[Finding] = []
        suppressed = 0
        used = [False] * len(self.entries)
        for finding in findings:
            matched = False
            for index, entry in enumerate(self.entries):
                if entry.reason and entry.matches(finding):
                    used[index] = True
                    matched = True
            if matched:
                suppressed += 1
            else:
                kept.append(finding)
        self_findings: list[Finding] = []
        for index, entry in enumerate(self.entries):
            if not entry.reason:
                self_findings.append(
                    Finding(
                        rule=BAD_BASELINE,
                        path=self.relpath,
                        line=0,
                        message=(
                            f"baseline entry for [{entry.rule}] {entry.path} "
                            f"has no reason; every grandfathered finding "
                            f"must say why it is deferred"
                        ),
                        snippet=entry.contains,
                    )
                )
            elif not used[index]:
                self_findings.append(
                    Finding(
                        rule=STALE_BASELINE,
                        path=self.relpath,
                        line=0,
                        message=(
                            f"baseline entry for [{entry.rule}] {entry.path} "
                            f"({entry.contains!r}) matches no current finding; "
                            f"delete it — the baseline must stay minimal"
                        ),
                        snippet=entry.contains,
                    )
                )
        return kept, self_findings, suppressed
