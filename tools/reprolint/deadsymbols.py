"""Dead/unused-public-symbol report.

For a package directory (say ``src/repro/runtime``), read the
``__all__`` of its ``__init__.py`` and classify every public symbol by
where — outside the package itself — its name is actually referenced:

* ``src``      — referenced from production code (other ``src`` files);
* ``tests``    — referenced only from the test-suite;
* ``support``  — referenced only from benchmarks/examples/tools;
* ``unused``   — referenced nowhere outside the package.

References are collected from the AST (bare names and attribute
accesses), so string mentions in docs don't count and renames can't
hide.  The report is evidence, not a verdict — ROADMAP item 5 uses it
to decide what `repro.runtime`/`repro.systems` machinery earns its
keep — and is exposed as ``python -m tools.reprolint --dead-public``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint.engine import collect_files

__all__ = ["dead_symbol_report"]

_DEFAULT_USAGE_DIRS = ("src", "tests", "benchmarks", "examples", "tools")


def _public_symbols(init_path: Path) -> list[str]:
    tree = ast.parse(init_path.read_text(encoding="utf-8"), filename=str(init_path))
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return [
                        el.value
                        for el in stmt.value.elts
                        if isinstance(el, ast.Constant) and isinstance(el.value, str)
                    ]
    return []


def _referenced_names(path: Path) -> set[str]:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError:
        return set()
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.name.split(".")[-1])
                if alias.asname:
                    names.add(alias.asname)
    return names


def _bucket(relpath: str) -> str:
    first = relpath.split("/", 1)[0]
    if first == "src":
        return "src"
    if first == "tests":
        return "tests"
    return "support"


def dead_symbol_report(
    root: "str | Path",
    packages: "list[str]",
    usage_dirs: "tuple[str, ...] | list[str]" = _DEFAULT_USAGE_DIRS,
) -> dict:
    """Classify every public symbol of ``packages`` by external usage."""
    root = Path(root).resolve()

    usages: dict[str, set[str]] = {}
    for directory in usage_dirs:
        for path in collect_files(root, [directory]):
            relpath = path.resolve().relative_to(root).as_posix()
            usages[relpath] = _referenced_names(path)

    report: dict = {"packages": {}}
    for package in packages:
        package_dir = (root / package).resolve()
        init_path = package_dir / "__init__.py"
        relprefix = package_dir.relative_to(root).as_posix() + "/"
        symbols = _public_symbols(init_path) if init_path.exists() else []
        entries = {}
        for symbol in symbols:
            buckets: dict[str, list[str]] = {"src": [], "tests": [], "support": []}
            for relpath, names in usages.items():
                if relpath.startswith(relprefix):
                    continue  # the package referencing itself proves nothing
                if symbol in names:
                    buckets[_bucket(relpath)].append(relpath)
            if buckets["src"]:
                status = "used-in-src"
            elif buckets["tests"] and buckets["support"]:
                status = "tests-and-support-only"
            elif buckets["tests"]:
                status = "tests-only"
            elif buckets["support"]:
                status = "support-only"
            else:
                status = "unused"
            entries[symbol] = {
                "status": status,
                "src": sorted(buckets["src"]),
                "tests": sorted(buckets["tests"]),
                "support": sorted(buckets["support"]),
            }
        report["packages"][package] = {
            "symbols": entries,
            "counts": _count_statuses(entries),
        }
    return report


def _count_statuses(entries: dict) -> dict:
    counts: dict[str, int] = {}
    for entry in entries.values():
        counts[entry["status"]] = counts.get(entry["status"], 0) + 1
    return counts


def render_report(report: dict) -> str:
    lines: list[str] = []
    for package, data in report["packages"].items():
        lines.append(f"{package}:")
        for symbol, entry in sorted(data["symbols"].items()):
            refs = entry["src"] or entry["tests"] or entry["support"]
            where = f" ({len(refs)} ref file(s))" if refs else ""
            lines.append(f"  {symbol:28s} {entry['status']}{where}")
        summary = ", ".join(
            f"{count} {status}" for status, count in sorted(data["counts"].items())
        )
        lines.append(f"  -- {summary or 'no public symbols'}")
    return "\n".join(lines)
