"""Rule interface and the rule registry.

Rules register themselves in :data:`LINT_RULES` — a
:class:`repro.util.registry.BackendRegistry`, the same mechanism the
emulator uses for SHT backends and Cholesky precision variants — so
adding a rule is one decorated class, no edits to the engine, and an
unknown rule id in a pragma or a ``--rule`` filter produces an error
that lists the whole catalogue.

A rule implements one (or both) of two hooks:

* :meth:`Rule.check_module` — called once per parsed file; the workhorse
  for syntactic rules (locking, determinism, index recovery, style).
* :meth:`Rule.check_project` — called once per run with every unit; for
  cross-file rules (API hygiene resolves ``__all__`` re-export chains
  and cross-references ``docs/api.md``).

``applies_to`` scopes a rule by path so e.g. determinism constraints
bind ``src/repro`` without outlawing seeded benchmarks.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Iterator

REPO_ROOT = Path(__file__).resolve().parents[2]
_SRC = REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.util.registry import BackendRegistry, UnknownBackendError  # noqa: E402

from tools.reprolint.model import Finding, ModuleUnit  # noqa: E402

__all__ = [
    "LINT_RULES",
    "ProjectContext",
    "REPO_ROOT",
    "Rule",
    "UnknownBackendError",
    "all_rule_ids",
    "create_rules",
]

#: Registry of every lint rule, keyed by rule id.
LINT_RULES = BackendRegistry("reprolint rule", doc_hint="docs/analysis.md")


class ProjectContext:
    """Shared per-run state handed to every rule.

    Caches file reads and parses so cross-file rules (API hygiene
    following re-export chains into modules outside the scanned paths)
    stay cheap, and exposes the analysis ``root`` every relative path is
    resolved against.
    """

    def __init__(self, root: Path):
        self.root = Path(root).resolve()
        self._texts: dict[str, "str | None"] = {}
        self._trees: dict[str, "ast.Module | None"] = {}

    def read_text(self, relpath: str) -> "str | None":
        """Contents of ``root / relpath``, or ``None`` when unreadable."""
        if relpath not in self._texts:
            try:
                self._texts[relpath] = (self.root / relpath).read_text(
                    encoding="utf-8"
                )
            except OSError:
                self._texts[relpath] = None
        return self._texts[relpath]

    def parse(self, relpath: str) -> "ast.Module | None":
        """Parsed AST of ``root / relpath``, or ``None`` when unavailable."""
        if relpath not in self._trees:
            text = self.read_text(relpath)
            try:
                tree = None if text is None else ast.parse(text, filename=relpath)
            except SyntaxError:
                tree = None
            self._trees[relpath] = tree
        return self._trees[relpath]


class Rule:
    """Base class for lint rules; subclasses set ``id`` and ``hint``."""

    id: str = ""
    #: One-line remediation pointer appended to finding messages.
    hint: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether ``check_module`` should run for this file."""
        return True

    def check_module(
        self, unit: ModuleUnit, ctx: ProjectContext
    ) -> Iterable[Finding]:
        return ()

    def check_project(
        self, units: "list[ModuleUnit]", ctx: ProjectContext
    ) -> Iterable[Finding]:
        return ()


def create_rules(ids: "Iterable[str] | None" = None) -> list[Rule]:
    """Instantiate the requested rules (all registered rules by default).

    Unknown ids raise :class:`UnknownBackendError` listing the catalogue.
    """
    names = list(ids) if ids is not None else LINT_RULES.names()
    return [LINT_RULES.create(name) for name in names]


def all_rule_ids() -> list[str]:
    return LINT_RULES.names()


def iter_functions(tree: ast.AST) -> "Iterator[ast.AST]":
    """Every function/async-function definition in ``tree``, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def dotted_name(node: ast.AST) -> str:
    """Dotted source text of a Name/Attribute chain ('' when not one)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
