"""reprolint — repo-native static analysis for the emulator's invariants.

An AST-based analyzer (stdlib ``ast``, no third-party dependencies)
whose rules encode invariants this repository has already paid for in
corruption bugs: lock discipline around shared mutable state,
``SeedSequence``-only randomness, exact-integer index recovery, the
``state_dict``/``from_state`` pairing, validated storage writes, and a
resolvable, documented public API.  See ``docs/analysis.md`` for the
rule catalogue and the pragma/baseline workflow.

Run it as ``python -m tools.reprolint src tools benchmarks``; the
test-suite gates it under ``tests/lint/`` and CI runs it as a dedicated
job.

Public API (used by the tests and the docs snippets):

* :func:`lint_paths` / :func:`lint_source` — run the analysis;
* :data:`LINT_RULES` — the rule registry (a
  :class:`repro.util.registry.BackendRegistry`);
* :class:`Finding`, :class:`Report`, :class:`Baseline` — result model;
* :func:`dead_symbol_report` — the unused-public-symbol report.
"""

from tools.reprolint.baseline import Baseline, BaselineEntry
from tools.reprolint.deadsymbols import dead_symbol_report
from tools.reprolint.engine import Report, collect_files, lint_paths, lint_source
from tools.reprolint.model import Finding, ModuleUnit, parse_pragmas
from tools.reprolint.rulebase import (
    LINT_RULES,
    ProjectContext,
    Rule,
    all_rule_ids,
    create_rules,
)
import tools.reprolint.rules  # noqa: F401  (registers the built-in rules)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LINT_RULES",
    "ModuleUnit",
    "ProjectContext",
    "Report",
    "Rule",
    "all_rule_ids",
    "collect_files",
    "create_rules",
    "dead_symbol_report",
    "lint_paths",
    "lint_source",
    "parse_pragmas",
]
