"""Core data model of the analyzer: findings, parsed modules, pragmas.

A :class:`Finding` is one rule violation at one source location.  A
:class:`ModuleUnit` is one parsed file (path, source, AST) handed to every
rule.  Pragma parsing lives here too because suppression is a property of
the *source line*, not of any individual rule: a line carrying
``# reprolint: allow[rule-id] reason`` suppresses that rule's findings on
the line (a pragma on a line of its own applies to the next line), and a
pragma without a reason suppresses nothing — it becomes a
``bad-pragma`` finding instead, so intent can never be silent.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "BAD_PRAGMA",
    "Finding",
    "ModuleUnit",
    "Pragma",
    "parse_pragmas",
]

#: Framework-emitted rule id for malformed suppression pragmas.
BAD_PRAGMA = "bad-pragma"

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*allow\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    snippet: str = ""

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        location = f"{self.path}:{self.line}"
        text = f"{location}: [{self.rule}] {self.message}"
        if self.snippet:
            text += f"\n    {self.snippet}"
        return text


@dataclass(frozen=True)
class Pragma:
    """A parsed ``# reprolint: allow[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    #: Line the pragma suppresses (itself, or the next line when the
    #: pragma stands on a line of its own).
    target_line: int


class ModuleUnit:
    """One parsed source file as seen by every rule."""

    def __init__(self, relpath: str, source: str, tree: ast.Module):
        #: Path relative to the analysis root, POSIX separators.
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.pragmas = parse_pragmas(source)

    @classmethod
    def from_file(cls, path: Path, root: Path) -> "ModuleUnit":
        source = path.read_text(encoding="utf-8")
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
        tree = ast.parse(source, filename=relpath)
        return cls(relpath, source, tree)

    def line_text(self, line: int) -> str:
        """Stripped source text of a 1-indexed line ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node_or_line, message: str) -> Finding:
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(
            rule=rule,
            path=self.relpath,
            line=int(line),
            message=message,
            snippet=self.line_text(int(line)),
        )


def parse_pragmas(source: str) -> list[Pragma]:
    """Every ``# reprolint: allow[...]`` pragma in a file, in order.

    Only real ``#`` comments count — the source is tokenized, so pragma
    *examples* inside docstrings or string literals are inert.  The
    pragma's ``target_line`` is its own line when it trails code, or the
    following line when the pragma is the only thing on its line — so
    long suppressed statements can keep the reason readable above them.
    """
    pragmas: list[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return pragmas
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = match.group("reason").strip()
        line = token.start[0]
        code_before = lines[line - 1][: token.start[1]].strip()
        target = line if code_before else line + 1
        pragmas.append(
            Pragma(line=line, rules=rules, reason=reason, target_line=target)
        )
    return pragmas
