"""Entry point for ``python -m tools.reprolint``."""

from tools.reprolint.cli import main

raise SystemExit(main())
