"""Command-line interface: ``python -m tools.reprolint``.

Usage::

    python -m tools.reprolint [paths ...] [--format text|json]
                              [--output FILE] [--baseline FILE]
                              [--no-baseline] [--rule ID ...]
                              [--list-rules]
    python -m tools.reprolint --dead-public src/repro/runtime src/repro/systems

Default paths are ``src tools benchmarks`` (tests are deliberately out
of scope: they exercise hostile inputs on purpose).  Exit status is 0
when no non-baselined finding survives, 1 otherwise — which is what the
tier-1 pytest wrapper and the CI ``lint`` job gate on.  ``--output``
writes the report to a file *as well as* honouring ``--format`` on
stdout, so CI can upload the JSON artifact even on failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.reprolint.baseline import Baseline
from tools.reprolint.deadsymbols import dead_symbol_report, render_report
from tools.reprolint.engine import lint_paths
from tools.reprolint.rulebase import LINT_RULES, REPO_ROOT

__all__ = ["main"]

DEFAULT_PATHS = ("src", "tools", "benchmarks")
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Repo-native static analysis: invariant lint rules and "
        "the lock-discipline race checker (see docs/analysis.md).",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to analyze (default: src tools benchmarks)",
    )
    parser.add_argument(
        "--root", default=str(REPO_ROOT),
        help="analysis root that relative paths (and finding paths) resolve "
        "against (default: the repository root)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the JSON report to FILE (written even on failure)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=str(DEFAULT_BASELINE),
        help="baseline file of grandfathered findings "
        "(default: tools/reprolint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline and report every finding",
    )
    parser.add_argument(
        "--rule", action="append", metavar="ID", default=None,
        help="run only the given rule id (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--dead-public", action="store_true",
        help="instead of linting, report dead/unused public symbols of the "
        "given package directories (e.g. src/repro/runtime)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, description in sorted(LINT_RULES.describe().items()):
            print(f"{name:18s} {description}")
        return 0

    root = Path(args.root).resolve()

    if args.dead_public:
        packages = args.paths or ["src/repro/runtime", "src/repro/systems"]
        report = dead_symbol_report(root, packages)
        if args.output:
            Path(args.output).write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        if args.format == "json":
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_report(report))
        return 0

    baseline = None
    if not args.no_baseline:
        baseline = Baseline.load(Path(args.baseline), root)
    report = lint_paths(root, args.paths, rules=args.rule, baseline=baseline)

    if args.output:
        Path(args.output).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
        suppressed = report.suppressed_by_pragma + report.suppressed_by_baseline
        print(
            f"reprolint: {report.scanned} file(s), "
            f"{len(report.rule_ids)} rule(s), {status}"
            + (f", {suppressed} suppressed" if suppressed else "")
        )
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
