"""The analysis driver: collect files, run rules, apply pragmas and baseline.

The pipeline is deliberately linear:

1. collect ``*.py`` files under the requested paths (skipping caches and
   hidden directories);
2. parse each into a :class:`~tools.reprolint.model.ModuleUnit` — a file
   that does not parse is itself a finding (``syntax-error``), never a
   crash;
3. run every rule's per-module hook, then every rule's project hook;
4. drop findings suppressed by a well-formed pragma (and emit
   ``bad-pragma`` for malformed ones);
5. drop findings matched by a justified baseline entry (and emit
   ``stale-baseline`` / ``bad-baseline`` for entries that no longer
   earn their place).

What remains is the report; a non-empty report is a failed run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from tools.reprolint.baseline import Baseline
from tools.reprolint.model import BAD_PRAGMA, Finding, ModuleUnit
from tools.reprolint.rulebase import (
    LINT_RULES,
    ProjectContext,
    Rule,
    create_rules,
)

__all__ = ["Report", "collect_files", "lint_paths", "lint_source"]

#: Framework rule id for unparseable files.
SYNTAX_ERROR = "syntax-error"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    scanned: int = 0
    suppressed_by_pragma: int = 0
    suppressed_by_baseline: int = 0
    rule_ids: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "ok": self.ok,
            "scanned_files": self.scanned,
            "rules": self.rule_ids,
            "suppressed_by_pragma": self.suppressed_by_pragma,
            "suppressed_by_baseline": self.suppressed_by_baseline,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def collect_files(root: Path, paths: "Sequence[str | Path]") -> list[Path]:
    """Every ``*.py`` file under ``paths`` (resolved against ``root``), sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file() and path.suffix == ".py":
            files.add(path)
            continue
        for candidate in path.rglob("*.py"):
            parts = set(candidate.relative_to(path).parts[:-1])
            if parts & _SKIP_DIRS or any(p.startswith(".") for p in parts):
                continue
            files.add(candidate)
    return sorted(files)


def _apply_pragmas(
    unit: ModuleUnit, findings: "list[Finding]", known_rules: "set[str]"
) -> "tuple[list[Finding], list[Finding], int]":
    """Split one unit's findings into (kept, pragma-findings, suppressed)."""
    pragma_findings: list[Finding] = []
    suppressing: dict[int, set[str]] = {}
    for pragma in unit.pragmas:
        unknown = [r for r in pragma.rules if r != "*" and r not in known_rules]
        if not pragma.rules:
            pragma_findings.append(
                unit.finding(
                    BAD_PRAGMA, pragma.line,
                    "pragma names no rule; write "
                    "`# reprolint: allow[rule-id] reason`",
                )
            )
            continue
        if unknown:
            pragma_findings.append(
                unit.finding(
                    BAD_PRAGMA, pragma.line,
                    f"pragma names unknown rule(s) {', '.join(unknown)}; "
                    f"known rules: {', '.join(sorted(known_rules))}",
                )
            )
            continue
        if not pragma.reason:
            pragma_findings.append(
                unit.finding(
                    BAD_PRAGMA, pragma.line,
                    "pragma has no reason; a suppression must say why "
                    "(`# reprolint: allow[rule-id] reason`)",
                )
            )
            continue
        targets = suppressing.setdefault(pragma.target_line, set())
        targets.update(pragma.rules)
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        allowed = suppressing.get(finding.line, set())
        if finding.rule in allowed or "*" in allowed:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, pragma_findings, suppressed


def lint_paths(
    root: "str | Path",
    paths: "Sequence[str | Path]",
    *,
    rules: "Iterable[str] | None" = None,
    baseline: "Baseline | None" = None,
) -> Report:
    """Analyze ``paths`` under ``root`` and return the :class:`Report`."""
    root = Path(root).resolve()
    ctx = ProjectContext(root)
    active = create_rules(rules)
    known = {rule.id for rule in active} | set(LINT_RULES.names())
    report = Report(rule_ids=[rule.id for rule in active])

    units: list[ModuleUnit] = []
    for path in collect_files(root, paths):
        report.scanned += 1
        try:
            units.append(ModuleUnit.from_file(path, root))
        except SyntaxError as exc:
            relpath = path.resolve().relative_to(root).as_posix()
            report.findings.append(
                Finding(
                    rule=SYNTAX_ERROR,
                    path=relpath,
                    line=int(exc.lineno or 0),
                    message=f"file does not parse: {exc.msg}",
                )
            )

    per_unit: dict[str, list[Finding]] = {unit.relpath: [] for unit in units}
    for unit in units:
        for rule in active:
            if rule.applies_to(unit.relpath):
                per_unit[unit.relpath].extend(rule.check_module(unit, ctx))
    project_findings: list[Finding] = []
    for rule in active:
        project_findings.extend(rule.check_project(units, ctx))
    for finding in project_findings:
        if finding.path in per_unit:
            per_unit[finding.path].append(finding)
        else:
            report.findings.append(finding)

    surviving: list[Finding] = []
    for unit in units:
        kept, pragma_findings, suppressed = _apply_pragmas(
            unit, per_unit[unit.relpath], known
        )
        surviving.extend(kept)
        surviving.extend(pragma_findings)
        report.suppressed_by_pragma += suppressed

    if baseline is not None:
        surviving_all = report.findings + surviving
        kept, self_findings, suppressed = baseline.apply(surviving_all)
        report.findings = kept + self_findings
        report.suppressed_by_baseline = suppressed
    else:
        report.findings.extend(surviving)

    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def lint_source(
    source: str,
    relpath: str = "src/repro/example.py",
    *,
    rules: "Iterable[str] | None" = None,
) -> list[Finding]:
    """Analyze one in-memory module; the unit-test / documentation helper.

    Pragmas in ``source`` are honoured; no baseline is applied.  Rules
    needing project context (``api-hygiene``) see a single-unit project.
    """
    unit = ModuleUnit(relpath, source, ast.parse(source, filename=relpath))
    ctx = ProjectContext(Path("."))
    active = create_rules(rules)
    known = {rule.id for rule in active} | set(LINT_RULES.names())
    findings: list[Finding] = []
    for rule in active:
        if rule.applies_to(unit.relpath):
            findings.extend(rule.check_module(unit, ctx))
    for rule in active:
        findings.extend(rule.check_project([unit], ctx))
    kept, pragma_findings, _ = _apply_pragmas(unit, findings, known)
    result = kept + pragma_findings
    result.sort(key=lambda f: (f.path, f.line, f.rule))
    return result
