"""Aggregate a repro trace (JSON-lines spans) into a per-name profile.

:mod:`repro.obs` writes one JSON object per closed span; this tool turns
that stream into the table a profiler would print: per span name, the
call count, total (inclusive) time, **self time** (total minus the time
spent in direct children), and a percentile summary of the individual
durations.  Self time is what makes nested traces readable — a
``facade.emulate`` span that spends 95% of its time inside
``sht.inverse`` children shows up with a small self time, pointing the
reader at the child.

Usage::

    PYTHONPATH=src python tools/tracereport.py trace.jsonl
    PYTHONPATH=src python tools/tracereport.py trace.jsonl --sort total
    PYTHONPATH=src python tools/tracereport.py trace.jsonl --json

Campaign process workers write sibling files (``trace.jsonl.<pid>``);
the report discovers and merges them automatically, attributing child
time within each process (span ids are only unique per process).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

__all__ = ["TraceRecords", "aggregate", "load_trace", "main", "render_table"]

_COLUMNS = ("calls", "total_s", "self_s", "mean_s", "p50_s", "p90_s", "p99_s", "max_s")
_SORT_KEYS = {"self": "self_s", "total": "total_s", "calls": "calls", "name": "name"}


class TraceRecords(list):
    """Span records plus how many corrupt lines were skipped reading them.

    A plain ``list`` of record dicts (so every existing
    ``aggregate(load_trace(...))`` caller keeps working) with a
    ``skipped`` attribute counting undecodable JSONL lines.
    """

    def __init__(self, records=(), skipped: int = 0):
        super().__init__(records)
        self.skipped = int(skipped)


def load_trace(path: "str | Path") -> TraceRecords:
    """Read span records from ``path`` and any ``<path>.<pid>`` siblings.

    A truncated or corrupt line — a campaign worker killed mid-write
    leaves a torn trailing record — is skipped rather than crashing the
    whole report; the returned list's ``skipped`` attribute counts the
    drops and :func:`main` reports them.
    """
    path = Path(path)
    siblings = sorted(
        sib for sib in path.parent.glob(path.name + ".*")
        if sib.suffix.lstrip(".").isdigit()
    )
    records = TraceRecords()
    for source in [path, *siblings]:
        with open(source, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    records.skipped += 1
                    continue
                if isinstance(record, dict):
                    records.append(record)
                else:
                    records.skipped += 1
    return records


def _percentile(ordered: "list[float]", q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample (same convention
    as :class:`repro.obs.MetricsRegistry` histogram summaries)."""
    return ordered[int(round(q * (len(ordered) - 1)))]


def aggregate(records: "list[dict]") -> list[dict]:
    """Per-name statistics over span records, sorted by self time.

    Each row carries ``name``/``calls``/``total_s``/``self_s`` plus
    ``mean_s``/``p50_s``/``p90_s``/``p99_s``/``max_s`` over the
    individual span durations.  Self time is inclusive time minus the
    inclusive time of *direct* children (clamped at zero: concurrent
    children inside one span can legitimately sum past their parent).
    """
    child_seconds: "defaultdict[tuple, float]" = defaultdict(float)
    for record in records:
        parent = record.get("parent_id")
        if parent is not None:
            child_seconds[(record.get("pid"), parent)] += float(record["seconds"])

    durations: "defaultdict[str, list[float]]" = defaultdict(list)
    self_time: "defaultdict[str, float]" = defaultdict(float)
    for record in records:
        name = record["name"]
        seconds = float(record["seconds"])
        durations[name].append(seconds)
        nested = child_seconds.get((record.get("pid"), record.get("span_id")), 0.0)
        self_time[name] += max(seconds - nested, 0.0)

    rows = []
    for name, values in durations.items():
        ordered = sorted(values)
        total = sum(values)
        rows.append({
            "name": name,
            "calls": len(values),
            "total_s": total,
            "self_s": self_time[name],
            "mean_s": total / len(values),
            "p50_s": _percentile(ordered, 0.50),
            "p90_s": _percentile(ordered, 0.90),
            "p99_s": _percentile(ordered, 0.99),
            "max_s": ordered[-1],
        })
    rows.sort(key=lambda row: (-row["self_s"], row["name"]))
    return rows


def render_table(rows: "list[dict]") -> str:
    """Fixed-width text table of :func:`aggregate` rows."""
    headers = ("name", *_COLUMNS)
    table = [headers]
    for row in rows:
        table.append((
            row["name"],
            str(row["calls"]),
            *(f"{row[column]:.6f}" for column in _COLUMNS[1:]),
        ))
    widths = [max(len(line[i]) for line in table) for i in range(len(headers))]
    lines = []
    for index, line in enumerate(table):
        cells = [line[0].ljust(widths[0])]
        cells += [cell.rjust(width) for cell, width in zip(line[1:], widths[1:])]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSON-lines trace file written by repro.obs")
    parser.add_argument("--sort", choices=sorted(_SORT_KEYS), default="self",
                        help="row ordering (default: self time, descending)")
    parser.add_argument("--top", type=int, default=0,
                        help="only show the first N rows (0 = all)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit rows as JSON instead of a table")
    args = parser.parse_args(argv)

    records = load_trace(args.trace)
    skipped = getattr(records, "skipped", 0)
    if skipped:
        print(
            f"{args.trace}: skipped {skipped} corrupt line(s)", file=sys.stderr
        )
    if not records:
        print(f"{args.trace}: no span records", file=sys.stderr)
        return 1
    rows = aggregate(records)
    if args.sort != "self":
        key = _SORT_KEYS[args.sort]
        reverse = args.sort != "name"
        rows.sort(key=lambda row: row[key], reverse=reverse)
    if args.top > 0:
        rows = rows[: args.top]
    if args.as_json:
        print(json.dumps(
            {"spans": len(records), "skipped": skipped, "rows": rows}, indent=2
        ))
    else:
        torn = f", {skipped} corrupt skipped" if skipped else ""
        print(f"{len(records)} spans, {len(rows)} names{torn} — {args.trace}")
        print(render_table(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
