"""Repository tooling: documentation generators and the reprolint analyzer.

This marker makes ``tools`` importable so the static-analysis framework
can be invoked as ``python -m tools.reprolint`` from the repository root
(and imported by the test-suite).  The standalone scripts
(``check_docs.py``, ``gen_api_docs.py``) keep working unchanged.
"""
