"""Execute the fenced ``python`` code blocks in README.md and docs/.

Documentation that is not executed rots.  This checker extracts every
fenced block whose info string is ``python`` from the given markdown
files (README.md and docs/*.md by default) and runs them top to bottom:
blocks within one document share a namespace, so a quickstart can build
on earlier snippets exactly as a reader would type them.  Each document
runs in its own temporary working directory, so snippets may freely
write files ("emulator.npz") without touching the repository.

Blocks fenced as anything other than ``python`` (``bash``, ``text``,
plain ```` ``` ````) are ignored.  A failure prints the offending file,
block index and source before re-raising, and the process exits
non-zero — which is what makes the CI docs job a real gate.

Usage::

    PYTHONPATH=src python tools/check_docs.py [files...]
"""

from __future__ import annotations

import contextlib
import os
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

_FENCE = re.compile(
    r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL
)


def extract_python_blocks(text: str) -> list[str]:
    """The source of every ```` ```python ```` fenced block, in order."""
    return [match.group(1) for match in _FENCE.finditer(text)]


@contextlib.contextmanager
def _temporary_cwd():
    previous = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as tmp:
        os.chdir(tmp)
        try:
            yield
        finally:
            os.chdir(previous)


def run_document(path: Path) -> int:
    """Execute a document's python blocks in one shared namespace.

    Returns the number of blocks executed; raises on the first failure.
    """
    blocks = extract_python_blocks(path.read_text(encoding="utf-8"))
    if not blocks:
        return 0
    namespace: dict = {"__name__": f"docsnippets:{path.name}"}
    with _temporary_cwd():
        for index, source in enumerate(blocks, start=1):
            try:
                code = compile(source, f"{path}#block{index}", "exec")
                exec(code, namespace)  # noqa: S102 - executing our own docs
            except Exception:
                print(f"\nFAILED: {path} block {index}:\n{source}",
                      file=sys.stderr)
                raise
    return len(blocks)


def main(argv: list[str] | None = None) -> int:
    args = [Path(a) for a in (argv if argv is not None else sys.argv[1:])]
    if not args:
        args = [REPO_ROOT / "README.md"]
        args += sorted((REPO_ROOT / "docs").glob("*.md"))
    total = 0
    for path in args:
        count = run_document(path)
        total += count
        print(f"{path.relative_to(REPO_ROOT) if path.is_absolute() else path}: "
              f"{count} block(s) OK")
    if total == 0:
        print("no python blocks found", file=sys.stderr)
        return 1
    print(f"all {total} documentation block(s) executed successfully")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
