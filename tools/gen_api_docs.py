"""Generate ``docs/api.md`` from the real docstrings.

The reference is *generated, not written*: every entry is the live
signature plus the live docstring of the exported object, and the
backend/scenario catalogues are read out of the registries themselves —
so the document cannot drift from the code.  CI runs ``--check`` to fail
when ``docs/api.md`` is stale; regenerate with::

    PYTHONPATH=src python tools/gen_api_docs.py

Section anchors are stable on purpose: ``UnknownBackendError`` messages
point users at ``docs/api.md#sht-backends``, ``#scenarios`` and
``#cholesky-precision-variants``.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

HEADER = """\
# API reference

*Generated from the package docstrings by `tools/gen_api_docs.py` — do
not edit by hand; run `PYTHONPATH=src python tools/gen_api_docs.py` to
regenerate (CI checks that this file is up to date).*

All public entry points live on the top-level `repro` namespace; the
classes below are re-exported from their home modules.  See
[`architecture.md`](architecture.md) for how the pieces fit together.
"""


def _doc(obj) -> str:
    doc = inspect.getdoc(obj) or "(no docstring)"
    return doc.rstrip()


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _entry(qualname: str, obj, *, methods: tuple[str, ...] = ()) -> str:
    """One reference entry: heading, signature and verbatim docstring."""
    lines = [f"### `{qualname}`", ""]
    if inspect.isclass(obj):
        lines.append(f"```\nclass {qualname}{_signature(obj)}\n```")
    else:
        lines.append(f"```\n{qualname}{_signature(obj)}\n```")
    lines += ["", "```text", _doc(obj), "```", ""]
    for name in methods:
        method = getattr(obj, name)
        lines += [
            f"#### `{qualname}.{name}`",
            "",
            f"```\n{name}{_signature(method)}\n```",
            "",
            "```text",
            _doc(method),
            "```",
            "",
        ]
    return "\n".join(lines)


def _catalogue(registry) -> str:
    """A registry's live name -> description table."""
    rows = ["| name | description |", "| --- | --- |"]
    for name in registry.names():
        spec = registry.resolve(name)
        alias = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        rows.append(f"| `{name}`{alias} | {spec.description} |")
    return "\n".join(rows)


def generate() -> str:
    import repro
    from repro.api.artifact import EmulatorArtifact
    from repro.core.window import SpatialWindow
    from repro.data.era5_like import Era5LikeConfig, Era5LikeGenerator
    from repro.linalg.policies import CHOLESKY_VARIANTS
    from repro.scenarios.campaign import (
        CampaignManifest,
        iter_chunk_arrays,
        plan_campaign,
        run_campaign,
    )
    from repro.scenarios.registry import SCENARIOS, list_scenarios, register_scenario
    from repro.scenarios.spec import ScenarioSpec
    from repro.serving.request import FieldRequest
    from repro.serving.service import EmulationService
    from repro.sht.plancache import (
        clear_plan_cache,
        get_plan,
        plan_cache_stats,
        set_plan_cache_limit,
    )
    from repro.storage.accounting import (
        campaign_storage_report,
        serving_storage_report,
    )
    from repro.storage.chunkstore import ChunkStore
    from repro.tuning import (
        MachineProfile,
        TuningPlan,
        calibrate_machine,
        load_or_calibrate,
        plan_campaign_execution,
        plan_serving_cache_bytes,
    )
    from repro.util.registry import BackendRegistry, UnknownBackendError

    parts = [HEADER]

    parts.append("## Facade\n")
    parts.append(
        "The six-call workflow: fit once, persist, then emulate — or serve —\n"
        "anywhere.\n"
    )
    for name in ("fit", "save", "load", "emulate", "emulate_stream", "serve"):
        parts.append(_entry(f"repro.{name}", getattr(repro, name)))

    parts.append("## Serving\n")
    parts.append(
        "The on-demand emulation service: content-addressed\n"
        "`FieldRequest` objects answered from a bytes-capped chunk cache,\n"
        "an optional persistent `ChunkStore`, or coalesced batched\n"
        "synthesis.  See [`serving.md`](serving.md) for the tier design\n"
        "and the determinism contract.\n"
    )
    parts.append(_entry("repro.FieldRequest", FieldRequest,
                        methods=("address", "stream_address",
                                 "chunk_addresses", "resolve_spec")))
    parts.append(_entry("repro.EmulationService", EmulationService,
                        methods=("get", "stats", "slo_report")))
    parts.append(_entry("repro.SpatialWindow", SpatialWindow,
                        methods=("from_degrees", "extract", "validate_for")))
    parts.append(_entry("repro.ChunkStore", ChunkStore,
                        methods=("put", "get", "entry", "max_abs_error",
                                 "stats")))
    parts.append(_entry("repro.storage.accounting.serving_storage_report",
                        serving_storage_report))

    parts.append("## Campaign\n")
    for qualname, obj in (
        ("repro.run_campaign", run_campaign),
        ("repro.scenarios.campaign.plan_campaign", plan_campaign),
        ("repro.iter_chunk_arrays", iter_chunk_arrays),
        ("repro.storage.accounting.campaign_storage_report", campaign_storage_report),
    ):
        parts.append(_entry(qualname, obj))
    parts.append(_entry("repro.CampaignManifest", CampaignManifest,
                        methods=("run", "collected", "to_dict", "save")))

    parts.append("## Data\n")
    parts.append(
        "The synthetic ERA5-like dataset the pipeline fits against when no\n"
        "reanalysis archive is on disk: spectrally coloured, seed-addressed\n"
        "fields on the same Gauss–Legendre grid the emulator uses.\n"
    )
    parts.append(_entry("repro.Era5LikeConfig", Era5LikeConfig))
    parts.append(_entry("repro.Era5LikeGenerator", Era5LikeGenerator,
                        methods=("generate",)))

    parts.append("## Artifacts\n")
    parts.append(_entry("repro.EmulatorArtifact", EmulatorArtifact,
                        methods=("save", "load", "to_emulator", "nbytes")))

    parts.append("## Registries\n")
    parts.append(_entry("repro.BackendRegistry", BackendRegistry,
                        methods=("register", "resolve", "create", "names",
                                 "describe")))
    parts.append(_entry("repro.UnknownBackendError", UnknownBackendError))

    parts.append("## SHT backends\n")
    parts.append(
        "Named spherical-harmonic-transform implementations, selected via\n"
        "`EmulatorConfig.sht_method` and resolved through\n"
        "`repro.SHT_BACKENDS`.  Unknown names raise `UnknownBackendError`\n"
        "listing this catalogue.\n"
    )
    parts.append(_catalogue(repro.SHT_BACKENDS) + "\n")
    for qualname, obj in (
        ("repro.get_plan", get_plan),
        ("repro.plan_cache_stats", plan_cache_stats),
        ("repro.set_plan_cache_limit", set_plan_cache_limit),
        ("repro.clear_plan_cache", clear_plan_cache),
    ):
        parts.append(_entry(qualname, obj))

    parts.append("## Scenarios\n")
    parts.append(
        "Named forcing pathways resolved through `repro.SCENARIOS`; any\n"
        "registered name works wherever a forcing is accepted\n"
        "(`annual_forcing=...`, campaign scenario lists).  Unknown names\n"
        "raise `UnknownBackendError` listing this catalogue.\n"
    )
    parts.append(_catalogue(SCENARIOS) + "\n")
    parts.append(_entry("repro.ScenarioSpec", ScenarioSpec))
    parts.append(_entry("repro.list_scenarios", list_scenarios))
    parts.append(_entry("repro.register_scenario", register_scenario))

    parts.append("## Tuning\n")
    parts.append(
        "Cost-model-driven autotuning (`repro.tuning`): a measured\n"
        "per-host `MachineProfile` feeds a `T_compute + T_comm +\n"
        "T_latency` cost model, and the planner picks the execution knobs\n"
        "behind `run_campaign(..., tune=\"auto\")` and `serve(...,\n"
        "cache_bytes=\"auto\")`.  Tuning only moves bit-inert knobs, so\n"
        "tuned output is bit-identical to untuned.  See\n"
        "[`tuning.md`](tuning.md) for the tour.\n"
    )
    parts.append(_entry("repro.MachineProfile", MachineProfile,
                        methods=("state_dict", "from_state", "save", "load",
                                 "gemm_rate_gflops", "parallel_efficiency")))
    parts.append(_entry("repro.TuningPlan", TuningPlan,
                        methods=("to_dict",)))
    for qualname, obj in (
        ("repro.calibrate_machine", calibrate_machine),
        ("repro.tuning.load_or_calibrate", load_or_calibrate),
        ("repro.tuning.plan_campaign_execution", plan_campaign_execution),
        ("repro.tuning.plan_serving_cache_bytes", plan_serving_cache_bytes),
    ):
        parts.append(_entry(qualname, obj))

    parts.append("## Telemetry\n")
    parts.append(
        "The unified observability layer (`repro.obs`): a process-wide\n"
        "metrics registry plus hierarchical tracing spans over every hot\n"
        "path.  Telemetry is bit-inert — emitted arrays are bit-identical\n"
        "with tracing on, off, or toggled mid-run.  See\n"
        "[`observability.md`](observability.md) for the tour and\n"
        "`tools/tracereport.py` for trace aggregation.\n"
    )
    parts.append(_entry("repro.obs", repro.obs))
    parts.append(_entry("repro.obs.MetricsRegistry", repro.obs.MetricsRegistry,
                        methods=("add", "set_gauge", "observe", "counter",
                                 "gauge", "snapshot", "reset")))
    for name in ("span", "tracing", "enable", "disable", "enabled",
                 "current_span", "trace_records", "clear_trace",
                 "metrics_snapshot", "counter_add", "gauge_set", "observe",
                 "reset_metrics", "get_registry"):
        parts.append(_entry(f"repro.obs.{name}", getattr(repro.obs, name)))

    parts.append("## Operations\n")
    parts.append(
        "The operational half of `repro.obs`: live Prometheus/JSON export\n"
        "with health and readiness endpoints, a background resource\n"
        "watchdog, and service-level objectives over recorded latency\n"
        "histograms.  `tools/benchwatch.py` defends the benchmark\n"
        "trajectory in CI.  See the Operations section of\n"
        "[`observability.md`](observability.md).\n"
    )
    parts.append(_entry("repro.obs.MetricsServer", repro.obs.MetricsServer,
                        methods=("stop",)))
    parts.append(_entry("repro.obs.ResourceSampler", repro.obs.ResourceSampler,
                        methods=("sample_once", "start", "stop")))
    parts.append(_entry("repro.obs.SLO", repro.obs.SLO,
                        methods=("objectives",)))
    for name in ("start_metrics_server", "render_prometheus", "render_json",
                 "evaluate_slos", "mark_ready", "readiness",
                 "components_ready", "clear_readiness"):
        parts.append(_entry(f"repro.obs.{name}", getattr(repro.obs, name)))

    parts.append("## Cholesky precision variants\n")
    parts.append(
        "Precision policies for the tile Cholesky of the innovation\n"
        "covariance, selected via `EmulatorConfig.precision_variant` and\n"
        "resolved through `repro.CHOLESKY_VARIANTS`.\n"
    )
    parts.append(_catalogue(CHOLESKY_VARIANTS) + "\n")

    text = "\n".join(parts)
    return textwrap.dedent(text).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail if docs/api.md is out of date")
    args = parser.parse_args(argv)
    target = REPO_ROOT / "docs" / "api.md"
    text = generate()
    if args.check:
        current = target.read_text(encoding="utf-8") if target.exists() else ""
        if current != text:
            print("docs/api.md is stale; regenerate with "
                  "`PYTHONPATH=src python tools/gen_api_docs.py`",
                  file=sys.stderr)
            return 1
        print("docs/api.md is up to date")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
