#!/usr/bin/env python
"""Benchmark-trajectory regression watcher.

Every CI run produces schema-versioned ``BENCH_<name>.json`` reports
(``benchmarks/_report.py``) stamped with the git SHA — and until now
threw them away.  ``benchwatch`` turns those reports into a defended
*trajectory*: each gated metric is appended to a JSONL history under
``benchmarks/history/``, the current run is compared against the
rolling median of the recent window, and a regression beyond the
tolerance exits nonzero with the offending metric named — so a hot
path cannot quietly get slower commit over commit.

Usage::

    python tools/benchwatch.py                  # append BENCH_*.json to history
    python tools/benchwatch.py --check          # also fail on regressions
    python tools/benchwatch.py --check --no-append BENCH_fit.json

Design points:

* **Watched metrics are explicit** (:data:`WATCHLIST`): each entry
  names a benchmark, a dotted path into its ``summary``, a direction
  (``higher``/``lower`` is better), and an optional absolute slack for
  metrics that live near zero (relative tolerance alone is meaningless
  there — the telemetry ``disabled_overhead`` legitimately wobbles
  around 0.0).
* **Median, not mean**: shared-runner wall clocks are heavy-tailed;
  the rolling median over the last ``--window`` entries shrugs off a
  single slow outlier in the history.
* **Compare before append**: the current run is judged against history
  that does *not* include it, then appended — so one bad run cannot
  vouch for itself, and the history still records it for forensics.
* **Warm-up grace**: with fewer than ``MIN_HISTORY`` prior entries a
  metric is reported ``(warming up)`` and never fails — a fresh
  history cache starts accumulating instead of blocking CI.
* **Schema tolerant**: v1 reports (no ``git``/``timestamp``) are
  accepted; their history entries carry ``None`` for the commit axis.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import statistics
import sys

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WINDOW",
    "MIN_HISTORY",
    "WATCHLIST",
    "WatchedMetric",
    "append_history",
    "check_report",
    "load_history",
    "main",
    "metric_value",
]

#: Fewer prior history entries than this → "warming up", never a failure.
MIN_HISTORY = 3

#: Rolling-median window (most recent history entries considered).
DEFAULT_WINDOW = 20

#: Relative tolerance around the rolling median before a run counts as
#: a regression.  Deliberately loose: shared CI runners are noisy, and
#: the watcher's job is catching real slides, not wall-clock weather.
DEFAULT_TOLERANCE = 0.5

#: Default trajectory location (one ``<benchmark>.jsonl`` per suite).
DEFAULT_HISTORY_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "history",
)


class WatchedMetric:
    """One gated metric: where it lives and which direction is good.

    ``path`` is a dotted path into the report's ``summary`` dict
    (``"latency.speedup"`` → ``summary["latency"]["speedup"]``).
    ``higher_is_better`` picks the regression direction; ``abs_slack``
    widens the gate by an absolute margin for metrics whose healthy
    value sits near zero.
    """

    def __init__(self, benchmark: str, path: str, *, higher_is_better: bool,
                 abs_slack: float = 0.0):
        self.benchmark = benchmark
        self.path = path
        self.higher_is_better = bool(higher_is_better)
        self.abs_slack = float(abs_slack)

    @property
    def key(self) -> str:
        return f"{self.benchmark}:{self.path}"

    def regressed(self, current: float, median: float, tolerance: float) -> bool:
        if self.higher_is_better:
            return current < median * (1.0 - tolerance) - self.abs_slack
        return current > median * (1.0 + tolerance) + self.abs_slack


#: The defended trajectory: every CI benchmark's headline numbers.
WATCHLIST = (
    WatchedMetric("serving", "latency.speedup", higher_is_better=True),
    WatchedMetric(
        "serving", "throughput.requests_per_second", higher_is_better=True
    ),
    WatchedMetric("fit", "speedup", higher_is_better=True),
    WatchedMetric(
        "batched_synthesis", "synthesis.speedup", higher_is_better=True
    ),
    WatchedMetric(
        "batched_synthesis", "campaign.speedup", higher_is_better=True
    ),
    WatchedMetric(
        "storage", "cross_tier.cross_tier_boost_factor", higher_is_better=True
    ),
    # The tuned/default ratio's healthy value sits near 1.0; the absolute
    # slack absorbs wall-clock weather around parity so only a real slide
    # (the planner picking a genuinely bad plan) trips the gate.
    WatchedMetric(
        "autotune", "campaign.speedup", higher_is_better=True, abs_slack=0.2
    ),
    # disabled_overhead is a fraction that hovers around 0.0 (and is
    # legitimately negative under timer noise): the absolute slack is
    # the real gate, the relative term contributes nothing at 0.
    WatchedMetric(
        "telemetry_overhead", "disabled_overhead",
        higher_is_better=False, abs_slack=0.02,
    ),
)


def metric_value(summary: dict, path: str) -> "float | None":
    """Resolve a dotted path inside a summary dict (``None`` if absent)."""
    node = summary
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def _history_path(history_dir: str, benchmark: str) -> str:
    return os.path.join(history_dir, f"{benchmark}.jsonl")


def load_history(history_dir: str, benchmark: str) -> list:
    """All history entries for a benchmark, oldest first.

    Unparseable lines (a torn write from a killed CI job) are skipped —
    the trajectory degrades by one point instead of wedging the watcher.
    """
    path = _history_path(history_dir, benchmark)
    if not os.path.exists(path):
        return []
    entries = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return entries


def _history_entry(report: dict) -> dict:
    """The trajectory point for one report (v1 reports stamp ``None``)."""
    metrics = {}
    for watched in WATCHLIST:
        if watched.benchmark != report.get("benchmark"):
            continue
        value = metric_value(report.get("summary", {}), watched.path)
        if value is not None:
            metrics[watched.path] = value
    return {
        "schema": report.get("schema"),
        "benchmark": report.get("benchmark"),
        "git": report.get("git"),
        "timestamp": report.get("timestamp"),
        "repro_version": report.get("repro_version"),
        "metrics": metrics,
    }


def append_history(history_dir: str, report: dict) -> str:
    """Append one report's trajectory point; returns the history path."""
    os.makedirs(history_dir, exist_ok=True)
    path = _history_path(history_dir, report.get("benchmark", "unknown"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(_history_entry(report), sort_keys=True) + "\n")
    return path


def check_report(
    report: dict,
    history: list,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
) -> tuple:
    """Judge one report against its (pre-append) history.

    Returns ``(regressions, lines)``: the list of regression messages
    (empty when healthy) and the full per-metric status lines.
    """
    benchmark = report.get("benchmark")
    summary = report.get("summary", {})
    regressions = []
    lines = []
    for watched in WATCHLIST:
        if watched.benchmark != benchmark:
            continue
        current = metric_value(summary, watched.path)
        if current is None:
            lines.append(f"  {watched.key}: absent from summary (skipped)")
            continue
        values = [
            entry["metrics"][watched.path]
            for entry in history[-int(window):]
            if watched.path in entry.get("metrics", {})
        ]
        if len(values) < MIN_HISTORY:
            lines.append(
                f"  {watched.key}: {current:.6g} "
                f"({len(values)} prior entries, warming up)"
            )
            continue
        median = statistics.median(values)
        if watched.regressed(current, median, tolerance):
            direction = "below" if watched.higher_is_better else "above"
            message = (
                f"REGRESSION {watched.key}: {current:.6g} is {direction} the "
                f"rolling median {median:.6g} of the last {len(values)} runs "
                f"beyond tolerance {tolerance:g}"
                + (f" (+abs slack {watched.abs_slack:g})" if watched.abs_slack else "")
            )
            regressions.append(message)
            lines.append(f"  {message}")
        else:
            lines.append(
                f"  {watched.key}: {current:.6g} "
                f"(median {median:.6g} over {len(values)}, ok)"
            )
    return regressions, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Defend the benchmark trajectory: compare BENCH_*.json "
        "reports against their rolling history and fail on regressions."
    )
    parser.add_argument(
        "reports", nargs="*",
        help="BENCH_*.json report paths (default: glob BENCH_*.json in cwd)",
    )
    parser.add_argument(
        "--history", default=DEFAULT_HISTORY_DIR,
        help=f"history directory (default: {DEFAULT_HISTORY_DIR})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero when a watched metric regresses",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="judge only; do not record this run in the history",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"relative regression tolerance (default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help=f"rolling-median window (default: {DEFAULT_WINDOW})",
    )
    args = parser.parse_args(argv)

    paths = args.reports or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        print("benchwatch: no BENCH_*.json reports found")
        return 0

    all_regressions = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                report = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"benchwatch: skipping unreadable report {path}: {exc}")
            continue
        benchmark = report.get("benchmark")
        if not benchmark:
            print(f"benchwatch: skipping {path}: no benchmark name")
            continue
        history = load_history(args.history, benchmark)
        regressions, lines = check_report(
            report, history, tolerance=args.tolerance, window=args.window
        )
        sha = (report.get("git") or {}).get("sha")
        stamp = f" @ {sha[:12]}" if sha else ""
        print(f"{benchmark}{stamp} ({path}, {len(history)} prior entries):")
        for line in lines:
            print(line)
        all_regressions.extend(regressions)
        if not args.no_append:
            append_history(args.history, report)

    if all_regressions:
        print(f"\nbenchwatch: {len(all_regressions)} regression(s) detected:")
        for message in all_regressions:
            print(f"  {message}")
        return 1 if args.check else 0
    print("\nbenchwatch: trajectory healthy")
    return 0


if __name__ == "__main__":
    sys.exit(main())
