"""Make the ``tools`` package importable for the lint tests.

The repository is laid out with runtime code importable via
``PYTHONPATH=src`` and dev tooling under ``tools/`` at the repo root;
the lint tests exercise the tooling, so the repo root itself has to be
on ``sys.path``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
