"""The tier-1 gate: the repository's own tree must lint clean.

This is the pytest wrapper around ``python -m tools.reprolint src tools
benchmarks`` — the same analysis CI runs as a dedicated job.  It also
pins the two regressions the analyzer exists to prevent from coming
back: PR 5's float-sqrt band-limit recovery and an unlocked mutation of
``EmulationService``-owned shared state.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from tools.reprolint import Baseline, lint_paths, lint_source
from tools.reprolint.cli import DEFAULT_BASELINE, DEFAULT_PATHS
from tools.reprolint.deadsymbols import dead_symbol_report, render_report

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRepoTreeIsClean:
    def test_src_tools_benchmarks_lint_clean(self):
        baseline = Baseline.load(DEFAULT_BASELINE, REPO_ROOT)
        report = lint_paths(REPO_ROOT, DEFAULT_PATHS, baseline=baseline)
        assert report.scanned > 50  # the whole tree, not an empty glob
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.ok, f"reprolint findings on the tree:\n{rendered}"

    def test_tuning_package_lints_clean_without_baseline(self):
        """The new package gets no grandfathered findings: it must pass
        every rule with no baseline at all."""
        report = lint_paths(REPO_ROOT, ["src/repro/tuning"])
        assert report.scanned >= 4  # __init__, profile, costmodel, planner
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.ok, f"reprolint findings on repro.tuning:\n{rendered}"

    def test_runtime_systems_tuning_have_no_unused_exports(self):
        """The PR-6 fold promise, kept: after deleting the tests-only
        scheduler/simulator half, every public symbol of the runtime,
        systems and tuning packages has a caller outside its own
        package."""
        report = dead_symbol_report(
            REPO_ROOT,
            ["src/repro/runtime", "src/repro/systems", "src/repro/tuning"],
        )
        unused = {
            package: [
                symbol
                for symbol, entry in data["symbols"].items()
                if entry["status"] == "unused"
            ]
            for package, data in report["packages"].items()
        }
        assert all(not symbols for symbols in unused.values()), (
            "fully-unused public exports:\n" + render_report(report)
        )

    def test_baseline_stays_minimal_and_justified(self):
        """Every baseline entry must carry a reason; staleness is enforced
        at runtime (a non-matching entry fails the clean-tree test above
        as ``stale-baseline``), so together the baseline can only shrink."""
        payload = json.loads(DEFAULT_BASELINE.read_text(encoding="utf-8"))
        assert set(payload) == {"entries"}
        for entry in payload["entries"]:
            assert entry.get("reason", "").strip(), (
                f"baseline entry {entry} has no reason; grandfathered "
                "findings must say why they are deferred"
            )


class TestAcceptanceRegressions:
    """The exact historical bugs the analyzer must keep out of the tree."""

    def test_pr5_float_sqrt_bandlimit_recovery_fails_lint(self):
        # The pre-PR-5 pattern from coeff_lm: recovering l from a linear
        # coefficient index through a float sqrt, off-by-one near large
        # perfect squares.
        source = textwrap.dedent("""
            import numpy as np

            def coeff_lm(index):
                l = int(round(np.sqrt(index)))
                m = index - l * l - l
                return l, m
        """)
        findings = lint_source(source, "src/repro/sht/coeffs.py",
                               rules=["index-recovery"])
        # Both the int() cast and the inner round() fire on the line.
        assert findings and {f.rule for f in findings} == {"index-recovery"}

    def test_unlocked_chunkcache_mutation_fails_lint(self):
        # An EmulationService-shaped class mutating its _ChunkCache and
        # flight table outside `with self._lock:` — the race the
        # lock-discipline checker exists to catch.
        source = textwrap.dedent("""
            import threading
            from collections import OrderedDict

            class EmulationService:
                def __init__(self, emulator, cache_bytes):
                    self._lock = threading.Lock()
                    self._cache = _ChunkCache(cache_bytes)
                    self._flights = {}
                    self._streams = OrderedDict()

                def get(self, request):
                    chunk = self._cache.get(request.address())
                    if chunk is None:
                        chunk = self._synthesise(request)
                        self._cache.put(request.address(), chunk)
                    return chunk
        """)
        findings = lint_source(source, "src/repro/serving/service.py",
                               rules=["lock-discipline"])
        assert len(findings) >= 2
        assert {f.rule for f in findings} == {"lock-discipline"}

    def test_the_real_service_stays_clean(self):
        report = lint_paths(REPO_ROOT, ["src/repro/serving"],
                            rules=["lock-discipline"])
        assert report.ok, "\n".join(f.render() for f in report.findings)
