"""Framework-level tests: pragmas, baseline discipline, engine, CLI."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from tools.reprolint import (
    Baseline,
    BaselineEntry,
    Finding,
    lint_paths,
    lint_source,
    parse_pragmas,
)
from tools.reprolint.baseline import BAD_BASELINE, STALE_BASELINE
from tools.reprolint.engine import SYNTAX_ERROR

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestPragmaParsing:
    def test_trailing_pragma_targets_its_own_line(self):
        source = "x = 1  # reprolint: allow[determinism] why not\n"
        (pragma,) = parse_pragmas(source)
        assert pragma.rules == ("determinism",)
        assert pragma.reason == "why not"
        assert pragma.target_line == 1

    def test_standalone_pragma_targets_the_next_line(self):
        source = "# reprolint: allow[lock-discipline] why\nx = 1\n"
        (pragma,) = parse_pragmas(source)
        assert pragma.target_line == 2

    def test_pragma_examples_in_strings_are_inert(self):
        source = 'text = "# reprolint: allow[determinism] not a comment"\n'
        assert parse_pragmas(source) == []

    def test_multiple_rules_per_pragma(self):
        source = "# reprolint: allow[determinism, bare-except] shared reason\nx = 1\n"
        (pragma,) = parse_pragmas(source)
        assert pragma.rules == ("determinism", "bare-except")


class TestBadPragma:
    def test_reasonless_pragma_is_a_finding_and_suppresses_nothing(self):
        source = "import time\nt = time.time()  # reprolint: allow[determinism]\n"
        findings = lint_source(source, "src/repro/core/example.py",
                               rules=["determinism"])
        assert sorted(f.rule for f in findings) == ["bad-pragma", "determinism"]

    def test_unknown_rule_id_is_a_finding(self):
        source = "x = 1  # reprolint: allow[no-such-rule] reason\n"
        findings = lint_source(source, rules=["determinism"])
        assert [f.rule for f in findings] == ["bad-pragma"]
        assert "unknown rule" in findings[0].message

    def test_wildcard_pragma_suppresses_every_rule(self):
        source = (
            "import time\n"
            "t = time.time()  # reprolint: allow[*] fixture exercising everything\n"
        )
        assert lint_source(source, "src/repro/core/example.py") == []


def _finding(rule="determinism", path="src/repro/core/example.py",
             snippet="t = time.time()"):
    return Finding(rule=rule, path=path, line=3, message="m", snippet=snippet)


class TestBaseline:
    def test_matching_reasoned_entry_suppresses(self):
        baseline = Baseline(
            [BaselineEntry(rule="determinism", path="src/repro/core/example.py",
                           contains="time.time()", reason="deferred to PR 7")],
            "tools/reprolint/baseline.json",
        )
        kept, self_findings, suppressed = baseline.apply([_finding()])
        assert (kept, self_findings, suppressed) == ([], [], 1)

    def test_matching_is_by_snippet_not_line_number(self):
        baseline = Baseline(
            [BaselineEntry(rule="determinism", path="src/repro/core/example.py",
                           contains="time.time()", reason="deferred")],
            "b.json",
        )
        moved = Finding(rule="determinism", path="src/repro/core/example.py",
                        line=99, message="m", snippet="t = time.time()")
        kept, self_findings, suppressed = baseline.apply([moved])
        assert (kept, self_findings, suppressed) == ([], [], 1)

    def test_stale_entry_is_a_finding(self):
        baseline = Baseline(
            [BaselineEntry(rule="determinism", path="src/gone.py",
                           contains="x", reason="old")],
            "b.json",
        )
        kept, self_findings, suppressed = baseline.apply([])
        assert suppressed == 0 and kept == []
        assert [f.rule for f in self_findings] == [STALE_BASELINE]

    def test_reasonless_entry_is_a_finding_and_suppresses_nothing(self):
        baseline = Baseline(
            [BaselineEntry(rule="determinism", path="src/repro/core/example.py",
                           contains="time.time()", reason="")],
            "b.json",
        )
        kept, self_findings, suppressed = baseline.apply([_finding()])
        assert suppressed == 0
        assert len(kept) == 1
        assert [f.rule for f in self_findings] == [BAD_BASELINE]

    def test_non_matching_finding_is_kept(self):
        baseline = Baseline(
            [BaselineEntry(rule="determinism", path="src/repro/core/example.py",
                           contains="datetime.now", reason="deferred")],
            "b.json",
        )
        kept, self_findings, _ = baseline.apply([_finding()])
        assert len(kept) == 1
        # ... and the now-unmatched entry is stale, so the run still fails.
        assert [f.rule for f in self_findings] == [STALE_BASELINE]


class TestEngine:
    def test_unparseable_file_is_a_syntax_error_finding(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "broken.py").write_text("def f(:\n")
        report = lint_paths(tmp_path, ["src"])
        assert [f.rule for f in report.findings] == [SYNTAX_ERROR]
        assert not report.ok

    def test_skip_dirs_are_not_scanned(self, tmp_path):
        src = tmp_path / "src"
        (src / "__pycache__").mkdir(parents=True)
        (src / "__pycache__" / "junk.py").write_text("def f(:\n")
        (src / "ok.py").write_text("x = 1\n")
        report = lint_paths(tmp_path, ["src"])
        assert report.scanned == 1 and report.ok

    def test_report_to_dict_shape(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "ok.py").write_text("x = 1\n")
        payload = lint_paths(tmp_path, ["src"]).to_dict()
        assert payload["ok"] is True
        assert payload["scanned_files"] == 1
        assert payload["findings"] == []
        assert "rules" in payload and "version" in payload


class TestCli:
    @staticmethod
    def run_cli(*args, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            cwd=cwd, capture_output=True, text=True, timeout=120,
        )

    def test_failing_tree_exits_nonzero_and_writes_json(self, tmp_path):
        src = tmp_path / "src" / "repro" / "core"
        src.mkdir(parents=True)
        (src / "bad.py").write_text("import time\nt = time.time()\n")
        out = tmp_path / "report.json"
        proc = self.run_cli(
            "src", "--root", str(tmp_path), "--no-baseline",
            "--output", str(out),
        )
        assert proc.returncode == 1
        assert "determinism" in proc.stdout
        payload = json.loads(out.read_text())
        assert payload["ok"] is False
        assert any(f["rule"] == "determinism" for f in payload["findings"])

    def test_clean_tree_exits_zero(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "ok.py").write_text('"""Fine."""\nx = 1\n')
        proc = self.run_cli("src", "--root", str(tmp_path), "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert json.loads(proc.stdout)["ok"] is True

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("lock-discipline", "determinism", "index-recovery",
                        "state-protocol", "nonfinite-write", "api-hygiene"):
            assert rule_id in proc.stdout


class TestDeadSymbols:
    def test_classification(self, tmp_path):
        from tools.reprolint import dead_symbol_report

        package = tmp_path / "src" / "pkg"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text(
            "from pkg.mod import used, tested, ghost\n"
            '__all__ = ["used", "tested", "ghost"]\n'
        )
        (package / "mod.py").write_text(textwrap.dedent("""
            def used():
                \"\"\"Used from src.\"\"\"

            def tested():
                \"\"\"Used from tests only.\"\"\"

            def ghost():
                \"\"\"Used nowhere.\"\"\"
        """))
        consumer = tmp_path / "src" / "app.py"
        consumer.write_text("from pkg import used\nused()\n")
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_mod.py").write_text("from pkg import tested\ntested()\n")

        report = dead_symbol_report(tmp_path, ["src/pkg"])
        symbols = report["packages"]["src/pkg"]["symbols"]
        assert symbols["used"]["status"] == "used-in-src"
        assert symbols["tested"]["status"] == "tests-only"
        assert symbols["ghost"]["status"] == "unused"
