"""Per-rule fixture tests: each rule fires on its target pattern, stays
quiet on the compliant variant, and honours a reasoned pragma."""

from __future__ import annotations

import textwrap

import pytest

from tools.reprolint import lint_source


def run(source: str, relpath: str = "src/repro/example.py", rules=None):
    return lint_source(textwrap.dedent(source), relpath, rules=rules)


def rule_ids(findings) -> list:
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------- #
# lock-discipline
# --------------------------------------------------------------------- #
SERVICE_UNLOCKED = """
    import threading

    class Service:
        def __init__(self, store):
            self._lock = threading.Lock()
            self._cache = _ChunkCache(64)
            self._flights = {}
            self._hits = 0

        def get(self, addr):
            self._hits += 1
            return self._cache.get(addr)
"""

SERVICE_LOCKED = """
    import threading

    class Service:
        def __init__(self, store):
            self._lock = threading.Lock()
            self._cache = _ChunkCache(64)
            self._flights = {}
            self._hits = 0

        def get(self, addr):
            with self._lock:
                self._hits += 1
                return self._cache.get(addr)

        def _evict_locked(self, addr):
            del self._flights[addr]
"""


class TestLockDiscipline:
    def test_unlocked_counter_and_cache_access_fire(self):
        findings = run(SERVICE_UNLOCKED, rules=["lock-discipline"])
        assert rule_ids(findings) == ["lock-discipline", "lock-discipline"]
        assert "self._hits" in findings[0].message
        assert "self._cache" in findings[1].message

    def test_locked_and_locked_suffix_accesses_are_clean(self):
        assert run(SERVICE_LOCKED, rules=["lock-discipline"]) == []

    def test_immutable_config_attrs_are_freely_readable(self):
        source = """
            import threading

            class Service:
                def __init__(self, store, seed):
                    self._lock = threading.Lock()
                    self._store = store
                    self._seed = seed
                    self._flights = {}

                def describe(self):
                    return (self._store, self._seed)
        """
        assert run(source, rules=["lock-discipline"]) == []

    def test_module_level_lock_guards_module_globals(self):
        source = """
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}
            _HITS = 0

            def lookup(key):
                global _HITS
                _HITS += 1
                return _CACHE.get(key)
        """
        findings = run(source, relpath="src/repro/sht/example.py",
                       rules=["lock-discipline"])
        assert rule_ids(findings) == ["lock-discipline", "lock-discipline"]

    def test_class_without_lock_is_out_of_scope(self):
        source = """
            class Plain:
                def __init__(self):
                    self._cache = {}

                def get(self, key):
                    return self._cache.get(key)
        """
        assert run(source, rules=["lock-discipline"]) == []

    def test_pragma_with_reason_suppresses(self):
        source = SERVICE_UNLOCKED.replace(
            "self._hits += 1",
            "self._hits += 1  # reprolint: allow[lock-discipline] "
            "stat counter, torn reads acceptable",
        ).replace(
            "return self._cache.get(addr)",
            "# reprolint: allow[lock-discipline] single-threaded test double\n"
            "        return self._cache.get(addr)",
        )
        assert run(source, rules=["lock-discipline"]) == []


# --------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------- #
class TestDeterminism:
    @pytest.mark.parametrize(
        "stmt",
        [
            "np.random.seed(0)",
            "x = np.random.rand(3)",
            "import random",
            "t = time.time()",
            "now = datetime.datetime.now()",
        ],
    )
    def test_global_entropy_and_wall_clock_fire(self, stmt):
        source = f"import time\nimport datetime\nimport numpy as np\n{stmt}\n"
        findings = lint_source(source, "src/repro/core/example.py",
                               rules=["determinism"])
        assert rule_ids(findings) == ["determinism"]

    def test_generator_api_and_perf_counter_are_clean(self):
        source = """
            import time
            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(np.random.SeedSequence(seed))
                start = time.perf_counter()
                return rng.standard_normal(4), time.perf_counter() - start
        """
        assert run(source, rules=["determinism"]) == []

    def test_rule_is_scoped_to_src_repro(self):
        findings = lint_source("import random\n", "tools/example.py",
                               rules=["determinism"])
        assert findings == []

    def test_pragma_with_reason_suppresses(self):
        source = (
            "import time\n"
            "t = time.time()  # reprolint: allow[determinism] "
            "wall-clock label on a report, not a code path\n"
        )
        assert lint_source(source, "src/repro/core/example.py",
                           rules=["determinism"]) == []


# --------------------------------------------------------------------- #
# index-recovery
# --------------------------------------------------------------------- #
class TestIndexRecovery:
    @pytest.mark.parametrize(
        "expr",
        [
            "int(np.sqrt(n_coeffs))",
            "round(math.sqrt(n_coeffs))",
            "int(round(np.sqrt(n_coeffs)))",
        ],
    )
    def test_float_sqrt_index_recovery_fires(self, expr):
        source = f"import math\nimport numpy as np\nn_coeffs = 25\nlmax = {expr} - 1\n"
        findings = lint_source(source, rules=["index-recovery"])
        assert "index-recovery" in rule_ids(findings)

    def test_isqrt_is_clean(self):
        source = "import math\nn_coeffs = 25\nlmax = math.isqrt(n_coeffs) - 1\n"
        assert lint_source(source, rules=["index-recovery"]) == []

    def test_plain_float_sqrt_without_cast_is_clean(self):
        source = "import numpy as np\nsigma = np.sqrt(variance)\nvariance = 4.0\n"
        assert lint_source(source, rules=["index-recovery"]) == []

    def test_pragma_with_reason_suppresses(self):
        source = (
            "import numpy as np\n"
            "usable = 1.0e9\n"
            "# reprolint: allow[index-recovery] sizing heuristic on floats\n"
            "n = int(np.sqrt(usable))\n"
        )
        assert lint_source(source, rules=["index-recovery"]) == []


# --------------------------------------------------------------------- #
# state-protocol
# --------------------------------------------------------------------- #
class TestStateProtocol:
    def test_state_dict_without_from_state_fires(self):
        source = """
            class Stage:
                def state_dict(self):
                    return {}
        """
        findings = run(source, rules=["state-protocol"])
        assert rule_ids(findings) == ["state-protocol"]

    def test_from_state_without_state_dict_fires(self):
        source = """
            class Stage:
                @classmethod
                def from_state(cls, state):
                    return cls()
        """
        findings = run(source, rules=["state-protocol"])
        assert rule_ids(findings) == ["state-protocol"]

    def test_from_state_must_be_a_classmethod(self):
        source = """
            class Stage:
                def state_dict(self):
                    return {}

                def from_state(self, state):
                    return Stage()
        """
        findings = run(source, rules=["state-protocol"])
        assert rule_ids(findings) == ["state-protocol"]
        assert "classmethod" in findings[0].message

    def test_paired_protocol_is_clean(self):
        source = """
            class Stage:
                def state_dict(self):
                    return {}

                @classmethod
                def from_state(cls, state):
                    return cls()
        """
        assert run(source, rules=["state-protocol"]) == []

    def test_pragma_with_reason_suppresses(self):
        source = """
            # reprolint: allow[state-protocol] serialises through the component registry
            class Stage:
                def state_dict(self):
                    return {}
        """
        assert run(source, rules=["state-protocol"]) == []


# --------------------------------------------------------------------- #
# nonfinite-write
# --------------------------------------------------------------------- #
class TestNonFiniteWrite:
    def test_unvalidated_savez_fires(self):
        source = """
            import numpy as np

            def write_shard(path, payload):
                np.savez(path, **payload)
        """
        findings = run(source, relpath="src/repro/storage/example.py",
                       rules=["nonfinite-write"])
        assert rule_ids(findings) == ["nonfinite-write"]

    def test_transitively_validated_savez_is_clean(self):
        source = """
            import numpy as np

            def _require_finite(arr):
                if not np.isfinite(arr).all():
                    raise ValueError("non-finite payload")

            def _encode(arr):
                _require_finite(arr)
                return arr

            def write_shard(path, arr):
                np.savez(path, arr=_encode(arr))
        """
        assert run(source, relpath="src/repro/storage/example.py",
                   rules=["nonfinite-write"]) == []

    def test_rule_is_scoped_to_storage(self):
        source = "import numpy as np\n\ndef dump(p, a):\n    np.savez(p, a=a)\n"
        assert lint_source(source, "src/repro/core/example.py",
                           rules=["nonfinite-write"]) == []

    def test_pragma_with_reason_suppresses(self):
        source = """
            import numpy as np

            def write_raw(path, payload):
                # reprolint: allow[nonfinite-write] payload validated by the caller
                np.savez(path, **payload)
        """
        assert run(source, relpath="src/repro/storage/example.py",
                   rules=["nonfinite-write"]) == []


# --------------------------------------------------------------------- #
# api-hygiene (project rule: needs a miniature source tree on disk)
# --------------------------------------------------------------------- #
class TestApiHygiene:
    @staticmethod
    def write_tree(root, *, init, module="", api_md=None):
        package = root / "src" / "repro"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text(textwrap.dedent(init))
        if module:
            (package / "mod.py").write_text(textwrap.dedent(module))
        if api_md is not None:
            docs = root / "docs"
            docs.mkdir()
            (docs / "api.md").write_text(api_md)

    @staticmethod
    def lint(root):
        from tools.reprolint import lint_paths

        report = lint_paths(root, ["src"], rules=["api-hygiene"])
        return report.findings

    def test_resolvable_documented_sorted_api_is_clean(self, tmp_path):
        self.write_tree(
            tmp_path,
            init="""
                from repro.mod import alpha, beta

                __all__ = ["alpha", "beta"]
            """,
            module="""
                def alpha():
                    \"\"\"First public helper.\"\"\"

                def beta():
                    \"\"\"Second public helper.\"\"\"
            """,
            api_md="# API\n\n`alpha` and `beta` are documented here.\n",
        )
        assert self.lint(tmp_path) == []

    def test_submodule_export_resolves_to_module_docstring(self, tmp_path):
        package = tmp_path / "src" / "repro"
        (package / "obs").mkdir(parents=True)
        (package / "__init__.py").write_text(
            'from repro import obs\n\n__all__ = ["obs"]\n'
        )
        (package / "obs" / "__init__.py").write_text('"""Telemetry layer."""\n')
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "api.md").write_text("`obs` is documented here.\n")
        assert self.lint(tmp_path) == []

    def test_submodule_export_without_module_docstring_fires(self, tmp_path):
        package = tmp_path / "src" / "repro"
        (package / "obs").mkdir(parents=True)
        (package / "__init__.py").write_text(
            'from repro import obs\n\n__all__ = ["obs"]\n'
        )
        (package / "obs" / "__init__.py").write_text("x = 1\n")
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "api.md").write_text("`obs`\n")
        findings = self.lint(tmp_path)
        assert rule_ids(findings) == ["api-hygiene"]
        assert "no docstring" in findings[0].message

    def test_unresolvable_export_fires(self, tmp_path):
        self.write_tree(
            tmp_path,
            init='__all__ = ["ghost"]\n',
            api_md="`ghost`\n",
        )
        findings = self.lint(tmp_path)
        assert rule_ids(findings) == ["api-hygiene"]
        assert "does not resolve" in findings[0].message

    def test_missing_docstring_and_missing_doc_listing_fire(self, tmp_path):
        self.write_tree(
            tmp_path,
            init="""
                from repro.mod import alpha, beta

                __all__ = ["alpha", "beta"]
            """,
            module="""
                def alpha():
                    \"\"\"Documented.\"\"\"

                def beta():
                    pass
            """,
            api_md="Only `alpha` is listed.\n",
        )
        messages = [finding.message for finding in self.lint(tmp_path)]
        assert len(messages) == 2
        assert any("no docstring" in message for message in messages)
        assert any("does not appear" in message for message in messages)

    def test_unsorted_all_fires(self, tmp_path):
        self.write_tree(
            tmp_path,
            init="""
                from repro.mod import alpha, beta

                __all__ = ["beta", "alpha"]
            """,
            module="""
                def alpha():
                    \"\"\"First.\"\"\"

                def beta():
                    \"\"\"Second.\"\"\"
            """,
            api_md="`alpha` `beta`\n",
        )
        findings = self.lint(tmp_path)
        assert rule_ids(findings) == ["api-hygiene"]
        assert "sorted" in findings[0].message


# --------------------------------------------------------------------- #
# mutable-default
# --------------------------------------------------------------------- #
class TestMutableDefault:
    @pytest.mark.parametrize(
        "signature",
        ["x=[]", "x={}", "x=set()", "*, x=[1, 2]", "x=dict(a=1)"],
    )
    def test_mutable_defaults_fire(self, signature):
        findings = run(f"def f({signature}):\n    return x\n",
                       rules=["mutable-default"])
        assert rule_ids(findings) == ["mutable-default"]

    @pytest.mark.parametrize("signature", ["x=()", "x=None", "x=0", "x=frozenset()"])
    def test_immutable_defaults_are_clean(self, signature):
        assert run(f"def f({signature}):\n    return x\n",
                   rules=["mutable-default"]) == []

    def test_pragma_with_reason_suppresses(self):
        source = (
            "def f(x=[]):  # reprolint: allow[mutable-default] "
            "sentinel list never mutated\n"
            "    return x\n"
        )
        assert run(source, rules=["mutable-default"]) == []


# --------------------------------------------------------------------- #
# bare-except
# --------------------------------------------------------------------- #
class TestBareExcept:
    def test_bare_except_fires(self):
        source = """
            def f():
                try:
                    work()
                except:
                    raise
        """
        findings = run(source, rules=["bare-except"])
        assert rule_ids(findings) == ["bare-except"]

    def test_swallowing_handler_fires(self):
        source = """
            def f():
                try:
                    work()
                except ValueError:
                    pass
        """
        findings = run(source, rules=["bare-except"])
        assert rule_ids(findings) == ["bare-except"]

    def test_handled_exception_is_clean(self):
        source = """
            def f(log):
                try:
                    work()
                except ValueError as exc:
                    log(exc)
        """
        assert run(source, rules=["bare-except"]) == []

    def test_pragma_with_reason_suppresses(self):
        source = """
            def f():
                try:
                    work()
                # reprolint: allow[bare-except] best-effort cleanup on shutdown
                except Exception:
                    pass
        """
        assert run(source, rules=["bare-except"]) == []


# --------------------------------------------------------------------- #
# telemetry-hygiene
# --------------------------------------------------------------------- #
class TestTelemetryHygiene:
    def test_raw_perf_counter_delta_fires(self):
        source = """
            import time

            def synthesize(work):
                t0 = time.perf_counter()
                work()
                return time.perf_counter() - t0
        """
        findings = run(source, rules=["telemetry-hygiene"])
        assert rule_ids(findings) == ["telemetry-hygiene"] * 2
        assert all("outside the telemetry layer" in f.message for f in findings)

    def test_obs_package_and_non_src_trees_are_exempt(self):
        source = "import time\nt = time.perf_counter()\n"
        assert lint_source(source, "src/repro/obs/tracing.py",
                           rules=["telemetry-hygiene"]) == []
        assert lint_source(source, "benchmarks/bench_example.py",
                           rules=["telemetry-hygiene"]) == []

    def test_raw_resource_probe_fires_outside_the_layer(self):
        source = """
            import os
            import resource

            def watch():
                rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                load = os.getloadavg()
                cpu = os.times()
                return rss, load, cpu
        """
        findings = run(source, rules=["telemetry-hygiene"])
        assert rule_ids(findings) == ["telemetry-hygiene"] * 3
        assert all("probes process resources" in f.message for f in findings)
        assert all("ResourceSampler" in f.message for f in findings)

    def test_operational_obs_modules_are_inside_the_layer(self):
        # The exporter/sampler/SLO modules are the telemetry layer too:
        # raw timers and resource probes are their implementation.
        source = """
            import resource
            import time

            def sample():
                t = time.perf_counter()
                rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                return t, rss
        """
        for relpath in ("src/repro/obs/sampler.py", "src/repro/obs/export.py",
                        "src/repro/obs/slo.py"):
            assert lint_source(textwrap.dedent(source), relpath,
                               rules=["telemetry-hygiene"]) == [], relpath

    def test_resource_probe_outside_obs_in_src_fires(self):
        source = "import resource\nr = resource.getrusage(0)\n"
        findings = lint_source(source, "src/repro/serving/service.py",
                               rules=["telemetry-hygiene"])
        assert rule_ids(findings) == ["telemetry-hygiene"]
        # ...but the same probe outside src/repro is not this rule's job.
        assert lint_source(source, "tools/watcher.py",
                           rules=["telemetry-hygiene"]) == []

    @pytest.mark.parametrize(
        "stmt",
        [
            'counter_add("hits")',
            'gauge_set("Serving.Queue.depth", 2)',
            'metrics.observe("CamelName", 1.0)',
            'with span("Serve.Get"):\n    pass',
        ],
    )
    def test_malformed_instrument_name_fires(self, stmt):
        source = (
            "from repro.obs import counter_add, gauge_set, span\n"
            f"def f(metrics):\n{textwrap.indent(textwrap.dedent(stmt), '    ')}\n"
        )
        findings = lint_source(source, "src/repro/core/example.py",
                               rules=["telemetry-hygiene"])
        assert rule_ids(findings) == ["telemetry-hygiene"]
        assert "not dotted lowercase" in findings[0].message

    def test_module_prefix_fstrings_resolve(self):
        source = """
            from repro.obs import counter_add

            _PREFIX = "sht.plan_cache"

            def f():
                counter_add(f"{_PREFIX}.hits")
        """
        assert run(source, rules=["telemetry-hygiene"]) == []

    def test_cross_kind_collision_fires(self):
        source = """
            from repro.obs import span

            def f(metrics):
                with span("serve.get"):
                    pass
                metrics.add("serve.get.seconds")
        """
        findings = run(source, rules=["telemetry-hygiene"])
        assert rule_ids(findings) == ["telemetry-hygiene"]
        assert "cross-kind" in findings[0].message

    def test_cross_file_collision_fires(self, tmp_path):
        from tools.reprolint import lint_paths

        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "a.py").write_text(
            "def f(metrics):\n    metrics.add('serving.queue.depth')\n"
        )
        (package / "b.py").write_text(
            "def g(metrics):\n    metrics.set_gauge('serving.queue.depth', 2)\n"
        )
        report = lint_paths(tmp_path, ["src"], rules=["telemetry-hygiene"])
        assert rule_ids(report.findings) == ["telemetry-hygiene"]

    def test_well_named_instruments_are_clean(self):
        source = """
            from repro.obs import counter_add, gauge_set, observe, span

            def f(metrics, name):
                with span("sht.inverse", lmax=48):
                    pass
                counter_add("chunkstore.reads")
                gauge_set("serving.queue.depth", 3)
                observe("fit.analysis.seconds", 0.5)
                metrics.add("serving.requests")
                metrics.add(name)  # dynamic names are the runtime's job
        """
        assert run(source, rules=["telemetry-hygiene"]) == []

    def test_pragma_with_reason_suppresses(self):
        source = (
            "import time\n"
            "t = time.perf_counter()  # reprolint: allow[telemetry-hygiene] "
            "coarse once-per-run stamp, not a hot-path measurement\n"
        )
        assert lint_source(source, "src/repro/core/example.py",
                           rules=["telemetry-hygiene"]) == []


# --------------------------------------------------------------------- #
# manifest-commit
# --------------------------------------------------------------------- #
STORE_OUTSIDE_PROTOCOL = """
    class Store:
        def __init__(self):
            self._chunks = {}
            self._manifest_token = None

        def _dump_manifest_locked(self, chunks):
            pass

        def _flock_locked(self):
            pass

        def add(self, address, entry):
            self._chunks[address] = entry
            self._dump_manifest_locked(self._chunks)
"""

STORE_INSIDE_PROTOCOL = """
    class Store:
        def __init__(self):
            self._chunks = {}
            self._manifest_token = None

        def _dump_manifest_locked(self, chunks):
            pass

        def _flock_locked(self):
            pass

        def _commit_locked(self, entry):
            self._chunks.update(entry)
            self._dump_manifest_locked(self._chunks)

        def prune(self):
            with self._flock_locked():
                self._chunks = {}
                self._dump_manifest_locked(self._chunks)
                self._manifest_token = None
"""


class TestManifestCommit:
    def test_mutation_and_dump_outside_protocol_fire(self):
        findings = run(
            STORE_OUTSIDE_PROTOCOL,
            relpath="src/repro/storage/example.py",
            rules=["manifest-commit"],
        )
        assert rule_ids(findings) == ["manifest-commit", "manifest-commit"]
        assert "self._chunks" in findings[0].message
        assert "_dump_manifest_locked" in findings[1].message

    def test_locked_methods_and_transactions_are_clean(self):
        assert run(
            STORE_INSIDE_PROTOCOL,
            relpath="src/repro/storage/example.py",
            rules=["manifest-commit"],
        ) == []

    def test_mutator_calls_fire(self):
        source = STORE_OUTSIDE_PROTOCOL.replace(
            "self._chunks[address] = entry",
            "self._chunks.update({address: entry})",
        )
        findings = run(
            source,
            relpath="src/repro/storage/example.py",
            rules=["manifest-commit"],
        )
        assert rule_ids(findings) == ["manifest-commit", "manifest-commit"]
        assert "self._chunks.update()" in findings[0].message

    def test_out_of_scope_paths_and_manifestless_classes_are_clean(self):
        # Same source outside src/repro/storage/ is out of scope...
        assert run(STORE_OUTSIDE_PROTOCOL, rules=["manifest-commit"]) == []
        # ...and a storage class without a _dump_manifest* method is too.
        source = """
            class Cache:
                def __init__(self):
                    self._chunks = {}

                def add(self, address, entry):
                    self._chunks[address] = entry
        """
        assert run(
            source,
            relpath="src/repro/storage/example.py",
            rules=["manifest-commit"],
        ) == []

    def test_pragma_with_reason_suppresses(self):
        source = STORE_OUTSIDE_PROTOCOL.replace(
            "self._chunks[address] = entry",
            "# reprolint: allow[manifest-commit] single-process test double\n"
            "            self._chunks[address] = entry",
        ).replace(
            "self._dump_manifest_locked(self._chunks)",
            "# reprolint: allow[manifest-commit] single-process test double\n"
            "            self._dump_manifest_locked(self._chunks)",
        )
        assert run(
            source,
            relpath="src/repro/storage/example.py",
            rules=["manifest-commit"],
        ) == []
