"""Tests of the autotuning layer: profile, cost model, planner, integration."""

import json
import os

import numpy as np
import pytest

import repro
from repro.data import Era5LikeConfig, Era5LikeGenerator
from repro.scenarios.campaign import run_campaign
from repro.tuning import (
    CampaignCostModel,
    CampaignShape,
    CostEstimate,
    MachineProfile,
    calibrate_machine,
    load_or_calibrate,
    plan_campaign_execution,
    plan_serving_cache_bytes,
    scaling_efficiencies,
)
from repro.tuning.profile import PROFILE_SCHEMA, profile_path


@pytest.fixture(scope="module")
def profile(tmp_path_factory):
    """One real calibration per test module (it measures the host)."""
    root = tmp_path_factory.mktemp("tuning")
    return load_or_calibrate(root)


@pytest.fixture(scope="module")
def emulator():
    sims = Era5LikeGenerator(
        Era5LikeConfig(lmax=8, n_years=2, steps_per_year=4, n_ensemble=2),
        seed=3,
    ).generate()
    return repro.fit(sims, lmax=8, n_harmonics=1, var_order=1, tile_size=30)


SHAPE = CampaignShape(
    n_scenarios=2, n_realizations=8, n_times=48, steps_per_year=12,
    lmax=16, ntheta=24, nphi=48, store=True,
)


class TestMachineProfile:
    def test_state_dict_round_trip_bit_exact(self, profile):
        rebuilt = MachineProfile.from_state(profile.state_dict())
        assert rebuilt == profile
        # The measured floats survive exactly, not approximately.
        assert rebuilt.state_dict() == profile.state_dict()

    def test_json_round_trip_bit_exact(self, profile, tmp_path):
        path = profile.save(tmp_path / "machine_profile.json")
        assert MachineProfile.load(path) == profile

    def test_cached_profile_is_reused(self, tmp_path):
        first = load_or_calibrate(tmp_path)
        second = load_or_calibrate(tmp_path)
        # Identical measurements prove the cache was read, not re-measured
        # (two calibrations of one host never time identically).
        assert second == first

    def test_corrupt_cache_recalibrates(self, tmp_path):
        path = profile_path(tmp_path)
        os.makedirs(tmp_path, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        fresh = load_or_calibrate(tmp_path)
        assert fresh.schema == PROFILE_SCHEMA
        # The corrupt file was atomically replaced by the fresh profile.
        assert MachineProfile.load(path) == fresh

    def test_stale_schema_recalibrates(self, profile, tmp_path):
        stale = profile.state_dict()
        stale["schema"] = PROFILE_SCHEMA + 1
        path = profile_path(tmp_path)
        os.makedirs(tmp_path, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(stale, handle)
        fresh = load_or_calibrate(tmp_path)
        assert fresh.schema == PROFILE_SCHEMA

    def test_foreign_host_recalibrates(self, profile, tmp_path):
        foreign = profile.state_dict()
        foreign["hostname"] = profile.hostname + "-elsewhere"
        path = profile_path(tmp_path)
        os.makedirs(tmp_path, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(foreign, handle)
        fresh = load_or_calibrate(tmp_path)
        assert fresh.hostname == profile.hostname

    def test_gemm_rate_interpolates_and_clamps(self, profile):
        sizes = sorted(profile.gemm_gflops)
        assert profile.gemm_rate_gflops(1) == profile.gemm_gflops[sizes[0]]
        assert profile.gemm_rate_gflops(10**6) == profile.gemm_gflops[sizes[-1]]
        mid = profile.gemm_rate_gflops((sizes[0] + sizes[1]) // 2)
        low, high = sorted(
            (profile.gemm_gflops[sizes[0]], profile.gemm_gflops[sizes[1]])
        )
        assert low <= mid <= high

    def test_parallel_efficiency_clamped(self, profile):
        assert profile.parallel_efficiency(1) == pytest.approx(1.0)
        assert 0.0 < profile.parallel_efficiency(10**3) <= 1.0


class TestCostModel:
    def test_estimate_terms_and_rates(self, profile):
        est = CampaignCostModel(profile).predict(
            SHAPE, executor="thread", max_workers=2, batch_size=4
        )
        assert est.total_s == pytest.approx(
            est.compute_s + est.comm_s + est.latency_s
        )
        assert est.total_s > 0 and est.flops == SHAPE.total_flops
        assert est.flops_per_s > 0

    def test_graph_matches_block_structure(self, profile):
        model = CampaignCostModel(profile)
        graph = model.build_graph(SHAPE, batch_size=4)
        # 2 scenarios x (8 realizations / batch 4) blocks, each with a
        # synth task and (store campaign) a commit task.
        assert graph.n_tasks == 2 * 2 * 2
        # Commits serialise on the shared manifest: the graph can never
        # be wider than the synth fan-out.
        assert graph.max_parallelism() <= 4

    def test_store_writes_price_a_comm_term(self, profile):
        model = CampaignCostModel(profile)
        stored = model.predict(SHAPE, executor="thread", max_workers=2)
        dry = model.predict(
            CampaignShape(**{**SHAPE.__dict__, "store": False}),
            executor="thread", max_workers=2,
        )
        assert stored.comm_s > dry.comm_s

    def test_process_executor_pays_spawn_latency(self, profile):
        model = CampaignCostModel(profile)
        thread = model.predict(SHAPE, executor="thread", max_workers=4)
        process = model.predict(SHAPE, executor="process", max_workers=4)
        assert process.latency_s > thread.latency_s

    def test_scaling_efficiencies_normalises(self):
        series = [
            CostEstimate("a", 1, 1.0, 0.0, 0.0, 100.0),
            CostEstimate("b", 2, 1.0, 0.0, 0.0, 150.0),
        ]
        eff = scaling_efficiencies(series)
        assert eff[0] == pytest.approx(1.0)
        assert eff[1] == pytest.approx(0.75)
        assert scaling_efficiencies([]) == []


class TestPlanner:
    def test_plan_is_deterministic(self, profile):
        first = plan_campaign_execution(profile, SHAPE)
        second = plan_campaign_execution(profile, SHAPE)
        assert first == second

    def test_explicit_knobs_are_pinned(self, profile):
        plan = plan_campaign_execution(
            profile, SHAPE, executor="thread", max_workers=3
        )
        assert plan.executor == "thread" and plan.max_workers == 3
        assert plan.chosen["executor"] == "caller"
        assert plan.chosen["max_workers"] == "caller"
        assert plan.chosen["batch_size"] == "planner"

    def test_plan_respects_host_limits(self, profile):
        plan = plan_campaign_execution(profile, SHAPE)
        assert 1 <= plan.max_workers <= max(profile.cpu_count, 1)
        assert 1 <= plan.batch_size <= SHAPE.n_realizations
        assert plan.candidates > 0
        assert plan.profile_hostname == profile.hostname

    def test_serving_cache_clamps(self, profile):
        tiny = plan_serving_cache_bytes(profile, 1)
        assert tiny == 64 * 2**20
        huge = plan_serving_cache_bytes(profile, 2**40)
        if profile.memory_bytes > 0:
            assert huge <= max(profile.memory_bytes // 4, 64 * 2**20)


class TestCampaignIntegration:
    def test_tuned_campaign_bit_identical_to_untuned(self, emulator):
        tuned = run_campaign(emulator, ["ssp-low", "ssp-high"], 3, tune="auto")
        plain = run_campaign(emulator, ["ssp-low", "ssp-high"], 3)
        assert [r.to_dict() for r in tuned.runs] == [
            r.to_dict() for r in plain.runs
        ]
        tc, pc = tuned.collected(), plain.collected()
        assert set(tc) == set(pc)
        for key in tc:
            np.testing.assert_array_equal(tc[key], pc[key])

    def test_explicit_kwargs_override_tune_auto(self, emulator):
        manifest = run_campaign(
            emulator, ["ssp-low"], 2, tune="auto",
            executor="thread", max_workers=3, batch_size=2,
        )
        assert manifest.executor == "thread"
        assert manifest.max_workers == 3
        assert manifest.batch_size == 2
        assert manifest.tuning["chosen"] == {
            "executor": "caller",
            "max_workers": "caller",
            "batch_size": "caller",
        }

    def test_tuning_header_records_prediction_and_actual(self, emulator):
        manifest = run_campaign(emulator, ["ssp-low"], 2, tune="auto")
        header = manifest.to_dict()["tuning"]
        assert header["predicted_seconds"] > 0
        assert header["actual_seconds"] > 0
        assert header["executor"] in ("thread", "process")
        assert isinstance(header["max_workers"], int)

    def test_untuned_manifest_has_no_tuning_header(self, emulator):
        manifest = run_campaign(emulator, ["ssp-low"], 1)
        assert manifest.tuning is None
        assert manifest.to_dict()["tuning"] is None

    def test_max_workers_none_resolves_to_explicit_int(self, emulator):
        """Regression: the header never records null workers."""
        for kwargs in ({}, {"tune": "auto"}):
            manifest = run_campaign(emulator, ["ssp-low"], 2, **kwargs)
            header = manifest.to_dict()
            assert isinstance(header["max_workers"], int)
            assert header["max_workers"] >= 1
            payload = json.loads(manifest.to_json())
            assert payload["max_workers"] is not None

    def test_invalid_tune_rejected(self, emulator):
        with pytest.raises(ValueError, match="tune"):
            run_campaign(emulator, ["ssp-low"], 1, tune="always")

    def test_serve_cache_bytes_auto(self, emulator):
        service = repro.serve(emulator, cache_bytes="auto")
        reference = repro.serve(emulator)
        request = repro.FieldRequest("ssp-low", realization=0, year_start=0)
        np.testing.assert_array_equal(
            service.get(request), reference.get(request)
        )
