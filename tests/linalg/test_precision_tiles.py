"""Tests of precision descriptors, tiles, flop counts and policies."""

import numpy as np
import pytest

from repro.linalg import (
    PRECISIONS,
    Precision,
    Tile,
    adaptive_policy,
    band_policy,
    cholesky_flops,
    gemm_flops,
    potrf_flops,
    syrk_flops,
    trsm_flops,
    variant_policy,
)
from repro.linalg.flops import cholesky_tile_counts
from repro.linalg.precision import parse_precision


class TestPrecision:
    def test_dtypes_and_sizes(self):
        assert Precision.DOUBLE.dtype == np.float64
        assert Precision.SINGLE.dtype == np.float32
        assert Precision.HALF.dtype == np.float16
        assert [p.bytes_per_element for p in PRECISIONS] == [8, 4, 2]

    def test_epsilon_ordering(self):
        assert Precision.DOUBLE.epsilon < Precision.SINGLE.epsilon < Precision.HALF.epsilon

    def test_short_names(self):
        assert Precision.DOUBLE.short_name == "DP"
        assert Precision.HALF.short_name == "HP"

    def test_convert_loses_precision(self):
        values = np.array([1.0 + 1e-5, 2.0 + 1e-9])
        half = Precision.HALF.convert_via(values)
        assert half.dtype == np.float64
        assert abs(half[0] - values[0]) > 0
        assert np.max(np.abs(half - values)) < 1e-2

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("dp", Precision.DOUBLE),
            ("FP32", Precision.SINGLE),
            ("half", Precision.HALF),
            ("s", Precision.SINGLE),
            (Precision.HALF, Precision.HALF),
        ],
    )
    def test_parse(self, name, expected):
        assert parse_precision(name) is expected

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            parse_precision("quad")


class TestFlops:
    def test_asymptotic_ratios(self):
        nb = 256
        assert gemm_flops(nb) == pytest.approx(2 * nb ** 3)
        assert trsm_flops(nb) == pytest.approx(nb ** 3)
        assert syrk_flops(nb) == pytest.approx(nb ** 3, rel=1e-2)
        assert potrf_flops(nb) == pytest.approx(nb ** 3 / 3, rel=1e-2)

    def test_cholesky_total(self):
        assert cholesky_flops(1000) == pytest.approx(1000 ** 3 / 3, rel=1e-2)

    def test_tile_counts(self):
        counts = cholesky_tile_counts(4)
        assert counts == {"POTRF": 4, "TRSM": 6, "SYRK": 6, "GEMM": 4}

    def test_tile_counts_match_total_flops(self):
        """Summing per-kernel flops over the tile counts approximates n^3/3."""
        nb, nt = 64, 8
        counts = cholesky_tile_counts(nt)
        total = (
            counts["POTRF"] * potrf_flops(nb)
            + counts["TRSM"] * trsm_flops(nb)
            + counts["SYRK"] * syrk_flops(nb)
            + counts["GEMM"] * gemm_flops(nb)
        )
        assert total == pytest.approx(cholesky_flops(nb * nt), rel=0.05)


class TestTile:
    def test_storage_dtype_follows_precision(self):
        data = np.eye(4)
        tile = Tile(data=data, precision=Precision.SINGLE)
        assert tile.data.dtype == np.float32
        assert tile.nbytes == 4 * 16
        assert tile.shape == (4, 4)

    def test_as_float64_promotion(self):
        tile = Tile(data=np.full((2, 2), 1.1), precision=Precision.HALF)
        promoted = tile.as_float64()
        assert promoted.dtype == np.float64
        assert tile.quantisation_error(np.full((2, 2), 1.1)) < 1e-2

    def test_convert_to_counts_conversions(self):
        tile = Tile(data=np.ones((3, 3)), precision=Precision.DOUBLE)
        converted = tile.convert_to(Precision.HALF)
        assert converted.precision is Precision.HALF
        assert converted.conversions == 1


class TestPolicies:
    def test_dp_variant_is_all_double(self):
        policy = variant_policy("DP")
        assert all(p is Precision.DOUBLE for p in policy.precision_map(6).values())

    def test_dp_hp_band_structure(self):
        policy = variant_policy("DP/HP")
        pm = policy.precision_map(6)
        assert pm[(3, 3)] is Precision.DOUBLE
        assert pm[(5, 0)] is Precision.HALF

    def test_dp_sp_hp_has_three_levels(self):
        policy = variant_policy("DP/SP/HP")
        fractions = policy.fractions(40)
        assert fractions[Precision.DOUBLE] > 0
        assert fractions[Precision.SINGLE] > 0
        assert fractions[Precision.HALF] > 0.5

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            variant_policy("DP/QP")

    def test_band_policy_fractional_width(self):
        policy = band_policy("custom", ((0.5, Precision.SINGLE),), Precision.HALF)
        pm = policy.precision_map(10)
        assert pm[(2, 0)] is Precision.SINGLE
        assert pm[(9, 0)] is Precision.HALF

    def test_adaptive_policy_tracks_magnitude(self):
        n = 32
        idx = np.arange(n)
        matrix = np.exp(-np.abs(np.subtract.outer(idx, idx)) / 2.0) + np.eye(n)
        policy = adaptive_policy(matrix, tile_size=8, sp_threshold=0.5, hp_threshold=1e-3)
        pm = policy.precision_map(4)
        assert pm[(0, 0)] is Precision.DOUBLE
        assert pm[(3, 0)] in (Precision.SINGLE, Precision.HALF)

    def test_fractions_sum_to_one(self):
        for variant in ("DP", "DP/SP", "DP/SP/HP", "DP/HP"):
            fractions = variant_policy(variant).fractions(12)
            assert sum(fractions.values()) == pytest.approx(1.0)
