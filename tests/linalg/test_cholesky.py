"""Tests of the tile-based mixed-precision Cholesky factorisation."""

import numpy as np
import pytest

from repro.linalg import (
    MixedPrecisionCholesky,
    TiledSymmetricMatrix,
    VARIANTS,
    dense_cholesky,
    generate_cholesky_tasks,
)
from repro.linalg.flops import cholesky_flops, cholesky_tile_counts
from repro.runtime import build_task_graph


class TestDenseReference:
    def test_matches_numpy(self, spd_matrix):
        ours = dense_cholesky(spd_matrix)
        ref = np.linalg.cholesky(spd_matrix)
        assert np.allclose(ours, ref)

    def test_jitter_recovers_rank_deficient(self):
        a = np.ones((5, 5))  # rank one, singular
        with pytest.raises(np.linalg.LinAlgError):
            dense_cholesky(a)
        l = dense_cholesky(a, jitter=1e-6)
        assert np.all(np.isfinite(l))


class TestTaskGeneration:
    def test_task_counts_match_formula(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 16, "DP")
        tasks = generate_cholesky_tasks(tiled)
        counts = cholesky_tile_counts(tiled.n_tiles)
        by_kind = {}
        for t in tasks:
            by_kind[t.kind] = by_kind.get(t.kind, 0) + 1
        assert by_kind == counts

    def test_flops_sum_close_to_dense_count(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 8, "DP")
        tasks = generate_cholesky_tasks(tiled)
        total = sum(t.flops for t in tasks)
        assert total == pytest.approx(cholesky_flops(64), rel=0.1)

    def test_dag_is_acyclic_with_expected_dependencies(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 16, "DP")
        graph = build_task_graph(generate_cholesky_tasks(tiled))
        # First POTRF has no predecessors; last POTRF depends on earlier work.
        assert not graph.predecessors(graph.tasks[0])
        last_potrf = [t for t in graph.tasks if t.name == f"POTRF({tiled.n_tiles - 1})"][0]
        assert graph.predecessors(last_potrf)

    def test_precision_assignment_follows_policy(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 8, "DP/HP")
        tasks = generate_cholesky_tasks(tiled)
        potrf = [t for t in tasks if t.kind == "POTRF"]
        gemm_far = [t for t in tasks if t.kind == "GEMM" and t.name == "GEMM(7,1,0)"]
        assert all(t.precision == "fp64" for t in potrf)
        assert gemm_far and gemm_far[0].precision == "fp16"

    def test_sender_conversion_counts_fewer_than_receiver(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 8, "DP/HP")
        sender = sum(
            t.metadata.get("conversions", 0)
            for t in generate_cholesky_tasks(tiled, conversion="sender")
        )
        receiver = sum(
            t.metadata.get("conversions", 0)
            for t in generate_cholesky_tasks(tiled, conversion="receiver")
        )
        assert sender < receiver


class TestFactorizationAccuracy:
    def test_dp_matches_dense_reference(self, spd_matrix):
        result = MixedPrecisionCholesky(tile_size=16, variant="DP").factorize(spd_matrix)
        assert result.factor_error(dense_cholesky(spd_matrix)) < 1e-13
        assert result.relative_error(spd_matrix) < 1e-14

    @pytest.mark.parametrize("variant,tol", [("DP/SP", 1e-5), ("DP/SP/HP", 5e-2), ("DP/HP", 5e-2)])
    def test_reduced_precision_error_bounded(self, spd_matrix, variant, tol):
        result = MixedPrecisionCholesky(tile_size=16, variant=variant).factorize(spd_matrix)
        assert 0 < result.relative_error(spd_matrix) < tol

    def test_error_ordering_across_variants(self, spd_matrix):
        errors = {}
        for variant in VARIANTS:
            result = MixedPrecisionCholesky(tile_size=16, variant=variant).factorize(spd_matrix)
            errors[variant] = result.relative_error(spd_matrix)
        assert errors["DP"] < errors["DP/SP"] < errors["DP/HP"]

    def test_uneven_tile_sizes(self, spd_matrix):
        result = MixedPrecisionCholesky(tile_size=24, variant="DP").factorize(spd_matrix)
        assert result.relative_error(spd_matrix) < 1e-13

    def test_single_tile_matrix(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 16))
        spd = a @ a.T + 8 * np.eye(8)
        result = MixedPrecisionCholesky(tile_size=8, variant="DP").factorize(spd)
        assert result.relative_error(spd) < 1e-13
        assert result.n_tasks == 1

    def test_result_accounting(self, spd_matrix):
        result = MixedPrecisionCholesky(tile_size=16, variant="DP/HP").factorize(spd_matrix)
        assert result.total_flops == pytest.approx(sum(result.flops_by_precision.values()))
        assert result.storage_bytes < result.dense_bytes
        assert "fp16" in result.flops_by_precision
        assert result.variant == "DP/HP"

    def test_sampling_covariance(self, spd_matrix):
        result = MixedPrecisionCholesky(tile_size=16, variant="DP").factorize(spd_matrix)
        rng = np.random.default_rng(3)
        samples = result.sample(rng, size=4000)
        empirical = samples.T @ samples / samples.shape[0]
        rel = np.linalg.norm(empirical - spd_matrix) / np.linalg.norm(spd_matrix)
        assert rel < 0.15

    def test_jitter_handles_near_singular(self):
        n = 32
        u = np.ones((n, 1))
        nearly_singular = u @ u.T + 1e-10 * np.eye(n)
        solver = MixedPrecisionCholesky(tile_size=8, variant="DP", jitter=1e-6)
        result = solver.factorize(nearly_singular)
        assert np.all(np.isfinite(result.lower()))

    def test_invalid_tile_size(self):
        with pytest.raises(ValueError):
            MixedPrecisionCholesky(tile_size=0)
