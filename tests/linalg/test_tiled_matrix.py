"""Tests of the tiled symmetric matrix container."""

import numpy as np
import pytest

from repro.linalg import Precision, TiledSymmetricMatrix, variant_policy


class TestConstruction:
    def test_from_dense_roundtrip_dp(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, tile_size=16, policy="DP")
        assert tiled.n_tiles == 4
        assert np.allclose(tiled.to_dense(), spd_matrix)

    def test_uneven_tiling(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, tile_size=24, policy="DP")
        assert tiled.n_tiles == 3
        assert tiled.tile_rows(2) == 16
        assert np.allclose(tiled.to_dense(), spd_matrix)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            TiledSymmetricMatrix.from_dense(np.zeros((4, 6)), tile_size=2)

    def test_rejects_bad_tile_size(self, spd_matrix):
        with pytest.raises(ValueError):
            TiledSymmetricMatrix.from_dense(spd_matrix, tile_size=0)

    def test_only_lower_triangle_stored(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, tile_size=16)
        with pytest.raises(KeyError):
            tiled.tile(0, 1)
        assert tiled.tile(1, 0).shape == (16, 16)


class TestPrecisionAccounting:
    def test_mixed_precision_reduces_storage(self, spd_matrix):
        dp = TiledSymmetricMatrix.from_dense(spd_matrix, 8, "DP")
        hp = TiledSymmetricMatrix.from_dense(spd_matrix, 8, "DP/HP")
        assert hp.storage_bytes() < dp.storage_bytes()
        assert hp.compression_ratio() > dp.compression_ratio() == pytest.approx(1.0)

    def test_bytes_by_precision(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 8, "DP/SP")
        by_prec = tiled.bytes_by_precision()
        assert Precision.DOUBLE in by_prec
        assert Precision.SINGLE in by_prec
        assert sum(by_prec.values()) == tiled.storage_bytes()

    def test_precision_counts(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 8, "DP/HP")
        counts = tiled.precision_counts()
        n_tiles = tiled.n_tiles
        assert counts["DP"] == n_tiles  # the diagonal band stays double
        assert counts["HP"] == n_tiles * (n_tiles + 1) // 2 - counts["DP"]

    def test_reduced_precision_loses_accuracy_boundedly(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 8, "DP/HP")
        err = np.max(np.abs(tiled.to_dense() - spd_matrix))
        assert 0 < err < 1e-2

    def test_dense_bytes(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 8)
        assert tiled.dense_bytes() == 64 * 64 * 8


class TestRuntimeIntegration:
    def test_tile_store_shares_memory_semantics(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 16, "DP")
        store = tiled.as_tile_store()
        assert set(store) == {("A", i, j) for i in range(4) for j in range(i + 1)}
        store[("A", 0, 0)] = np.zeros((16, 16))
        tiled.adopt_store(store)
        assert np.allclose(tiled.tile(0, 0).as_float64(), 0.0)

    def test_tile_bytes_map(self, spd_matrix):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 16, "DP/HP")
        bytes_map = tiled.tile_bytes_map()
        assert bytes_map[("A", 0, 0)] == 16 * 16 * 8
        assert bytes_map[("A", 3, 0)] == 16 * 16 * 2

    def test_custom_policy_object(self, spd_matrix):
        policy = variant_policy("DP/SP")
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 16, policy)
        assert tiled.policy is policy
