"""Tests of the I(q) integrals and colatitude quadrature weights."""

import numpy as np
import pytest
from scipy.integrate import quad

from repro.sht.quadrature import (
    colatitude_weights,
    exponential_sine_integral,
    extended_colatitude_weights,
    integral_matrix,
)


class TestExponentialSineIntegral:
    @pytest.mark.parametrize("q", range(-7, 8))
    def test_matches_numerical_integration(self, q):
        real_part = quad(lambda t: np.cos(q * t) * np.sin(t), 0, np.pi)[0]
        imag_part = quad(lambda t: np.sin(q * t) * np.sin(t), 0, np.pi)[0]
        value = exponential_sine_integral(q)
        assert value.real == pytest.approx(real_part, abs=1e-12)
        assert value.imag == pytest.approx(imag_part, abs=1e-12)

    def test_closed_form_cases(self):
        assert exponential_sine_integral(0) == pytest.approx(2.0)
        assert exponential_sine_integral(1) == pytest.approx(1j * np.pi / 2)
        assert exponential_sine_integral(-1) == pytest.approx(-1j * np.pi / 2)
        assert exponential_sine_integral(2) == pytest.approx(-2.0 / 3.0)
        assert exponential_sine_integral(3) == pytest.approx(0.0)

    def test_vectorised(self):
        q = np.array([0, 1, 2, 5])
        values = exponential_sine_integral(q)
        assert values.shape == (4,)
        assert values[3] == pytest.approx(0.0)


class TestIntegralMatrix:
    def test_shape_and_symmetry(self):
        lmax = 5
        mat = integral_matrix(lmax)
        assert mat.shape == (2 * lmax - 1, 2 * lmax - 1)
        # I(m' + m'') is symmetric under swapping m' and m''.
        assert np.allclose(mat, mat.T)

    def test_entries(self):
        mat = integral_matrix(3)
        centre = 2  # index of order 0
        assert mat[centre, centre] == pytest.approx(2.0)
        assert mat[centre, centre + 1] == pytest.approx(1j * np.pi / 2)

    def test_invalid_lmax(self):
        with pytest.raises(ValueError):
            integral_matrix(0)


class TestColatitudeWeights:
    def test_extended_weights_integrate_exponentials(self):
        ntheta = 12
        next_ = 2 * ntheta - 2
        theta = 2 * np.pi * np.arange(next_) / next_
        w = extended_colatitude_weights(ntheta)
        for p in range(-(ntheta - 2), ntheta - 1):
            value = np.sum(w * np.exp(1j * p * theta))
            assert value == pytest.approx(complex(exponential_sine_integral(p)), abs=1e-12)

    @pytest.mark.parametrize("parity", [1, -1])
    def test_folded_weights_respect_parity(self, parity):
        ntheta = 14
        theta = np.pi * np.arange(ntheta) / (ntheta - 1)
        w = colatitude_weights(ntheta, parity)
        for p in range(0, ntheta - 1):
            f = np.exp(1j * p * theta) + parity * np.exp(-1j * p * theta)
            expected = exponential_sine_integral(p) + parity * exponential_sine_integral(-p)
            assert np.sum(w * f) == pytest.approx(complex(expected), abs=1e-11)

    def test_even_weights_sum_to_sphere_measure(self):
        """Integrating f = 1 must give 2 (the integral of sin(theta))."""
        w = colatitude_weights(16, parity=1)
        assert np.sum(w) == pytest.approx(2.0)

    def test_invalid_parity(self):
        with pytest.raises(ValueError):
            colatitude_weights(8, parity=0)
