"""Tests of the equiangular grid container."""

import numpy as np
import pytest

from repro.sht.grid import (
    Grid,
    bandlimit_to_resolution,
    extended_colatitude_length,
    resolution_to_bandlimit,
)


class TestGridConstruction:
    def test_for_bandlimit_supports_that_bandlimit(self):
        for lmax in (2, 8, 33):
            grid = Grid.for_bandlimit(lmax)
            assert grid.supports_bandlimit(lmax)
            assert grid.ntheta == lmax + 1
            assert grid.nphi == 2 * lmax - 1

    def test_era5_grid_matches_paper(self):
        grid = Grid.era5()
        assert grid.shape == (721, 1440)
        assert grid.supports_bandlimit(720)
        assert grid.resolution_deg == pytest.approx(0.25)

    def test_from_resolution(self):
        grid = Grid.from_resolution(1.0)
        assert grid.ntheta == 181
        assert grid.supports_bandlimit(180)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Grid(ntheta=1, nphi=4)
        with pytest.raises(ValueError):
            Grid(ntheta=4, nphi=0)


class TestGridCoordinates:
    def test_colatitudes_cover_poles(self):
        grid = Grid(ntheta=9, nphi=16)
        theta = grid.colatitudes
        assert theta[0] == 0.0
        assert theta[-1] == pytest.approx(np.pi)
        assert np.all(np.diff(theta) > 0)

    def test_latitudes_run_north_to_south(self):
        grid = Grid(ntheta=5, nphi=8)
        lat = grid.latitudes
        assert lat[0] == pytest.approx(90.0)
        assert lat[-1] == pytest.approx(-90.0)

    def test_longitudes_exclude_endpoint(self):
        grid = Grid(ntheta=5, nphi=8)
        lon = grid.longitudes
        assert lon[0] == 0.0
        assert lon[-1] < 2 * np.pi

    def test_mesh_shapes(self):
        grid = Grid(ntheta=5, nphi=8)
        theta, phi = grid.mesh()
        assert theta.shape == grid.shape
        assert phi.shape == grid.shape


class TestGridAreas:
    def test_cell_areas_sum_to_sphere(self):
        grid = Grid(ntheta=19, nphi=36)
        assert grid.cell_areas().sum() == pytest.approx(4 * np.pi, rel=1e-10)

    def test_area_weights_sum_to_one(self):
        grid = Grid(ntheta=9, nphi=12)
        assert grid.area_weights().sum() == pytest.approx(1.0)

    def test_polar_cells_smaller_than_equatorial(self):
        grid = Grid(ntheta=19, nphi=36)
        areas = grid.cell_areas()
        assert areas[0, 0] < areas[9, 0]

    def test_data_points_counting(self):
        grid = Grid(ntheta=10, nphi=20)
        assert grid.data_points(ntime=5, nensemble=3) == 3 * 5 * 200


class TestResolutionHelpers:
    def test_resolution_bandlimit_roundtrip(self):
        assert resolution_to_bandlimit(0.25) == 720
        assert bandlimit_to_resolution(720) == pytest.approx(0.25)

    def test_paper_ultra_high_resolution(self):
        """0.034 degrees (~3.5 km) corresponds to a band-limit near 5,219."""
        lmax = resolution_to_bandlimit(0.034)
        assert 5000 < lmax < 5500

    def test_extended_length(self):
        assert extended_colatitude_length(721) == 1440
        with pytest.raises(ValueError):
            extended_colatitude_length(1)

    def test_resolution_km_roughly_110km_per_degree(self):
        grid = Grid.from_resolution(1.0)
        assert 100.0 < grid.resolution_km < 120.0

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            resolution_to_bandlimit(0.0)
        with pytest.raises(ValueError):
            bandlimit_to_resolution(0)
