"""Tests of the normalised associated Legendre functions."""

import numpy as np
import pytest

from repro.sht.legendre import legendre_normalized, ylm_matrix_theta0, ylm_theta0


class TestLegendreNormalized:
    def test_l0_is_constant(self):
        x = np.linspace(-1, 1, 7)
        p = legendre_normalized(0, x)
        assert np.allclose(p[0, 0], 1.0 / np.sqrt(4.0 * np.pi))

    def test_known_l1_values(self):
        x = np.array([0.0, 0.5, -0.3])
        p = legendre_normalized(1, x)
        # Pbar_{1,0}(x) = sqrt(3/4pi) x
        assert np.allclose(p[1, 0], np.sqrt(3.0 / (4 * np.pi)) * x)
        # Pbar_{1,1}(x) = -sqrt(3/8pi) sqrt(1-x^2)
        assert np.allclose(p[1, 1], -np.sqrt(3.0 / (8 * np.pi)) * np.sqrt(1 - x ** 2))

    def test_orthonormality_over_sphere(self):
        """Columns are orthonormal under the sin(theta) measure."""
        lmax = 6
        n = 400
        theta = (np.arange(n) + 0.5) * np.pi / n
        x = np.cos(theta)
        w = np.sin(theta) * np.pi / n * 2 * np.pi
        p = legendre_normalized(lmax, x)
        for m in range(lmax + 1):
            for l1 in range(m, lmax + 1):
                for l2 in range(m, lmax + 1):
                    inner = np.sum(p[l1, m] * p[l2, m] * w)
                    expected = 1.0 if l1 == l2 else 0.0
                    assert inner == pytest.approx(expected, abs=2e-3)

    def test_zero_above_diagonal(self):
        p = legendre_normalized(4, np.array([0.3]))
        for ell in range(5):
            for m in range(ell + 1, 5):
                assert p[ell, m] == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            legendre_normalized(-1, np.array([0.0]))
        with pytest.raises(ValueError):
            legendre_normalized(2, np.array([1.5]))


class TestYlmTheta0:
    def test_negative_order_symmetry(self):
        theta = np.linspace(0.1, np.pi - 0.1, 5)
        lmax = 5
        y = ylm_theta0(lmax, theta)
        for ell in range(lmax + 1):
            for m in range(1, ell + 1):
                assert np.allclose(y[ell, lmax - m], (-1) ** m * y[ell, lmax + m])

    def test_matches_scipy_sph_harm(self):
        scipy_special = pytest.importorskip("scipy.special")
        theta = np.array([0.4, 1.1, 2.3])
        lmax = 5
        y = ylm_theta0(lmax, theta)
        for ell in range(lmax + 1):
            for m in range(-ell, ell + 1):
                if hasattr(scipy_special, "sph_harm_y"):
                    ref = scipy_special.sph_harm_y(ell, m, theta, 0.0)
                else:  # pragma: no cover - older scipy
                    ref = scipy_special.sph_harm(m, ell, 0.0, theta)
                assert np.allclose(y[ell, lmax + m], ref.real, atol=1e-12)

    def test_flat_matrix_layout(self):
        theta = np.array([0.7, 1.9])
        lmax = 3
        flat = ylm_matrix_theta0(lmax, theta)
        full = ylm_theta0(lmax, theta)
        assert flat.shape == ((lmax + 1) ** 2, theta.size)
        for ell in range(lmax + 1):
            for m in range(-ell, ell + 1):
                assert np.allclose(flat[ell * ell + ell + m], full[ell, lmax + m])
