"""Tests of the process-safe SHT plan cache."""

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.sht.backends import SHT_BACKENDS
from repro.sht.grid import Grid
from repro.sht.plancache import (
    clear_plan_cache,
    get_plan,
    plan_cache_key,
    plan_cache_stats,
    set_plan_cache_limit,
)
from repro.sht.transform import SHTPlan
from repro.util.registry import UnknownBackendError


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test observes its own hit/miss history and an unlimited cache."""
    set_plan_cache_limit(None)
    clear_plan_cache()
    yield
    set_plan_cache_limit(None)
    clear_plan_cache()


class TestCacheHits:
    def test_hit_returns_the_same_plan_object(self):
        grid = Grid.for_bandlimit(6)
        first = get_plan("fast", 6, grid)
        second = get_plan("fast", 6, grid)
        assert first is second
        stats = plan_cache_stats()
        assert stats["size"] == 1 and stats["misses"] == 1 and stats["hits"] == 1

    def test_hit_serves_identical_tables(self):
        grid = Grid.for_bandlimit(6)
        plan = get_plan("fast", 6, grid)
        again = get_plan("fast", 6, grid)
        fresh = SHTPlan(lmax=6, grid=grid)
        for ell in range(6):
            assert again.wigner[ell] is plan.wigner[ell]
            np.testing.assert_array_equal(again.wigner[ell], fresh.wigner[ell])
        np.testing.assert_array_equal(again.integral, fresh.integral)

    def test_aliases_share_one_entry(self):
        grid = Grid.for_bandlimit(5)
        assert get_plan("fast", 5, grid) is get_plan("fft", 5, grid)
        assert plan_cache_stats()["size"] == 1

    def test_lookup_is_case_insensitive(self):
        grid = Grid.for_bandlimit(5)
        assert get_plan("fast", 5, grid) is get_plan("FAST", 5, grid)


class TestCacheKeys:
    def test_distinct_keys_do_not_collide(self):
        grid6 = Grid.for_bandlimit(6)
        grid8 = Grid.for_bandlimit(8)
        plans = {
            "fast-6": get_plan("fast", 6, grid6),
            "fast-8": get_plan("fast", 8, grid8),
            "fast-6-oversampled": get_plan("fast", 6, grid8),
            "direct-6": get_plan("direct", 6, grid6),
        }
        assert len({id(p) for p in plans.values()}) == len(plans)
        assert plan_cache_stats()["size"] == len(plans)
        assert plans["fast-6"].lmax == 6 and plans["fast-8"].lmax == 8
        assert plans["fast-6-oversampled"].grid == grid8

    def test_key_canonicalises_backend_name(self):
        grid = Grid.for_bandlimit(4)
        assert plan_cache_key("FFT", 4, grid) == plan_cache_key("fast", 4, grid)
        assert plan_cache_key("fast", 4, grid) != plan_cache_key("direct", 4, grid)

    def test_unknown_backend_raises_listing_names(self):
        with pytest.raises(UnknownBackendError, match="'fast'"):
            get_plan("nonexistent", 4, Grid.for_bandlimit(4))

    def test_reregistered_backend_misses_stale_entry(self):
        """overwrite=True registration must not serve the old factory's plan."""
        grid = Grid.for_bandlimit(4)
        SHT_BACKENDS.register(
            "cache-test", lambda lmax, grid: SHTPlan(lmax=lmax, grid=grid),
            description="test-only", overwrite=True,
        )
        try:
            stale = get_plan("cache-test", 4, grid)
            SHT_BACKENDS.register(
                "cache-test", lambda lmax, grid: SHTPlan(lmax=lmax, grid=grid),
                description="test-only v2", overwrite=True,
            )
            fresh = get_plan("cache-test", 4, grid)
            assert fresh is not stale
        finally:
            SHT_BACKENDS.unregister("cache-test")


class TestBytesLimit:
    def test_unlimited_by_default(self):
        for lmax in (4, 5, 6, 7, 8):
            get_plan("fast", lmax, Grid.for_bandlimit(lmax))
        stats = plan_cache_stats()
        assert stats["limit_bytes"] is None
        assert stats["size"] == 5 and stats["evictions"] == 0
        assert stats["bytes"] > 0

    def test_limit_evicts_least_recently_used(self):
        plans = {
            lmax: get_plan("fast", lmax, Grid.for_bandlimit(lmax))
            for lmax in (4, 6, 8)
        }
        get_plan("fast", 4, Grid.for_bandlimit(4))  # refresh lmax=4 to MRU
        total = plan_cache_stats()["bytes"]
        # Budget for roughly the two smaller plans: the LRU entry (lmax=6)
        # must go first.
        set_plan_cache_limit(total - 1)
        stats = plan_cache_stats()
        assert stats["evictions"] >= 1
        assert stats["bytes"] <= total - 1
        keys = {key[2] for key in stats["keys"]}
        assert 8 in keys  # most recently inserted survives
        assert plans  # keep references alive; evicted plans rebuild on demand

    def test_evicted_plan_rebuilds_on_next_use(self):
        grid = Grid.for_bandlimit(6)
        first = get_plan("fast", 6, grid)
        set_plan_cache_limit(0)  # evicts on every insert beyond the newest
        get_plan("fast", 8, Grid.for_bandlimit(8))
        rebuilt = get_plan("fast", 6, grid)
        assert rebuilt is not first
        np.testing.assert_array_equal(rebuilt.integral, first.integral)
        assert plan_cache_stats()["evictions"] >= 1

    def test_single_oversized_plan_still_serves(self):
        set_plan_cache_limit(1)  # smaller than any plan
        grid = Grid.for_bandlimit(6)
        plan = get_plan("fast", 6, grid)
        # The most recently served plan survives its own insertion ...
        assert plan_cache_stats()["size"] == 1
        # ... and a subsequent distinct plan replaces it.
        get_plan("fast", 8, Grid.for_bandlimit(8))
        stats = plan_cache_stats()
        assert stats["size"] == 1 and stats["keys"][0][2] == 8

    def test_hits_refresh_recency(self):
        set_plan_cache_limit(None)
        a = get_plan("fast", 4, Grid.for_bandlimit(4))
        get_plan("fast", 6, Grid.for_bandlimit(6))
        get_plan("fast", 4, Grid.for_bandlimit(4))  # hit: lmax=4 becomes MRU
        stats = plan_cache_stats()
        assert [key[2] for key in stats["keys"]] == [6, 4]
        assert a is get_plan("fast", 4, Grid.for_bandlimit(4))

    def test_rejects_negative_limit(self):
        with pytest.raises(ValueError, match="max_bytes"):
            set_plan_cache_limit(-1)

    def test_plan_bytes_are_fixed_at_insertion(self):
        """Plans are built eagerly: using one never grows its footprint.

        The bytes-limit eviction measures each plan once per pass on the
        premise that every table (Wigner, integral, per-order synthesis
        and analysis operators) exists from ``__post_init__`` — pinned
        here by exercising both transform directions and checking the
        measured cache bytes do not move.
        """
        grid = Grid.for_bandlimit(6)
        plan = get_plan("fast", 6, grid)
        before = plan_cache_stats()["bytes"]
        assert before > 0
        coeffs = plan.random_coefficients(np.random.default_rng(0), shape=(3,))
        plan.forward(plan.inverse(coeffs))
        assert plan_cache_stats()["bytes"] == before

    def test_limit_survives_clear(self):
        set_plan_cache_limit(123456)
        clear_plan_cache()
        assert plan_cache_stats()["limit_bytes"] == 123456


class TestConcurrency:
    def test_threads_converge_on_one_plan(self):
        grid = Grid.for_bandlimit(8)
        with ThreadPoolExecutor(max_workers=8) as pool:
            plans = list(pool.map(
                lambda _: get_plan("fast", 8, grid), range(16)
            ))
        assert all(p is plans[0] for p in plans)
        assert plan_cache_stats()["size"] == 1

    def test_concurrent_load_and_emulate_share_one_plan(
        self, fitted_emulator, tmp_path
    ):
        """repro.load + emulate hammered from threads: one plan, same bits.

        Every load resolves its transform plan through the shared cache
        while other threads emulate with it; the cache must neither
        corrupt the plan (outputs stay bit-identical to a serial run)
        nor duplicate it (one entry, one miss).
        """
        import numpy as np

        import repro

        path = repro.save(fitted_emulator, tmp_path / "emulator.npz")
        serial = repro.load(path).emulate(
            1, n_times=24, rng=np.random.default_rng(9)
        )
        n_threads = 8
        outputs = [None] * n_threads
        errors = []

        def worker(i):
            try:
                emulator = repro.load(path)
                outputs[i] = emulator.emulate(
                    1, n_times=24, rng=np.random.default_rng(9)
                )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(worker, range(n_threads)))
        assert not errors
        for output in outputs:
            np.testing.assert_array_equal(output.data, serial.data)
        stats = plan_cache_stats()
        key = plan_cache_key(
            fitted_emulator.config.sht_method,
            fitted_emulator.config.lmax,
            fitted_emulator.training_summary.grid,
        )
        assert stats["keys"].count(key) == 1
        # Duplicate concurrent builds may race, but exactly one entry
        # serves every subsequent lookup.
        assert sum(1 for k in stats["keys"] if k == key) == 1

    def test_concurrent_get_under_bytes_limit_stays_consistent(self):
        """Eviction churn under threads must never serve a wrong plan."""
        grids = {lmax: Grid.for_bandlimit(lmax) for lmax in (4, 5, 6, 7)}
        set_plan_cache_limit(1)  # every insert evicts the rest: maximum churn
        errors = []

        def worker(i):
            lmax = 4 + (i % 4)
            try:
                plan = get_plan("fast", lmax, grids[lmax])
                assert plan.lmax == lmax and plan.grid == grids[lmax]
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(64)))
        assert not errors
        stats = plan_cache_stats()
        assert stats["size"] == 1
        assert stats["evictions"] > 0

    def test_process_workers_warm_independently(self):
        """Each worker process builds its own cache (module state is per-process)."""
        with ProcessPoolExecutor(max_workers=2) as pool:
            reports = list(pool.map(_warm_and_report, [6, 6]))
        parent = plan_cache_stats()
        for report in reports:
            assert report["pid"] != parent["pid"]
            # The worker's first build is a miss in its own cache, and the
            # repeat lookup hits it; nothing leaked into the parent cache.
            assert report["misses"] >= 1
            assert report["hits"] >= 1
        assert parent["size"] == 0


def _warm_and_report(lmax: int) -> dict:
    """Process-pool worker: warm the local cache and report its counters."""
    grid = Grid.for_bandlimit(lmax)
    get_plan("fast", lmax, grid)
    get_plan("fast", lmax, grid)
    stats = plan_cache_stats()
    assert stats["pid"] == os.getpid()
    return stats
