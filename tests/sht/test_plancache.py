"""Tests of the process-safe SHT plan cache."""

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.sht.backends import SHT_BACKENDS
from repro.sht.grid import Grid
from repro.sht.plancache import (
    clear_plan_cache,
    get_plan,
    plan_cache_key,
    plan_cache_stats,
)
from repro.sht.transform import SHTPlan
from repro.util.registry import UnknownBackendError


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test observes its own hit/miss history."""
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestCacheHits:
    def test_hit_returns_the_same_plan_object(self):
        grid = Grid.for_bandlimit(6)
        first = get_plan("fast", 6, grid)
        second = get_plan("fast", 6, grid)
        assert first is second
        stats = plan_cache_stats()
        assert stats["size"] == 1 and stats["misses"] == 1 and stats["hits"] == 1

    def test_hit_serves_identical_tables(self):
        grid = Grid.for_bandlimit(6)
        plan = get_plan("fast", 6, grid)
        again = get_plan("fast", 6, grid)
        fresh = SHTPlan(lmax=6, grid=grid)
        for ell in range(6):
            assert again.wigner[ell] is plan.wigner[ell]
            np.testing.assert_array_equal(again.wigner[ell], fresh.wigner[ell])
        np.testing.assert_array_equal(again.integral, fresh.integral)

    def test_aliases_share_one_entry(self):
        grid = Grid.for_bandlimit(5)
        assert get_plan("fast", 5, grid) is get_plan("fft", 5, grid)
        assert plan_cache_stats()["size"] == 1

    def test_lookup_is_case_insensitive(self):
        grid = Grid.for_bandlimit(5)
        assert get_plan("fast", 5, grid) is get_plan("FAST", 5, grid)


class TestCacheKeys:
    def test_distinct_keys_do_not_collide(self):
        grid6 = Grid.for_bandlimit(6)
        grid8 = Grid.for_bandlimit(8)
        plans = {
            "fast-6": get_plan("fast", 6, grid6),
            "fast-8": get_plan("fast", 8, grid8),
            "fast-6-oversampled": get_plan("fast", 6, grid8),
            "direct-6": get_plan("direct", 6, grid6),
        }
        assert len({id(p) for p in plans.values()}) == len(plans)
        assert plan_cache_stats()["size"] == len(plans)
        assert plans["fast-6"].lmax == 6 and plans["fast-8"].lmax == 8
        assert plans["fast-6-oversampled"].grid == grid8

    def test_key_canonicalises_backend_name(self):
        grid = Grid.for_bandlimit(4)
        assert plan_cache_key("FFT", 4, grid) == plan_cache_key("fast", 4, grid)
        assert plan_cache_key("fast", 4, grid) != plan_cache_key("direct", 4, grid)

    def test_unknown_backend_raises_listing_names(self):
        with pytest.raises(UnknownBackendError, match="'fast'"):
            get_plan("nonexistent", 4, Grid.for_bandlimit(4))

    def test_reregistered_backend_misses_stale_entry(self):
        """overwrite=True registration must not serve the old factory's plan."""
        grid = Grid.for_bandlimit(4)
        SHT_BACKENDS.register(
            "cache-test", lambda lmax, grid: SHTPlan(lmax=lmax, grid=grid),
            description="test-only", overwrite=True,
        )
        try:
            stale = get_plan("cache-test", 4, grid)
            SHT_BACKENDS.register(
                "cache-test", lambda lmax, grid: SHTPlan(lmax=lmax, grid=grid),
                description="test-only v2", overwrite=True,
            )
            fresh = get_plan("cache-test", 4, grid)
            assert fresh is not stale
        finally:
            SHT_BACKENDS.unregister("cache-test")


class TestConcurrency:
    def test_threads_converge_on_one_plan(self):
        grid = Grid.for_bandlimit(8)
        with ThreadPoolExecutor(max_workers=8) as pool:
            plans = list(pool.map(
                lambda _: get_plan("fast", 8, grid), range(16)
            ))
        assert all(p is plans[0] for p in plans)
        assert plan_cache_stats()["size"] == 1

    def test_process_workers_warm_independently(self):
        """Each worker process builds its own cache (module state is per-process)."""
        with ProcessPoolExecutor(max_workers=2) as pool:
            reports = list(pool.map(_warm_and_report, [6, 6]))
        parent = plan_cache_stats()
        for report in reports:
            assert report["pid"] != parent["pid"]
            # The worker's first build is a miss in its own cache, and the
            # repeat lookup hits it; nothing leaked into the parent cache.
            assert report["misses"] >= 1
            assert report["hits"] >= 1
        assert parent["size"] == 0


def _warm_and_report(lmax: int) -> dict:
    """Process-pool worker: warm the local cache and report its counters."""
    grid = Grid.for_bandlimit(lmax)
    get_plan("fast", lmax, grid)
    get_plan("fast", lmax, grid)
    stats = plan_cache_stats()
    assert stats["pid"] == os.getpid()
    return stats
