"""Tests of the fast spherical harmonic transform (Eqs. 4-8)."""

import numpy as np
import pytest

from repro.sht import (
    Grid,
    SHTPlan,
    coeff_index,
    coeff_lm,
    direct_forward,
    direct_inverse,
    num_coeffs,
    sht_forward,
    sht_inverse,
)
from repro.sht.transform import degrees_and_orders


class TestCoefficientIndexing:
    def test_num_coeffs(self):
        assert num_coeffs(1) == 1
        assert num_coeffs(8) == 64
        assert num_coeffs(720) == 518_400

    def test_index_roundtrip(self):
        for ell in range(6):
            for m in range(-ell, ell + 1):
                assert coeff_lm(coeff_index(ell, m)) == (ell, m)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            coeff_index(2, 3)

    def test_degrees_and_orders(self):
        ells, ms = degrees_and_orders(3)
        assert len(ells) == 9
        assert ells[0] == 0 and ms[0] == 0
        assert ells[-1] == 2 and ms[-1] == 2

    def test_coeff_lm_exact_near_large_perfect_squares(self):
        """Regression: float sqrt rounds up near perfect squares.

        ``np.sqrt((2**27)**2 - 1)`` rounds to exactly ``2**27``, so the
        old float-based ``coeff_lm`` returned the invalid pair
        ``(134217728, -134217729)`` with ``m < -l``.  The integer-sqrt
        path must be exact at every boundary index.
        """
        for ell in (2**26, 2**27, 10**8, 2**31):
            last_of_previous = ell * ell - 1          # (l-1, l-1)
            assert coeff_lm(last_of_previous) == (ell - 1, ell - 1)
            assert coeff_lm(ell * ell) == (ell, -ell)  # first of degree l
        # Every returned pair must satisfy |m| <= l.
        for index in (0, 1, 2, 3, (2**27) ** 2 - 1, (2**27) ** 2):
            ell, m = coeff_lm(index)
            assert abs(m) <= ell
            assert coeff_index(ell, m) == index

    def test_degrees_and_orders_is_exact_and_matches_coeff_lm(self):
        """The array path uses integer arithmetic only — exact everywhere."""
        for lmax in (1, 2, 7, 48):
            ells, ms = degrees_and_orders(lmax)
            assert np.all(np.abs(ms) <= ells)
            for index in (0, lmax * lmax - 1, lmax * (lmax - 1)):
                assert (ells[index], ms[index]) == coeff_lm(index)
            np.testing.assert_array_equal(ells * ells + ells + ms,
                                          np.arange(lmax * lmax))

    def test_coeff_lm_rejects_negative(self):
        with pytest.raises(ValueError):
            coeff_lm(-1)

    def test_bandlimit_from_coeff_count(self):
        """The shared exact inverse of num_coeffs, used at every
        band-limit recovery site (sht_inverse, realform, direct,
        spectrum) instead of a rounded float sqrt."""
        from repro.sht.realform import complex_from_real
        from repro.sht.spectrum import angular_power_spectrum
        from repro.sht.transform import bandlimit_from_coeff_count

        for lmax in (1, 8, 2**27):
            assert bandlimit_from_coeff_count(num_coeffs(lmax)) == lmax
        for bad in (0, -4, 5, 63, (2**27) ** 2 - 1):
            with pytest.raises(ValueError):
                bandlimit_from_coeff_count(bad)
        # The consumers now reject malformed vectors instead of
        # silently truncating to round(sqrt(n))**2 entries.
        with pytest.raises(ValueError, match="perfect square"):
            complex_from_real(np.zeros(5))
        with pytest.raises(ValueError, match="perfect square"):
            angular_power_spectrum(np.zeros(63, dtype=complex))


class TestPlanValidation:
    def test_rejects_too_small_grid(self):
        with pytest.raises(ValueError):
            SHTPlan(lmax=8, grid=Grid(ntheta=6, nphi=15))
        with pytest.raises(ValueError):
            SHTPlan(lmax=8, grid=Grid(ntheta=9, nphi=10))

    def test_plan_sizes(self, small_plan, small_lmax):
        assert small_plan.n_coeffs == small_lmax ** 2
        assert small_plan.n_orders == 2 * small_lmax - 1
        assert len(small_plan.wigner) == small_lmax

    def test_shape_mismatch_raises(self, small_plan):
        with pytest.raises(ValueError):
            small_plan.forward(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            small_plan.inverse(np.zeros(5, dtype=complex))


class TestRoundTrip:
    def test_roundtrip_random_real_field(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng)
        field = small_plan.inverse(coeffs)
        recovered = small_plan.forward(field)
        assert np.max(np.abs(recovered - coeffs)) < 1e-10

    def test_roundtrip_batched(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng, shape=(3, 2))
        fields = small_plan.inverse(coeffs)
        assert fields.shape == (3, 2) + small_plan.grid.shape
        recovered = small_plan.forward(fields)
        assert np.max(np.abs(recovered - coeffs)) < 1e-10

    def test_real_field_synthesis_is_real(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng, real_field=True)
        field = small_plan.inverse(coeffs, real=False)
        assert np.max(np.abs(field.imag)) < 1e-10

    def test_oversampled_grid_roundtrip(self, rng):
        lmax = 6
        grid = Grid(ntheta=2 * lmax + 3, nphi=4 * lmax)
        plan = SHTPlan(lmax=lmax, grid=grid)
        coeffs = plan.random_coefficients(rng)
        assert np.max(np.abs(plan.forward(plan.inverse(coeffs)) - coeffs)) < 1e-10


class TestAgainstDirectTransform:
    def test_inverse_matches_direct(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng)
        fast = small_plan.inverse(coeffs)
        direct = direct_inverse(coeffs, small_plan.grid)
        assert np.max(np.abs(fast - direct)) < 1e-10

    def test_forward_matches_lstsq(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng)
        field = small_plan.inverse(coeffs)
        direct = direct_forward(field, small_plan.lmax, small_plan.grid, method="lstsq")
        assert np.max(np.abs(direct - coeffs)) < 1e-9

    def test_forward_matches_quadrature_on_oversampled_grid(self, rng):
        lmax = 6
        grid = Grid(ntheta=2 * lmax + 2, nphi=2 * lmax)
        plan = SHTPlan(lmax=lmax, grid=grid)
        coeffs = plan.random_coefficients(rng)
        field = plan.inverse(coeffs)
        quad = direct_forward(field, lmax, grid, method="quadrature")
        assert np.max(np.abs(quad - coeffs)) < 1e-10


class TestAnalyticFields:
    def test_constant_field_maps_to_monopole(self, small_plan):
        field = np.full(small_plan.grid.shape, 3.0)
        coeffs = small_plan.forward(field)
        expected = 3.0 * np.sqrt(4.0 * np.pi)
        assert coeffs[coeff_index(0, 0)] == pytest.approx(expected, abs=1e-10)
        others = np.delete(coeffs, coeff_index(0, 0))
        assert np.max(np.abs(others)) < 1e-10

    def test_cos_theta_maps_to_l1_m0(self, small_plan):
        theta, _ = small_plan.grid.mesh()
        field = np.cos(theta)
        coeffs = small_plan.forward(field)
        # cos(theta) = sqrt(4 pi / 3) Y_{1,0}
        assert coeffs[coeff_index(1, 0)] == pytest.approx(np.sqrt(4 * np.pi / 3), abs=1e-10)

    def test_sectoral_harmonic(self, small_plan):
        """A pure Y_{2,2} + conjugate field analyses to those coefficients."""
        theta, phi = small_plan.grid.mesh()
        amp = 0.7
        y22 = (1.0 / 4.0) * np.sqrt(15.0 / (2 * np.pi)) * np.sin(theta) ** 2
        field = amp * y22 * np.cos(2 * phi) * 2.0
        coeffs = small_plan.forward(field)
        assert coeffs[coeff_index(2, 2)] == pytest.approx(amp, abs=1e-9)
        assert coeffs[coeff_index(2, -2)] == pytest.approx(amp, abs=1e-9)

    def test_linearity(self, small_plan, rng):
        f1 = small_plan.random_coefficients(rng)
        f2 = small_plan.random_coefficients(rng)
        a, b = 2.5, -1.25
        combined = small_plan.inverse(a * f1 + b * f2)
        separate = a * small_plan.inverse(f1) + b * small_plan.inverse(f2)
        assert np.max(np.abs(combined - separate)) < 1e-10


class TestConvenienceWrappers:
    def test_sht_inverse_rejects_non_square_coefficient_count(self, small_grid):
        """The band-limit is recovered exactly, never by float rounding."""
        with pytest.raises(ValueError, match="perfect square"):
            sht_inverse(np.zeros(5, dtype=complex), small_grid)
        with pytest.raises(ValueError, match="perfect square"):
            sht_inverse(np.zeros(63, dtype=complex), small_grid)

    def test_one_shot_roundtrip(self, rng):
        lmax = 5
        grid = Grid.for_bandlimit(lmax)
        plan = SHTPlan(lmax=lmax, grid=grid)
        coeffs = plan.random_coefficients(rng)
        field = sht_inverse(coeffs, grid)
        recovered = sht_forward(field, lmax)
        assert np.max(np.abs(recovered - coeffs)) < 1e-10

    def test_random_coefficients_power(self, small_plan, rng):
        power = np.linspace(1.0, 0.1, small_plan.lmax)
        coeffs = small_plan.random_coefficients(rng, power=power, shape=(200,))
        from repro.sht.spectrum import angular_power_spectrum

        measured = angular_power_spectrum(coeffs).mean(axis=0)
        assert np.allclose(measured[1:], power[1:], rtol=0.5)


class TestBatchedInverse:
    """The GEMM-based synthesis contraction and its blocked batch path."""

    def test_contraction_matches_reference(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng, shape=(3, 4))
        fast = small_plan.wigner_contraction_inverse(coeffs)
        reference = small_plan.wigner_contraction_inverse_reference(coeffs)
        assert fast.shape == reference.shape
        assert np.max(np.abs(fast - reference)) < 1e-12

    def test_batched_inverse_bit_identical_per_slice(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng, shape=(7,))
        batched = small_plan.inverse(coeffs)
        for b in range(coeffs.shape[0]):
            np.testing.assert_array_equal(batched[b], small_plan.inverse(coeffs[b]))

    def test_blocked_synthesis_bit_identical_to_single_pass(self, small_plan, rng):
        """Batches crossing the internal FFT block boundary are unchanged."""
        from repro.sht import transform

        coeffs = small_plan.random_coefficients(
            rng, shape=(transform._SYNTHESIS_BLOCK + 5,)
        )
        blocked = small_plan.inverse(coeffs)  # > _SYNTHESIS_BLOCK leading slices
        c = small_plan.wigner_contraction_inverse(coeffs)
        single_pass = small_plan.synthesis_from_fourier(c)
        np.testing.assert_array_equal(blocked, single_pass)

    def test_stacked_2d_batch_shape(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng, shape=(2, 3))
        fields = small_plan.inverse(coeffs)
        assert fields.shape == (2, 3) + small_plan.grid.shape

    def test_complex_output_blocked_path(self, small_plan, rng):
        from repro.sht import transform

        coeffs = small_plan.random_coefficients(
            rng, real_field=False, shape=(transform._SYNTHESIS_BLOCK + 3,)
        )
        fields = small_plan.inverse(coeffs, real=False)
        assert fields.dtype == np.complex128
        np.testing.assert_array_equal(fields[1], small_plan.inverse(coeffs[1], real=False))


class TestBatchedForward:
    """The GEMM-based analysis contraction and its blocked batch path.

    Mirrors :class:`TestBatchedInverse`: the forward direction carries
    the same three guarantees — GEMM-vs-reference parity, per-slice
    bit-equality of batched calls, and block-boundary invariance of the
    internal FFT blocking — because `fit` relies on them for its
    ``batch_size`` bit-identity contract.
    """

    def _fields(self, plan, rng, shape):
        return plan.inverse(plan.random_coefficients(rng, shape=shape))

    def test_contraction_matches_reference(self, small_plan, rng):
        fields = self._fields(small_plan, rng, (3, 4))
        k = small_plan.colatitude_fourier(small_plan.longitude_fourier(fields))
        fast = small_plan.wigner_contraction_forward(k)
        reference = small_plan.wigner_contraction_forward_reference(k)
        assert fast.shape == reference.shape
        assert np.max(np.abs(fast - reference)) < 1e-12

    def test_contraction_matches_reference_at_higher_bandlimit(self, rng):
        """Parity pinned where the operators are big enough to matter."""
        lmax = 24
        plan = SHTPlan(lmax=lmax, grid=Grid.for_bandlimit(lmax))
        fields = self._fields(plan, rng, (6,))
        k = plan.colatitude_fourier(plan.longitude_fourier(fields))
        fast = plan.wigner_contraction_forward(k)
        reference = plan.wigner_contraction_forward_reference(k)
        assert np.max(np.abs(fast - reference)) < 1e-12

    def test_batched_forward_bit_identical_per_slice(self, small_plan, rng):
        fields = self._fields(small_plan, rng, (7,))
        batched = small_plan.forward(fields)
        for b in range(fields.shape[0]):
            np.testing.assert_array_equal(batched[b], small_plan.forward(fields[b]))

    def test_blocked_analysis_bit_identical_to_single_pass(self, small_plan, rng):
        """Batches crossing the internal FFT block boundary are unchanged."""
        from repro.sht import transform

        fields = self._fields(small_plan, rng, (transform._ANALYSIS_BLOCK + 5,))
        blocked = small_plan.forward(fields)  # > _ANALYSIS_BLOCK leading slices
        single_pass = small_plan._analyze_block(fields)
        np.testing.assert_array_equal(blocked, single_pass)

    def test_blocked_analysis_with_ragged_final_single_slice(self, small_plan, rng):
        """A ragged final block of one slice goes through the gemv-padding guard."""
        from repro.sht import transform

        fields = self._fields(small_plan, rng, (transform._ANALYSIS_BLOCK + 1,))
        blocked = small_plan.forward(fields)
        np.testing.assert_array_equal(blocked[-1], small_plan.forward(fields[-1]))
        np.testing.assert_array_equal(blocked, small_plan._analyze_block(fields))

    def test_stacked_2d_batch_shape(self, small_plan, rng):
        fields = self._fields(small_plan, rng, (2, 3))
        coeffs = small_plan.forward(fields)
        assert coeffs.shape == (2, 3) + (small_plan.n_coeffs,)
        np.testing.assert_array_equal(coeffs[1, 2], small_plan.forward(fields[1, 2]))

    def test_complex_input_blocked_path(self, small_plan, rng):
        from repro.sht import transform

        coeffs = small_plan.random_coefficients(
            rng, real_field=False, shape=(transform._ANALYSIS_BLOCK + 3,)
        )
        fields = small_plan.inverse(coeffs, real=False)
        recovered = small_plan.forward(fields)
        assert recovered.dtype == np.complex128
        np.testing.assert_array_equal(recovered[1], small_plan.forward(fields[1]))
        assert np.max(np.abs(recovered - coeffs)) < 1e-10

    def test_analysis_operators_are_synthesis_adjoints(self, small_plan):
        """A_m is the integral matrix applied to the synthesis transpose."""
        cols_s, ops_s = small_plan._synthesis_operators()
        cols_a, ops_a = small_plan._analysis_operators()
        assert cols_a is cols_s  # shared column index lists
        for op_s, op_a in zip(ops_s, ops_a):
            np.testing.assert_array_equal(op_a, small_plan.integral @ op_s.T)
