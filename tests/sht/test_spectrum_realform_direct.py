"""Tests of the angular power spectrum, the real packing and the direct SHT."""

import numpy as np
import pytest

from repro.sht import Grid, SHTPlan, angular_power_spectrum, spectrum_from_grid
from repro.sht.direct import direct_forward, direct_inverse, synthesis_matrix
from repro.sht.realform import complex_from_real, real_basis_labels, real_from_complex
from repro.sht.spectrum import red_spectrum, spectral_distance
from repro.sht.transform import coeff_index


class TestAngularPowerSpectrum:
    def test_single_degree_power(self):
        lmax = 4
        coeffs = np.zeros(lmax * lmax, dtype=complex)
        coeffs[coeff_index(2, 0)] = 3.0
        coeffs[coeff_index(2, 1)] = 4.0
        spec = angular_power_spectrum(coeffs)
        assert spec.shape == (lmax,)
        assert spec[2] == pytest.approx((9.0 + 16.0) / 5.0)
        assert spec[0] == 0.0 and spec[3] == 0.0

    def test_batched(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng, shape=(5,))
        spec = angular_power_spectrum(coeffs)
        assert spec.shape == (5, small_plan.lmax)
        assert np.all(spec >= 0)

    def test_spectrum_from_grid_matches_coefficients(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng)
        field = small_plan.inverse(coeffs)
        from_grid = spectrum_from_grid(field, small_plan.lmax, small_plan.grid)
        direct = angular_power_spectrum(coeffs)
        assert np.allclose(from_grid, direct, atol=1e-12)

    def test_red_spectrum_decays(self):
        spec = red_spectrum(20, slope=-2.0)
        assert spec[0] > spec[5] > spec[19] > 0

    def test_spectral_distance_zero_for_identical(self):
        spec = red_spectrum(10)
        assert spectral_distance(spec, spec) == pytest.approx(0.0)
        assert spectral_distance(spec, 10 * spec) == pytest.approx(1.0, abs=1e-6)


class TestRealForm:
    def test_roundtrip(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng)
        packed = real_from_complex(coeffs)
        assert packed.dtype == np.float64
        unpacked = complex_from_real(packed)
        assert np.max(np.abs(unpacked - coeffs)) < 1e-12

    def test_norm_preserved(self, small_plan, rng):
        coeffs = small_plan.random_coefficients(rng, shape=(10,))
        packed = real_from_complex(coeffs)
        assert np.allclose(
            np.linalg.norm(packed, axis=-1), np.linalg.norm(coeffs, axis=-1)
        )

    def test_unpacked_fields_are_real(self, small_plan, rng):
        packed = rng.standard_normal((3, small_plan.n_coeffs))
        fields = small_plan.inverse(complex_from_real(packed), real=False)
        assert np.max(np.abs(fields.imag)) < 1e-10

    def test_labels(self):
        labels = real_basis_labels(2)
        assert len(labels) == 4
        assert labels[0] == "l=0 m=0"
        assert "re" in labels[3] or "im" in labels[1]


class TestDirectTransform:
    def test_synthesis_matrix_shape(self):
        grid = Grid.for_bandlimit(4)
        mat = synthesis_matrix(4, grid)
        assert mat.shape == (grid.npoints, 16)

    def test_direct_roundtrip_lstsq(self, rng):
        lmax = 5
        grid = Grid.for_bandlimit(lmax)
        plan = SHTPlan(lmax=lmax, grid=grid)
        coeffs = plan.random_coefficients(rng)
        field = direct_inverse(coeffs, grid)
        recovered = direct_forward(field, lmax, grid, method="lstsq")
        assert np.max(np.abs(recovered - coeffs)) < 1e-9

    def test_quadrature_requires_enough_longitudes(self):
        grid = Grid(ntheta=20, nphi=5)
        with pytest.raises(ValueError):
            direct_forward(np.zeros(grid.shape), 8, grid, method="quadrature")

    def test_unknown_method_rejected(self, small_grid):
        with pytest.raises(ValueError):
            direct_forward(np.zeros(small_grid.shape), 4, small_grid, method="bogus")

    def test_shape_mismatch_rejected(self, small_grid):
        with pytest.raises(ValueError):
            direct_forward(np.zeros((3, 3)), 2, small_grid)
