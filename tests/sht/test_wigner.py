"""Tests of the Wigner small-d matrices at pi/2."""

import numpy as np
import pytest

from repro.sht.wigner import (
    wigner_d_explicit,
    wigner_d_from_pi2,
    wigner_d_pi2,
    wigner_d_pi2_all,
)


class TestExplicitFormula:
    def test_degree_zero(self):
        assert wigner_d_explicit(0, 0.3).shape == (1, 1)
        assert wigner_d_explicit(0, 0.3)[0, 0] == pytest.approx(1.0)

    def test_degree_one_known_values(self):
        beta = 0.7
        d = wigner_d_explicit(1, beta)
        # Varshalovich conventions.
        assert d[1, 1] == pytest.approx(np.cos(beta))          # d_{0,0}
        assert d[2, 1] == pytest.approx(-np.sin(beta) / np.sqrt(2))  # d_{1,0}
        assert d[2, 2] == pytest.approx((1 + np.cos(beta)) / 2)      # d_{1,1}
        assert d[0, 2] == pytest.approx((1 - np.cos(beta)) / 2)      # d_{-1,1}

    def test_orthogonality(self):
        for ell in (1, 2, 4):
            d = wigner_d_explicit(ell, 1.1)
            assert np.allclose(d @ d.T, np.eye(2 * ell + 1), atol=1e-12)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            wigner_d_explicit(-1, 0.5)


class TestRecursionAtPiOver2:
    @pytest.mark.parametrize("ell", [0, 1, 2, 3, 5, 8, 12, 16])
    def test_matches_explicit(self, ell):
        recursive = wigner_d_pi2(ell)
        explicit = wigner_d_explicit(ell, np.pi / 2)
        assert np.max(np.abs(recursive - explicit)) < 1e-10

    def test_all_returns_every_degree(self):
        lmax = 6
        deltas = wigner_d_pi2_all(lmax)
        assert len(deltas) == lmax
        for ell, d in enumerate(deltas):
            assert d.shape == (2 * ell + 1, 2 * ell + 1)

    def test_orthogonality_large_degree(self):
        ell = 20
        d = wigner_d_pi2(ell)
        assert np.allclose(d @ d.T, np.eye(2 * ell + 1), atol=1e-9)

    def test_symmetry_relations(self):
        """d_{m',m} = (-1)^{m'-m} d_{m,m'} and d_{m',m} = d_{-m,-m'}."""
        ell = 7
        d = wigner_d_pi2(ell)
        for m1 in range(-ell, ell + 1):
            for m2 in range(-ell, ell + 1):
                a = d[m1 + ell, m2 + ell]
                assert a == pytest.approx(((-1.0) ** (m1 - m2)) * d[m2 + ell, m1 + ell], abs=1e-10)
                assert a == pytest.approx(d[-m2 + ell, -m1 + ell], abs=1e-10)

    def test_empty_when_lmax_zero(self):
        assert wigner_d_pi2_all(0) == []


class TestFourierRepresentation:
    @pytest.mark.parametrize("beta", [0.0, 0.3, 1.2, np.pi / 2, 2.9])
    def test_reconstructs_general_angle(self, beta):
        ell = 5
        rec = wigner_d_from_pi2(ell, beta)
        ref = wigner_d_explicit(ell, beta)
        assert np.max(np.abs(rec - ref)) < 1e-10
