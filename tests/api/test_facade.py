"""Tests of the top-level facade and the streaming emulation API."""

import numpy as np
import pytest

import repro
from repro.core import ClimateEmulator, EmulatorConfig


class TestTopLevelExports:
    def test_public_api_importable_from_repro(self):
        assert repro.ClimateEmulator is ClimateEmulator
        assert repro.EmulatorConfig is EmulatorConfig
        for name in ("Era5LikeGenerator", "Era5LikeConfig", "ClimateEnsemble",
                     "EmulatorArtifact", "fit", "load", "save", "emulate",
                     "emulate_stream", "SHT_BACKENDS", "CHOLESKY_VARIANTS"):
            assert hasattr(repro, name), name

    def test_api_subpackage_exports(self):
        from repro import api

        assert api.fit is repro.fit
        assert api.EmulatorArtifact is repro.EmulatorArtifact
        with pytest.raises(AttributeError):
            api.no_such_symbol


class TestFitFacade:
    def test_fit_with_overrides(self, small_ensemble):
        emulator = repro.fit(small_ensemble, lmax=8, var_order=1, tile_size=16,
                             rho_grid=(0.5,))
        assert emulator.is_fitted
        assert emulator.config.lmax == 8 and emulator.config.var_order == 1

    def test_fit_with_config_and_override(self, small_ensemble):
        config = EmulatorConfig(lmax=8, var_order=1, tile_size=16, rho_grid=(0.5,))
        emulator = repro.fit(small_ensemble, config, precision_variant="DP/SP")
        assert emulator.config.precision_variant == "DP/SP"
        assert emulator.config.lmax == 8

    def test_emulate_accepts_emulator_or_path(self, fitted_emulator, tmp_path):
        path = tmp_path / "emulator.npz"
        repro.save(fitted_emulator, path)
        from_memory = repro.emulate(fitted_emulator, 1, rng=np.random.default_rng(4))
        from_disk = repro.emulate(str(path), 1, rng=np.random.default_rng(4))
        assert np.array_equal(from_memory.data, from_disk.data)

    def test_emulate_rejects_other_sources(self):
        with pytest.raises(TypeError):
            repro.emulate(42)


class TestNTimesValidation:
    def test_zero_n_times_rejected(self, fitted_emulator):
        """n_times=0 must raise, not silently fall back to the training length."""
        with pytest.raises(ValueError, match="n_times"):
            fitted_emulator.emulate(n_times=0)

    def test_negative_n_times_rejected(self, fitted_emulator):
        with pytest.raises(ValueError, match="n_times"):
            fitted_emulator.emulate(n_times=-5)

    def test_stream_zero_n_times_rejected(self, fitted_emulator):
        with pytest.raises(ValueError, match="n_times"):
            list(fitted_emulator.emulate_stream(n_times=0))

    def test_default_n_times_is_training_length(self, fitted_emulator):
        out = fitted_emulator.emulate(1, rng=np.random.default_rng(0))
        assert out.n_times == fitted_emulator.training_summary.n_times


class TestEmulateStream:
    def test_single_chunk_matches_emulate_bit_exactly(self, fitted_emulator):
        full = fitted_emulator.emulate(2, rng=np.random.default_rng(9))
        chunks = list(fitted_emulator.emulate_stream(
            2, rng=np.random.default_rng(9),
            chunk_size=fitted_emulator.training_summary.n_times,
        ))
        assert len(chunks) == 1
        assert np.array_equal(chunks[0].data, full.data)

    def test_chunks_cover_the_record(self, fitted_emulator):
        n_times = fitted_emulator.training_summary.n_times
        chunks = list(fitted_emulator.emulate_stream(
            1, rng=np.random.default_rng(2), chunk_size=7,
        ))
        assert sum(c.n_times for c in chunks) == n_times
        offsets = [c.metadata["stream_offset"] for c in chunks]
        assert offsets == list(np.cumsum([0] + [c.n_times for c in chunks[:-1]]))
        for chunk in chunks:
            assert chunk.data.shape[2:] == fitted_emulator.training_summary.grid.shape
            assert chunk.metadata["source"] == "emulator"

    def test_default_chunk_is_one_model_year(self, fitted_emulator):
        chunks = list(fitted_emulator.emulate_stream(1, rng=np.random.default_rng(2)))
        spy = fitted_emulator.training_summary.steps_per_year
        assert all(c.n_times == spy for c in chunks[:-1])

    def test_chunk_forcing_is_rebased_to_chunk_year(self, fitted_emulator):
        """Each chunk's forcing_per_step must match the monolithic run's."""
        spy = fitted_emulator.training_summary.steps_per_year
        n_years = 4
        forcing = np.linspace(1.0, 5.0, n_years)
        full = fitted_emulator.emulate(1, n_times=n_years * spy,
                                       annual_forcing=forcing,
                                       rng=np.random.default_rng(6))
        reference = full.forcing_per_step()
        chunks = fitted_emulator.emulate_stream(
            1, n_times=n_years * spy, annual_forcing=forcing,
            rng=np.random.default_rng(6), chunk_size=spy,
        )
        for chunk in chunks:
            offset = chunk.metadata["stream_offset"]
            assert chunk.metadata["stream_phase"] == 0
            np.testing.assert_array_equal(
                chunk.forcing_per_step(),
                reference[offset:offset + chunk.n_times],
            )
            assert chunk.start_year == full.start_year + offset // spy

    def test_streamed_statistics_match_monolithic(self, fitted_emulator):
        """Chunked generation follows the same process as one-shot generation."""
        full = fitted_emulator.emulate(2, rng=np.random.default_rng(21))
        streamed = np.concatenate(
            [c.data for c in fitted_emulator.emulate_stream(
                2, rng=np.random.default_rng(21), chunk_size=5)],
            axis=1,
        )
        assert streamed.shape == full.data.shape
        # Different draw order => different realisations, same distribution.
        assert abs(streamed.mean() - full.data.mean()) < 1.0
        assert abs(streamed.std() / full.data.std() - 1.0) < 0.2

    def test_single_chunk_with_custom_forcing_matches_emulate_bit_exactly(
            self, fitted_emulator):
        """The bit-exact single-chunk guarantee must hold off the training forcing."""
        spy = fitted_emulator.training_summary.steps_per_year
        n_times = 4 * spy
        forcing = np.array([1.0, 6.0, 2.0, 9.0])
        full = fitted_emulator.emulate(2, n_times=n_times, annual_forcing=forcing,
                                       rng=np.random.default_rng(17))
        chunks = list(fitted_emulator.emulate_stream(
            2, n_times=n_times, annual_forcing=forcing,
            rng=np.random.default_rng(17), chunk_size=n_times,
        ))
        assert len(chunks) == 1
        assert np.array_equal(chunks[0].data, full.data)

    def test_stream_forcing_indexed_by_absolute_time_across_chunks(
            self, fitted_emulator):
        """Chunks crossing year boundaries must see the monolithic trend.

        The stochastic draws are chunk-local, so the reference is built
        from the *monolithic* trend prediction (absolute time) plus the
        same chunk-local standardized stream — bit-exact equality proves
        the streamed mean indexes the forcing by absolute step, not by
        per-chunk time.
        """
        spy = fitted_emulator.training_summary.steps_per_year
        n_years = 5
        n_times = n_years * spy
        # Strong year-to-year jumps make any per-chunk re-indexing visible;
        # chunk_size=9 does not divide steps_per_year=24, so chunks
        # straddle year boundaries.
        forcing = np.array([1.0, 8.0, 2.0, 9.0, 3.0])
        chunk_size = 9
        assert spy % chunk_size != 0

        mean_full = fitted_emulator.trend_model.predict(
            n_times, forcing, fitted_emulator.trend_fit
        )
        chunks = list(fitted_emulator.emulate_stream(
            1, n_times=n_times, annual_forcing=forcing,
            rng=np.random.default_rng(33), chunk_size=chunk_size,
        ))
        z_stream = fitted_emulator.spectral_model.generate_standardized_stream(
            np.random.default_rng(33), 1, n_times, chunk_size, include_nugget=True,
        )
        assert sum(c.n_times for c in chunks) == n_times
        for chunk, (t_start, z) in zip(chunks, z_stream):
            assert chunk.metadata["stream_offset"] == t_start
            reference = (
                mean_full[t_start:t_start + chunk.n_times][None, ...]
                + fitted_emulator.scale.unstandardize(z)
            )
            assert np.array_equal(chunk.data, reference)

    def test_stream_bad_chunk_size(self, fitted_emulator):
        with pytest.raises(ValueError, match="chunk_size"):
            list(fitted_emulator.emulate_stream(1, chunk_size=0))

    def test_stream_validates_eagerly_at_call_site(self, fitted_emulator):
        """Bad arguments must raise when the stream is created, not at next()."""
        with pytest.raises(ValueError):
            fitted_emulator.emulate_stream(n_realizations=0)
        with pytest.raises(ValueError):
            fitted_emulator.emulate_stream(1, chunk_size=-1)

    def test_stream_validates_forcing_horizon_eagerly(self, fitted_emulator):
        """A too-short forcing must fail before any chunk is yielded."""
        spy = fitted_emulator.training_summary.steps_per_year
        with pytest.raises(ValueError, match="forcing covers"):
            fitted_emulator.emulate_stream(
                1, n_times=5 * spy, annual_forcing=np.array([1.0, 2.0]),
            )

    def test_facade_stream(self, fitted_emulator, tmp_path):
        path = tmp_path / "emulator.npz"
        repro.save(fitted_emulator, path)
        chunks = list(repro.emulate_stream(path, 1, n_times=10, chunk_size=4,
                                           rng=np.random.default_rng(1)))
        assert [c.n_times for c in chunks] == [4, 4, 2]


class TestScenarioForcingArguments:
    """emulate/emulate_stream accept scenario names and ScenarioSpec objects."""

    def test_emulate_accepts_scenario_name(self, fitted_emulator):
        from repro.data.forcing import scenario_forcing

        spy = fitted_emulator.training_summary.steps_per_year
        by_name = fitted_emulator.emulate(1, n_times=3 * spy,
                                          annual_forcing="stabilisation",
                                          rng=np.random.default_rng(8))
        by_array = fitted_emulator.emulate(1, n_times=3 * spy,
                                           annual_forcing=scenario_forcing("stabilisation", 3),
                                           rng=np.random.default_rng(8))
        assert np.array_equal(by_name.data, by_array.data)

    def test_emulate_accepts_scenario_spec(self, fitted_emulator):
        spec = repro.SCENARIOS.create("ssp-low", start_level=2.5)
        assert isinstance(spec, repro.ScenarioSpec)
        spy = fitted_emulator.training_summary.steps_per_year
        by_spec = fitted_emulator.emulate(1, n_times=2 * spy, annual_forcing=spec,
                                          rng=np.random.default_rng(8))
        by_array = fitted_emulator.emulate(1, n_times=2 * spy,
                                           annual_forcing=spec.annual_forcing(2),
                                           rng=np.random.default_rng(8))
        assert np.array_equal(by_spec.data, by_array.data)

    def test_stream_accepts_scenario_name(self, fitted_emulator):
        spy = fitted_emulator.training_summary.steps_per_year
        chunks = list(fitted_emulator.emulate_stream(
            1, n_times=2 * spy, annual_forcing="ssp-high",
            rng=np.random.default_rng(8),
        ))
        assert sum(c.n_times for c in chunks) == 2 * spy

    def test_unknown_scenario_name_raises_with_catalogue(self, fitted_emulator):
        with pytest.raises(ValueError, match="available"):
            fitted_emulator.emulate(1, annual_forcing="not-a-scenario")

    def test_facade_passes_scenario_through(self, fitted_emulator, tmp_path):
        path = tmp_path / "emulator.npz"
        repro.save(fitted_emulator, path)
        spy = fitted_emulator.training_summary.steps_per_year
        from_disk = repro.emulate(str(path), 1, n_times=spy,
                                  annual_forcing="overshoot",
                                  rng=np.random.default_rng(4))
        from_memory = repro.emulate(fitted_emulator, 1, n_times=spy,
                                    annual_forcing="overshoot",
                                    rng=np.random.default_rng(4))
        assert np.array_equal(from_disk.data, from_memory.data)
