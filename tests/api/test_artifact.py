"""Tests of the EmulatorArtifact save/load round trip and its error paths."""

import numpy as np
import pytest

from repro.api.artifact import (
    SCHEMA_VERSION,
    ArtifactError,
    EmulatorArtifact,
    SchemaVersionError,
)
from repro.api.registry import UnknownBackendError
from repro.core import ClimateEmulator, EmulatorConfig
from repro.storage import measured_artifact_report


class TestRoundTrip:
    def test_bit_exact_emulation_after_reload(self, fitted_emulator, tmp_path):
        path = tmp_path / "emulator.npz"
        fitted_emulator.save(path)
        loaded = ClimateEmulator.load(path)

        original = fitted_emulator.emulate(2, rng=np.random.default_rng(11))
        reloaded = loaded.emulate(2, rng=np.random.default_rng(11))
        assert np.array_equal(original.data, reloaded.data)

    def test_round_trip_preserves_config_and_metadata(self, fitted_emulator, tmp_path):
        path = tmp_path / "emulator.npz"
        fitted_emulator.save(path)
        loaded = ClimateEmulator.load(path)
        assert loaded.config == fitted_emulator.config
        assert loaded.is_fitted
        assert loaded.training is None  # raw ensemble is not persisted
        summary = loaded.training_summary
        original = fitted_emulator.training_summary
        assert summary.grid == original.grid
        assert summary.n_times == original.n_times
        assert summary.n_ensemble == original.n_ensemble
        np.testing.assert_array_equal(summary.forcing_annual, original.forcing_annual)

    def test_round_trip_preserves_cholesky_factor_exactly(self, fitted_emulator, tmp_path):
        path = tmp_path / "emulator.npz"
        fitted_emulator.save(path)
        loaded = ClimateEmulator.load(path)
        original = fitted_emulator.spectral_model.cholesky
        restored = loaded.spectral_model.cholesky
        assert np.array_equal(original.lower(), restored.lower())
        assert original.variant == restored.variant
        assert original.flops_by_precision == restored.flops_by_precision
        assert original.factor.precision_counts() == restored.factor.precision_counts()
        assert original.factor.storage_bytes() == restored.factor.storage_bytes()

    def test_mixed_precision_round_trip(self, small_ensemble, tmp_path):
        emulator = ClimateEmulator(
            EmulatorConfig(lmax=8, var_order=1, tile_size=16,
                           precision_variant="DP/HP", covariance_jitter=1e-4,
                           rho_grid=(0.5,))
        )
        emulator.fit(small_ensemble)
        path = tmp_path / "hp.npz"
        emulator.save(path)
        loaded = ClimateEmulator.load(path)
        a = emulator.emulate(1, rng=np.random.default_rng(5))
        b = loaded.emulate(1, rng=np.random.default_rng(5))
        assert np.array_equal(a.data, b.data)
        counts = loaded.spectral_model.cholesky.factor.precision_counts()
        assert counts.get("HP", 0) > 0  # reduced-precision tiles survived

    def test_streaming_from_loaded_emulator(self, fitted_emulator, tmp_path):
        path = tmp_path / "emulator.npz"
        fitted_emulator.save(path)
        loaded = ClimateEmulator.load(path)
        chunks = list(loaded.emulate_stream(1, n_times=30, chunk_size=12,
                                            rng=np.random.default_rng(0)))
        assert [c.n_times for c in chunks] == [12, 12, 6]
        assert [c.metadata["stream_offset"] for c in chunks] == [0, 12, 24]

    def test_save_returns_exact_path(self, fitted_emulator, tmp_path):
        path = tmp_path / "artifact-without-extension"
        returned = fitted_emulator.save(path)
        assert returned == str(path)
        assert path.exists()


class TestMeasurement:
    def test_storage_summary_measured_bytes(self, fitted_emulator, tmp_path):
        summary = fitted_emulator.storage_summary()
        assert summary["measured_artifact_bytes"] > 0
        assert summary["measured_compression_factor"] > 0
        path = tmp_path / "emulator.npz"
        fitted_emulator.save(path)
        assert summary["measured_artifact_bytes"] == path.stat().st_size

    def test_measured_artifact_report(self, fitted_emulator):
        report = measured_artifact_report(fitted_emulator)
        assert report["measured_artifact_bytes"] > 0
        assert report["parameter_bytes"] == fitted_emulator.parameter_bytes()
        assert report["raw_bytes_float32"] > 0
        assert report["format_overhead_factor"] > 0

    def test_artifact_summary(self, fitted_emulator):
        artifact = fitted_emulator.to_artifact()
        summary = artifact.summary()
        assert summary["schema_version"] == SCHEMA_VERSION
        assert summary["n_arrays"] > 0
        assert summary["nbytes"] == artifact.nbytes()
        assert summary["config"]["lmax"] == fitted_emulator.config.lmax


class TestErrorPaths:
    def test_schema_version_mismatch(self, fitted_emulator, tmp_path):
        artifact = fitted_emulator.to_artifact()
        artifact.schema_version = SCHEMA_VERSION + 1
        path = tmp_path / "future.npz"
        artifact.save(path)
        with pytest.raises(SchemaVersionError) as excinfo:
            EmulatorArtifact.load(path)
        message = str(excinfo.value)
        assert str(SCHEMA_VERSION) in message and str(SCHEMA_VERSION + 1) in message

    def test_plain_npz_is_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(ArtifactError, match="metadata"):
            EmulatorArtifact.load(path)

    def test_non_npz_file_is_rejected(self, tmp_path):
        path = tmp_path / "not-an-archive"
        path.write_bytes(b"definitely not an npz file")
        with pytest.raises(ArtifactError):
            EmulatorArtifact.load(path)

    def test_plain_npy_is_rejected(self, tmp_path):
        path = tmp_path / "array.npy"
        np.save(path, np.zeros(3))
        with pytest.raises(ArtifactError, match="plain array"):
            EmulatorArtifact.load(path)

    def test_truncated_artifact_is_rejected(self, fitted_emulator, tmp_path):
        path = tmp_path / "whole.npz"
        fitted_emulator.save(path)
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(ArtifactError):
            EmulatorArtifact.load(truncated)

    def test_unknown_backend_name_in_state_lists_available(self, fitted_emulator):
        state = fitted_emulator.state_dict()
        state["spectral_model"]["sht_method"] = "warp-drive"
        with pytest.raises(UnknownBackendError) as excinfo:
            EmulatorArtifact(state=state).to_emulator()
        message = str(excinfo.value)
        assert "'warp-drive'" in message and "'fast'" in message and "'direct'" in message

    def test_unfitted_emulator_has_no_state(self):
        with pytest.raises(RuntimeError):
            ClimateEmulator(EmulatorConfig(lmax=4)).state_dict()
