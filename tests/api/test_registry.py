"""Tests of the backend registry mechanism and its two populated registries."""

import numpy as np
import pytest

from repro.api.registry import BackendRegistry, UnknownBackendError
from repro.core.spectral_model import SpectralStochasticModel
from repro.linalg.policies import CHOLESKY_VARIANTS, variant_policy
from repro.sht import Grid, SHTPlan
from repro.sht.backends import SHT_BACKENDS, DirectSHTPlan


class TestBackendRegistry:
    def test_register_and_create(self):
        registry = BackendRegistry("demo backend")
        registry.register("double", lambda: (lambda x: 2 * x), description="times two")
        assert registry.create("double")(21) == 42
        assert "double" in registry and len(registry) == 1

    def test_decorator_registration(self):
        registry = BackendRegistry("demo backend")

        @registry.register("triple", description="times three")
        def make_tripler():
            return lambda x: 3 * x

        assert registry.create("triple")(14) == 42
        assert registry.describe() == {"triple": "times three"}

    def test_case_and_whitespace_insensitive(self):
        registry = BackendRegistry("demo backend")
        registry.register("DP/SP", lambda: "policy")
        assert registry.create("dp/sp") == "policy"
        assert registry.create(" DP / SP ") == "policy"

    def test_aliases(self):
        registry = BackendRegistry("demo backend")
        registry.register("fast", lambda: "fast", aliases=("fft",))
        assert registry.create("FFT") == "fast"
        assert registry.resolve("fft").name == "fast"

    def test_duplicate_registration_rejected(self):
        registry = BackendRegistry("demo backend")
        registry.register("x", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("X", lambda: 2)
        registry.register("x", lambda: 2, overwrite=True)
        assert registry.create("x") == 2

    def test_overwriting_an_alias_promotes_it_to_a_backend(self):
        """A stale alias must not shadow a spec registered over it."""
        registry = BackendRegistry("demo backend")
        registry.register("fast", lambda: "fast", aliases=("fft",))
        registry.register("fft", lambda: "standalone", overwrite=True)
        assert registry.create("fft") == "standalone"
        assert registry.create("fast") == "fast"

    def test_alias_may_not_shadow_a_primary_name(self):
        registry = BackendRegistry("demo backend")
        registry.register("fast", lambda: "fast")
        for overwrite in (False, True):
            with pytest.raises(ValueError, match="shadow"):
                registry.register("mine", lambda: "mine", aliases=("fast",),
                                  overwrite=overwrite)
        # A rejected registration leaves the registry unchanged.
        assert registry.names() == ["fast"]
        assert "mine" not in registry

    def test_failed_registration_is_atomic(self):
        registry = BackendRegistry("demo backend")
        registry.register("a", lambda: "a", aliases=("alias-a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.register("b", lambda: "b", aliases=("alias-a",))
        assert "b" not in registry
        assert registry.create("alias-a") == "a"

    def test_unknown_name_lists_available(self):
        registry = BackendRegistry("demo backend")
        registry.register("alpha", lambda: 1)
        registry.register("beta", lambda: 2)
        with pytest.raises(UnknownBackendError) as excinfo:
            registry.resolve("gamma")
        message = str(excinfo.value)
        assert "demo backend" in message and "'gamma'" in message
        assert "'alpha'" in message and "'beta'" in message

    def test_unknown_is_value_error(self):
        registry = BackendRegistry("demo backend")
        with pytest.raises(ValueError):
            registry.resolve("anything")

    def test_unregister(self):
        registry = BackendRegistry("demo backend")
        registry.register("x", lambda: 1, aliases=("y",))
        registry.unregister("y")
        assert "x" not in registry and "y" not in registry
        with pytest.raises(UnknownBackendError):
            registry.unregister("x")


class TestShtBackends:
    def test_builtin_names(self):
        names = SHT_BACKENDS.names()
        assert "fast" in names and "direct" in names
        descriptions = SHT_BACKENDS.describe()
        assert all(descriptions[name] for name in names)

    def test_fast_backend_is_plan(self, small_lmax, small_grid):
        plan = SHT_BACKENDS.create("fast", lmax=small_lmax, grid=small_grid)
        assert isinstance(plan, SHTPlan)

    def test_direct_backend_round_trip(self):
        lmax = 4
        grid = Grid.for_bandlimit(lmax)
        plan = SHT_BACKENDS.create("direct-lstsq", lmax=lmax, grid=grid)
        assert isinstance(plan, DirectSHTPlan)
        reference = SHTPlan(lmax=lmax, grid=grid)
        coeffs = reference.random_coefficients(np.random.default_rng(101))
        fields = plan.inverse(coeffs)
        recovered = plan.forward(fields)
        np.testing.assert_allclose(recovered, coeffs, atol=1e-8)

    def test_unknown_sht_method_raises_with_names(self, small_grid, small_lmax):
        with pytest.raises(UnknownBackendError) as excinfo:
            SpectralStochasticModel(
                lmax=small_lmax, grid=small_grid, sht_method="nonexistent"
            )
        message = str(excinfo.value)
        assert "'fast'" in message and "'direct'" in message

    def test_unknown_name_errors_point_at_the_docs(self):
        """SHT / scenario / Cholesky lookups cross-reference docs/api.md."""
        from repro.linalg.policies import CHOLESKY_VARIANTS
        from repro.scenarios.registry import SCENARIOS

        for registry, bad_name in (
            (SHT_BACKENDS, "nonexistent"),
            (SCENARIOS, "rcp-11.0"),
            (CHOLESKY_VARIANTS, "DP/QP"),
        ):
            with pytest.raises(UnknownBackendError) as excinfo:
                registry.resolve(bad_name)
            assert "see docs/api.md" in str(excinfo.value)

    def test_new_backend_usable_without_core_edits(self):
        """Registering a name makes it work through the spectral model."""
        SHT_BACKENDS.register(
            "fast-test-alias",
            lambda lmax, grid: SHTPlan(lmax=lmax, grid=grid),
            description="test-only registration",
            overwrite=True,
        )
        try:
            lmax = 4
            grid = Grid.for_bandlimit(lmax)
            model = SpectralStochasticModel(
                lmax=lmax, grid=grid, var_order=1, tile_size=8,
                sht_method="fast-test-alias",
            )
            standardized = np.random.default_rng(102).standard_normal((1, 12) + grid.shape)
            model.fit(standardized)
            assert model.cholesky is not None
        finally:
            SHT_BACKENDS.unregister("fast-test-alias")


class TestCholeskyVariants:
    def test_builtin_names(self):
        assert set(CHOLESKY_VARIANTS.names()) == {"DP", "DP/SP", "DP/SP/HP", "DP/HP"}

    def test_variant_policy_resolves_through_registry(self):
        assert variant_policy("dp/hp").name == "DP/HP"

    def test_unknown_variant_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            variant_policy("DP/QP")
        assert "'DP/SP'" in str(excinfo.value)

    def test_registered_variant_flows_to_emulator(self, small_ensemble):
        """A registry-only policy works via EmulatorConfig.precision_variant."""
        from repro.core import ClimateEmulator, EmulatorConfig
        from repro.linalg.policies import band_policy
        from repro.linalg.precision import Precision

        CHOLESKY_VARIANTS.register(
            "SP-TEST",
            lambda: band_policy("SP-TEST", (), Precision.SINGLE),
            description="test-only all-single policy",
            overwrite=True,
        )
        try:
            emulator = ClimateEmulator(
                EmulatorConfig(lmax=4, var_order=1, tile_size=8,
                               precision_variant="SP-TEST", rho_grid=(0.5,))
            )
            emulator.fit(small_ensemble)
            assert emulator.spectral_model.cholesky.variant == "SP-TEST"
        finally:
            CHOLESKY_VARIANTS.unregister("SP-TEST")
