"""Property-based tests (hypothesis) of the core invariants.

These cover the mathematical invariants that must hold for *any* input, not
just the fixtures: SHT linearity and Parseval consistency, real-packing
orthogonality, Cholesky correctness over random SPD matrices, precision
policy totality, distributed-lag boundedness and storage monotonicity.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.trend import distributed_lag_series
from repro.linalg import MixedPrecisionCholesky, variant_policy
from repro.linalg.precision import Precision
from repro.runtime import build_task_graph
from repro.runtime.task import Task
from repro.sht import Grid, SHTPlan
from repro.sht.quadrature import exponential_sine_integral
from repro.sht.realform import complex_from_real, real_from_complex
from repro.sht.spectrum import angular_power_spectrum
from repro.storage import StorageScenario, archive_bytes
from repro.systems.perf_model import band_flop_fraction

_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_PLAN = SHTPlan(lmax=6, grid=Grid.for_bandlimit(6))


@st.composite
def real_coefficients(draw):
    values = draw(
        hnp.arrays(
            np.float64,
            (36,),
            elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
        )
    )
    return values


class TestSHTProperties:
    @_SETTINGS
    @given(real_coefficients(), real_coefficients(), st.floats(-5, 5), st.floats(-5, 5))
    def test_transform_linearity(self, a, b, alpha, beta):
        ca, cb = complex_from_real(a), complex_from_real(b)
        lhs = _PLAN.inverse(alpha * ca + beta * cb)
        rhs = alpha * _PLAN.inverse(ca) + beta * _PLAN.inverse(cb)
        assert np.allclose(lhs, rhs, atol=1e-8)

    @_SETTINGS
    @given(real_coefficients())
    def test_roundtrip_identity(self, packed):
        coeffs = complex_from_real(packed)
        recovered = _PLAN.forward(_PLAN.inverse(coeffs))
        assert np.allclose(recovered, coeffs, atol=1e-8)

    @_SETTINGS
    @given(real_coefficients())
    def test_real_packing_is_isometric(self, packed):
        coeffs = complex_from_real(packed)
        assert np.isclose(np.linalg.norm(packed), np.linalg.norm(coeffs))
        assert np.allclose(real_from_complex(coeffs), packed, atol=1e-12)

    @_SETTINGS
    @given(real_coefficients())
    def test_power_spectrum_nonnegative_and_scales(self, packed):
        coeffs = complex_from_real(packed)
        spec = angular_power_spectrum(coeffs)
        assert np.all(spec >= 0)
        assert np.allclose(angular_power_spectrum(2.0 * coeffs), 4.0 * spec, rtol=1e-10)

    @_SETTINGS
    @given(st.integers(min_value=-200, max_value=200))
    def test_exponential_sine_integral_conjugate_symmetry(self, q):
        assert np.isclose(
            complex(exponential_sine_integral(-q)),
            np.conj(complex(exponential_sine_integral(q))),
        )


class TestLinalgProperties:
    @_SETTINGS
    @given(
        st.integers(min_value=6, max_value=28),
        st.integers(min_value=2, max_value=9),
        st.sampled_from(["DP", "DP/SP", "DP/HP"]),
    )
    def test_cholesky_reconstruction_over_random_spd(self, n, tile, variant):
        rng = np.random.default_rng(n * 131 + tile)
        x = rng.standard_normal((n, n + 4))
        spd = x @ x.T / (n + 4) + np.eye(n)
        result = MixedPrecisionCholesky(tile_size=tile, variant=variant).factorize(spd)
        tol = 1e-12 if variant == "DP" else 2e-2
        assert result.relative_error(spd) < tol
        lower = result.lower()
        assert np.allclose(lower, np.tril(lower))
        assert np.all(np.diag(lower) > 0)

    @_SETTINGS
    @given(st.integers(min_value=1, max_value=40), st.sampled_from(["DP", "DP/SP", "DP/SP/HP", "DP/HP"]))
    def test_policy_total_and_diagonal_double(self, n_tiles, variant):
        policy = variant_policy(variant)
        pm = policy.precision_map(n_tiles)
        assert len(pm) == n_tiles * (n_tiles + 1) // 2
        assert all(pm[(i, i)] is Precision.DOUBLE for i in range(n_tiles))

    @_SETTINGS
    @given(st.integers(min_value=1, max_value=200), st.floats(0, 1))
    def test_band_flop_fraction_bounds(self, n_tiles, frac):
        value = band_flop_fraction(n_tiles, frac * n_tiles)
        assert 0.0 <= value <= 1.0 + 1e-12


class TestRuntimeProperties:
    @_SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=25))
    def test_task_graph_is_acyclic_and_complete(self, keys):
        tasks = [
            Task(
                name=f"t{i}",
                kind="W",
                reads=((("x", k - 1),) if k > 0 else ()),
                writes=(("x", k),),
                flops=1.0,
            )
            for i, k in enumerate(keys)
        ]
        graph = build_task_graph(tasks)
        assert graph.n_tasks == len(tasks)
        order = [t.name for t in graph.topological_order()]
        position = {name: i for i, name in enumerate(order)}
        for u, v in graph.graph.edges:
            assert position[u] < position[v]


class TestModelProperties:
    @_SETTINGS
    @given(
        hnp.arrays(np.float64, st.integers(2, 60), elements=st.floats(0, 10)),
        st.floats(0.0, 0.99),
    )
    def test_distributed_lag_stays_within_forcing_range(self, forcing, rho):
        d = distributed_lag_series(forcing, rho)
        assert d.shape == forcing.shape
        assert np.all(d >= forcing.min() - 1e-9)
        assert np.all(d <= forcing.max() + 1e-9)

    @_SETTINGS
    @given(st.integers(1, 50), st.integers(1, 20), st.integers(1, 4))
    def test_archive_bytes_monotone(self, years, steps, members):
        grid = Grid(ntheta=11, nphi=20)
        small = StorageScenario("s", grid, years, steps, members)
        bigger = StorageScenario("b", grid, years + 1, steps, members)
        assert archive_bytes(bigger) > archive_bytes(small)
