"""The documentation gates: snippets must run, api.md must be current.

These tests run the same two checks as the CI docs job, so a stale
``docs/api.md`` or a broken README snippet fails the plain test-suite
too — documentation rot is a test failure, not a surprise for readers.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_tool(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, *argv], cwd=REPO_ROOT, env=env,
        capture_output=True, text=True, timeout=600,
    )


class TestDocSnippets:
    def test_readme_and_docs_snippets_execute(self):
        result = _run_tool("tools/check_docs.py")
        assert result.returncode == 0, result.stderr
        assert "README.md" in result.stdout
        assert "executed successfully" in result.stdout

    def test_readme_has_executable_quickstart(self):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from check_docs import extract_python_blocks
        finally:
            sys.path.pop(0)
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        blocks = extract_python_blocks(readme)
        assert len(blocks) >= 2
        joined = "\n".join(blocks)
        for call in ("repro.fit", "repro.save", "repro.load",
                     "repro.run_campaign", "repro.emulate_stream"):
            assert call in joined, f"quickstart no longer shows {call}"

    def test_api_reference_is_current(self):
        result = _run_tool("tools/gen_api_docs.py", "--check")
        assert result.returncode == 0, result.stderr + result.stdout

    def test_docs_exist_and_cross_reference(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/architecture.md" in readme and "docs/api.md" in readme
        api = (REPO_ROOT / "docs" / "api.md").read_text(encoding="utf-8")
        # The anchors UnknownBackendError messages point at must exist.
        for heading in ("## SHT backends", "## Scenarios",
                        "## Cholesky precision variants"):
            assert heading in api, heading
