"""Tests of the storage-savings accounting."""

import pytest

from repro.sht.grid import Grid
from repro.storage import (
    CMIP6_ARCHIVE,
    StorageScenario,
    archive_bytes,
    emulator_parameter_bytes,
    format_bytes,
    savings_report,
)


@pytest.fixture(scope="module")
def era5_hourly_scenario():
    """The paper's hourly training set: ERA5 grid, 35 years, hourly."""
    return StorageScenario(
        name="ERA5 hourly 1988-2022",
        grid=Grid.era5(),
        n_years=35,
        steps_per_year=8760,
        n_ensemble=1,
    )


class TestArchiveBytes:
    def test_paper_hourly_data_point_count(self, era5_hourly_scenario):
        """The paper quotes ~318 billion hourly training points."""
        assert era5_hourly_scenario.n_values == pytest.approx(318e9, rel=0.02)

    def test_paper_daily_data_point_count(self):
        daily = StorageScenario(
            name="ERA5 daily 1940-2022", grid=Grid.era5(), n_years=83, steps_per_year=365
        )
        assert daily.n_values == pytest.approx(31e9, rel=0.05)

    def test_hourly_single_variable_archive_is_terabyte_scale(self, era5_hourly_scenario):
        assert 1.0e12 < archive_bytes(era5_hourly_scenario) < 2.0e12

    def test_cmip_style_archive_exceeds_a_petabyte(self):
        """Many variables and members push the archive into the petabytes."""
        scenario = StorageScenario(
            name="CMIP-style archive",
            grid=Grid.era5(),
            n_years=35,
            steps_per_year=8760,
            n_ensemble=10,
            n_variables=100,
        )
        assert archive_bytes(scenario) > 1.0e15

    def test_scaling_with_members_and_variables(self, era5_hourly_scenario):
        double = StorageScenario(
            name="x2", grid=era5_hourly_scenario.grid, n_years=35,
            steps_per_year=8760, n_ensemble=2,
        )
        assert archive_bytes(double) == pytest.approx(2 * archive_bytes(era5_hourly_scenario))


class TestEmulatorFootprint:
    def test_parameters_much_smaller_than_ensemble_archive(self):
        """The emulator replaces storing many ensemble members."""
        ensemble = StorageScenario(
            name="10-member hourly ensemble", grid=Grid.era5(),
            n_years=35, steps_per_year=8760, n_ensemble=10,
        )
        emulator = emulator_parameter_bytes(Grid.era5(), lmax=720)
        assert emulator < archive_bytes(ensemble) / 5

    def test_covariance_dominates_at_high_bandlimit(self):
        small = emulator_parameter_bytes(Grid.era5(), lmax=64)
        large = emulator_parameter_bytes(Grid.era5(), lmax=720)
        assert large > 10 * small

    def test_diagonal_covariance_option(self):
        full = emulator_parameter_bytes(Grid.era5(), lmax=256, store_full_covariance=True)
        diag = emulator_parameter_bytes(Grid.era5(), lmax=256, store_full_covariance=False)
        assert diag < full


class TestSavingsReport:
    def test_report_fields(self):
        scenario = StorageScenario(
            name="CMIP-style archive", grid=Grid.era5(), n_years=35,
            steps_per_year=8760, n_ensemble=10, n_variables=100,
        )
        report = savings_report(scenario, lmax=720)
        assert report["compression_factor"] > 100.0
        assert report["saved_petabytes"] > 0.5
        assert report["annual_savings_usd"] > 0
        assert report["raw_bytes"] == archive_bytes(scenario)

    def test_cmip_context_figures(self):
        assert CMIP6_ARCHIVE["cmip6_total"] == pytest.approx(28e15)
        assert CMIP6_ARCHIVE["cmip5_total"] == pytest.approx(2e15)

    def test_large_km_scale_ensemble_saves_petabytes(self):
        """A 100-member kilometre-scale hourly ensemble is petabyte-scale;
        the emulator with a diagonal innovation covariance replaces it with
        gigabytes of parameters."""
        scenario = StorageScenario(
            name="100-member km-scale ensemble",
            grid=Grid.from_resolution(0.034),
            n_years=10,
            steps_per_year=8760,
            n_ensemble=100,
        )
        report = savings_report(scenario, lmax=5219, store_full_covariance=False)
        assert report["raw_petabytes"] > 1.5
        assert report["saved_petabytes"] > 1.0
        assert report["compression_factor"] > 1000.0

    def test_full_covariance_is_prohibitive_at_km_scale(self):
        """Storing the dense L^2 x L^2 factor at L=5219 costs petabytes,
        which is why the diagonal option exists for the storage story."""
        full = emulator_parameter_bytes(Grid.from_resolution(0.034), lmax=5219)
        diagonal = emulator_parameter_bytes(
            Grid.from_resolution(0.034), lmax=5219, store_full_covariance=False
        )
        assert full > 1.0e15
        assert diagonal < 1.0e12


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [(12.0, "12.00 B"), (4.5e3, "4.50 KB"), (2.0e15, "2.00 PB"), (3.1e18, "3.10 EB")],
    )
    def test_formatting(self, value, expected):
        assert format_bytes(value) == expected
