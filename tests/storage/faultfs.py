"""Fault-injection utilities for the chunk-store crash/consistency suite.

The commit protocol's whole claim is about *residue*: whatever syscall a
writer dies at, the store must come back with no manifest entry pointing
at a missing or corrupt shard, and nothing but sweepable orphans on
disk.  These helpers simulate the deaths — a process killed at a chosen
``os.replace``/``os.unlink``, a torn (truncated) file landing on disk, a
lockfile left behind — and :func:`assert_store_consistent` states the
invariant every test ends on.

``SimulatedCrash`` derives from ``BaseException`` on purpose: nothing in
the production code may swallow it with ``except Exception`` and carry
on half-committed.  In-process ``finally`` cleanup still runs (the
context the exception unwinds through survives), which is *stricter*
than a real ``kill -9``: anything these tests leave behind, a real kill
leaves behind too, plus the lockfile — covered by its own stale-lock
case.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np

from repro.storage.chunkstore import ChunkStore

__all__ = [
    "SimulatedCrash",
    "age_file",
    "assert_store_consistent",
    "crash_on_replace",
    "crash_on_unlink",
    "payload_for",
    "tear_file",
]


class SimulatedCrash(BaseException):
    """A process dying at a syscall — not catchable as ``Exception``."""


@contextlib.contextmanager
def _crash_hook(module_attr: str, match: str, nth: int):
    """Patch ``os.<module_attr>`` to die the ``nth`` time its path matches."""
    real = getattr(os, module_attr)
    state = {"hits": 0}

    def hook(*args, **kwargs):
        # replace(src, dst) dies on dst; unlink(path) dies on path.
        path = os.fspath(args[-1] if module_attr == "replace" else args[0])
        if match in os.path.basename(path) or match in path:
            state["hits"] += 1
            if state["hits"] == nth:
                raise SimulatedCrash(f"killed at os.{module_attr}({path!r})")
        return real(*args, **kwargs)

    setattr(os, module_attr, hook)
    try:
        yield state
    finally:
        setattr(os, module_attr, real)


def crash_on_replace(match: str, *, nth: int = 1):
    """Die at the ``nth`` ``os.replace`` whose destination matches.

    ``match="manifest.json"`` models a writer killed between its shard
    write and its manifest commit; ``match=".npz"`` one killed mid shard
    publish.
    """
    return _crash_hook("replace", match, nth)


def crash_on_unlink(match: str, *, nth: int = 1):
    """Die at the ``nth`` ``os.unlink`` whose path matches.

    ``match=".npz"`` models a prune killed after its manifest commit,
    mid shard deletion — the crash window that strands orphan shards.
    """
    return _crash_hook("unlink", match, nth)


def tear_file(path: "str | os.PathLike", keep_bytes: "int | None" = None) -> None:
    """Truncate a file in place, modelling a torn write that landed.

    Keeps the first half by default — enough bytes to look like data,
    not enough to parse.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    keep = size // 2 if keep_bytes is None else keep_bytes
    with open(path, "r+b") as handle:
        handle.truncate(keep)


def age_file(path: "str | os.PathLike", seconds: float) -> None:
    """Backdate a file's mtime by ``seconds`` (stale locks, sweep grace)."""
    stat = os.stat(path)
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


def assert_store_consistent(root, encoding: str = "float64") -> ChunkStore:
    """The post-crash invariant: reopen, verify, sweep, nothing dangles.

    * a fresh handle loads the manifest (it is never torn by a crash);
    * every manifest entry decodes to its recorded shape — no entry
      points at a missing or corrupt shard;
    * after ``sweep_orphans(grace_seconds=0)`` every file left under the
      root is the manifest, a referenced shard, or a live lockfile.

    Returns the verified store handle for follow-on assertions.
    """
    store = ChunkStore(root, encoding=encoding)
    for address in store.addresses():
        chunk = store.get(address)  # raises on missing/corrupt shards
        assert chunk is not None
        assert chunk.shape == tuple(store.entry(address)["shape"])
    store.sweep_orphans(grace_seconds=0.0)
    root = os.fspath(root)
    referenced = {
        os.path.normpath(os.path.join(root, store.entry(address)["file"]))
        for address in store.addresses()
    }
    for dirpath, _, filenames in os.walk(root):
        for filename in filenames:
            path = os.path.normpath(os.path.join(dirpath, filename))
            if filename in ("manifest.json", "manifest.lock"):
                continue
            assert path in referenced, f"unswept orphan file: {path}"
    return store


def payload_for(address: str, shape=(3, 4, 5)) -> np.ndarray:
    """Deterministic chunk content derived from its address.

    Lets any process (or a verifier that never saw the writer) recompute
    exactly what a given address must decode to.
    """
    seed = int.from_bytes(str(address).encode("utf-8"), "big") % (2**32)
    rng = np.random.default_rng(seed)
    return 280.0 + 10.0 * rng.standard_normal(shape)
