"""Crash-residue suite: no kill point leaves a dangling manifest entry.

Every test stages a writer death (or torn write, or abandoned lock) at a
specific syscall, then closes with :func:`faultfs.assert_store_consistent`:
a fresh handle loads, every manifest entry decodes to its recorded
shape, and one orphan sweep leaves nothing unreferenced on disk.  The
direction of the residue is the point — crashes strand *shards* (cheap,
sweepable), never manifest *entries* (which would serve errors forever).
"""

import os

import numpy as np
import pytest

from repro.storage.chunkstore import ChunkStore

from faultfs import (  # the tests/storage directory is on sys.path (rootdir layout)
    SimulatedCrash,
    age_file,
    assert_store_consistent,
    crash_on_replace,
    crash_on_unlink,
    payload_for,
    tear_file,
)


@pytest.fixture()
def store(tmp_path):
    """A float64 store pre-loaded with two committed chunks."""
    store = ChunkStore(tmp_path, encoding="float64")
    store.put_many({"aa11": payload_for("aa11"), "bb22": payload_for("bb22")})
    return store


class TestKillBetweenShardAndManifest:
    def test_put_killed_before_commit_strands_only_a_shard(self, tmp_path, store):
        with crash_on_replace("manifest.json"):
            with pytest.raises(SimulatedCrash):
                store.put("cc33", payload_for("cc33"))
        # The shard landed (content-addressed, lock-free)...
        orphan = tmp_path / "chunks" / "cc" / "cc33.npz"
        assert orphan.exists()
        # ...but no manifest anywhere records it.
        survivor = assert_store_consistent(tmp_path)
        assert survivor.addresses() == ["aa11", "bb22"]
        assert not orphan.exists()  # the sweep reclaimed it
        assert np.array_equal(survivor.get("aa11"), payload_for("aa11"))

    def test_put_many_killed_before_commit_strands_only_shards(self, tmp_path, store):
        batch = {a: payload_for(a) for a in ("cc33", "dd44", "ee55")}
        with crash_on_replace("manifest.json"):
            with pytest.raises(SimulatedCrash):
                store.put_many(batch)
        survivor = assert_store_consistent(tmp_path)
        assert survivor.addresses() == ["aa11", "bb22"]
        # Idempotent retry after the "restart" lands the whole batch.
        retry = ChunkStore(tmp_path, encoding="float64")
        retry.put_many(batch)
        assert assert_store_consistent(tmp_path).addresses() == [
            "aa11", "bb22", "cc33", "dd44", "ee55",
        ]

    def test_killed_mid_shard_publish_commits_nothing(self, tmp_path, store):
        with crash_on_replace("cc33.npz"):
            with pytest.raises(SimulatedCrash):
                store.put("cc33", payload_for("cc33"))
        survivor = assert_store_consistent(tmp_path)
        assert survivor.addresses() == ["aa11", "bb22"]


class TestTornWrites:
    def test_torn_manifest_is_refused_not_merged_over(self, tmp_path, store):
        tear_file(tmp_path / "manifest.json")
        with pytest.raises(ValueError, match="corrupt chunk-store manifest"):
            ChunkStore(tmp_path, encoding="float64")
        # An existing handle refuses to commit over the wreckage too —
        # clobbering it would silently drop every foreign entry.
        with pytest.raises(ValueError, match="refusing to merge"):
            store.put("cc33", payload_for("cc33"))
        # Restoring the manifest (entries are content-addressed) heals
        # the store; the aborted put's shard is orphan residue.
        import json
        manifest = {
            "schema": 1, "encoding": "float64",
            "chunks": {"aa11": store.entry("aa11"), "bb22": store.entry("bb22")},
        }
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        survivor = assert_store_consistent(tmp_path)
        assert survivor.addresses() == ["aa11", "bb22"]

    def test_torn_shard_raises_on_get_and_never_gaps(self, tmp_path, store):
        tear_file(tmp_path / "chunks" / "aa" / "aa11.npz")
        with pytest.raises(ValueError, match="truncated or corrupt"):
            ChunkStore(tmp_path, encoding="float64").get("aa11")

    def test_stale_temp_files_are_swept_live_ones_kept(self, tmp_path, store):
        old_tmp = tmp_path / ".manifest-torn"
        old_tmp.write_text("{")
        age_file(old_tmp, 7200.0)
        fresh_tmp = tmp_path / "chunks" / "aa" / ".shard-inflight"
        fresh_tmp.write_bytes(b"partial")
        removed = store.sweep_orphans(grace_seconds=3600.0)
        assert removed == 1
        assert not old_tmp.exists()
        assert fresh_tmp.exists()  # inside the grace window: maybe live
        fresh_tmp.unlink()


class TestStaleLockRecovery:
    def test_abandoned_lock_is_broken_after_staleness(self, tmp_path, store):
        lock = tmp_path / "manifest.lock"
        lock.write_text("99999\n")
        age_file(lock, 60.0)  # holder "died" a minute ago
        recovering = ChunkStore(
            tmp_path, encoding="float64",
            lock_timeout=2.0, stale_lock_seconds=30.0,
        )
        recovering.put("cc33", payload_for("cc33"))
        assert not lock.exists()  # broken, used, released
        assert assert_store_consistent(tmp_path).addresses() == [
            "aa11", "bb22", "cc33",
        ]

    def test_live_lock_times_out_without_residue(self, tmp_path, store):
        (tmp_path / "manifest.lock").write_text("1\n")  # young: looks live
        blocked = ChunkStore(
            tmp_path, encoding="float64",
            lock_timeout=0.05, stale_lock_seconds=3600.0,
        )
        with pytest.raises(TimeoutError, match="manifest.lock"):
            blocked.put("cc33", payload_for("cc33"))
        os.unlink(tmp_path / "manifest.lock")  # holder finally releases
        survivor = assert_store_consistent(tmp_path)
        assert survivor.addresses() == ["aa11", "bb22"]


class TestCrashMidPrune:
    def test_prune_killed_mid_unlink_strands_shards_not_entries(self, tmp_path):
        store = ChunkStore(tmp_path, encoding="float64")
        for address in ("aa11", "bb22", "cc33"):
            store.put(address, payload_for(address))
        # Backdate two entries so max_age dooms exactly them.
        import json
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        for address in ("aa11", "bb22"):
            manifest["chunks"][address]["stored_at"] -= 7200.0
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        store.refresh()

        with crash_on_unlink(".npz"):
            with pytest.raises(SimulatedCrash):
                store.prune(max_age=3600.0)
        # The shrunk manifest committed before any unlink: the doomed
        # entries are durably gone even though their shards linger.
        survivor = assert_store_consistent(tmp_path)
        assert survivor.addresses() == ["cc33"]
        assert np.array_equal(survivor.get("cc33"), payload_for("cc33"))

    def test_completed_prune_leaves_no_orphans_at_all(self, tmp_path):
        store = ChunkStore(tmp_path, encoding="float64")
        for address in ("aa11", "bb22", "cc33"):
            store.put(address, payload_for(address))
        result = store.prune(max_bytes=store.entry("aa11")["encoded_bytes"])
        assert result["pruned_chunks"] == 2
        assert result["remaining_chunks"] == 1
        survivor = assert_store_consistent(tmp_path)
        assert len(survivor) == 1
