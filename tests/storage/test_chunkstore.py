"""Tests of the persistent quantized chunk store."""

import json
import os

import numpy as np
import pytest

from repro.storage.chunkstore import CHUNK_ENCODINGS, ChunkStore


@pytest.fixture()
def payload(rng):
    # Temperature-like values: O(280 K) with O(10 K) spread.
    return 280.0 + 10.0 * rng.standard_normal((6, 9, 15))


class TestRoundTrip:
    def test_float64_is_bit_lossless(self, tmp_path, payload):
        store = ChunkStore(tmp_path, encoding="float64")
        store.put("aa11", payload)
        assert np.array_equal(store.get("aa11"), payload)
        assert store.lossless
        assert store.max_abs_error() == 0.0

    def test_float32_round_trip_and_measured_error(self, tmp_path, payload):
        store = ChunkStore(tmp_path, encoding="float32")
        entry = store.put("aa11", payload)
        decoded = store.get("aa11")
        assert decoded.dtype == np.float64
        measured = float(np.max(np.abs(decoded - payload)))
        assert measured == entry["max_abs_error"]
        assert measured <= np.max(np.abs(payload)) * np.finfo(np.float32).eps * 2
        assert entry["encoded_bytes"] == payload.size * 4

    def test_int16_quantization_error_is_bounded_and_honest(self, tmp_path, payload):
        store = ChunkStore(tmp_path, encoding="int16")
        entry = store.put("aa11", payload)
        decoded = store.get("aa11")
        measured = float(np.max(np.abs(decoded - payload)))
        assert measured == entry["max_abs_error"] == store.max_abs_error()
        # Half the value range over 2**15 levels bounds the error.
        half_range = 0.5 * (payload.max() - payload.min())
        assert measured <= half_range / 32767.0 * 1.000001
        assert entry["encoded_bytes"] == payload.size * 2

    def test_constant_chunk_quantizes_exactly(self, tmp_path):
        store = ChunkStore(tmp_path, encoding="int16")
        constant = np.full((2, 3, 4), 7.25)
        store.put("bb22", constant)
        assert np.array_equal(store.get("bb22"), constant)
        assert store.max_abs_error() == 0.0

    def test_missing_chunk_returns_none(self, tmp_path):
        store = ChunkStore(tmp_path)
        assert store.get("nope") is None
        assert store.entry("nope") is None
        assert "nope" not in store


class TestManifest:
    def test_persists_across_reopen(self, tmp_path, payload):
        first = ChunkStore(tmp_path, encoding="float64")
        first.put("aa11", payload)
        first.put("bb22", payload * 2.0)
        second = ChunkStore(tmp_path, encoding="float64")
        assert len(second) == 2
        assert second.addresses() == ["aa11", "bb22"]
        assert np.array_equal(second.get("bb22"), payload * 2.0)

    def test_reopen_with_wrong_encoding_raises(self, tmp_path, payload):
        ChunkStore(tmp_path, encoding="int16").put("aa11", payload)
        with pytest.raises(ValueError, match="encoding"):
            ChunkStore(tmp_path, encoding="float64")

    def test_unknown_encoding_raises(self, tmp_path):
        with pytest.raises(ValueError, match="encoding"):
            ChunkStore(tmp_path, encoding="int8")
        assert "int8" not in CHUNK_ENCODINGS

    def test_put_is_idempotent(self, tmp_path, payload):
        store = ChunkStore(tmp_path)
        first = store.put("aa11", payload)
        second = store.put("aa11", np.zeros_like(payload))  # ignored: same address
        assert first == second
        assert np.array_equal(store.get("aa11"), payload)

    def test_manifest_is_valid_json_with_schema(self, tmp_path, payload):
        store = ChunkStore(tmp_path, encoding="int16")
        store.put("aa11", payload)
        with open(os.path.join(str(tmp_path), "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["schema"] == 1
        assert manifest["encoding"] == "int16"
        entry = manifest["chunks"]["aa11"]
        assert entry["shape"] == list(payload.shape)
        assert "scale" in entry and "offset" in entry

    def test_corrupt_schema_raises(self, tmp_path):
        ChunkStore(tmp_path)
        with open(os.path.join(str(tmp_path), "manifest.json"), "w") as handle:
            json.dump({"schema": 99}, handle)
        with pytest.raises(ValueError, match="schema"):
            ChunkStore(tmp_path)


class TestPutMany:
    def test_batch_writes_once_and_skips_existing(self, tmp_path, payload):
        store = ChunkStore(tmp_path)
        store.put("aa11", payload)
        written = store.put_many({
            "aa11": np.zeros_like(payload),  # present: skipped
            "bb22": payload + 1.0,
            "cc33": payload + 2.0,
        })
        assert written == 2
        assert len(store) == 3
        assert np.array_equal(store.get("aa11"), payload)  # untouched
        assert np.array_equal(store.get("cc33"), payload + 2.0)
        assert store.put_many({"aa11": payload}) == 0

    def test_manifest_merges_across_store_handles(self, tmp_path, payload):
        # Two handles on one directory (two services, or two processes):
        # a write from one must not clobber entries the other persisted
        # after this handle loaded the manifest.
        first = ChunkStore(tmp_path)
        second = ChunkStore(tmp_path)
        first.put_many({"aa11": payload, "bb22": payload + 1.0})
        second.put("cc33", payload + 2.0)  # stale in-memory view of second
        reopened = ChunkStore(tmp_path)
        assert reopened.addresses() == ["aa11", "bb22", "cc33"]
        assert np.array_equal(reopened.get("aa11"), payload)
        assert np.array_equal(reopened.get("cc33"), payload + 2.0)


class TestNonFiniteRejection:
    """Regression: lossy encodings must reject NaN/Inf before writing.

    The old ``int16`` encode of a NaN-bearing chunk cast NaN to 0
    (``RuntimeWarning: invalid value encountered in cast``), silently
    storing an all-zero payload with ``offset = nan`` and a
    ``max_abs_error: nan`` manifest entry — corruption dressed as a
    stored chunk.
    """

    def _chunks_on_disk(self, tmp_path):
        shard_root = os.path.join(str(tmp_path), "chunks")
        return [
            os.path.join(dirpath, name)
            for dirpath, _, names in os.walk(shard_root)
            for name in names
        ]

    @pytest.mark.parametrize("encoding", ["int16", "float32"])
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_put_non_finite_raises_before_any_write(self, tmp_path, encoding, bad):
        store = ChunkStore(tmp_path, encoding=encoding)
        chunk = np.array([[1.0, 2.0], [bad, 4.0]])
        with pytest.raises(ValueError, match="non-finite"):
            store.put("bad1", chunk)
        # No manifest entry, no orphan shard, in memory or on disk.
        assert "bad1" not in store
        assert len(store) == 0
        assert self._chunks_on_disk(tmp_path) == []
        with open(os.path.join(str(tmp_path), "manifest.json")) as handle:
            assert json.load(handle)["chunks"] == {}
        # The store keeps working for finite chunks afterwards.
        store.put("good", np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert len(store) == 1

    def test_put_many_validates_whole_batch_before_writing(self, tmp_path, payload):
        store = ChunkStore(tmp_path, encoding="int16")
        bad = payload.copy()
        bad[0, 0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            store.put_many({"aa11": payload, "bb22": bad})
        # The finite sibling must not be left behind as an orphan shard.
        assert len(store) == 0
        assert self._chunks_on_disk(tmp_path) == []

    def test_lossless_float64_still_round_trips_non_finite(self, tmp_path):
        store = ChunkStore(tmp_path, encoding="float64")
        chunk = np.array([1.0, np.nan, np.inf, -np.inf])
        entry = store.put("aa11", chunk)
        assert entry["max_abs_error"] == 0.0
        np.testing.assert_array_equal(store.get("aa11"), chunk)
        assert store.max_abs_error() == 0.0

    @pytest.mark.parametrize("nan_position", ["first", "last"])
    def test_error_reporting_is_nan_proof_for_preexisting_manifests(
        self, tmp_path, payload, nan_position
    ):
        """A corrupt pre-fix manifest entry yields NaN whatever the order.

        ``max()`` over floats is order-dependent under NaN
        (``max(1.0, nan) == 1.0`` but ``max(nan, 1.0)`` is NaN); the
        store must report the corruption deterministically.
        """
        import math

        store = ChunkStore(tmp_path, encoding="int16")
        store.put("good", payload)
        manifest_path = os.path.join(str(tmp_path), "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        corrupt = dict(manifest["chunks"]["good"], max_abs_error=float("nan"))
        entries = list(manifest["chunks"].items())
        if nan_position == "first":
            entries.insert(0, ("aaaa", corrupt))
        else:
            entries.append(("zzzz", corrupt))
        manifest["chunks"] = dict(entries)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)  # allow_nan writes a NaN literal

        reopened = ChunkStore(tmp_path, encoding="int16")
        assert math.isnan(reopened.max_abs_error())
        assert math.isnan(reopened.stats()["max_abs_error"])


class TestStats:
    def test_stats_totals(self, tmp_path, payload):
        store = ChunkStore(tmp_path, encoding="int16")
        store.put("aa11", payload)
        store.put("bb22", payload + 1.0)
        stats = store.stats()
        assert stats["n_chunks"] == 2
        assert stats["decoded_bytes"] == 2 * payload.nbytes
        assert stats["encoded_bytes"] == 2 * payload.size * 2
        assert stats["compression_factor"] == pytest.approx(4.0)
        assert stats["lossless"] is False
        assert stats["max_abs_error"] > 0.0
