"""Property-based round-trip laws of the three chunk encodings.

Hypothesis drives shapes, dtypes and magnitudes (including subnormals
and 1e±200 extremes) through ``put``/``get`` and pins the contracts the
rest of the system leans on:

* ``float64`` is *bit*-lossless — any finite-or-not pattern round-trips;
* ``float32``/``int16`` record a measured ``max_abs_error`` that really
  bounds the observed reconstruction error, and the ``int16`` error
  also respects the analytic half-step bound from its affine scale;
* lossy encodings reject non-finite chunks *before* anything lands on
  disk (the PR 5 corruption path stays closed).

Each example gets a fresh store root under one ``tmp_path``, so the
function-scoped-fixture health check is deliberately suppressed.
"""

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.storage.chunkstore import CHUNK_ENCODINGS, ChunkStore

_COUNTER = itertools.count()

#: Finite float64s wide enough to hit subnormals and 1e200 extremes but
#: keeping ``hi - lo`` representable (the int16 affine map needs the
#: midrange/halfrange arithmetic to stay finite).
finite_values = st.floats(
    min_value=-1e200, max_value=1e200,
    allow_nan=False, allow_infinity=False, width=64,
    allow_subnormal=True,
)

shapes = st.one_of(
    hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
    st.just((0,)),  # empty chunks are legal
)


def fresh_store(tmp_path, encoding: str) -> ChunkStore:
    return ChunkStore(tmp_path / f"s{next(_COUNTER)}", encoding=encoding)


@st.composite
def finite_arrays(draw):
    return draw(hnp.arrays(np.float64, draw(shapes), elements=finite_values))


class TestFloat64Losslessness:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        array=hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
            elements=st.floats(allow_nan=True, allow_infinity=True, width=64),
        )
    )
    def test_bit_identical_round_trip_even_for_non_finite(self, tmp_path, array):
        store = fresh_store(tmp_path, "float64")
        entry = store.put("aa11", array)
        decoded = store.get("aa11")
        # Bit identity, not value identity: NaNs compare equal here and
        # signed zeros stay distinguishable.
        assert np.array_equal(
            decoded.view(np.uint64), array.view(np.uint64)
        )
        assert entry["max_abs_error"] == 0.0
        assert store.max_abs_error() == 0.0

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        array=hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
            # Castable to every target dtype without overflow.
            elements=st.floats(min_value=-1e6, max_value=1e6,
                               allow_nan=False, allow_infinity=False),
        ),
        dtype=st.sampled_from(["float32", "int32", "int64"]),
    )
    def test_foreign_input_dtypes_round_trip_via_float64(self, tmp_path, array,
                                                         dtype):
        cast = array.astype(dtype)
        store = fresh_store(tmp_path, "float64")
        store.put("aa11", cast)
        assert np.array_equal(store.get("aa11"), cast.astype(np.float64))


class TestLossyErrorBounds:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        array=hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
            # Within float32 range; values beyond it are rejected (below).
            elements=st.floats(min_value=-1e38, max_value=1e38,
                               allow_nan=False, allow_infinity=False,
                               allow_subnormal=True),
        )
    )
    def test_float32_error_is_measured_exactly(self, tmp_path, array):
        store = fresh_store(tmp_path, "float32")
        entry = store.put("aa11", array)
        decoded = store.get("aa11")
        observed = float(np.max(np.abs(decoded - array))) if array.size else 0.0
        assert entry["max_abs_error"] == observed
        assert np.array_equal(decoded, array.astype(np.float32).astype(np.float64))

    def test_float32_rejects_magnitudes_beyond_its_range(self, tmp_path):
        store = fresh_store(tmp_path, "float32")
        with pytest.raises(ValueError, match="overflows the 'float32'"):
            store.put("aa11", np.array([1e39]))
        assert len(store) == 0
        # The same magnitudes are fine for the range-scaled int16 tier.
        fresh_store(tmp_path, "int16").put("aa11", np.array([-1e39, 1e39]))

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(array=finite_arrays())
    def test_int16_error_is_measured_and_analytically_bounded(self, tmp_path,
                                                              array):
        store = fresh_store(tmp_path, "int16")
        entry = store.put("aa11", array)
        decoded = store.get("aa11")
        observed = float(np.max(np.abs(decoded - array))) if array.size else 0.0
        # The manifest records the truth...
        assert entry["max_abs_error"] == observed
        assert observed <= store.max_abs_error()
        # ...and the truth respects the affine map's analytic bound: a
        # half quantization step plus float64 rounding of the transform
        # (scaled by the data's magnitude).
        if array.size:
            lo, hi = float(array.min()), float(array.max())
            half = 0.5 * (hi - lo)
            scale = entry.get("scale", 1.0)
            slack = 8 * np.finfo(np.float64).eps * (
                half + max(abs(lo), abs(hi)) + 1.0
            )
            assert observed <= 0.5 * scale + slack

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(array=finite_arrays())
    def test_constant_chunks_quantize_exactly(self, tmp_path, array):
        constant = np.full_like(array, array.flat[0] if array.size else 0.0)
        store = fresh_store(tmp_path, "int16")
        entry = store.put("aa11", constant)
        assert entry["max_abs_error"] == 0.0
        assert np.array_equal(store.get("aa11"), constant)


class TestNonFiniteRejection:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        array=hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
            # Healthy and encodable by both lossy tiers, so the poison
            # value is the only thing validation can object to.
            elements=st.floats(min_value=-1e30, max_value=1e30,
                               allow_nan=False, allow_infinity=False),
        ),
        encoding=st.sampled_from(["float32", "int16"]),
        poison=st.sampled_from([np.nan, np.inf, -np.inf]),
        via_batch=st.booleans(),
    )
    def test_lossy_put_rejects_before_touching_disk(self, tmp_path, array,
                                                    encoding, poison, via_batch):
        if not array.size:
            array = np.zeros(1)
        poisoned = array.copy()
        poisoned.flat[len(poisoned.flat) // 2] = poison
        store = fresh_store(tmp_path, encoding)
        with pytest.raises(ValueError, match="non-finite"):
            if via_batch:
                # A poisoned batch must not strand its healthy chunks
                # as orphan shards either.
                store.put_many({"aa11": array, "bb22": poisoned})
            else:
                store.put("bb22", poisoned)
        assert len(store) == 0
        assert store.addresses() == []
        # Nothing landed on disk: the chunks tree is still empty.
        from pathlib import Path

        chunk_files = [
            p for p in Path(store.root).joinpath("chunks").rglob("*")
            if p.is_file()
        ]
        assert chunk_files == []


class TestIdempotentPut:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        array=hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
            # Encodable by every tier (float32 rejects beyond ~3.4e38).
            elements=st.floats(min_value=-1e38, max_value=1e38,
                               allow_nan=False, allow_infinity=False),
        ),
        encoding=st.sampled_from(CHUNK_ENCODINGS),
    )
    def test_second_put_returns_the_committed_entry(self, tmp_path, array,
                                                    encoding):
        store = fresh_store(tmp_path, encoding)
        first = store.put("aa11", array)
        second = store.put("aa11", np.zeros_like(array))  # content ignored
        assert first == second
        assert store.put_many({"aa11": array}) == 0
