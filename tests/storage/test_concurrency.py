"""Multi-process writer stress: the manifest is the exact union.

Four worker processes hammer one store root through the real commit
protocol — mixed ``put``/``put_many``, deliberately overlapping
addresses (content-addressed writes collide benignly), interleaved
``get``/``stats``/``refresh`` reads — while the parent doubles as a
fifth, concurrent reader.  Afterwards: every address from every worker
is present exactly once, every chunk decodes to the deterministic
content its address implies, and the error accounting survived the
contention intact.
"""

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.storage.chunkstore import ChunkStore

from faultfs import payload_for  # tests/storage is on sys.path (rootdir layout)

N_WORKERS = 4
CHUNKS_PER_WORKER = 12
#: Addresses deliberately written by *both* neighbouring workers, to
#: exercise first-writer-wins on identical content.
SHARED_ADDRESSES = ["shared00", "shared01", "shared02"]


def _worker_addresses(worker: int) -> list:
    return [f"w{worker}c{i:02d}" for i in range(CHUNKS_PER_WORKER)]


def _stress_writer(args) -> dict:
    """One writer process: put its slice, read back what others wrote."""
    root, encoding, worker = args
    store = ChunkStore(root, encoding=encoding, lock_timeout=60.0)
    own = _worker_addresses(worker)
    # Half through single puts, half through one batched commit, the
    # shared addresses interleaved so every pair of workers collides.
    for address in own[: CHUNKS_PER_WORKER // 2]:
        store.put(address, payload_for(address))
        store.stats()
    for address in SHARED_ADDRESSES:
        store.put(address, payload_for(address))
    store.put_many(
        {a: payload_for(a) for a in own[CHUNKS_PER_WORKER // 2:]}
    )
    # Interleaved reads: whatever is visible must decode correctly.
    store.refresh()
    seen = 0
    for address in store.addresses():
        chunk = store.get(address)
        if chunk is not None:
            err = float(np.max(np.abs(chunk - payload_for(address))))
            assert err <= store.entry(address)["max_abs_error"] + 1e-12
            seen += 1
    return {"worker": worker, "wrote": len(own), "saw": seen, "pid": os.getpid()}


@pytest.mark.parametrize("encoding", ["float64", "int16"])
def test_concurrent_writers_lose_nothing(tmp_path, encoding):
    root = str(tmp_path)
    expected = sorted(
        {a for w in range(N_WORKERS) for a in _worker_addresses(w)}
        | set(SHARED_ADDRESSES)
    )
    with ProcessPoolExecutor(max_workers=N_WORKERS) as pool:
        futures = [
            pool.submit(_stress_writer, (root, encoding, worker))
            for worker in range(N_WORKERS)
        ]
        # The parent is a concurrent reader on the same root while the
        # writers run: partial views are fine, corrupt ones are not.
        observer = ChunkStore(root, encoding=encoding)
        for _ in range(20):
            observer.refresh()
            stats = observer.stats()
            assert stats["n_chunks"] == len(observer.addresses())
        results = [future.result(timeout=300) for future in futures]

    assert sorted(r["worker"] for r in results) == list(range(N_WORKERS))
    # Zero lost entries: the final manifest is the exact union.
    final = ChunkStore(root, encoding=encoding)
    assert final.addresses() == expected
    assert observer.refresh() >= 0  # the live handle converges too
    assert observer.addresses() == expected

    # Every chunk decodes to the content its address implies, and the
    # error accounting survived: exact for the lossless tier, a bounded
    # measured maximum for the quantized one.
    worst = 0.0
    for address in expected:
        chunk = final.get(address)
        reference = payload_for(address)
        entry = final.entry(address)
        err = float(np.max(np.abs(chunk - reference)))
        assert err <= entry["max_abs_error"] + 1e-12
        worst = max(worst, err)
    if encoding == "float64":
        assert final.max_abs_error() == 0.0
        assert worst == 0.0
    else:
        assert 0.0 < final.max_abs_error() < 0.01  # ~10 K spread / 2^15
        assert final.max_abs_error() + 1e-12 >= worst


def test_two_handles_racing_to_initialise_one_root(tmp_path):
    """Both constructors commit the empty manifest through the lock."""
    first = ChunkStore(tmp_path, encoding="float64")
    second = ChunkStore(tmp_path, encoding="float64")
    first.put("aa11", payload_for("aa11"))
    second.put("bb22", payload_for("bb22"))
    assert first.refresh() == 1  # picks up bb22
    assert first.addresses() == second.addresses() == ["aa11", "bb22"]
