"""Tests of the on-demand emulation service.

The bit-exactness contract (see :mod:`repro.serving.service`): served
fields equal the canonical year-chunked stream
(``emulate_stream(chunk_size=steps_per_year)``) bit for bit on every
path — and therefore equal direct ``emulate`` for single-year requests
and for any nugget-free request.
"""

import threading

import numpy as np
import pytest

import repro
from repro.core.window import SpatialWindow
from repro.serving.request import FieldRequest
from repro.serving.service import EmulationService
from repro.storage.chunkstore import ChunkStore

SPY = 24  # steps_per_year of the shared fixture ensemble


def canonical_stream(emulator, scenario, realization, n_years, seed=0,
                     include_nugget=True):
    """The reference: the canonical year-chunked stream, realization ``r``."""
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(realization,))
    )
    chunks = emulator.emulate_stream(
        n_realizations=1, n_times=n_years * SPY, annual_forcing=scenario,
        rng=rng, chunk_size=SPY, include_nugget=include_nugget,
    )
    return np.concatenate([c.data for c in chunks], axis=1)[0]


@pytest.fixture()
def service(fitted_emulator):
    return repro.serve(fitted_emulator, seed=0)


class TestBitExactness:
    def test_cold_path_matches_canonical_stream(self, fitted_emulator, service):
        request = FieldRequest("ssp-high", realization=3, year_start=0, year_stop=3)
        served = service.get(request)
        reference = canonical_stream(fitted_emulator, "ssp-high", 3, 3)
        assert served.shape == (3 * SPY,) + fitted_emulator.training_summary.grid.shape
        assert np.array_equal(served, reference)

    def test_cached_path_is_bit_identical_to_cold(self, service):
        request = FieldRequest("ssp-low", realization=1, year_start=0, year_stop=2)
        cold = service.get(request)
        hot = service.get(request)
        assert np.array_equal(cold, hot)
        stats = service.stats()
        assert stats["request_hits"] == 1 and stats["request_misses"] == 1

    def test_single_year_request_equals_direct_emulate(self, fitted_emulator, service):
        request = FieldRequest("ssp-high", realization=5)
        rng = np.random.default_rng(np.random.SeedSequence(0, spawn_key=(5,)))
        direct = fitted_emulator.emulate(
            1, n_times=SPY, annual_forcing="ssp-high", rng=rng
        )
        assert np.array_equal(service.get(request), direct.data[0])

    def test_nugget_free_request_equals_direct_emulate(self, fitted_emulator, service):
        request = FieldRequest("ssp-high", realization=2, year_start=0,
                               year_stop=3, include_nugget=False)
        rng = np.random.default_rng(np.random.SeedSequence(0, spawn_key=(2,)))
        direct = fitted_emulator.emulate(
            1, n_times=3 * SPY, annual_forcing="ssp-high", rng=rng,
            include_nugget=False,
        )
        assert np.array_equal(service.get(request), direct.data[0])

    def test_year_subrange_is_a_slice_of_the_full_record(self, fitted_emulator, service):
        reference = canonical_stream(fitted_emulator, "ssp-high", 0, 3)
        request = FieldRequest("ssp-high", realization=0, year_start=1, year_stop=3)
        assert np.array_equal(service.get(request), reference[SPY:3 * SPY])

    def test_windowed_request_is_a_spatial_slice(self, fitted_emulator, service):
        window = SpatialWindow(lat=(2, 6), lon=(1, 9))
        request = FieldRequest("ssp-high", realization=0, year_start=0,
                               year_stop=2, window=window)
        reference = canonical_stream(fitted_emulator, "ssp-high", 0, 2)
        served = service.get(request)
        assert served.shape == (2 * SPY, 4, 8)
        assert np.array_equal(served, reference[:, 2:6, 1:9])

    def test_extension_resumes_bit_identically(self, fitted_emulator, service):
        first = FieldRequest("ssp-medium", realization=4, year_start=0, year_stop=2)
        service.get(first)
        extension = FieldRequest("ssp-medium", realization=4, year_start=2,
                                 year_stop=4)
        served = service.get(extension)
        reference = canonical_stream(fitted_emulator, "ssp-medium", 4, 4)
        assert np.array_equal(served, reference[2 * SPY:4 * SPY])
        assert service.stats()["synthesis"]["stream_resumes"] == 1

    def test_realizations_are_independent_campaign_streams(self, fitted_emulator, service):
        # The service's realization r stream is the campaign's run-r stream
        # for a one-scenario campaign under the same seed.
        manifest = repro.run_campaign(
            fitted_emulator, ["ssp-high"], 2, n_times=2 * SPY, seed=0,
            collect="fields",
        )
        for realization in (0, 1):
            request = FieldRequest("ssp-high", realization=realization,
                                   year_start=0, year_stop=2)
            assert np.array_equal(
                service.get(request),
                manifest.run("ssp-high", realization).collected,
            )

    def test_alias_and_spec_spellings_share_cache_entries(self, service):
        served = service.get(FieldRequest("ssp-high", realization=0))
        by_alias = service.get(FieldRequest("ssp5-8.5", realization=0))
        by_spec = service.get(
            FieldRequest(repro.SCENARIOS.create("ssp-high"), realization=0)
        )
        assert np.array_equal(served, by_alias)
        assert np.array_equal(served, by_spec)
        stats = service.stats()
        assert stats["synthesis"]["flights"] == 1
        assert stats["request_hits"] == 2

    def test_served_array_is_freely_mutable(self, service):
        request = FieldRequest("constant", realization=0)
        first = service.get(request)
        first[:] = 0.0
        again = service.get(request)
        assert not np.array_equal(first, again)


class TestCacheManagement:
    def test_tiny_cache_stays_correct(self, fitted_emulator):
        # A cache smaller than one chunk evicts everything immediately;
        # requests must still serve bit-identical fields.
        service = EmulationService(fitted_emulator, seed=0, cache_bytes=1024)
        request = FieldRequest("ssp-high", realization=0, year_start=0, year_stop=2)
        reference = canonical_stream(fitted_emulator, "ssp-high", 0, 2)
        assert np.array_equal(service.get(request), reference)
        assert np.array_equal(service.get(request), reference)
        stats = service.stats()["chunk_cache"]
        assert stats["evictions"] > 0
        assert stats["bytes"] <= 1024

    def test_cache_bytes_budget_is_respected(self, fitted_emulator):
        grid = fitted_emulator.training_summary.grid
        chunk_bytes = SPY * grid.npoints * 8
        service = EmulationService(
            fitted_emulator, seed=0, cache_bytes=2 * chunk_bytes
        )
        service.get(FieldRequest("ssp-high", realization=0, year_start=0,
                                 year_stop=4))
        stats = service.stats()["chunk_cache"]
        assert stats["bytes"] <= 2 * chunk_bytes
        assert stats["entries"] == 2
        assert stats["evictions"] == 2

    def test_rejects_unfitted_emulator(self):
        with pytest.raises(RuntimeError, match="fitted"):
            EmulationService(repro.ClimateEmulator())

    def test_validates_request_type_and_window(self, service):
        with pytest.raises(TypeError, match="FieldRequest"):
            service.get("ssp-high")
        huge = FieldRequest("ssp-high", window=SpatialWindow(lat=(0, 10_000)))
        with pytest.raises(ValueError, match="lat window"):
            service.get(huge)

    def test_stats_shape(self, service):
        service.get(FieldRequest("ssp-high"))
        stats = service.stats()
        assert stats["seed"] == 0
        assert stats["steps_per_year"] == SPY
        assert stats["artifact_bytes"] > 0
        assert stats["served_bytes"] > 0
        assert stats["store"] is None
        assert stats["synthesis"]["chunks"] == 1


class TestPersistentTier:
    def test_write_through_then_read_through(self, fitted_emulator, tmp_path):
        request = FieldRequest("ssp-high", realization=1, year_start=0, year_stop=2)
        first = repro.serve(fitted_emulator, seed=0, store=tmp_path / "store")
        served = first.get(request)
        # A brand-new service over the same store serves without synthesis.
        second = repro.serve(fitted_emulator, seed=0, store=tmp_path / "store")
        again = second.get(request)
        assert np.array_equal(served, again)
        stats = second.stats()
        assert stats["synthesis"]["flights"] == 0
        assert stats["store_chunk_hits"] == 2

    def test_lossless_store_preserves_bit_exactness(self, fitted_emulator, tmp_path):
        store = ChunkStore(tmp_path / "store", encoding="float64")
        service = repro.serve(fitted_emulator, seed=0, store=store)
        request = FieldRequest("ssp-low", realization=0, year_start=0, year_stop=2)
        service.get(request)
        fresh = repro.serve(fitted_emulator, seed=0, store=store)
        reference = canonical_stream(fitted_emulator, "ssp-low", 0, 2)
        assert np.array_equal(fresh.get(request), reference)
        assert store.stats()["lossless"] is True
        assert store.max_abs_error() == 0.0

    def test_quantized_store_reports_its_error(self, fitted_emulator, tmp_path):
        store = ChunkStore(tmp_path / "qstore", encoding="int16")
        service = repro.serve(fitted_emulator, seed=0, store=store)
        request = FieldRequest("ssp-high", realization=0, year_start=0, year_stop=2)
        service.get(request)  # synthesizes, write-through quantizes
        fresh = repro.serve(fitted_emulator, seed=0, store=store)
        served = fresh.get(request)
        reference = canonical_stream(fitted_emulator, "ssp-high", 0, 2)
        error = float(np.max(np.abs(served - reference)))
        assert 0.0 < error <= store.max_abs_error() + 1e-15
        # Temperature fields span O(100 K); int16 quantization of a
        # chunk-wide range keeps the error well below 0.01 K here.
        assert error < 1e-2

    def test_serving_storage_report(self, fitted_emulator, tmp_path):
        from repro.storage.accounting import serving_storage_report

        store = ChunkStore(tmp_path / "store", encoding="int16")
        service = repro.serve(fitted_emulator, seed=0, store=store)
        service.get(FieldRequest("ssp-high", realization=0, year_start=0,
                                 year_stop=3))
        report = serving_storage_report(service)
        assert report["requests"] == 1
        assert report["served_bytes"] == 3 * SPY * service.grid.npoints * 8
        assert report["boost_factor"] == pytest.approx(
            report["served_bytes"] / report["artifact_bytes"]
        )
        assert report["store_lossless"] is False
        assert report["store_max_abs_error"] > 0.0
        # Accepts the stats dict too.
        assert serving_storage_report(service.stats()) == report


class TestFacade:
    def test_serve_builds_a_service(self, fitted_emulator):
        service = repro.serve(fitted_emulator, seed=7)
        assert isinstance(service, EmulationService)
        assert service.seed == 7

    def test_serve_accepts_artifact_path(self, fitted_emulator, tmp_path):
        path = repro.save(fitted_emulator, tmp_path / "emulator.npz")
        service = repro.serve(path, seed=0)
        request = FieldRequest("ssp-high", realization=0)
        reference = canonical_stream(fitted_emulator, "ssp-high", 0, 1)
        assert np.array_equal(service.get(request), reference)
        assert service.stats()["artifact_bytes"] > 0

    def test_serve_opens_store_paths_lossless(self, fitted_emulator, tmp_path):
        service = repro.serve(fitted_emulator, store=tmp_path / "store")
        service.get(FieldRequest("constant"))
        assert service.stats()["store"]["encoding"] == "float64"

    def test_exported_from_repro(self):
        assert repro.EmulationService is EmulationService
        assert repro.FieldRequest is FieldRequest
        assert repro.ChunkStore is ChunkStore
        assert callable(repro.serve)

    def test_cache_bytes_none_means_unlimited_at_both_layers(self, fitted_emulator):
        import inspect

        from repro.serving.service import DEFAULT_CACHE_BYTES

        # The facade default is a literal mirror of DEFAULT_CACHE_BYTES
        # (kept out of the signature to avoid importing the serving layer
        # eagerly); None means unlimited through both entry points.
        assert (
            inspect.signature(repro.serve).parameters["cache_bytes"].default
            == DEFAULT_CACHE_BYTES
        )
        service = repro.serve(fitted_emulator, cache_bytes=None)
        assert service.stats()["chunk_cache"]["max_bytes"] is None
        direct = EmulationService(fitted_emulator, cache_bytes=None)
        assert direct.stats()["chunk_cache"]["max_bytes"] is None


class TestConcurrency:
    def test_identical_inflight_requests_synthesize_once(self, fitted_emulator):
        service = repro.serve(fitted_emulator, seed=0)
        request = FieldRequest("ssp-high", realization=0, year_start=0, year_stop=3)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        outputs = [None] * n_threads

        def worker(i):
            barrier.wait()
            outputs[i] = service.get(request)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = service.stats()["synthesis"]
        assert stats["flights"] == 1
        assert stats["chunks"] == 3
        reference = canonical_stream(fitted_emulator, "ssp-high", 0, 3)
        for output in outputs:
            assert np.array_equal(output, reference)

    def test_same_scenario_requests_coalesce_into_batches(self, fitted_emulator):
        service = repro.serve(fitted_emulator, seed=0)
        n_threads = 6
        requests = [
            FieldRequest("ssp-low", realization=r, year_start=0, year_stop=2)
            for r in range(n_threads)
        ]
        barrier = threading.Barrier(n_threads)
        outputs = [None] * n_threads

        def worker(i):
            barrier.wait()
            outputs[i] = service.get(requests[i])

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = service.stats()["synthesis"]
        # The first arrival leads alone; everything arriving while it runs
        # pools into at most a few successor batches — never one flight per
        # request.
        assert stats["flights"] < n_threads
        assert stats["chunks"] == 2 * n_threads
        for realization, output in enumerate(outputs):
            reference = canonical_stream(fitted_emulator, "ssp-low", realization, 2)
            assert np.array_equal(output, reference)

    def test_stress_mixed_hit_miss_inflight(self, fitted_emulator):
        """Many threads, mixed request shapes, pinned against serial emulate."""
        service = EmulationService(
            fitted_emulator, seed=0,
            # Small enough to force evictions mid-flight, large enough to
            # hold a couple of chunks.
            cache_bytes=3 * SPY * fitted_emulator.training_summary.grid.npoints * 8,
        )
        scenarios = ["ssp-high", "ssp-low"]
        shapes = [
            (0, 0, 2, None),
            (0, 0, 2, None),            # identical twin: in-flight dedup
            (1, 0, 3, None),
            (0, 1, 3, None),            # subrange
            (1, 0, 1, SpatialWindow(lat=(0, 4))),
            (2, 0, 2, SpatialWindow(lon=(2, 8))),
        ]
        jobs = [
            (scenario, realization, start, stop, window)
            for scenario in scenarios
            for realization, start, stop, window in shapes
        ] * 2
        barrier = threading.Barrier(len(jobs))
        outputs = [None] * len(jobs)
        errors = []

        def worker(i):
            scenario, realization, start, stop, window = jobs[i]
            request = FieldRequest(scenario, realization=realization,
                                   year_start=start, year_stop=stop,
                                   window=window)
            barrier.wait()
            try:
                outputs[i] = service.get(request)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(jobs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        references = {
            (scenario, realization): canonical_stream(
                fitted_emulator, scenario, realization, 3
            )
            for scenario in scenarios
            for realization in (0, 1, 2)
        }
        for i, (scenario, realization, start, stop, window) in enumerate(jobs):
            expected = references[(scenario, realization)][start * SPY:stop * SPY]
            if window is not None:
                expected = window.extract(expected)
            assert np.array_equal(outputs[i], expected), jobs[i]
