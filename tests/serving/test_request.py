"""Tests of the content-addressed request model."""

import numpy as np
import pytest

import repro
from repro.core.window import SpatialWindow
from repro.scenarios.registry import resolve_scenario_state
from repro.serving.request import FieldRequest, chunk_address


class TestValidation:
    def test_defaults_one_year(self):
        request = FieldRequest("ssp-high")
        assert (request.year_start, request.year_stop) == (0, 1)
        assert request.n_years == 1
        assert list(request.years) == [0]

    def test_rejects_bad_year_range(self):
        with pytest.raises(ValueError, match="empty"):
            FieldRequest("ssp-high", year_start=3, year_stop=3)
        with pytest.raises(ValueError, match="year_start"):
            FieldRequest("ssp-high", year_start=-1)

    def test_rejects_negative_realization(self):
        with pytest.raises(ValueError, match="realization"):
            FieldRequest("ssp-high", realization=-1)

    def test_rejects_bad_scenario_type(self):
        with pytest.raises(TypeError, match="scenario"):
            FieldRequest(42)

    def test_rejects_bad_window_type(self):
        with pytest.raises(TypeError, match="window"):
            FieldRequest("ssp-high", window=(0, 3))

    def test_is_hashable_and_frozen(self):
        request = FieldRequest("ssp-high", realization=1)
        assert hash(request) == hash(FieldRequest("ssp-high", realization=1))
        with pytest.raises(AttributeError):
            request.realization = 2


class TestAddressing:
    def test_address_is_deterministic(self):
        a = FieldRequest("ssp-high", realization=2, year_start=1, year_stop=4)
        b = FieldRequest("ssp-high", realization=2, year_start=1, year_stop=4)
        assert a.address() == b.address()
        assert len(a.address()) == 64  # sha256 hex

    def test_aliases_and_specs_share_one_address(self):
        by_name = FieldRequest("ssp-high", realization=1)
        by_alias = FieldRequest("ssp5-8.5", realization=1)
        by_spec = FieldRequest(repro.SCENARIOS.create("ssp-high"), realization=1)
        assert by_name.address() == by_alias.address() == by_spec.address()

    def test_every_field_enters_the_address(self):
        base = FieldRequest("ssp-high", realization=0, year_start=0, year_stop=2)
        variants = [
            FieldRequest("ssp-low", realization=0, year_start=0, year_stop=2),
            FieldRequest("ssp-high", realization=1, year_start=0, year_stop=2),
            FieldRequest("ssp-high", realization=0, year_start=1, year_stop=2),
            FieldRequest("ssp-high", realization=0, year_start=0, year_stop=3),
            FieldRequest("ssp-high", realization=0, year_start=0, year_stop=2,
                         include_nugget=False),
            FieldRequest("ssp-high", realization=0, year_start=0, year_stop=2,
                         window=SpatialWindow(lat=(0, 4))),
            FieldRequest("ssp-high", realization=0, year_start=0, year_stop=2,
                         start_level=3.0),
        ]
        addresses = {base.address()} | {v.address() for v in variants}
        assert len(addresses) == len(variants) + 1

    def test_start_level_ignored_when_scenario_ignores_it(self):
        # "historical" pins its own baseline, so start_level cannot
        # split its address space.
        assert (
            FieldRequest("historical", start_level=2.5).address()
            == FieldRequest("historical", start_level=9.0).address()
        )

    def test_stream_address_excludes_selection_fields(self):
        a = FieldRequest("ssp-high", realization=0, year_start=0, year_stop=2)
        b = FieldRequest("ssp-high", realization=5, year_start=3, year_stop=9,
                         window=SpatialWindow(lon=(0, 2)))
        assert a.stream_address() == b.stream_address()
        c = FieldRequest("ssp-high", include_nugget=False)
        assert c.stream_address() != a.stream_address()

    def test_chunk_addresses_cover_the_year_range(self):
        request = FieldRequest("ssp-high", realization=2, year_start=3, year_stop=6)
        addresses = request.chunk_addresses()
        assert sorted(addresses) == [3, 4, 5]
        stream = request.stream_address()
        for year, address in addresses.items():
            assert address == chunk_address(stream, 2, year)
        assert len(set(addresses.values())) == 3

    def test_canonical_state_is_json_able(self):
        import json

        request = FieldRequest("ssp-high", realization=1, year_start=0,
                               year_stop=2, window=SpatialWindow(lat=(1, 3)))
        state = request.canonical_state()
        assert json.loads(json.dumps(state)) == state


class TestScenarioStateResolution:
    def test_resolves_names_aliases_and_specs_identically(self):
        by_name = resolve_scenario_state("ssp-medium")
        by_alias = resolve_scenario_state("ssp2-4.5")
        by_spec = resolve_scenario_state(repro.SCENARIOS.create("ssp-medium"))
        assert by_name == by_alias == by_spec

    def test_state_round_trips_through_spec(self):
        state = resolve_scenario_state("overshoot")
        spec = repro.ScenarioSpec.from_state(state)
        np.testing.assert_array_equal(
            spec.annual_forcing(10),
            repro.SCENARIOS.create("overshoot").annual_forcing(10),
        )
