"""Shared fixtures for the test-suite.

Fixtures are kept deliberately small (band-limits below ~12, a handful of
years of synthetic data) so the whole suite runs quickly on a single CPU
core while still exercising every code path of the emulator, the transform
and the mixed-precision solver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClimateEmulator, EmulatorConfig
from repro.data import Era5LikeConfig, Era5LikeGenerator
from repro.sht import Grid, SHTPlan


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared across tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_lmax() -> int:
    """Band-limit used by the small SHT fixtures."""
    return 8


@pytest.fixture(scope="session")
def small_grid(small_lmax: int) -> Grid:
    """Smallest grid supporting the small band-limit."""
    return Grid.for_bandlimit(small_lmax)


@pytest.fixture(scope="session")
def small_plan(small_lmax: int, small_grid: Grid) -> SHTPlan:
    """Transform plan at the small band-limit."""
    return SHTPlan(lmax=small_lmax, grid=small_grid)


@pytest.fixture(scope="session")
def spd_matrix() -> np.ndarray:
    """A well-conditioned SPD matrix with covariance-like decay (64 x 64)."""
    local = np.random.default_rng(7)
    n = 64
    x = local.standard_normal((n, 2 * n))
    a = x @ x.T / (2 * n)
    decay = np.exp(-np.abs(np.subtract.outer(np.arange(n), np.arange(n))) / 12.0)
    return a * decay + 0.5 * np.eye(n)


@pytest.fixture(scope="session")
def small_ensemble():
    """A small synthetic ERA5-like ensemble (2 members, 3 years, lmax=8)."""
    config = Era5LikeConfig(
        lmax=8, n_years=3, steps_per_year=24, n_ensemble=2, nugget_std=0.05,
        # A strong forcing ramp keeps the trend coefficients identifiable
        # from such a short synthetic record.
        forcing_growth=1.0,
    )
    return Era5LikeGenerator(config, seed=42).generate()


@pytest.fixture(scope="session")
def fitted_emulator(small_ensemble):
    """An emulator fitted on the small ensemble (shared, read-only)."""
    emulator = ClimateEmulator(
        EmulatorConfig(
            lmax=8,
            n_harmonics=2,
            var_order=1,
            tile_size=16,
            precision_variant="DP",
            rho_grid=(0.3, 0.7),
        )
    )
    emulator.fit(small_ensemble)
    return emulator
