"""Tests of the forcing components and the ScenarioSpec container."""

import numpy as np
import pytest

from repro.data.forcing import historical_forcing
from repro.scenarios import (
    FORCING_COMPONENTS,
    AerosolOffset,
    GHGRamp,
    ScenarioSpec,
    SolarCycle,
    Stabilisation,
    VolcanicEruption,
    component_from_state,
)
from repro.scenarios.components import HISTORICAL_VOLCANOES, historical_pathway
from repro.util.registry import UnknownBackendError


class TestComponents:
    def test_ghg_ramp_closed_form(self):
        years = np.arange(10, dtype=np.float64)
        ramp = GHGRamp(base=1.0, rate=0.1, acceleration=0.02)
        np.testing.assert_array_equal(
            ramp.annual_series(10), 1.0 + 0.1 * years * (1.0 + 0.02 * years)
        )

    def test_ghg_ramp_constant_and_linear(self):
        np.testing.assert_array_equal(GHGRamp(base=3.0).annual_series(4), np.full(4, 3.0))
        np.testing.assert_array_equal(
            GHGRamp(base=0.0, rate=0.5).annual_series(4), 0.5 * np.arange(4.0)
        )

    def test_volcanic_eruption_shape(self):
        eruption = VolcanicEruption(year_index=3, magnitude=-2.0, decay_years=1.5)
        series = eruption.annual_series(8)
        assert np.all(series[:3] == 0.0)
        assert series[3] == -2.0
        # Exponential recovery: strictly increasing back towards zero.
        assert np.all(np.diff(series[3:]) > 0)

    def test_eruption_beyond_record_contributes_nothing(self):
        series = VolcanicEruption(year_index=50, magnitude=-3.0).annual_series(10)
        np.testing.assert_array_equal(series, np.zeros(10))

    def test_aerosol_offset_constant_and_fading(self):
        constant = AerosolOffset(magnitude=-0.4)
        np.testing.assert_array_equal(constant.annual_series(5), np.full(5, -0.4))
        fading = AerosolOffset(magnitude=-0.4, fade_start_year=2.0, fade_years=5.0)
        series = fading.annual_series(10)
        assert np.all(series[:3] <= 0.0)
        np.testing.assert_allclose(series[:2], -0.4)
        # The offset fades, so the (negative) contribution rises toward 0.
        assert np.all(np.diff(series[2:]) > 0)

    def test_solar_cycle_period(self):
        cycle = SolarCycle(amplitude=0.1, period_years=11.0)
        series = cycle.annual_series(23)
        assert series[0] == 0.0
        np.testing.assert_allclose(series[11], 0.0, atol=1e-12)
        assert np.max(np.abs(series)) <= 0.1 + 1e-12

    def test_stabilisation_approaches_target(self):
        stab = Stabilisation(base=2.0, amplitude=1.5, timescale_years=10.0)
        series = stab.annual_series(200)
        assert series[0] == 2.0
        assert stab.target == 3.5
        np.testing.assert_allclose(series[-1], 3.5, atol=1e-6)
        assert np.all(np.diff(series) > 0)

    def test_stabilisation_delay_models_drawdown(self):
        drawdown = Stabilisation(base=0.0, amplitude=-1.0, timescale_years=5.0,
                                 delay_years=10.0)
        series = drawdown.annual_series(30)
        np.testing.assert_array_equal(series[:11], np.zeros(11))
        assert np.all(np.diff(series[10:]) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VolcanicEruption(year_index=-1, magnitude=-1.0)
        with pytest.raises(ValueError):
            VolcanicEruption(year_index=0, magnitude=-1.0, decay_years=0.0)
        with pytest.raises(ValueError):
            Stabilisation(base=0.0, amplitude=1.0, timescale_years=0.0)
        with pytest.raises(ValueError):
            SolarCycle(amplitude=0.1, period_years=0.0)
        with pytest.raises(ValueError):
            AerosolOffset(magnitude=-0.3, fade_years=-1.0)
        with pytest.raises(ValueError):
            GHGRamp(base=1.0).annual_series(0)

    def test_state_dict_round_trip(self):
        components = [
            GHGRamp(base=1.0, rate=0.1, acceleration=0.02),
            VolcanicEruption(year_index=5, magnitude=-2.5, decay_years=2.0),
            AerosolOffset(magnitude=-0.3, fade_start_year=4.0, fade_years=10.0),
            AerosolOffset(magnitude=-0.2),
            SolarCycle(amplitude=0.05, period_years=11.0, phase_years=2.0),
            Stabilisation(base=2.5, amplitude=-1.0, timescale_years=20.0, delay_years=30.0),
        ]
        for component in components:
            rebuilt = component_from_state(component.state_dict())
            assert rebuilt == component
            np.testing.assert_array_equal(
                rebuilt.annual_series(40), component.annual_series(40)
            )

    def test_unknown_kind_lists_registered_kinds(self):
        with pytest.raises(UnknownBackendError, match="ghg-ramp"):
            component_from_state({"kind": "fusion-reactor", "power": 1.0})

    def test_component_registry_is_extensible(self):
        assert "stabilisation" in FORCING_COMPONENTS
        assert len(FORCING_COMPONENTS) >= 5


class TestScenarioSpec:
    def test_sum_of_components(self):
        spec = ScenarioSpec("demo", (GHGRamp(base=1.0, rate=0.1),
                                     AerosolOffset(magnitude=-0.5)))
        np.testing.assert_array_equal(
            spec.annual_forcing(6),
            GHGRamp(base=1.0, rate=0.1).annual_series(6) - 0.5,
        )

    def test_empty_spec_is_zero(self):
        np.testing.assert_array_equal(ScenarioSpec("zero").annual_forcing(4), np.zeros(4))

    def test_composition_operators(self):
        base = ScenarioSpec("base", (GHGRamp(base=2.0),))
        extended = base + VolcanicEruption(year_index=1, magnitude=-1.0)
        merged = base + ScenarioSpec("other", (SolarCycle(amplitude=0.1),))
        assert len(base.components) == 1  # originals untouched
        assert len(extended.components) == 2
        assert len(merged.components) == 2
        np.testing.assert_array_equal(
            extended.annual_forcing(5),
            base.annual_forcing(5)
            + VolcanicEruption(year_index=1, magnitude=-1.0).annual_series(5),
        )

    def test_rename(self):
        spec = ScenarioSpec("a", (GHGRamp(base=1.0),), description="d")
        renamed = spec.rename("b")
        assert renamed.name == "b" and renamed.description == "d"
        assert renamed.components == spec.components

    def test_state_dict_round_trip(self):
        spec = ScenarioSpec(
            "round-trip",
            (GHGRamp(base=1.0, rate=0.05),
             Stabilisation(base=0.0, amplitude=-0.5, timescale_years=10.0)),
            description="demo pathway",
        )
        rebuilt = ScenarioSpec.from_state(spec.state_dict())
        assert rebuilt == spec
        np.testing.assert_array_equal(rebuilt.annual_forcing(30), spec.annual_forcing(30))

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec("")
        with pytest.raises(TypeError):
            ScenarioSpec("bad", components=("not-a-component",))
        with pytest.raises(ValueError):
            ScenarioSpec("ok", (GHGRamp(base=1.0),)).annual_forcing(0)


class TestHistoricalPathway:
    def test_components_reproduce_historical_forcing_bit_exactly(self):
        """The registry pathway and historical_forcing must never drift."""
        spec = ScenarioSpec("historical", historical_pathway())
        np.testing.assert_array_equal(spec.annual_forcing(83), historical_forcing(83))

    def test_volcano_years_dip(self):
        rf = historical_forcing(83)
        smooth = historical_forcing(83, volcanoes=())
        for volcano in HISTORICAL_VOLCANOES:
            # The dip equals the magnitude up to the (tiny) decay tails of
            # the preceding eruptions.
            dip = rf[volcano.year_index] - smooth[volcano.year_index]
            assert dip == pytest.approx(volcano.magnitude, abs=0.02)
