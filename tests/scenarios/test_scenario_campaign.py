"""Tests of the sharded ensemble-campaign runner and its manifest."""

import json
import os

import numpy as np
import pytest

import repro
from repro.scenarios.campaign import iter_chunk_arrays, plan_campaign, run_campaign
from repro.storage.accounting import campaign_storage_report

SCENARIO_NAMES = ["ssp-low", "ssp-medium", "ssp-high"]


@pytest.fixture(scope="module")
def serial_manifest(fitted_emulator):
    """A 3-scenario x 2-realization campaign executed serially."""
    return run_campaign(
        fitted_emulator, SCENARIO_NAMES, 2, n_times=48, chunk_size=24,
        seed=2024, collect="fields",
    )


class TestPlanning:
    def test_runs_are_scenario_major_with_spawned_seeds(self, serial_manifest):
        runs = serial_manifest.runs
        assert [r.scenario for r in runs] == [
            "ssp-low", "ssp-low", "ssp-medium", "ssp-medium", "ssp-high", "ssp-high",
        ]
        assert [r.realization for r in runs] == [0, 1, 0, 1, 0, 1]
        # Run i is pinned to the SeedSequence child with spawn_key (i,).
        assert [r.spawn_key for r in runs] == [(i,) for i in range(6)]

    def test_plan_campaign_validation(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            plan_campaign([], 1, n_times=10, steps_per_year=5, chunk_size=5)
        with pytest.raises(ValueError, match="n_realizations"):
            plan_campaign(["constant"], 0, n_times=10, steps_per_year=5, chunk_size=5)
        with pytest.raises(ValueError, match="collect"):
            plan_campaign(["constant"], 1, n_times=10, steps_per_year=5, chunk_size=5,
                          collect="everything")
        with pytest.raises(ValueError, match="duplicate"):
            plan_campaign(["constant", "ssp-low", "constant"], 1, n_times=10,
                          steps_per_year=5, chunk_size=5)

    def test_run_campaign_validation(self, fitted_emulator):
        with pytest.raises(ValueError, match="executor"):
            run_campaign(fitted_emulator, ["constant"], executor="carrier-pigeon")
        with pytest.raises(ValueError, match="n_times"):
            run_campaign(fitted_emulator, ["constant"], n_times=0)
        with pytest.raises(ValueError, match="max_workers"):
            run_campaign(fitted_emulator, ["constant"], max_workers=0)
        with pytest.raises(RuntimeError, match="fitted"):
            run_campaign(repro.ClimateEmulator(), ["constant"])


class TestDeterminism:
    def test_sharded_threads_bit_identical_to_serial(self, fitted_emulator,
                                                     serial_manifest):
        sharded = run_campaign(
            fitted_emulator, SCENARIO_NAMES, 2, n_times=48, chunk_size=24,
            seed=2024, collect="fields", max_workers=4,
        )
        assert sharded.n_runs == serial_manifest.n_runs == 6
        for serial_run, sharded_run in zip(serial_manifest.runs, sharded.runs):
            assert serial_run.to_dict() == sharded_run.to_dict()
            assert np.array_equal(serial_run.collected, sharded_run.collected)

    def test_runs_reproducible_and_seed_sensitive(self, fitted_emulator,
                                                  serial_manifest):
        again = run_campaign(fitted_emulator, SCENARIO_NAMES, 2, n_times=48,
                             chunk_size=24, seed=2024, collect="fields")
        other = run_campaign(fitted_emulator, SCENARIO_NAMES, 2, n_times=48,
                             chunk_size=24, seed=99, collect="fields")
        for a, b, c in zip(serial_manifest.runs, again.runs, other.runs):
            assert np.array_equal(a.collected, b.collected)
            assert not np.array_equal(a.collected, c.collected)

    def test_realizations_are_independent_streams(self, serial_manifest):
        r0 = serial_manifest.run("ssp-low", 0).collected
        r1 = serial_manifest.run("ssp-low", 1).collected
        assert not np.array_equal(r0, r1)

    def test_run_matches_direct_emulate_stream(self, fitted_emulator,
                                               serial_manifest):
        """A campaign run is exactly emulate_stream under the spawned seed."""
        from repro.data.forcing import scenario_forcing

        record = serial_manifest.run("ssp-medium", 1)
        forcing = scenario_forcing("ssp-medium", 2)
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=2024, spawn_key=record.spawn_key)
        )
        chunks = fitted_emulator.emulate_stream(
            1, n_times=48, annual_forcing=forcing, rng=rng, chunk_size=24,
        )
        direct = np.concatenate([chunk.data[0] for chunk in chunks], axis=0)
        assert np.array_equal(record.collected, direct)

    def test_artifact_path_source_matches_in_memory(self, fitted_emulator,
                                                    serial_manifest, tmp_path):
        path = repro.save(fitted_emulator, tmp_path / "emulator.npz")
        from_disk = run_campaign(path, SCENARIO_NAMES, 2, n_times=48,
                                 chunk_size=24, seed=2024, collect="fields")
        for a, b in zip(serial_manifest.runs, from_disk.runs):
            assert np.array_equal(a.collected, b.collected)

    def test_process_executor_bit_identical(self, fitted_emulator, serial_manifest,
                                            tmp_path):
        path = repro.save(fitted_emulator, tmp_path / "emulator.npz")
        sharded = run_campaign(path, SCENARIO_NAMES, 2, n_times=48, chunk_size=24,
                               seed=2024, collect="fields", max_workers=2,
                               executor="process")
        for a, b in zip(serial_manifest.runs, sharded.runs):
            assert np.array_equal(a.collected, b.collected)

    def test_process_executor_accepts_in_memory_emulator(self, fitted_emulator,
                                                         serial_manifest):
        """An emulator source is spilled to a temp artifact for the pool."""
        sharded = run_campaign(fitted_emulator, SCENARIO_NAMES, 2, n_times=48,
                               chunk_size=24, seed=2024, collect="fields",
                               max_workers=2, executor="process")
        for a, b in zip(serial_manifest.runs, sharded.runs):
            assert np.array_equal(a.collected, b.collected)


class TestBatchedSynthesis:
    """``batch_size > 1`` vectorises same-scenario runs, bit-identically."""

    def test_batched_bit_identical_to_serial(self, fitted_emulator,
                                             serial_manifest):
        for batch_size in (2, 3):
            batched = run_campaign(
                fitted_emulator, SCENARIO_NAMES, 2, n_times=48, chunk_size=24,
                seed=2024, collect="fields", batch_size=batch_size,
            )
            assert batched.batch_size == batch_size
            for serial_run, batched_run in zip(serial_manifest.runs, batched.runs):
                assert serial_run.to_dict() == batched_run.to_dict()
                assert np.array_equal(serial_run.collected, batched_run.collected)

    def test_batched_and_sharded_combined(self, fitted_emulator, serial_manifest):
        batched = run_campaign(
            fitted_emulator, SCENARIO_NAMES, 2, n_times=48, chunk_size=24,
            seed=2024, collect="fields", batch_size=2, max_workers=3,
        )
        for serial_run, batched_run in zip(serial_manifest.runs, batched.runs):
            assert serial_run.to_dict() == batched_run.to_dict()
            assert np.array_equal(serial_run.collected, batched_run.collected)

    def test_batched_process_executor(self, fitted_emulator, serial_manifest,
                                      tmp_path):
        path = repro.save(fitted_emulator, tmp_path / "emulator.npz")
        batched = run_campaign(
            path, SCENARIO_NAMES, 2, n_times=48, chunk_size=24, seed=2024,
            collect="fields", batch_size=2, max_workers=2, executor="process",
        )
        for serial_run, batched_run in zip(serial_manifest.runs, batched.runs):
            assert np.array_equal(serial_run.collected, batched_run.collected)

    def test_batched_output_files_bit_identical(self, fitted_emulator, tmp_path):
        def outputs(batch_size, sub_dir):
            manifest = run_campaign(
                fitted_emulator, ["ssp-low"], 3, n_times=48, chunk_size=24,
                seed=7, collect="none", output_dir=tmp_path / sub_dir,
                batch_size=batch_size,
            )
            return [f for run in manifest.runs for f in run.output_files]

        serial_files = outputs(None, "serial")
        batched_files = outputs(3, "batched")
        assert len(serial_files) == len(batched_files) == 6
        for serial_path, batched_path in zip(serial_files, batched_files):
            with np.load(serial_path) as a, np.load(batched_path) as b:
                np.testing.assert_array_equal(a["data"], b["data"])
                assert int(a["t_start"]) == int(b["t_start"])

    def test_blocks_never_span_scenarios(self):
        from repro.scenarios.campaign import _batch_plans, plan_campaign

        plans = plan_campaign(["ssp-low", "ssp-high"], 3, n_times=24,
                              steps_per_year=24, chunk_size=24)
        blocks = _batch_plans(plans, 2)
        assert [len(b) for b in blocks] == [2, 1, 2, 1]
        for block in blocks:
            assert len({p.scenario for p in block}) == 1
        # Flattened blocks preserve campaign run order.
        assert [p.index for b in blocks for p in b] == list(range(6))

    def test_batch_size_validation(self, fitted_emulator):
        with pytest.raises(ValueError, match="batch_size"):
            run_campaign(fitted_emulator, ["constant"], batch_size=0)


class TestManifest:
    def test_chunk_layout_covers_every_run(self, serial_manifest):
        for record in serial_manifest.runs:
            assert sum(record.chunk_sizes) == record.n_times == 48
            assert record.chunk_sizes == [24, 24]

    def test_output_bytes_measured(self, serial_manifest, fitted_emulator):
        grid = fitted_emulator.training_summary.grid
        per_run = 48 * grid.npoints * 4  # float32
        assert all(r.output_bytes == per_run for r in serial_manifest.runs)
        assert serial_manifest.total_output_bytes == 6 * per_run
        assert serial_manifest.artifact_bytes == fitted_emulator.measured_artifact_bytes()

    def test_manifest_json_round_trip(self, serial_manifest, tmp_path):
        path = serial_manifest.save(tmp_path / "manifest.json")
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["schema"] == 1
        assert loaded["n_runs"] == 6
        assert loaded["seed"] == 2024
        assert loaded["scenarios"] == SCENARIO_NAMES
        assert loaded["total_output_bytes"] == serial_manifest.total_output_bytes
        assert [r["spawn_key"] for r in loaded["runs"]] == [[i] for i in range(6)]

    def test_run_lookup(self, serial_manifest):
        record = serial_manifest.run("ssp-high", 1)
        assert record.scenario == "ssp-high" and record.realization == 1
        with pytest.raises(KeyError):
            serial_manifest.run("ssp-high", 7)
        assert set(serial_manifest.collected()) == {
            (name, r) for name in SCENARIO_NAMES for r in (0, 1)
        }

    def test_collect_global_mean_series(self, fitted_emulator):
        manifest = run_campaign(fitted_emulator, ["constant"], 1, n_times=48,
                                chunk_size=24, seed=5)
        record = manifest.runs[0]
        assert record.collected.shape == (48,)
        # Area-weighted global means of temperature fields are O(280 K).
        assert 200.0 < record.collected.mean() < 330.0

    def test_collect_none_keeps_manifest_light(self, fitted_emulator):
        manifest = run_campaign(fitted_emulator, ["constant"], 1, n_times=24,
                                collect="none", seed=5)
        assert manifest.runs[0].collected is None
        assert manifest.runs[0].output_bytes > 0


class TestOutputDir:
    def test_chunks_streamed_to_disk(self, fitted_emulator, tmp_path):
        out_dir = tmp_path / "campaign-out"
        manifest = run_campaign(
            fitted_emulator, ["ssp-low", "overshoot"], 1, n_times=48,
            chunk_size=24, seed=11, collect="none", output_dir=out_dir,
        )
        for record in manifest.runs:
            assert len(record.output_files) == len(record.chunk_sizes) == 2
            for path, expected_steps in zip(record.output_files, record.chunk_sizes):
                assert os.path.getsize(path) > 0
                with np.load(path) as payload:
                    assert payload["data"].shape[1] == expected_steps
                    assert payload["data"].dtype == np.float32
                    assert str(payload["scenario"]) == record.scenario
        offsets = [int(np.load(f)["t_start"]) for f in manifest.runs[0].output_files]
        assert offsets == [0, 24]


class TestChunkFilenames:
    def test_names_are_unique_and_sorted_in_execution_order(
        self, fitted_emulator, tmp_path
    ):
        manifest = run_campaign(
            fitted_emulator, ["ssp-low", "ssp-high"], 2, n_times=48,
            chunk_size=24, seed=3, collect="none", output_dir=tmp_path,
        )
        names = [
            os.path.basename(f) for run in manifest.runs for f in run.output_files
        ]
        assert len(names) == len(set(names)) == 8
        # Lexicographic filename order == campaign execution order.
        assert sorted(names) == names

    def test_padding_widths_scale_with_campaign_size(self):
        plans = plan_campaign(
            ["constant"], 4, n_times=20, steps_per_year=2, chunk_size=2,
        )
        # 4 runs / 10 chunks fit the historical 3/4-digit floors.
        assert plans[0].index_width == 3 and plans[0].chunk_width == 4
        big = plan_campaign(
            ["constant"], 1500, n_times=6, steps_per_year=2, chunk_size=2,
        )
        assert big[0].index_width == 4  # 1500 runs need 4 digits
        many_chunks = plan_campaign(
            ["constant"], 1, n_times=20002, steps_per_year=2, chunk_size=2,
        )
        assert many_chunks[0].chunk_width == 5  # 10001 chunks need 5 digits

    def test_slug_collisions_cannot_collide_filenames(
        self, fitted_emulator, tmp_path
    ):
        # Two distinct scenario names that sanitise to the same slug: the
        # run index keeps every filename unique.
        colliding = [
            repro.SCENARIOS.create("constant").rename("box a/b"),
            repro.SCENARIOS.create("linear-ramp").rename("box a b"),
        ]
        manifest = run_campaign(
            fitted_emulator, colliding, 1, n_times=24, seed=1,
            collect="none", output_dir=tmp_path,
        )
        names = [
            os.path.basename(f) for run in manifest.runs for f in run.output_files
        ]
        assert len(names) == len(set(names)) == 2


class TestIterChunkArrays:
    @pytest.fixture(scope="class")
    def written_manifest(self, fitted_emulator, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("campaign-read-back")
        return run_campaign(
            fitted_emulator, ["ssp-low", "ssp-high"], 2, n_times=48,
            chunk_size=24, seed=2024, collect="fields", output_dir=out_dir,
        )

    def test_reassembles_every_run_bit_identically(self, written_manifest):
        loaded = list(iter_chunk_arrays(written_manifest))
        assert len(loaded) == 4
        for record, member in loaded:
            assert member.shape[0] == record.n_times == 48
            assert member.dtype == np.float32
            # The shards are the float32 casts of the collected fields.
            np.testing.assert_array_equal(
                member, record.collected.astype(np.float32)
            )

    def test_accepts_json_manifest_form(self, written_manifest):
        document = json.loads(written_manifest.to_json())
        loaded = list(iter_chunk_arrays(document))
        assert len(loaded) == 4
        for (run, member), record in zip(loaded, written_manifest.runs):
            assert run["scenario"] == record.scenario
            np.testing.assert_array_equal(
                member, record.collected.astype(np.float32)
            )

    def test_runs_without_files_are_skipped(self, fitted_emulator):
        manifest = run_campaign(
            fitted_emulator, ["constant"], 1, n_times=24, collect="none",
        )
        assert list(iter_chunk_arrays(manifest)) == []

    def test_missing_shard_raises_instead_of_gapping(
        self, fitted_emulator, tmp_path
    ):
        manifest = run_campaign(
            fitted_emulator, ["constant"], 1, n_times=48, chunk_size=24,
            collect="none", output_dir=tmp_path, seed=5,
        )
        record = manifest.runs[0]
        record.output_files.pop(0)  # lose the first chunk
        with pytest.raises(ValueError, match="missing or duplicated"):
            list(iter_chunk_arrays(manifest))

    def test_truncated_coverage_raises(self, fitted_emulator, tmp_path):
        manifest = run_campaign(
            fitted_emulator, ["constant"], 1, n_times=48, chunk_size=24,
            collect="none", output_dir=tmp_path, seed=6,
        )
        record = manifest.runs[0]
        record.output_files.pop()  # lose the last chunk
        with pytest.raises(ValueError, match="cover"):
            list(iter_chunk_arrays(manifest))


class TestStorageReport:
    def test_boost_factor(self, serial_manifest):
        report = campaign_storage_report(serial_manifest)
        assert report["n_runs"] == 6
        assert report["n_scenarios"] == 3
        assert report["artifact_bytes"] == serial_manifest.artifact_bytes
        assert report["campaign_output_bytes"] == serial_manifest.total_output_bytes
        assert report["boost_factor"] == pytest.approx(
            serial_manifest.total_output_bytes / serial_manifest.artifact_bytes
        )
        # Accepts the JSON form of the manifest too.
        assert campaign_storage_report(serial_manifest.to_dict()) == report


class TestProgressHeartbeat:
    def test_callback_sees_monotonic_progress_to_completion(
        self, fitted_emulator
    ):
        beats = []
        manifest = run_campaign(fitted_emulator, ["ssp-low", "ssp-high"], 2,
                                n_times=8, seed=3, progress=beats.append)
        # One beat at start (0 done) plus one per completed block.
        assert beats[0]["runs_done"] == 0
        assert beats[-1]["runs_done"] == manifest.n_runs == 4
        done = [beat["runs_done"] for beat in beats]
        assert done == sorted(done)
        for beat in beats:
            assert beat["runs_total"] == 4
            assert set(beat) == {
                "runs_done", "runs_total", "elapsed_seconds",
                "runs_per_second", "eta_seconds",
            }
        assert beats[0]["eta_seconds"] is None
        assert beats[-1]["eta_seconds"] == pytest.approx(0.0)
        assert beats[-1]["runs_per_second"] > 0

    def test_heartbeat_beats_per_batched_block(self, fitted_emulator):
        beats = []
        run_campaign(fitted_emulator, ["ssp-low"], 4, n_times=8, seed=3,
                     batch_size=2, progress=beats.append)
        assert [beat["runs_done"] for beat in beats] == [0, 2, 4]

    def test_gauges_published_without_callback(self, fitted_emulator):
        from repro.obs import metrics_snapshot

        manifest = run_campaign(fitted_emulator, ["ssp-low"], 2, n_times=8,
                                seed=3)
        gauges = metrics_snapshot()["gauges"]
        assert gauges["campaign.progress.runs_done"] == float(manifest.n_runs)
        assert gauges["campaign.progress.runs_total"] == float(manifest.n_runs)
        assert gauges["campaign.progress.runs_per_second"] > 0
        assert gauges["campaign.progress.eta_seconds"] == pytest.approx(0.0)

    def test_heartbeat_works_across_executors(self, fitted_emulator):
        for kwargs in ({"max_workers": 2},
                       {"max_workers": 2, "executor": "thread"}):
            beats = []
            run_campaign(fitted_emulator, ["ssp-low"], 2, n_times=8, seed=3,
                         progress=beats.append, **kwargs)
            assert beats[-1]["runs_done"] == 2


class TestFacade:
    def test_exported_from_repro(self):
        assert repro.run_campaign is run_campaign
        for name in ("CampaignManifest", "ScenarioSpec", "SCENARIOS",
                     "list_scenarios", "register_scenario"):
            assert hasattr(repro, name), name

    def test_lazy_subpackage_exports(self):
        import repro.scenarios as scenarios

        assert scenarios.run_campaign is run_campaign
        assert scenarios.campaign.run_campaign is run_campaign
        with pytest.raises(AttributeError):
            scenarios.not_a_symbol
