"""The unified-storage acceptance suite: campaigns pre-warm serving.

One store root, both tiers: ``run_campaign(store=...)`` lands every
chunk under the serving tier's ``(stream, realization, year)`` content
addresses, and an :class:`EmulationService` over the same root then
serves the whole campaign with **zero** cold synthesis flights,
bit-identical (float64 store) to direct emulation.  The suite also pins
the reader-integrity contract for the store path of
``iter_chunk_arrays`` — corrupted-on-disk fixtures raise named errors,
never yield corrupt members — and the cross-tier accounting.
"""

import json

import numpy as np
import pytest

from repro.scenarios.campaign import iter_chunk_arrays, run_campaign
from repro.serving.request import FieldRequest, chunk_address
from repro.serving.service import EmulationService
from repro.storage.accounting import (
    campaign_storage_report,
    cross_tier_storage_report,
)
from repro.storage.chunkstore import ChunkStore

SPY = 24  # steps_per_year of the shared fixture ensemble
SCENARIOS = ["ssp-low", "ssp-high"]
N_REALIZATIONS = 2
N_YEARS = 2
SEED = 7


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    return tmp_path_factory.mktemp("campaign-store")


@pytest.fixture(scope="module")
def store_manifest(fitted_emulator, store_root):
    """A store-backed campaign: 2 scenarios x 2 realizations x 2 years."""
    return run_campaign(
        fitted_emulator, SCENARIOS, N_REALIZATIONS,
        n_times=N_YEARS * SPY, seed=SEED, store=store_root, collect="none",
    )


def canonical_stream(emulator, scenario, realization, n_years):
    """Reference realization ``r``: the canonical year-chunked stream."""
    rng = np.random.default_rng(
        np.random.SeedSequence(SEED, spawn_key=(realization,))
    )
    chunks = emulator.emulate_stream(
        n_realizations=1, n_times=n_years * SPY, annual_forcing=scenario,
        rng=rng, chunk_size=SPY, include_nugget=True,
    )
    return np.concatenate([c.data for c in chunks], axis=1)[0]


class TestCampaignWritesTheServingTier:
    def test_store_holds_every_serving_address(self, store_manifest, store_root):
        store = ChunkStore(store_root)
        assert len(store) == len(SCENARIOS) * N_REALIZATIONS * N_YEARS
        for scenario in SCENARIOS:
            stream = FieldRequest(scenario).stream_address()
            for realization in range(N_REALIZATIONS):
                for year in range(N_YEARS):
                    assert chunk_address(stream, realization, year) in store
        assert store.max_abs_error() == 0.0  # lossless by default

    def test_manifest_records_the_store_tier(self, store_manifest, store_root):
        header = store_manifest.store
        assert header["root"] == str(store_root)
        assert header["encoding"] == "float64"
        assert set(header["stream_addresses"]) == set(SCENARIOS)
        for run in store_manifest.runs:
            assert len(run.chunk_addresses) == N_YEARS
            assert run.spawn_key == (run.realization,)  # serving seeding
        # The header survives the JSON round trip.
        document = json.loads(json.dumps(store_manifest.to_dict()))
        assert document["store"]["root"] == str(store_root)

    def test_serving_the_same_root_needs_zero_synthesis(
        self, fitted_emulator, store_manifest, store_root
    ):
        service = EmulationService(
            fitted_emulator, seed=SEED, store=ChunkStore(store_root)
        )
        for scenario in SCENARIOS:
            for realization in range(N_REALIZATIONS):
                served = service.get(FieldRequest(
                    scenario, realization=realization,
                    year_start=0, year_stop=N_YEARS,
                ))
                reference = canonical_stream(
                    fitted_emulator, scenario, realization, N_YEARS
                )
                assert np.array_equal(served, reference)  # bit-identical
        stats = service.stats()
        assert stats["synthesis"]["flights"] == 0  # zero cold synthesis
        assert stats["store_chunk_hits"] == (
            len(SCENARIOS) * N_REALIZATIONS * N_YEARS
        )

    def test_rerun_finds_chunks_already_stored(self, fitted_emulator,
                                               store_manifest, store_root):
        before = ChunkStore(store_root).stats()
        again = run_campaign(
            fitted_emulator, SCENARIOS, N_REALIZATIONS,
            n_times=N_YEARS * SPY, seed=SEED, store=store_root, collect="none",
        )
        after = ChunkStore(store_root).stats()
        assert after["n_chunks"] == before["n_chunks"]
        assert [r.chunk_addresses for r in again.runs] == [
            r.chunk_addresses for r in store_manifest.runs
        ]

    def test_process_pool_campaign_lands_the_same_chunks(
        self, fitted_emulator, store_manifest, tmp_path
    ):
        manifest = run_campaign(
            fitted_emulator, SCENARIOS, N_REALIZATIONS,
            n_times=N_YEARS * SPY, seed=SEED, store=tmp_path / "pstore",
            collect="none", executor="process", max_workers=2,
        )
        store = ChunkStore(tmp_path / "pstore")
        assert sorted(store.addresses()) == sorted(
            a for run in store_manifest.runs for a in run.chunk_addresses
        )
        for run in manifest.runs:
            for address in run.chunk_addresses:
                assert store.get(address) is not None


class TestStoreCampaignValidation:
    def test_non_canonical_chunking_is_rejected(self, fitted_emulator, tmp_path):
        with pytest.raises(ValueError, match="canonical year chunking"):
            run_campaign(fitted_emulator, ["constant"], n_times=2 * SPY,
                         chunk_size=SPY // 2, store=tmp_path / "s")
        with pytest.raises(ValueError, match="whole model years"):
            run_campaign(fitted_emulator, ["constant"], n_times=SPY + 1,
                         store=tmp_path / "s")

    def test_npz_campaign_seeding_is_unchanged(self, fitted_emulator):
        manifest = run_campaign(fitted_emulator, SCENARIOS, 2,
                                n_times=SPY, collect="none")
        assert [r.spawn_key for r in manifest.runs] == [(i,) for i in range(4)]
        assert manifest.store is None
        assert all(r.chunk_addresses == [] for r in manifest.runs)


class TestStoreReader:
    def test_store_path_matches_npz_path_bit_for_bit(self, fitted_emulator,
                                                     tmp_path):
        manifest = run_campaign(
            fitted_emulator, ["ssp-low"], 2, n_times=N_YEARS * SPY, seed=SEED,
            store=tmp_path / "store", output_dir=tmp_path / "npz",
            collect="none",
        )
        from_npz = {r.index: m for r, m in iter_chunk_arrays(manifest)}
        from_store = {
            r.index: m for r, m in iter_chunk_arrays(manifest, store=True)
        }
        assert set(from_npz) == set(from_store)
        for index, member in from_npz.items():
            assert member.dtype == from_store[index].dtype == np.float32
            assert np.array_equal(member, from_store[index])

    def test_reader_accepts_json_manifest_and_explicit_roots(
        self, store_manifest, store_root
    ):
        document = json.loads(json.dumps(store_manifest.to_dict()))
        by_header = list(iter_chunk_arrays(document, store=True))
        by_path = list(iter_chunk_arrays(store_manifest, store=str(store_root)))
        by_handle = list(iter_chunk_arrays(
            store_manifest, store=ChunkStore(store_root)
        ))
        assert len(by_header) == len(by_path) == len(by_handle) == 4
        for (_, a), (_, b), (_, c) in zip(by_header, by_path, by_handle):
            assert np.array_equal(a, b) and np.array_equal(a, c)

    def test_npz_manifest_cannot_be_read_from_a_store(self, fitted_emulator):
        manifest = run_campaign(fitted_emulator, ["constant"], n_times=SPY,
                                collect="none")
        with pytest.raises(ValueError, match="store-backed campaign"):
            list(iter_chunk_arrays(manifest, store=True))


class TestCorruptedOnDiskFixtures:
    @pytest.fixture()
    def corruptible(self, fitted_emulator, tmp_path):
        manifest = run_campaign(
            fitted_emulator, ["ssp-low"], 1, n_times=N_YEARS * SPY, seed=SEED,
            store=tmp_path / "store", collect="none",
        )
        return manifest, ChunkStore(tmp_path / "store")

    def test_pruned_chunk_raises_not_gaps(self, corruptible):
        manifest, store = corruptible
        store.prune(max_bytes=0)
        with pytest.raises(ValueError, match="pruned or never committed"):
            list(iter_chunk_arrays(manifest, store=store))

    def test_shard_rewritten_with_wrong_shape_raises(self, corruptible):
        manifest, store = corruptible
        address = manifest.runs[0].chunk_addresses[0]
        shard = store.entry(address)["file"]
        np.savez(str(store.root) + "/" + shard, data=np.zeros((2, 2)))
        with pytest.raises(ValueError, match="decodes to shape"):
            list(iter_chunk_arrays(manifest, store=store))

    def test_truncated_shard_raises(self, corruptible):
        manifest, store = corruptible
        address = manifest.runs[0].chunk_addresses[1]
        path = str(store.root) + "/" + store.entry(address)["file"]
        with open(path, "r+b") as handle:
            handle.truncate(16)
        with pytest.raises(ValueError, match="truncated or corrupt"):
            list(iter_chunk_arrays(manifest, store=store))

    def test_tampered_manifest_layout_raises(self, corruptible):
        manifest, store = corruptible
        document = manifest.to_dict()
        document["runs"][0]["chunk_addresses"] = (
            document["runs"][0]["chunk_addresses"][:1]
        )
        with pytest.raises(ValueError, match="manifest is corrupt"):
            list(iter_chunk_arrays(document, store=store))


class TestCrossTierAccounting:
    def test_campaign_report_gains_a_store_tier(self, store_manifest,
                                                store_root):
        report = campaign_storage_report(
            store_manifest, store=ChunkStore(store_root)
        )
        tier = report["store"]
        assert tier["encoding"] == "float64"
        assert tier["n_chunks"] == len(SCENARIOS) * N_REALIZATIONS * N_YEARS
        assert tier["max_abs_error"] == 0.0
        assert tier["store_boost_factor"] > 1.0
        # The manifest's own store header is enough — no handle needed.
        assert campaign_storage_report(store_manifest)["store"][
            "n_chunks"
        ] == tier["n_chunks"]

    def test_cross_tier_report_shows_full_prewarming(
        self, fitted_emulator, store_manifest, store_root
    ):
        service = EmulationService(
            fitted_emulator, seed=SEED, store=ChunkStore(store_root)
        )
        for scenario in SCENARIOS:
            service.get(FieldRequest(scenario, realization=0,
                                     year_start=0, year_stop=N_YEARS))
        report = cross_tier_storage_report(store_manifest, service)
        assert report["synthesized_chunks"] == 0
        assert report["prewarmed_fraction"] == 1.0
        assert report["store_lossless"] is True
        assert report["store_max_abs_error"] == 0.0
        assert report["cross_tier_boost_factor"] > 1.0
        assert report["emitted_bytes"] == (
            report["campaign_output_bytes"] + report["served_bytes"]
        )
        assert report["campaign"]["boost_factor"] > 1.0
        assert report["serving"]["boost_factor"] > 0.0
