"""Tests of the named scenario registry and its legacy-compatible entries."""

import numpy as np
import pytest

import repro
from repro.data.forcing import ForcingScenario, historical_forcing, scenario_forcing
from repro.scenarios import (
    SCENARIOS,
    GHGRamp,
    ScenarioSpec,
    Stabilisation,
    list_scenarios,
    register_scenario,
    resolve_scenario,
)
from repro.util.registry import UnknownBackendError

LEGACY_NAMES = ["historical", "constant", "linear-ramp", "high-emissions", "stabilisation"]
SSP_NAMES = ["ssp-low", "ssp-medium", "ssp-high", "overshoot"]


class TestRegistryContents:
    def test_all_pathways_registered(self):
        names = SCENARIOS.names()
        for name in LEGACY_NAMES + SSP_NAMES:
            assert name in names

    def test_list_scenarios_has_descriptions(self):
        catalogue = list_scenarios()
        assert set(LEGACY_NAMES + SSP_NAMES) <= set(catalogue)
        assert all(catalogue[name] for name in catalogue)
        assert repro.list_scenarios() == catalogue

    def test_ssp_aliases_resolve_to_same_pathway(self):
        for alias, name in [("ssp1-2.6", "ssp-low"), ("ssp2-4.5", "ssp-medium"),
                            ("ssp5-8.5", "ssp-high"), ("ssp-overshoot", "overshoot")]:
            np.testing.assert_array_equal(
                scenario_forcing(alias, 30), scenario_forcing(name, 30)
            )


class TestLegacyEquivalence:
    """The five original scenarios must stay bit-identical to the old dispatch."""

    def test_historical(self):
        np.testing.assert_array_equal(scenario_forcing("historical", 60),
                                      historical_forcing(60))

    def test_constant(self):
        np.testing.assert_array_equal(scenario_forcing("constant", 50, start_level=1.75),
                                      np.full(50, 1.75))

    def test_linear_ramp(self):
        years = np.arange(50, dtype=np.float64)
        np.testing.assert_array_equal(scenario_forcing("linear-ramp", 50),
                                      2.5 + 0.05 * years)

    def test_high_emissions(self):
        years = np.arange(50, dtype=np.float64)
        np.testing.assert_array_equal(scenario_forcing("high-emissions", 50),
                                      2.5 + 0.085 * years * (1.0 + 0.01 * years))

    def test_stabilisation(self):
        years = np.arange(50, dtype=np.float64)
        np.testing.assert_array_equal(scenario_forcing("stabilisation", 50),
                                      2.5 + 2.5 * (1.0 - np.exp(-years / 30.0)))

    @pytest.mark.parametrize("scenario", list(ForcingScenario))
    def test_enum_members_still_resolve(self, scenario):
        rf = scenario_forcing(scenario, 40)
        assert rf.shape == (40,)
        assert np.all(np.isfinite(rf))


class TestSspPathwayShapes:
    def test_relative_ordering_at_horizon(self):
        low = scenario_forcing("ssp-low", 80)
        medium = scenario_forcing("ssp-medium", 80)
        high = scenario_forcing("ssp-high", 80)
        assert high[-1] > medium[-1] > low[-1]

    def test_low_pathway_peaks_then_declines(self):
        low = scenario_forcing("ssp-low", 100)
        peak = int(np.argmax(low))
        assert 0 < peak < 60
        assert low[-1] < low[peak] - 0.3

    def test_overshoot_peaks_then_draws_down(self):
        overshoot = scenario_forcing("overshoot", 100)
        peak = int(np.argmax(overshoot))
        assert 20 < peak < 70
        assert overshoot[-1] < overshoot[peak] - 0.5
        # but stays above the starting level (overshoot, not collapse)
        assert overshoot[-1] > overshoot[0] - 0.5


class TestResolutionAndRegistration:
    def test_unknown_name_lists_available(self):
        with pytest.raises(UnknownBackendError, match="historical"):
            resolve_scenario("rcp9.9")

    def test_resolve_passes_spec_through(self):
        spec = ScenarioSpec("inline", (GHGRamp(base=1.0),))
        assert resolve_scenario(spec) is spec

    def test_factory_must_return_spec(self):
        register_scenario("bad-factory", lambda start_level=2.5: np.zeros(3))
        try:
            with pytest.raises(TypeError, match="ScenarioSpec"):
                resolve_scenario("bad-factory")
        finally:
            SCENARIOS.unregister("bad-factory")

    def test_register_spec_directly(self):
        spec = ScenarioSpec(
            "frozen-level", (GHGRamp(base=4.0),), description="pinned at 4"
        )
        register_scenario("frozen-level", spec)
        try:
            # start_level is irrelevant for a pinned spec
            np.testing.assert_array_equal(
                scenario_forcing("frozen-level", 5, start_level=99.0), np.full(5, 4.0)
            )
        finally:
            SCENARIOS.unregister("frozen-level")

    def test_new_scenario_needs_no_core_edits(self, fitted_emulator):
        """Register a pathway, then drive the emulator by name — zero core edits."""

        @register_scenario("test-drawdown", description="rise then fall")
        def _drawdown(start_level: float = 2.5) -> ScenarioSpec:
            return ScenarioSpec("test-drawdown", (
                Stabilisation(base=start_level, amplitude=2.0, timescale_years=10.0),
                Stabilisation(base=0.0, amplitude=-1.5, timescale_years=10.0,
                              delay_years=20.0),
            ))

        try:
            spy = fitted_emulator.training_summary.steps_per_year
            out = fitted_emulator.emulate(
                1, n_times=2 * spy, annual_forcing="test-drawdown",
                rng=np.random.default_rng(0),
            )
            expected = fitted_emulator.emulate(
                1, n_times=2 * spy,
                annual_forcing=scenario_forcing("test-drawdown", 2),
                rng=np.random.default_rng(0),
            )
            np.testing.assert_array_equal(out.data, expected.data)
        finally:
            SCENARIOS.unregister("test-drawdown")
