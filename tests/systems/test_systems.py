"""Tests of the machine catalogue and the analytic performance model."""

import numpy as np
import pytest

from repro.linalg.precision import Precision
from repro.systems import (
    ALPS,
    FRONTIER,
    LEONARDO,
    SUMMIT,
    SYSTEMS,
    CholeskyPerformanceModel,
    get_system,
)
from repro.systems.catalog import PAPER_NODE_COUNTS
from repro.systems.perf_model import band_flop_fraction
from repro.tuning import scaling_efficiencies


class TestCatalog:
    def test_lookup(self):
        assert get_system("Frontier") is FRONTIER
        assert get_system("summit") is SUMMIT
        with pytest.raises(KeyError):
            get_system("fugaku")

    def test_paper_gpu_counts(self):
        assert SUMMIT.node.gpus_per_node == 6
        assert SUMMIT.subset(3072).total_gpus == 18_432
        assert FRONTIER.subset(9025).total_gpus == 36_100
        assert ALPS.subset(1936).total_gpus == 7_744
        assert LEONARDO.subset(1024).total_gpus == 4_096

    def test_dp_peaks_close_to_paper(self):
        """Theoretical DP peaks should be near the Section IV-D figures."""
        assert SUMMIT.theoretical_peak_pflops("fp64") == pytest.approx(200.79, rel=0.15)
        assert ALPS.theoretical_peak_pflops("fp64") == pytest.approx(353.75, rel=0.15)
        assert FRONTIER.theoretical_peak_pflops("fp64") == pytest.approx(1710.0, rel=0.15)

    def test_reduced_precision_faster_everywhere(self):
        for machine in SYSTEMS.values():
            gpu = machine.node.gpu
            assert gpu.fp16_gflops > gpu.fp32_gflops >= gpu.fp64_gflops

    def test_paper_node_counts_table(self):
        assert PAPER_NODE_COUNTS["largest_run"]["frontier"] == 9_025
        assert set(PAPER_NODE_COUNTS["table1"].values()) == {1_024}


class TestBandFlopFraction:
    def test_limits(self):
        assert band_flop_fraction(10, 0) == 0.0
        assert band_flop_fraction(10, 10) == pytest.approx(1.0)
        assert band_flop_fraction(0, 1) == 1.0

    def test_monotone_in_width(self):
        values = [band_flop_fraction(100, w) for w in (1, 5, 20, 50)]
        assert values == sorted(values)
        assert values[0] < 0.05


class TestPerformanceModel:
    def test_variant_ordering_matches_paper(self):
        """DP < DP/SP < DP/SP/HP < DP/HP on Summit at scale (Fig. 6)."""
        model = CholeskyPerformanceModel(SUMMIT)
        rates = [model.estimate(8_390_000, 2048, v).pflops for v in ("DP", "DP/SP", "DP/SP/HP", "DP/HP")]
        assert rates == sorted(rates)
        speedup_hp = rates[-1] / rates[0]
        assert 3.5 < speedup_hp < 7.0  # paper: 5.2x
        speedup_sp = rates[1] / rates[0]
        assert 1.5 < speedup_sp < 2.6  # paper: 2.0x

    def test_dp_fraction_of_peak_reasonable(self):
        model = CholeskyPerformanceModel(SUMMIT)
        estimate = model.estimate(8_390_000, 2048, "DP")
        frac = model.fraction_of_dp_peak(estimate)
        assert 0.4 < frac < 0.75  # paper: 61.7%

    def test_table1_cross_system_ordering(self):
        """Alps > Leonardo ~ Frontier > Summit per-GPU at DP/HP (Table I)."""
        per_gpu = {}
        sizes = {"frontier": 8_390_000, "alps": 10_490_000, "leonardo": 8_390_000, "summit": 6_290_000}
        for name, machine in SYSTEMS.items():
            est = CholeskyPerformanceModel(machine).estimate(sizes[name], 1024, "DP/HP")
            per_gpu[name] = est.tflops_per_worker
        assert per_gpu["alps"] > per_gpu["leonardo"]
        assert per_gpu["alps"] > per_gpu["frontier"] > per_gpu["summit"]
        assert per_gpu["alps"] == pytest.approx(93.8, rel=0.25)
        assert per_gpu["summit"] == pytest.approx(25.0, rel=0.25)

    def test_largest_runs_ordering(self):
        """Frontier > Alps > Summit > Leonardo total rate at the largest runs."""
        runs = {
            "frontier": (9025, 27_240_000),
            "alps": (1936, 15_730_000),
            "summit": (3072, 12_580_000),
            "leonardo": (1024, 8_390_000),
        }
        rates = {
            name: CholeskyPerformanceModel(SYSTEMS[name]).estimate(size, nodes, "DP/HP").pflops
            for name, (nodes, size) in runs.items()
        }
        assert rates["frontier"] > rates["alps"] > rates["summit"] > rates["leonardo"]
        assert rates["frontier"] > 900.0  # near-exascale

    def test_weak_scaling_roughly_flat(self):
        model = CholeskyPerformanceModel(SUMMIT)
        series = model.weak_scaling([384, 1536, 6144, 12288], "DP/HP")
        eff = scaling_efficiencies(series)
        assert all(0.7 < e <= 1.2 for e in eff)

    def test_strong_scaling_efficiency_decreases(self):
        model = CholeskyPerformanceModel(SUMMIT)
        size = model.memory_bound_matrix_size(512)
        series = model.strong_scaling(size, [3072, 6144, 12288], "DP")
        eff = scaling_efficiencies(series)
        assert eff[0] == pytest.approx(1.0)
        assert eff[1] < 1.0 and eff[2] < eff[1]
        assert 0.4 < eff[2] < 0.75  # paper: 55%

    def test_sender_conversion_and_latency_collectives_help(self):
        new = CholeskyPerformanceModel(SUMMIT, conversion="sender", collective_priority="latency")
        old = CholeskyPerformanceModel(SUMMIT, conversion="receiver", collective_priority="bandwidth")
        speedup = (
            new.estimate(1_270_000, 128, "DP/HP").pflops
            / old.estimate(1_270_000, 128, "DP/HP").pflops
        )
        assert speedup > 1.2  # paper: 1.53x

    def test_larger_matrices_improve_efficiency(self):
        model = CholeskyPerformanceModel(SUMMIT)
        small = model.estimate(2_100_000, 2048, "DP/HP")
        large = model.estimate(8_390_000, 2048, "DP/HP")
        assert large.pflops > small.pflops

    def test_memory_bound_matrix_size_matches_paper_scale(self):
        """Summit 3,072 nodes held a ~12.6M matrix (Fig. 8)."""
        model = CholeskyPerformanceModel(SUMMIT)
        n = model.memory_bound_matrix_size(3072)
        assert 8_000_000 < n < 16_000_000

    def test_flop_fractions_sum_to_one(self):
        model = CholeskyPerformanceModel(SUMMIT)
        for variant in ("DP", "DP/SP", "DP/SP/HP", "DP/HP"):
            fractions = model.flop_fractions(4_000_000, variant)
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_custom_efficiency_override(self):
        model = CholeskyPerformanceModel(SUMMIT, kernel_efficiency={Precision.HALF: 0.1})
        slower = model.estimate(4_000_000, 256, "DP/HP")
        faster = CholeskyPerformanceModel(SUMMIT).estimate(4_000_000, 256, "DP/HP")
        assert slower.pflops < faster.pflops

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            CholeskyPerformanceModel(SUMMIT).estimate(1_000_000, 0)
