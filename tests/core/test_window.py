"""Tests of windowed chunk extraction."""

import numpy as np
import pytest

from repro.core.window import SpatialWindow
from repro.sht.grid import Grid


class TestValidation:
    def test_rejects_empty_or_negative_ranges(self):
        with pytest.raises(ValueError, match="lat"):
            SpatialWindow(lat=(3, 3))
        with pytest.raises(ValueError, match="lat"):
            SpatialWindow(lat=(-1, 2))
        with pytest.raises(ValueError, match="lon"):
            SpatialWindow(lon=(5, 2))

    def test_validate_for_grid_bounds(self):
        grid = Grid(ntheta=9, nphi=15)
        SpatialWindow(lat=(0, 9), lon=(0, 15)).validate_for(grid)
        with pytest.raises(ValueError, match="lat window"):
            SpatialWindow(lat=(0, 10)).validate_for(grid)
        with pytest.raises(ValueError, match="lon window"):
            SpatialWindow(lon=(0, 16)).validate_for(grid)

    def test_full_window(self):
        window = SpatialWindow()
        assert window.is_full
        grid = Grid(ntheta=9, nphi=15)
        assert window.shape_on(grid) == (9, 15)


class TestExtraction:
    def test_extracts_trailing_axes(self):
        fields = np.arange(2 * 3 * 4 * 6, dtype=np.float64).reshape(2, 3, 4, 6)
        window = SpatialWindow(lat=(1, 3), lon=(2, 5))
        np.testing.assert_array_equal(
            window.extract(fields), fields[:, :, 1:3, 2:5]
        )

    def test_extract_rejects_low_rank(self):
        with pytest.raises(ValueError, match="dimensions"):
            SpatialWindow(lat=(0, 1)).extract(np.arange(4.0))

    def test_ensemble_window(self, small_ensemble):
        window = SpatialWindow(lat=(2, 5), lon=(0, 7))
        cut = small_ensemble.window(window)
        np.testing.assert_array_equal(cut, small_ensemble.data[:, :, 2:5, 0:7])
        with pytest.raises(ValueError, match="lat window"):
            small_ensemble.window(SpatialWindow(lat=(0, 1000)))


class TestFromDegrees:
    def test_latitude_box(self):
        grid = Grid(ntheta=19, nphi=36)  # 10-degree rows, +90 .. -90
        window = SpatialWindow.from_degrees(grid, lat_range=(-30, 30))
        lats = grid.latitudes[window.lat[0]:window.lat[1]]
        # Boundary rows land on the box edge up to float rounding and are
        # included (nanodegree tolerance).
        assert lats.max() == pytest.approx(30.0) and lats.min() == pytest.approx(-30.0)
        assert len(lats) == 7

    def test_longitude_box(self):
        grid = Grid(ntheta=19, nphi=36)  # 10-degree columns, 0 .. 350
        window = SpatialWindow.from_degrees(grid, lon_range=(90, 180))
        lons = grid.longitudes_deg[window.lon[0]:window.lon[1]]
        assert lons.min() >= 90.0 and lons.max() <= 180.0

    def test_empty_box_raises(self):
        grid = Grid(ntheta=19, nphi=36)
        with pytest.raises(ValueError, match="latitude"):
            SpatialWindow.from_degrees(grid, lat_range=(41.0, 42.0))
        with pytest.raises(ValueError, match="wrap"):
            SpatialWindow.from_degrees(grid, lon_range=(350, 10))


class TestSerialisation:
    def test_state_round_trip(self):
        window = SpatialWindow(lat=(1, 4), lon=(2, 9))
        assert SpatialWindow.from_state(window.state_dict()) == window
        assert SpatialWindow.from_state(SpatialWindow().state_dict()).is_full

    def test_state_is_json_able(self):
        import json

        state = SpatialWindow(lat=(0, 3)).state_dict()
        assert json.loads(json.dumps(state)) == state
