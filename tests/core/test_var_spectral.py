"""Tests of the diagonal VAR and the spectral stochastic model."""

import numpy as np
import pytest

from repro.core.spectral_model import SpectralStochasticModel
from repro.core.var import DiagonalVAR


class TestDiagonalVAR:
    def _simulate_ar(self, rng, phi, n_times=600, n_comp=4):
        series = np.zeros((n_times, n_comp))
        for t in range(1, n_times):
            series[t] = phi * series[t - 1] + rng.standard_normal(n_comp)
        return series

    def test_recovers_ar1_coefficients(self, rng):
        phi = np.array([0.8, 0.3, -0.5, 0.0])
        series = self._simulate_ar(rng, phi)
        var = DiagonalVAR(order=1).fit(series)
        assert np.max(np.abs(var.coefficients[0] - phi)) < 0.1

    def test_innovations_are_whitened(self, rng):
        phi = np.array([0.9, 0.7])
        series = self._simulate_ar(rng, phi, n_comp=2)
        var = DiagonalVAR(order=1).fit(series)
        innov = var.innovations(series)
        assert innov.shape == (series.shape[0] - 1, 2)
        lag1 = np.corrcoef(innov[1:, 0], innov[:-1, 0])[0, 1]
        assert abs(lag1) < 0.1

    def test_simulate_then_innovate_roundtrip(self, rng):
        var = DiagonalVAR(order=2)
        series = rng.standard_normal((2, 60, 5))
        var.fit(series)
        innov = rng.standard_normal((40, 5))
        simulated = var.simulate(innov)
        recovered = var.innovations(simulated)
        # Innovations after the warm-up window must match what we fed in.
        assert np.allclose(recovered[5:], innov[2 + 5:], atol=1e-10)

    def test_order_zero_passthrough(self, rng):
        var = DiagonalVAR(order=0).fit(rng.standard_normal((30, 3)))
        series = rng.standard_normal((10, 3))
        assert np.allclose(var.innovations(series), series)
        assert np.allclose(var.simulate(series), series)

    def test_ensemble_pooling(self, rng):
        phi = np.array([0.6, -0.2, 0.4])
        members = np.stack([self._simulate_ar(rng, phi, 300, 3) for _ in range(3)])
        var = DiagonalVAR(order=1).fit(members)
        assert np.max(np.abs(var.coefficients[0] - phi)) < 0.12

    def test_spectral_radius_stationary(self, rng):
        phi = np.array([0.5, 0.9])
        series = self._simulate_ar(rng, phi, 500, 2)
        var = DiagonalVAR(order=1).fit(series)
        radii = var.spectral_radius()
        assert np.all(radii < 1.0)

    def test_errors(self, rng):
        with pytest.raises(RuntimeError):
            DiagonalVAR(order=1).innovations(rng.standard_normal((10, 2)))
        with pytest.raises(ValueError):
            DiagonalVAR(order=5).fit(rng.standard_normal((4, 2)))
        with pytest.raises(ValueError):
            DiagonalVAR(order=1).fit(rng.standard_normal((4,)))

    def test_predict_one_step(self, rng):
        var = DiagonalVAR(order=2)
        var.fit(rng.standard_normal((1, 50, 3)))
        history = rng.standard_normal((6, 3))
        pred = var.predict_one_step(history)
        assert pred.shape == (3,)


class TestSpectralStochasticModel:
    @pytest.fixture(scope="class")
    def fitted(self, request):
        small_ensemble = request.getfixturevalue("small_ensemble")
        rng = np.random.default_rng(0)
        standardized = (
            small_ensemble.data - small_ensemble.data.mean(axis=(0, 1))
        ) / small_ensemble.data.std(axis=(0, 1))
        model = SpectralStochasticModel(
            lmax=8, grid=small_ensemble.grid, var_order=1, tile_size=16,
            precision_variant="DP", covariance_jitter=1e-6,
        )
        model.fit(standardized)
        return model, standardized

    def test_spectral_series_shape(self, fitted):
        model, standardized = fitted
        series = model.spectral_series(standardized)
        assert series.shape == standardized.shape[:2] + (64,)
        assert series.dtype == np.float64

    def test_covariance_is_spd(self, fitted):
        model, _ = fitted
        eigenvalues = np.linalg.eigvalsh(model.covariance)
        assert eigenvalues.min() > 0

    def test_cholesky_reconstructs_covariance(self, fitted):
        model, _ = fitted
        l = model.cholesky.lower()
        rel = np.linalg.norm(l @ l.T - model.covariance) / np.linalg.norm(model.covariance)
        # The factorisation applies the configured relative jitter (1e-6)
        # inside the diagonal kernels, so the reconstruction is accurate to
        # that level rather than to machine precision.
        assert rel < 1e-5

    def test_nugget_nonnegative_and_small(self, fitted):
        model, standardized = fitted
        assert model.nugget_std.shape == standardized.shape[2:]
        assert np.all(model.nugget_std >= 0)
        assert model.nugget_std.mean() < 0.5

    def test_generated_fields_match_variance(self, fitted):
        model, standardized = fitted
        rng = np.random.default_rng(1)
        fields = model.generate_standardized(rng, n_realizations=2, n_times=48)
        assert fields.shape == (2, 48) + standardized.shape[2:]
        assert abs(fields.std() - standardized.std()) < 0.35

    def test_parameter_count_formula(self, fitted):
        model, _ = fitted
        k = 64
        expected = k * (k + 1) // 2 + model.var_order * k + int(np.prod(model.nugget_std.shape))
        assert model.parameter_count() == expected

    def test_unfitted_raises(self, small_ensemble):
        model = SpectralStochasticModel(lmax=8, grid=small_ensemble.grid)
        with pytest.raises(RuntimeError):
            model.sample_innovations(np.random.default_rng(), 1, 4)
        with pytest.raises(RuntimeError):
            model.parameter_count()

    def test_record_too_short_raises(self, small_ensemble):
        model = SpectralStochasticModel(lmax=8, grid=small_ensemble.grid, var_order=3)
        with pytest.raises(ValueError):
            model.fit(np.zeros((1, 3) + small_ensemble.grid.shape))
