"""Bit-exactness tests of the batched synthesis and analysis hot paths.

Three independent guarantees are pinned here:

* ``batch_size`` (the inverse-SHT working-set cap on a single shared-rng
  emulation) never changes an output bit, for any chunk layout;
* the multi-stream path (one generator per realization, stacked
  synthesis) is bit-identical to running each generator through the
  serial single-realization path — across chunk boundaries, including
  ragged final chunks;
* ``batch_size`` on the *fit* side (the forward-SHT working-set cap on
  the residual analysis) never changes a bit of the fitted state.
"""

import numpy as np
import pytest

from repro.core import ClimateEmulator, EmulatorConfig
from repro.util.compare import assert_states_bit_identical


class TestBatchSizeInvariance:
    def test_generate_standardized_stream_batch_sizes_bit_identical(
        self, fitted_emulator
    ):
        model = fitted_emulator.spectral_model
        n_real, n_times, chunk = 5, 50, 24  # ragged final chunk
        reference = None
        for batch_size in (None, 1, 2, 5, 99):
            rng = np.random.default_rng(77)
            chunks = list(model.generate_standardized_stream(
                rng, n_real, n_times, chunk, batch_size=batch_size
            ))
            stacked = np.concatenate([c for _, c in chunks], axis=1)
            assert [t for t, _ in chunks] == [0, 24, 48]
            assert stacked.shape[:2] == (n_real, n_times)
            if reference is None:
                reference = stacked
            else:
                np.testing.assert_array_equal(stacked, reference)

    def test_emulate_batch_size_bit_identical(self, fitted_emulator):
        reference = fitted_emulator.emulate(
            n_realizations=4, n_times=30, rng=np.random.default_rng(3)
        )
        for batch_size in (1, 2, 3):
            batched = fitted_emulator.emulate(
                n_realizations=4, n_times=30, rng=np.random.default_rng(3),
                batch_size=batch_size,
            )
            np.testing.assert_array_equal(batched.data, reference.data)

    def test_emulate_stream_batch_size_bit_identical(self, fitted_emulator):
        def collect(batch_size):
            stream = fitted_emulator.emulate_stream(
                n_realizations=3, n_times=40, rng=np.random.default_rng(8),
                chunk_size=16, batch_size=batch_size,
            )
            return np.concatenate([chunk.data for chunk in stream], axis=1)

        reference = collect(None)
        np.testing.assert_array_equal(collect(2), reference)

    def test_batch_size_validation(self, fitted_emulator):
        with pytest.raises(ValueError, match="batch_size"):
            fitted_emulator.emulate(n_realizations=2, batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            list(fitted_emulator.emulate_stream(n_realizations=2, batch_size=-1))


class TestMultiStream:
    def test_multi_stream_bit_identical_to_serial_streams(self, fitted_emulator):
        """Member b of the stacked stream == a serial run under rngs[b]."""
        model = fitted_emulator.spectral_model
        n_times, chunk = 50, 24
        seeds = np.random.SeedSequence(11).spawn(4)

        multi = list(model.generate_standardized_stream_multi(
            [np.random.default_rng(s) for s in seeds], n_times, chunk
        ))
        stacked = np.concatenate([c for _, c in multi], axis=1)
        assert stacked.shape[0] == len(seeds)

        for b, seed in enumerate(seeds):
            serial_chunks = list(model.generate_standardized_stream(
                np.random.default_rng(seed), 1, n_times, chunk
            ))
            serial = np.concatenate([c for _, c in serial_chunks], axis=1)[0]
            np.testing.assert_array_equal(stacked[b], serial)

    def test_generator_multi_stream_matches_serial_chunks(self, fitted_emulator):
        """Full pipeline (trend + scale restored), chunk by chunk."""
        generator = fitted_emulator.generator()
        summary = fitted_emulator.training_summary
        forcing = summary.forcing_annual
        n_times, chunk = 40, 16
        seeds = np.random.SeedSequence(23).spawn(3)

        multi = list(generator.generate_stream_multi(
            [np.random.default_rng(s) for s in seeds], n_times, forcing,
            start_year=summary.start_year, chunk_size=chunk,
        ))
        for b, seed in enumerate(seeds):
            serial = list(generator.generate_stream(
                1, n_times, forcing, rng=np.random.default_rng(seed),
                start_year=summary.start_year, chunk_size=chunk,
            ))
            assert len(serial) == len(multi)
            for serial_chunk, multi_chunk in zip(serial, multi):
                assert serial_chunk.metadata == multi_chunk.metadata
                assert serial_chunk.start_year == multi_chunk.start_year
                np.testing.assert_array_equal(
                    multi_chunk.data[b], serial_chunk.data[0]
                )

    def test_multi_stream_global_means_bit_identical(self, fitted_emulator):
        """The campaign's collected reduction is per-member bit-exact too."""
        generator = fitted_emulator.generator()
        summary = fitted_emulator.training_summary
        seeds = np.random.SeedSequence(31).spawn(3)
        multi = list(generator.generate_stream_multi(
            [np.random.default_rng(s) for s in seeds], 24,
            summary.forcing_annual, start_year=summary.start_year,
        ))
        for b, seed in enumerate(seeds):
            serial = list(generator.generate_stream(
                1, 24, summary.forcing_annual, rng=np.random.default_rng(seed),
                start_year=summary.start_year,
            ))
            for serial_chunk, multi_chunk in zip(serial, multi):
                np.testing.assert_array_equal(
                    multi_chunk.global_mean_series()[b],
                    serial_chunk.global_mean_series()[0],
                )

    def test_fit_batch_size_state_bit_identical(self, small_ensemble):
        """The tentpole contract: batch_size never changes the fitted state."""
        def fitted_state(batch_size):
            emulator = ClimateEmulator(EmulatorConfig(
                lmax=8, n_harmonics=2, var_order=1, tile_size=16,
                precision_variant="DP", rho_grid=(0.3, 0.7),
            ))
            emulator.fit(small_ensemble, batch_size=batch_size)
            return emulator.state_dict()

        reference = fitted_state(None)
        for batch_size in (1, 2, 99):
            assert_states_bit_identical(reference, fitted_state(batch_size))

    def test_facade_fit_accepts_batch_size(self, small_ensemble):
        import repro

        reference = repro.fit(small_ensemble, lmax=8, var_order=1,
                              tile_size=16, n_harmonics=2, rho_grid=(0.3, 0.7))
        batched = repro.fit(small_ensemble, lmax=8, var_order=1,
                            tile_size=16, n_harmonics=2, rho_grid=(0.3, 0.7),
                            batch_size=1)
        assert_states_bit_identical(reference.state_dict(), batched.state_dict())

    def test_spectral_series_batch_sizes_bit_identical(self, fitted_emulator, rng):
        model = fitted_emulator.spectral_model
        standardized = rng.standard_normal(
            (5, 6) + fitted_emulator.training_summary.grid.shape
        )
        reference = model.spectral_series(standardized)
        for batch_size in (1, 2, 5, 99):
            np.testing.assert_array_equal(
                model.spectral_series(standardized, batch_size), reference
            )

    def test_truncation_residual_batch_sizes_bit_identical(
        self, fitted_emulator, rng
    ):
        model = fitted_emulator.spectral_model
        standardized = rng.standard_normal(
            (4, 5) + fitted_emulator.training_summary.grid.shape
        )
        spectral = model.spectral_series(standardized)
        reference = model.truncation_residual(standardized, spectral)
        for batch_size in (1, 3, 99):
            np.testing.assert_array_equal(
                model.truncation_residual(standardized, spectral, batch_size),
                reference,
            )

    def test_fit_batch_size_validation(self, small_ensemble, fitted_emulator):
        emulator = ClimateEmulator(EmulatorConfig(
            lmax=8, n_harmonics=2, var_order=1, tile_size=16,
            rho_grid=(0.3, 0.7),
        ))
        with pytest.raises(ValueError, match="batch_size"):
            emulator.fit(small_ensemble, batch_size=0)
        from repro.core.spectral_model import SpectralStochasticModel

        model = SpectralStochasticModel(
            lmax=8, grid=small_ensemble.grid, var_order=1, tile_size=16,
        )
        with pytest.raises(ValueError, match="batch_size"):
            model.spectral_series(small_ensemble.data, batch_size=-1)
        with pytest.raises(ValueError, match="batch_size"):
            model.fit(small_ensemble.data, batch_size=0)

    def test_multi_stream_validation(self, fitted_emulator):
        model = fitted_emulator.spectral_model
        with pytest.raises(ValueError, match="at least one generator"):
            list(model.generate_standardized_stream_multi([], 10, 5))
        generator = fitted_emulator.generator()
        with pytest.raises(ValueError, match="at least one generator"):
            generator.generate_stream_multi(
                [], 10, fitted_emulator.training_summary.forcing_annual
            )
        with pytest.raises(ValueError, match="forcing covers"):
            generator.generate_stream_multi(
                [np.random.default_rng(0)], 10_000,
                fitted_emulator.training_summary.forcing_annual,
            )
