"""Tests of the mean-trend model and the scale field."""

import numpy as np
import pytest

from repro.core.scale import ScaleField
from repro.core.trend import MeanTrendModel, distributed_lag_series
from repro.data.forcing import historical_forcing


class TestDistributedLag:
    def test_recursion_matches_direct_sum(self):
        x = historical_forcing(20)
        rho = 0.6
        d = distributed_lag_series(x, rho)
        # Direct evaluation of (1-rho) sum_{s>=1} rho^{s-1} x_{y-s} with the
        # pre-record history pinned at x[0].
        for y in range(20):
            total = 0.0
            for s in range(1, 200):
                xs = x[y - s] if y - s >= 0 else x[0]
                total += (1 - rho) * rho ** (s - 1) * xs
            assert d[y] == pytest.approx(total, rel=1e-10)

    def test_rho_zero_is_previous_year(self):
        x = np.array([1.0, 5.0, 2.0, 7.0])
        d = distributed_lag_series(x, 0.0)
        assert np.allclose(d[1:], x[:-1])

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            distributed_lag_series(np.ones(3), 1.0)


class TestMeanTrendModel:
    def _synthetic(self, rng, n_space=30, n_years=6, steps=12):
        """Per-location synthetic data with known coefficients."""
        forcing = historical_forcing(n_years)
        model = MeanTrendModel(steps_per_year=steps, n_harmonics=1,
                               rho_grid=(0.5,), use_distributed_lag=False)
        design = model.design_matrix(n_years * steps, forcing, 0.5)
        true_coeffs = rng.standard_normal((design.shape[1], n_space)) * np.array(
            [[10.0], [0.5], [3.0], [3.0]]
        )
        clean = design @ true_coeffs
        data = clean + 0.01 * rng.standard_normal(clean.shape)
        return data.reshape(1, n_years * steps, 5, 6), forcing, true_coeffs, model

    def test_recovers_known_coefficients(self, rng):
        data, forcing, true_coeffs, model = self._synthetic(rng)
        fit = model.fit(data, forcing)
        recovered = fit.coefficients.reshape(-1, true_coeffs.shape[0]).T
        assert np.max(np.abs(recovered - true_coeffs)) < 0.05

    def test_predict_reproduces_fitted_mean(self, rng):
        data, forcing, _, model = self._synthetic(rng)
        fit = model.fit(data, forcing)
        mean = model.predict(data.shape[1], forcing, fit)
        resid = data[0] - mean
        assert np.sqrt(np.mean(resid ** 2)) < 0.05

    def test_residuals_shape(self, small_ensemble):
        model = MeanTrendModel(steps_per_year=small_ensemble.steps_per_year, n_harmonics=2)
        model.fit(small_ensemble.data, small_ensemble.forcing_annual)
        resid = model.residuals(small_ensemble.data, small_ensemble.forcing_annual)
        assert resid.shape == small_ensemble.data.shape
        # Removing the trend must reduce variance substantially (the seasonal
        # cycle dominates raw variance).
        assert resid.std() < 0.6 * small_ensemble.data.std()

    def test_rho_profile_selects_per_location_values(self, small_ensemble):
        model = MeanTrendModel(
            steps_per_year=small_ensemble.steps_per_year,
            n_harmonics=1,
            rho_grid=(0.2, 0.8),
        )
        fit = model.fit(small_ensemble.data, small_ensemble.forcing_annual)
        assert set(np.unique(fit.rho)).issubset({0.2, 0.8})

    def test_harmonic_amplitude_accessor(self, small_ensemble):
        model = MeanTrendModel(steps_per_year=24, n_harmonics=2)
        fit = model.fit(small_ensemble.data, small_ensemble.forcing_annual)
        amp = fit.harmonic_amplitude(1)
        assert amp.shape == small_ensemble.grid.shape
        assert np.all(amp >= 0)
        with pytest.raises(ValueError):
            fit.harmonic_amplitude(9)

    def test_forcing_too_short_raises(self, small_ensemble):
        model = MeanTrendModel(steps_per_year=24)
        with pytest.raises(ValueError):
            model.fit(small_ensemble.data, small_ensemble.forcing_annual[:1])

    def test_predict_before_fit_raises(self):
        model = MeanTrendModel(steps_per_year=12)
        with pytest.raises(RuntimeError):
            model.predict(10, np.ones(2))

    def test_seasonal_amplitude_recovery_against_generator(self, small_ensemble):
        """The fitted annual-harmonic amplitude tracks the generator's field."""
        from repro.data import Era5LikeConfig, Era5LikeGenerator

        gen = Era5LikeGenerator(Era5LikeConfig(lmax=8, n_years=3, steps_per_year=24, n_ensemble=2), seed=42)
        model = MeanTrendModel(steps_per_year=24, n_harmonics=2, rho_grid=(0.5,))
        fit = model.fit(small_ensemble.data, small_ensemble.forcing_annual)
        truth = np.abs(gen.seasonal_amplitude())
        fitted = fit.harmonic_amplitude(1)
        mask = truth > 2.0
        rel_err = np.abs(fitted[mask] - truth[mask]) / truth[mask]
        assert np.median(rel_err) < 0.35


class TestScaleField:
    def test_from_residuals_matches_numpy(self, rng):
        resid = rng.standard_normal((2, 50, 4, 5)) * 3.0
        scale = ScaleField.from_residuals(resid)
        assert scale.shape == (4, 5)
        assert np.allclose(scale.sigma, resid.std(axis=(0, 1), ddof=1))

    def test_standardize_roundtrip(self, rng):
        resid = rng.standard_normal((1, 30, 3, 4)) * 2.0
        scale = ScaleField.from_residuals(resid)
        z = scale.standardize(resid)
        assert np.allclose(scale.unstandardize(z), resid)
        assert abs(z.std() - 1.0) < 0.1

    def test_floor_prevents_division_blowup(self):
        scale = ScaleField(sigma=np.zeros((2, 2)), floor=1e-6)
        assert np.all(scale.sigma == 1e-6)

    def test_summary(self, rng):
        scale = ScaleField.from_residuals(rng.standard_normal((1, 40, 3, 3)))
        summary = scale.summary()
        assert summary["min"] <= summary["mean"] <= summary["max"]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ScaleField.from_residuals(np.zeros((3, 4)))
