"""Tests of the end-to-end emulator, the generator, config and complexity model."""

import numpy as np
import pytest

from repro.core import ClimateEmulator, EmulatorConfig
from repro.core.complexity import (
    EXISTING_EMULATORS,
    THIS_WORK,
    anisotropic_cost,
    axisymmetric_cost,
    cost_landscape,
    resolution_factor,
)
from repro.data.forcing import scenario_forcing
from repro.stats import consistency_report


class TestEmulatorConfig:
    def test_defaults_valid(self):
        cfg = EmulatorConfig()
        assert cfg.n_coeffs == cfg.lmax ** 2
        assert cfg.trend_design_size() == 3 + 2 * cfg.n_harmonics

    def test_validation(self):
        with pytest.raises(ValueError):
            EmulatorConfig(lmax=0)
        with pytest.raises(ValueError):
            EmulatorConfig(var_order=-1)
        with pytest.raises(ValueError):
            EmulatorConfig(rho_grid=(1.5,))
        with pytest.raises(ValueError):
            EmulatorConfig(tile_size=0)

    def test_describe(self):
        desc = EmulatorConfig(lmax=4).describe()
        assert desc["lmax"] == 4 and desc["n_coeffs"] == 16


class TestClimateEmulatorFit:
    def test_fit_and_flags(self, fitted_emulator):
        assert fitted_emulator.is_fitted
        desc = fitted_emulator.describe()
        assert desc["fitted"] is True
        assert desc["cholesky_variant"] == "DP"

    def test_unfitted_operations_raise(self):
        emulator = ClimateEmulator(EmulatorConfig(lmax=4))
        assert not emulator.is_fitted
        with pytest.raises(RuntimeError):
            emulator.emulate()
        with pytest.raises(RuntimeError):
            emulator.parameter_count()

    def test_grid_too_small_rejected(self, small_ensemble):
        emulator = ClimateEmulator(EmulatorConfig(lmax=64))
        with pytest.raises(ValueError):
            emulator.fit(small_ensemble)

    def test_parameter_and_storage_accounting(self, fitted_emulator, small_ensemble):
        params = fitted_emulator.parameter_count()
        assert params > 0
        summary = fitted_emulator.storage_summary()
        assert summary["parameter_bytes"] == params * 8
        assert summary["raw_bytes_float32"] == small_ensemble.n_data_points * 4
        assert summary["compression_factor"] > 1.0


class TestEmulation:
    def test_emulation_shapes_and_defaults(self, fitted_emulator, small_ensemble):
        out = fitted_emulator.emulate(n_realizations=2, rng=np.random.default_rng(0))
        assert out.data.shape == (2, small_ensemble.n_times) + small_ensemble.grid.shape
        assert out.metadata["source"] == "emulator"
        assert out.steps_per_year == small_ensemble.steps_per_year

    def test_statistical_consistency_with_training(self, fitted_emulator, small_ensemble):
        out = fitted_emulator.emulate(n_realizations=2, rng=np.random.default_rng(7))
        report = consistency_report(small_ensemble, out, lmax=8)
        assert abs(report.global_mean_diff_k) < 1.0
        assert abs(report.global_std_ratio - 1.0) < 0.2
        assert report.ks_distance < 0.15
        assert report.is_consistent()

    def test_emulations_differ_across_realizations(self, fitted_emulator):
        out = fitted_emulator.emulate(n_realizations=2, rng=np.random.default_rng(1))
        assert not np.allclose(out.data[0], out.data[1])

    def test_custom_length_and_scenario_forcing(self, fitted_emulator):
        forcing = scenario_forcing("high-emissions", 5)
        out = fitted_emulator.emulate(
            n_realizations=1, n_times=36, annual_forcing=forcing,
            rng=np.random.default_rng(2),
        )
        assert out.n_times == 36
        assert np.array_equal(out.forcing_annual, forcing)

    def test_scenario_forcing_changes_mean_level(self, fitted_emulator):
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        low = fitted_emulator.emulate(1, n_times=48, annual_forcing=np.full(2, 0.0), rng=rng1)
        high = fitted_emulator.emulate(1, n_times=48, annual_forcing=np.full(2, 8.0), rng=rng2)
        assert high.data.mean() > low.data.mean() + 0.5

    def test_nugget_toggle(self, fitted_emulator):
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        with_nugget = fitted_emulator.emulate(1, rng=rng1, include_nugget=True)
        without = fitted_emulator.emulate(1, rng=rng2, include_nugget=False)
        assert with_nugget.data.std() >= without.data.std()

    def test_generator_argument_validation(self, fitted_emulator):
        generator = fitted_emulator.generator()
        with pytest.raises(ValueError):
            generator.generate(0, 10, np.ones(1))


class TestMixedPrecisionEmulator:
    @pytest.mark.parametrize("variant", ["DP/SP", "DP/HP"])
    def test_reduced_precision_fit_remains_consistent(self, small_ensemble, variant):
        emulator = ClimateEmulator(
            EmulatorConfig(lmax=8, n_harmonics=2, var_order=1, tile_size=16,
                           precision_variant=variant, covariance_jitter=1e-4,
                           rho_grid=(0.5,))
        )
        emulator.fit(small_ensemble)
        out = emulator.emulate(n_realizations=1, rng=np.random.default_rng(0))
        report = consistency_report(small_ensemble, out, lmax=8)
        assert report.is_consistent(mean_tol_k=1.5, std_ratio_tol=0.3, ks_tol=0.2)


class TestComplexityModel:
    def test_anisotropic_costs_more(self):
        assert anisotropic_cost(100, 1000) > axisymmetric_cost(100, 1000)

    def test_cost_landscape_monotone_in_resolution(self):
        landscape = cost_landscape([400.0, 100.0, 25.0, 3.5])
        assert np.all(np.diff(landscape["anisotropic_flops"]) > 0)
        assert np.all(np.diff(landscape["bandlimit"]) > 0)

    def test_this_work_resolution_factor(self):
        factors = resolution_factor()
        assert factors["spatial_factor"] == pytest.approx(28.6, rel=0.05)
        assert factors["temporal_factor"] == pytest.approx(8760.0)
        assert factors["combined_factor"] == pytest.approx(245_280, rel=0.1)

    def test_this_work_dominates_existing_designs(self):
        assert THIS_WORK.cost() > max(p.cost() for p in EXISTING_EMULATORS)
        assert THIS_WORK.bandlimit > max(p.bandlimit for p in EXISTING_EMULATORS)

    def test_existing_catalogue_is_plausible(self):
        for point in EXISTING_EMULATORS:
            assert point.spatial_resolution_km >= 100.0
            assert point.temporal_points_per_year <= 365.0
