"""Tests of the statistical-consistency diagnostics."""

import numpy as np
import pytest

from repro.data.ensemble import ClimateEnsemble
from repro.sht.grid import Grid
from repro.stats import (
    consistency_report,
    field_moments,
    global_mean_series,
    ks_distance,
    pointwise_moment_fields,
    quantile_table,
    temporal_autocorrelation,
)


class TestMoments:
    def test_field_moments_unweighted(self, rng):
        data = rng.standard_normal((2, 10, 6, 8)) * 2.0 + 5.0
        stats = field_moments(data)
        assert stats["mean"] == pytest.approx(5.0, abs=0.2)
        assert stats["std"] == pytest.approx(2.0, abs=0.2)
        assert stats["min"] < stats["mean"] < stats["max"]

    def test_field_moments_area_weighted_ignores_polar_rows(self):
        grid = Grid(ntheta=19, nphi=36)
        data = np.ones((1, 1) + grid.shape)
        data[0, 0, 0, :] = 100.0  # the north-pole row has near-zero area
        weighted = field_moments(data, grid)["mean"]
        unweighted = field_moments(data)["mean"]
        assert weighted < unweighted

    def test_pointwise_fields(self, rng):
        data = rng.standard_normal((3, 20, 4, 5))
        fields = pointwise_moment_fields(data)
        assert fields["mean"].shape == (4, 5)
        assert np.all(fields["std"] > 0)

    def test_global_mean_series_shape(self, small_ensemble):
        series = global_mean_series(small_ensemble.data, small_ensemble.grid)
        assert series.shape == (2, 72)

    def test_autocorrelation_of_ar1_process(self, rng):
        phi = 0.8
        n = 2000
        series = np.zeros(n)
        for t in range(1, n):
            series[t] = phi * series[t - 1] + rng.standard_normal()
        acf = temporal_autocorrelation(series, max_lag=3)
        assert acf[0] == pytest.approx(phi, abs=0.1)
        assert acf[2] == pytest.approx(phi ** 3, abs=0.15)


class TestDistributions:
    def test_quantiles_of_uniform(self, rng):
        sample = rng.uniform(size=200_000)
        table = quantile_table(sample, quantiles=(0.25, 0.5, 0.75))
        assert table[0.5] == pytest.approx(0.5, abs=0.01)
        assert table[0.25] == pytest.approx(0.25, abs=0.01)

    def test_ks_distance_identical_and_shifted(self, rng):
        a = rng.standard_normal(50_000)
        b = rng.standard_normal(50_000)
        assert ks_distance(a, a) == pytest.approx(0.0, abs=1e-12)
        assert ks_distance(a, b) < 0.02
        assert ks_distance(a, b + 2.0) > 0.5

    def test_ks_distance_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance(np.array([]), np.array([1.0]))


class TestConsistencyReport:
    def _ensemble_like(self, ensemble, data):
        return ClimateEnsemble(
            data=data,
            grid=ensemble.grid,
            forcing_annual=ensemble.forcing_annual,
            steps_per_year=ensemble.steps_per_year,
        )

    def test_self_consistency(self, small_ensemble):
        report = consistency_report(small_ensemble, small_ensemble, lmax=6)
        assert report.global_mean_diff_k == pytest.approx(0.0)
        assert report.global_std_ratio == pytest.approx(1.0)
        assert report.ks_distance == pytest.approx(0.0, abs=1e-12)
        assert report.is_consistent()

    def test_detects_mean_shift(self, small_ensemble):
        shifted = self._ensemble_like(small_ensemble, small_ensemble.data + 5.0)
        report = consistency_report(small_ensemble, shifted, lmax=6)
        assert report.global_mean_diff_k == pytest.approx(5.0, abs=0.01)
        assert not report.is_consistent()

    def test_detects_variance_inflation(self, small_ensemble):
        mean = small_ensemble.data.mean()
        inflated = self._ensemble_like(small_ensemble, mean + 2.0 * (small_ensemble.data - mean))
        report = consistency_report(small_ensemble, inflated, lmax=6)
        assert report.global_std_ratio == pytest.approx(2.0, abs=0.05)
        assert not report.is_consistent()

    def test_grid_mismatch_rejected(self, small_ensemble):
        other_grid = Grid(ntheta=6, nphi=10)
        other = ClimateEnsemble(
            data=np.zeros((1, 12) + other_grid.shape),
            grid=other_grid,
            forcing_annual=np.zeros(1),
            steps_per_year=12,
        )
        with pytest.raises(ValueError):
            consistency_report(small_ensemble, other)

    def test_as_dict_round_trip(self, small_ensemble):
        report = consistency_report(small_ensemble, small_ensemble, lmax=6)
        d = report.as_dict()
        assert set(d) == {
            "global_mean_diff_k", "global_std_ratio", "pointwise_mean_rmse_k",
            "pointwise_std_rmse_k", "ks_distance", "autocorrelation_diff",
            "spectral_distance",
        }
