"""End-to-end integration tests across subsystems.

These exercise the full pipeline of the paper's Fig. 3 — synthetic
simulation ensemble -> emulator fit (trend, scale, SHT, VAR, covariance,
mixed-precision Cholesky) -> emulation -> consistency diagnostics -> storage
accounting -> performance projection — in one place, at a slightly larger
configuration than the unit fixtures.
"""

import numpy as np
import pytest

from repro.core import ClimateEmulator, EmulatorConfig
from repro.data import Era5LikeConfig, Era5LikeGenerator
from repro.data.forcing import scenario_forcing
from repro.linalg import MixedPrecisionCholesky
from repro.runtime import LocalExecutor, build_task_graph
from repro.stats import consistency_report
from repro.storage import StorageScenario, savings_report
from repro.systems import SUMMIT, CholeskyPerformanceModel


@pytest.fixture(scope="module")
def pipeline():
    """A full fit/emulate cycle at lmax=10 with the DP/SP variant."""
    sims = Era5LikeGenerator(
        Era5LikeConfig(lmax=10, n_years=4, steps_per_year=24, n_ensemble=2,
                       forcing_growth=1.0),
        seed=11,
    ).generate()
    emulator = ClimateEmulator(
        EmulatorConfig(
            lmax=10, n_harmonics=2, var_order=2, tile_size=25,
            precision_variant="DP/SP", rho_grid=(0.3, 0.7),
        )
    )
    emulator.fit(sims)
    emulations = emulator.emulate(n_realizations=3, rng=np.random.default_rng(5))
    return sims, emulator, emulations


class TestFullPipeline:
    def test_emulations_consistent_with_simulations(self, pipeline):
        sims, _, emulations = pipeline
        report = consistency_report(sims, emulations, lmax=10)
        assert report.is_consistent()
        assert report.pointwise_mean_rmse_k < 2.0
        assert report.spectral_distance < 1.0

    def test_seasonal_cycle_reproduced(self, pipeline):
        """Monthly climatology of the emulation tracks the simulation."""
        sims, _, emulations = pipeline
        steps = sims.steps_per_year
        sim_cycle = sims.data.reshape(2, -1, steps, *sims.grid.shape).mean(axis=(0, 1))
        emu_cycle = emulations.data.reshape(3, -1, steps, *sims.grid.shape).mean(axis=(0, 1))
        # Compare the phase/amplitude of the cycle at a mid-latitude row.
        row = sims.grid.ntheta // 4
        corr = np.corrcoef(sim_cycle[:, row, :].mean(axis=1), emu_cycle[:, row, :].mean(axis=1))[0, 1]
        assert corr > 0.9

    def test_spatial_variance_structure_reproduced(self, pipeline):
        sims, _, emulations = pipeline
        sim_std = sims.data.std(axis=(0, 1))
        emu_std = emulations.data.std(axis=(0, 1))
        corr = np.corrcoef(sim_std.ravel(), emu_std.ravel())[0, 1]
        assert corr > 0.8

    def test_more_ensemble_members_free_of_recomputation(self, pipeline):
        _, emulator, _ = pipeline
        extra = emulator.emulate(n_realizations=1, n_times=12, rng=np.random.default_rng(9))
        assert extra.data.shape[0] == 1 and extra.n_times == 12

    def test_scenario_projection(self, pipeline):
        """A strongly forced scenario warms relative to a zero-forcing run.

        The same seed is used for both runs so the stochastic component
        cancels and only the forced response differs.
        """
        _, emulator, _ = pipeline
        strong = scenario_forcing("high-emissions", 4) + 6.0
        projection = emulator.emulate(1, annual_forcing=strong, rng=np.random.default_rng(2))
        baseline = emulator.emulate(1, annual_forcing=np.zeros(4), rng=np.random.default_rng(2))
        assert projection.data.mean() > baseline.data.mean()

    def test_storage_summary_scales_to_paper_settings(self, pipeline):
        _, emulator, _ = pipeline
        summary = emulator.storage_summary()
        assert summary["compression_factor"] > 1.0
        # The same accounting for a CMIP-style multi-variable, multi-member
        # archive at the paper's grid saves petabytes.
        from repro.sht.grid import Grid

        paper = savings_report(
            StorageScenario(
                "CMIP-style archive", Grid.era5(), 35, 8760,
                n_ensemble=10, n_variables=100,
            ),
            lmax=720,
        )
        assert paper["saved_petabytes"] > 0.5


class TestCovarianceSolverIntegration:
    def test_emulator_covariance_through_all_precision_variants(self, pipeline):
        """Factorising the fitted covariance with every variant stays accurate."""
        _, emulator, _ = pipeline
        cov = emulator.spectral_model.covariance
        reference = MixedPrecisionCholesky(tile_size=25, variant="DP").factorize(cov)
        for variant, tol in (("DP/SP", 1e-4), ("DP/SP/HP", 0.1), ("DP/HP", 0.1)):
            result = MixedPrecisionCholesky(tile_size=25, variant=variant, jitter=1e-6).factorize(cov)
            assert result.factor_error(reference.lower()) < tol

    def test_runtime_execution_of_emulator_cholesky(self, pipeline):
        """The covariance factorisation DAG executes through the runtime."""
        from repro.linalg import TiledSymmetricMatrix, generate_cholesky_tasks

        _, emulator, _ = pipeline
        cov = emulator.spectral_model.covariance
        tiled = TiledSymmetricMatrix.from_dense(cov, 25, "DP/HP")
        tasks = generate_cholesky_tasks(tiled)
        graph = build_task_graph(tasks)
        trace = LocalExecutor().run(graph, tiled.as_tile_store())
        assert trace.order == [t.name for t in graph.topological_order()]
        assert len(trace.order) == len(tasks)
        assert graph.max_parallelism() >= 1

    def test_performance_model_for_paper_scale_covariance(self):
        """L = 5219 gives a ~27.2M-order covariance, the paper's largest run."""
        lmax = 5219
        matrix_size = lmax * lmax
        assert matrix_size == pytest.approx(27_240_000, rel=0.01)
        estimate = CholeskyPerformanceModel(SUMMIT).estimate(matrix_size, 3072, "DP/HP")
        assert estimate.pflops > 100.0
