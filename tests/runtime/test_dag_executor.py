"""Tests of task descriptions, dependency analysis and the local executor."""

import numpy as np
import pytest

from repro.runtime import LocalExecutor, Task, TileStore, build_task_graph


def _write_task(name, key, value, reads=()):
    def kernel(store):
        total = float(value)
        for ref in reads:
            total += float(np.sum(store[ref]))
        store[key] = np.full((2, 2), total)

    return Task(
        name=name,
        kind="WRITE",
        reads=tuple(reads),
        writes=(key,),
        flops=4.0,
        func=kernel,
    )


class TestTask:
    def test_accesses_and_repr(self):
        t = Task(name="t", kind="K", reads=(("a", 0, 0),), writes=(("b", 0, 0),), flops=1.0)
        assert t.accesses == (("a", 0, 0), ("b", 0, 0))
        assert "t" in repr(t)

    def test_execute_without_kernel_is_noop(self):
        t = Task(name="t", kind="K", reads=(), writes=(), flops=0.0)
        t.execute(TileStore())  # must not raise


class TestTaskGraph:
    def test_raw_dependencies(self):
        tasks = [
            _write_task("a", ("x",), 1.0),
            _write_task("b", ("y",), 2.0, reads=[("x",)]),
            _write_task("c", ("z",), 3.0, reads=[("x",), ("y",)]),
        ]
        graph = build_task_graph(tasks)
        assert graph.n_tasks == 3
        assert graph.graph.has_edge("a", "b")
        assert graph.graph.has_edge("b", "c")
        assert graph.graph.has_edge("a", "c")

    def test_write_after_read_ordering(self):
        tasks = [
            _write_task("producer", ("x",), 1.0),
            _write_task("reader", ("y",), 0.0, reads=[("x",)]),
            _write_task("overwriter", ("x",), 5.0),
        ]
        graph = build_task_graph(tasks)
        assert graph.graph.has_edge("reader", "overwriter")

    def test_duplicate_names_rejected(self):
        tasks = [_write_task("a", ("x",), 1.0), _write_task("a", ("y",), 1.0)]
        with pytest.raises(ValueError):
            build_task_graph(tasks)

    def test_critical_path_and_parallelism(self):
        tasks = [
            _write_task("a", ("x",), 1.0),
            _write_task("b", ("y",), 1.0),
            _write_task("c", ("z",), 1.0, reads=[("x",), ("y",)]),
        ]
        graph = build_task_graph(tasks)
        length, path = graph.critical_path(cost=lambda t: 1.0)
        assert length == 2.0
        assert path[-1] == "c"
        assert graph.parallelism_profile() == [2, 1]
        assert graph.max_parallelism() == 2
        assert graph.average_parallelism(cost=lambda t: 1.0) == pytest.approx(1.5)

    def test_flop_accounting(self):
        tasks = [_write_task("a", ("x",), 1.0), _write_task("b", ("y",), 1.0)]
        graph = build_task_graph(tasks)
        assert graph.total_flops() == 8.0
        assert graph.flops_by_kind() == {"WRITE": 8.0}
        assert graph.counts_by_kind() == {"WRITE": 2}
        assert graph.flops_by_precision() == {"fp64": 8.0}

    def test_empty_graph(self):
        graph = build_task_graph([])
        assert graph.critical_path() == (0.0, [])
        assert graph.max_parallelism() == 0


class TestLocalExecutor:
    def test_executes_in_dependency_order(self):
        tasks = [
            _write_task("a", ("x",), 1.0),
            _write_task("b", ("y",), 2.0, reads=[("x",)]),
            _write_task("c", ("z",), 0.0, reads=[("y",)]),
        ]
        store = TileStore()
        trace = LocalExecutor().run(tasks, store)
        assert trace.order.index("a") < trace.order.index("b") < trace.order.index("c")
        # a writes 1 everywhere; b adds sum(x)=4 -> 6; c adds sum(y)=24 -> 24
        assert np.allclose(store[("z",)], 24.0)
        assert trace.flops == 12.0
        assert trace.tasks_by_kind["WRITE"] == 3

    def test_store_accounting(self):
        store = TileStore()
        store[("a",)] = np.zeros((4, 4), dtype=np.float64)
        store[("b",)] = np.zeros((4, 4), dtype=np.float16)
        assert store.total_bytes() == 128 + 32
        assert store.dtype_histogram() == {"float64": 1, "float16": 1}
