"""Tests of the list schedulers and the discrete-event simulator."""

import numpy as np
import pytest

from repro.linalg import MixedPrecisionCholesky, TiledSymmetricMatrix, generate_cholesky_tasks
from repro.runtime import DistributedSimulator, ListScheduler, SchedulePolicy, Task
from repro.runtime.scheduler import block_cyclic_owner
from repro.systems import SUMMIT


def _dummy_task(name, writes, reads=()):
    return Task(name=name, kind="X", reads=tuple(reads), writes=tuple(writes), flops=1e9)


class TestScheduler:
    def test_owner_policy_uses_block_cyclic(self):
        owner = block_cyclic_owner(2, 2)
        sched = ListScheduler(policy=SchedulePolicy.OWNER, owner_of=owner)
        t = _dummy_task("t", writes=[("A", 3, 1)])
        assert sched.select_worker(t, [0.0] * 4) == owner(("A", 3, 1))

    def test_earliest_policy_balances(self):
        sched = ListScheduler(policy=SchedulePolicy.EARLIEST)
        t = _dummy_task("t", writes=[("A", 0, 0)])
        assert sched.select_worker(t, [5.0, 1.0, 3.0]) == 1

    def test_locality_policy_prefers_input_owner(self):
        owner = block_cyclic_owner(2, 1)
        sched = ListScheduler(policy=SchedulePolicy.LOCALITY, owner_of=owner,
                              tile_bytes=lambda ref: 100.0 if ref[1] == 1 else 1.0)
        t = _dummy_task("t", writes=[("A", 0, 0)], reads=[("A", 1, 0)])
        assert sched.select_worker(t, [0.0, 0.0]) == owner(("A", 1, 0))

    def test_priority_ordering(self):
        high = Task(name="h", kind="X", reads=(), writes=(), flops=1.0, priority=10)
        low = Task(name="l", kind="X", reads=(), writes=(), flops=1.0, priority=1)
        assert ListScheduler.order_ready([low, high])[0] is high

    def test_no_workers_rejected(self):
        sched = ListScheduler()
        with pytest.raises(ValueError):
            sched.select_worker(_dummy_task("t", writes=[("A", 0, 0)]), [])


class TestDistributedSimulator:
    def _cholesky_graph(self, spd_matrix, variant="DP"):
        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 8, variant)
        tasks = generate_cholesky_tasks(tiled)
        return tasks, tiled.tile_bytes_map()

    def test_report_basics(self, spd_matrix):
        tasks, tile_bytes = self._cholesky_graph(spd_matrix)
        sim = DistributedSimulator(SUMMIT.subset(1), workers=4)
        report = sim.run(tasks, tile_bytes)
        assert report.makespan_s > 0
        assert report.n_tasks == len(tasks)
        assert report.achieved_gflops > 0
        assert len(report.worker_busy_s) == 4
        assert 0 < report.average_utilisation <= 1.0
        assert report.memory_high_water_bytes

    def test_more_workers_never_slower(self, spd_matrix):
        tasks, tile_bytes = self._cholesky_graph(spd_matrix)
        t1 = DistributedSimulator(SUMMIT.subset(1), workers=1).run(tasks, tile_bytes)
        t8 = DistributedSimulator(SUMMIT.subset(2), workers=8).run(tasks, tile_bytes)
        assert t8.makespan_s <= t1.makespan_s * 1.001

    def test_lower_precision_variant_is_faster(self, spd_matrix):
        dp_tasks, bytes_dp = self._cholesky_graph(spd_matrix, "DP")
        hp_tasks, bytes_hp = self._cholesky_graph(spd_matrix, "DP/HP")
        sim = DistributedSimulator(SUMMIT.subset(1), workers=2, task_overhead_us=0.0)
        t_dp = sim.run(dp_tasks, bytes_dp)
        t_hp = sim.run(hp_tasks, bytes_hp)
        assert t_hp.makespan_s < t_dp.makespan_s

    def test_efficiency_vs_reference(self, spd_matrix):
        tasks, tile_bytes = self._cholesky_graph(spd_matrix)
        base = DistributedSimulator(SUMMIT.subset(1), workers=2).run(tasks, tile_bytes)
        wide = DistributedSimulator(SUMMIT.subset(4), workers=24).run(tasks, tile_bytes)
        eff = wide.efficiency_vs(base)
        assert 0 < eff <= 1.5

    def test_owner_scheduler_in_simulation(self, spd_matrix):
        tasks, tile_bytes = self._cholesky_graph(spd_matrix)
        owner = block_cyclic_owner(2, 2)
        sched = ListScheduler(policy=SchedulePolicy.OWNER, owner_of=owner)
        sim = DistributedSimulator(SUMMIT.subset(1), workers=4, scheduler=sched)
        report = sim.run(tasks, tile_bytes)
        assert report.comm_bytes > 0
        assert report.makespan_s > 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            DistributedSimulator(SUMMIT.subset(1), workers=0)

    def test_simulated_and_executed_flops_agree(self, spd_matrix):
        """The simulator and the executor account the same total work."""
        from repro.runtime import LocalExecutor, build_task_graph

        tiled = TiledSymmetricMatrix.from_dense(spd_matrix, 8, "DP")
        tasks = generate_cholesky_tasks(tiled)
        graph = build_task_graph(tasks)
        trace = LocalExecutor().run(graph, tiled.as_tile_store())
        report = DistributedSimulator(SUMMIT.subset(1), workers=2).run(graph, tiled.tile_bytes_map())
        assert trace.flops == pytest.approx(report.total_flops)
