"""Tests of machine models, the communication model and memory tracking."""

import pytest

from repro.runtime import CollectivePriority, CommunicationModel, GPUSpec, MachineSpec, MemoryTracker, NodeSpec
from repro.runtime.communication import ConversionSide
from repro.runtime.memory import OutOfMemoryError
from repro.systems import SUMMIT


class TestGPUAndNode:
    def test_rates(self):
        gpu = GPUSpec("test", fp64_gflops=10.0, fp32_gflops=20.0, fp16_gflops=160.0, memory_gb=16)
        assert gpu.rate("fp64") == 10.0
        assert gpu.effective_rate("fp16") == pytest.approx(160.0 * 0.85)
        with pytest.raises(ValueError):
            gpu.rate("fp128")

    def test_node_aggregates(self):
        node = SUMMIT.node
        assert node.fp64_gflops == pytest.approx(6 * 7800.0)
        assert node.gpu_memory_gb == pytest.approx(96.0)


class TestMachine:
    def test_subset(self):
        sub = SUMMIT.subset(128)
        assert sub.total_nodes == 128
        assert sub.total_gpus == 768
        with pytest.raises(ValueError):
            SUMMIT.subset(100_000)

    def test_peaks(self):
        peak = SUMMIT.theoretical_peak_pflops("fp64")
        assert peak == pytest.approx(4608 * 6 * 7.8 / 1000.0, rel=1e-6)

    def test_max_matrix_size_scales_with_memory(self):
        small = SUMMIT.subset(64).max_matrix_size()
        big = SUMMIT.subset(256).max_matrix_size()
        assert big == pytest.approx(2 * small, rel=0.01)


class TestCommunicationModel:
    def test_point_to_point_costs(self):
        comm = CommunicationModel(SUMMIT)
        assert comm.point_to_point(0.0) == 0.0
        small = comm.point_to_point(1.0e3)
        large = comm.point_to_point(1.0e9)
        assert small < large
        assert small >= comm.latency_s

    def test_intra_node_faster_than_network(self):
        comm = CommunicationModel(SUMMIT)
        nbytes = 64e6
        assert comm.intra_node(nbytes) < comm.point_to_point(nbytes)

    def test_broadcast_scales_logarithmically(self):
        comm = CommunicationModel(SUMMIT)
        t2 = comm.broadcast(1e6, 2)
        t16 = comm.broadcast(1e6, 16)
        assert t16 == pytest.approx(4 * t2)
        assert comm.broadcast(1e6, 1) == 0.0

    def test_latency_priority_beats_bandwidth_priority_per_collective(self):
        latency = CommunicationModel(SUMMIT, CollectivePriority.LATENCY)
        bandwidth = CommunicationModel(SUMMIT, CollectivePriority.BANDWIDTH, concurrent_collectives=16)
        assert latency.broadcast(1e4, 64) < bandwidth.broadcast(1e4, 64)

    def test_reduce_matches_broadcast_shape(self):
        comm = CommunicationModel(SUMMIT)
        assert comm.reduce(1e6, 8) == comm.broadcast(1e6, 8)

    def test_sender_side_conversion_cheaper_and_fewer_conversions(self):
        comm = CommunicationModel(SUMMIT)
        dp_bytes, hp_bytes, consumers = 8.0e6, 2.0e6, 7
        t_send, c_send = comm.converted_transfer(dp_bytes, hp_bytes, consumers, ConversionSide.SENDER)
        t_recv, c_recv = comm.converted_transfer(dp_bytes, hp_bytes, consumers, ConversionSide.RECEIVER)
        assert t_send < t_recv
        assert c_send == 1
        assert c_recv == consumers

    def test_converted_transfer_no_consumers(self):
        comm = CommunicationModel(SUMMIT)
        assert comm.converted_transfer(8e6, 2e6, 0) == (0.0, 0)


class TestMemoryTracker:
    def test_high_water_tracking(self):
        mem = MemoryTracker()
        mem.allocate("a", 100.0)
        mem.allocate("b", 50.0)
        mem.free("a")
        assert mem.live_bytes == 50.0
        assert mem.high_water_bytes == 150.0

    def test_reallocation_replaces(self):
        mem = MemoryTracker()
        mem.allocate("a", 100.0)
        mem.allocate("a", 25.0)  # precision conversion shrinks the tile
        assert mem.live_bytes == 25.0

    def test_capacity_enforcement(self):
        mem = MemoryTracker(capacity_bytes=100.0)
        mem.allocate("a", 80.0)
        with pytest.raises(OutOfMemoryError):
            mem.allocate("b", 40.0)
        mem.allocate("c", 40.0, strict=False)
        assert mem.failed_allocations == 2
        assert mem.utilisation() > 1.0

    def test_reset(self):
        mem = MemoryTracker()
        mem.allocate("a", 10.0)
        mem.reset()
        assert mem.live_bytes == 0.0 and mem.high_water_bytes == 0.0
        assert mem.utilisation() == 0.0
