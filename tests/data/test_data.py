"""Tests of the climate data substrate: forcing, land mask, generator, ensemble."""

import numpy as np
import pytest

from repro.data import (
    ClimateEnsemble,
    Era5LikeConfig,
    Era5LikeGenerator,
    ForcingScenario,
    historical_forcing,
    land_fraction,
    scenario_forcing,
)
from repro.data.forcing import expand_to_resolution
from repro.sht.grid import Grid


class TestForcing:
    def test_historical_trend_and_volcanoes(self):
        rf = historical_forcing(83)
        assert rf.shape == (83,)
        assert rf[-1] > rf[0]
        # Volcanic years dip below the smooth trend.
        smooth = historical_forcing(83, volcanoes=())
        assert np.min(rf - smooth) < -1.0
        assert np.max(rf - smooth) <= 1e-12

    @pytest.mark.parametrize("scenario", list(ForcingScenario))
    def test_scenarios_have_right_length(self, scenario):
        rf = scenario_forcing(scenario, 50)
        assert rf.shape == (50,)
        assert np.all(np.isfinite(rf))

    def test_high_emissions_exceeds_stabilisation(self):
        high = scenario_forcing("high-emissions", 80)
        stab = scenario_forcing("stabilisation", 80)
        assert high[-1] > stab[-1]

    def test_unknown_scenario_error_lists_available(self):
        """An unknown name must name the alternatives, not just reject."""
        with pytest.raises(ValueError) as excinfo:
            scenario_forcing("rcp-bogus", 10)
        message = str(excinfo.value)
        for name in ("historical", "stabilisation", "ssp-low", "ssp-high"):
            assert name in message

    def test_scenario_forcing_accepts_registered_ssp_names(self):
        for name in ("ssp-low", "ssp-medium", "ssp-high", "overshoot"):
            rf = scenario_forcing(name, 60)
            assert rf.shape == (60,)
            assert np.all(np.isfinite(rf))

    def test_expand_to_resolution(self):
        annual = np.array([1.0, 2.0, 3.0])
        per_step = expand_to_resolution(annual, 12)
        assert per_step.shape == (36,)
        assert np.all(per_step[:12] == 1.0) and np.all(per_step[-12:] == 3.0)

    def test_expand_to_resolution_rejects_scalar(self):
        with pytest.raises(ValueError, match="1-D"):
            expand_to_resolution(np.float64(2.5), 12)

    def test_expand_to_resolution_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            expand_to_resolution(np.ones((3, 2)), 12)

    def test_expand_to_resolution_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            expand_to_resolution(np.array([]), 12)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            historical_forcing(0)
        with pytest.raises(ValueError):
            expand_to_resolution(np.array([1.0]), 0)


class TestLandFraction:
    def test_range_and_shape(self):
        grid = Grid(ntheta=21, nphi=40)
        land = land_fraction(grid)
        assert land.shape == grid.shape
        assert np.all(land >= 0) and np.all(land <= 1)

    def test_has_both_land_and_ocean(self):
        grid = Grid(ntheta=31, nphi=60)
        land = land_fraction(grid)
        assert land.max() > 0.8
        assert land.min() < 0.2

    def test_longitudinal_variation(self):
        """The mask must vary along longitude (the anisotropy driver)."""
        grid = Grid(ntheta=31, nphi=60)
        land = land_fraction(grid)
        mid = land[15, :]
        assert mid.std() > 0.05


class TestEra5LikeGenerator:
    def test_generation_shapes_and_units(self, small_ensemble):
        assert small_ensemble.data.shape[0] == 2
        assert small_ensemble.n_times == 72
        assert 180.0 < small_ensemble.data.mean() < 330.0

    def test_poles_colder_than_tropics(self, small_ensemble):
        climatology = small_ensemble.time_mean()
        equator = climatology[climatology.shape[0] // 2].mean()
        pole = climatology[0].mean()
        assert equator > pole + 20.0

    def test_warming_trend_present(self):
        config = Era5LikeConfig(lmax=6, n_years=10, steps_per_year=12, n_ensemble=1,
                                seasonal_amplitude_k=0.0, land_seasonal_boost_k=0.0,
                                noise_scale_k=0.05, land_noise_boost_k=0.0,
                                polar_noise_boost_k=0.0, nugget_std=0.0)
        ens = Era5LikeGenerator(config, seed=0).generate()
        gm = ens.global_mean_series()[0]
        yearly = gm.reshape(10, 12).mean(axis=1)
        assert yearly[-1] > yearly[0]

    def test_seasonal_cycle_antisymmetric_between_hemispheres(self):
        config = Era5LikeConfig(lmax=6, n_years=2, steps_per_year=24, n_ensemble=1,
                                noise_scale_k=0.01, land_noise_boost_k=0.0,
                                polar_noise_boost_k=0.0, nugget_std=0.0)
        gen = Era5LikeGenerator(config, seed=0)
        ens = gen.generate()
        data = ens.data[0]
        north = data[:, 2, :].mean(axis=1)
        south = data[:, -3, :].mean(axis=1)
        corr = np.corrcoef(north - north.mean(), south - south.mean())[0, 1]
        assert corr < -0.5

    def test_reproducibility(self):
        config = Era5LikeConfig(lmax=6, n_years=1, steps_per_year=12, n_ensemble=1)
        a = Era5LikeGenerator(config, seed=9).generate()
        b = Era5LikeGenerator(config, seed=9).generate()
        c = Era5LikeGenerator(config, seed=10).generate()
        assert np.array_equal(a.data, b.data)
        assert not np.array_equal(a.data, c.data)

    def test_ground_truth_fields_have_grid_shape(self, small_ensemble):
        gen = Era5LikeGenerator(Era5LikeConfig(lmax=8), seed=0)
        for field in (gen.climatology(), gen.sensitivity(), gen.noise_scale(), gen.seasonal_amplitude()):
            assert field.shape == gen.grid.shape


class TestClimateEnsemble:
    def test_shape_validation(self, small_grid):
        with pytest.raises(ValueError):
            ClimateEnsemble(
                data=np.zeros((2, 4, 3, 3)),
                grid=small_grid,
                forcing_annual=np.zeros(1),
                steps_per_year=4,
            )

    def test_forcing_coverage_validation(self, small_grid):
        with pytest.raises(ValueError):
            ClimateEnsemble(
                data=np.zeros((1, 24) + small_grid.shape),
                grid=small_grid,
                forcing_annual=np.zeros(1),
                steps_per_year=12,
            )

    def test_views_and_statistics(self, small_ensemble):
        assert small_ensemble.member(0).shape == (72,) + small_ensemble.grid.shape
        assert small_ensemble.ensemble_mean().shape == (72,) + small_ensemble.grid.shape
        assert small_ensemble.global_mean_series().shape == (2, 72)
        assert small_ensemble.n_years == pytest.approx(3.0)
        sub = small_ensemble.subset_time(0, 24)
        assert sub.n_times == 24
        with pytest.raises(ValueError):
            small_ensemble.subset_time(10, 5)

    def test_forcing_per_step(self, small_ensemble):
        per_step = small_ensemble.forcing_per_step()
        assert per_step.shape == (72,)
        assert np.all(per_step[:24] == small_ensemble.forcing_annual[0])

    def test_storage_bytes(self, small_ensemble):
        assert small_ensemble.storage_bytes(np.float32) == small_ensemble.n_data_points * 4
