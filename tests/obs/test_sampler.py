"""ResourceSampler: gauges, lifecycle, service/store attachment."""

from __future__ import annotations

import os
import threading

import pytest

from repro.obs import MetricsRegistry, ResourceSampler
from repro.serving.service import EmulationService
from repro.storage.chunkstore import ChunkStore


class TestSampleOnce:
    def test_publishes_process_gauges(self):
        registry = MetricsRegistry()
        values = ResourceSampler(registry=registry).sample_once()
        gauges = registry.snapshot()["gauges"]
        assert gauges["resource.pid"] == float(os.getpid())
        assert gauges["resource.rss_bytes"] > 0
        assert gauges["resource.threads"] >= 1
        assert gauges["resource.plan_cache_bytes"] >= 0
        assert values["resource.rss_bytes"] == gauges["resource.rss_bytes"]
        # /proc is available on the platforms the suite runs on
        assert gauges.get("resource.open_fds", 1) >= 1

    def test_counts_samples(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry=registry)
        sampler.sample_once()
        sampler.sample_once()
        assert registry.counter("resource.samples") == 2.0

    def test_service_attachment_adds_cache_gauges(self, fitted_emulator):
        registry = MetricsRegistry()
        service = EmulationService(fitted_emulator, seed=7)
        values = ResourceSampler(registry=registry, service=service).sample_once()
        assert "resource.chunk_cache_bytes" in values
        assert values["resource.chunk_cache_bytes"] >= 0

    def test_store_attachment_adds_footprint_gauges(self, tmp_path):
        registry = MetricsRegistry()
        store = ChunkStore(tmp_path / "store")
        values = ResourceSampler(registry=registry, store=store).sample_once()
        assert values["resource.store_chunks"] == 0.0
        assert values["resource.store_bytes"] == 0.0

    def test_store_backed_service_is_sampled_through_its_store(
        self, fitted_emulator, tmp_path
    ):
        registry = MetricsRegistry()
        store = ChunkStore(tmp_path / "store")
        service = EmulationService(fitted_emulator, seed=7, store=store)
        values = ResourceSampler(registry=registry, service=service).sample_once()
        assert "resource.store_chunks" in values


class TestLifecycle:
    def test_start_samples_immediately(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(interval_seconds=3600.0, registry=registry)
        try:
            sampler.start()
            # No interval has elapsed, yet the gauges already exist.
            assert registry.counter("resource.samples") == 1.0
            assert sampler.running
        finally:
            sampler.stop()
        assert not sampler.running

    def test_interval_thread_keeps_sampling(self):
        registry = MetricsRegistry()
        with ResourceSampler(interval_seconds=0.01, registry=registry):
            deadline = threading.Event()
            for _ in range(200):
                if registry.counter("resource.samples") >= 3.0:
                    break
                deadline.wait(0.01)
        assert registry.counter("resource.samples") >= 3.0

    def test_start_stop_idempotent(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(interval_seconds=3600.0, registry=registry)
        assert sampler.start() is sampler.start()
        assert registry.counter("resource.samples") == 1.0
        sampler.stop()
        sampler.stop()
        assert not sampler.running

    def test_restart_after_stop(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(interval_seconds=3600.0, registry=registry)
        sampler.start()
        sampler.stop()
        sampler.start()
        try:
            assert sampler.running
            assert registry.counter("resource.samples") == 2.0
        finally:
            sampler.stop()

    def test_thread_is_daemon(self):
        sampler = ResourceSampler(interval_seconds=3600.0, registry=MetricsRegistry())
        sampler.start()
        try:
            assert sampler._thread.daemon
        finally:
            sampler.stop()

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="positive"):
            ResourceSampler(0.0)
        with pytest.raises(ValueError, match="positive"):
            ResourceSampler(-1.0)
