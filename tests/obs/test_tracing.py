"""Tracing spans: nesting, cross-thread linking, sinks, toggle safety."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.obs import (
    clear_trace,
    current_span,
    disable,
    enable,
    enabled,
    get_registry,
    span,
    trace_records,
    tracing,
)


@pytest.fixture(autouse=True)
def clean_tracing():
    """Every test starts and ends with tracing off and an empty buffer."""
    disable()
    clear_trace()
    yield
    disable()
    clear_trace()


class TestNesting:
    def test_spans_nest_within_a_thread(self):
        enable()
        with span("test_trace.outer") as outer:
            with span("test_trace.inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        records = {rec["name"]: rec for rec in trace_records()}
        assert records["test_trace.inner"]["parent_id"] == outer.span_id
        assert records["test_trace.outer"]["parent_id"] is None

    def test_explicit_parent_links_across_threads(self):
        enable()
        with span("test_trace.batch") as batch:
            def work():
                with span("test_trace.run", parent=batch):
                    pass
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        child = next(r for r in trace_records() if r["name"] == "test_trace.run")
        assert child["parent_id"] == batch.span_id

    def test_8_thread_nesting_keeps_parent_chains_thread_local(self):
        n_threads = 8
        enable()
        barrier = threading.Barrier(n_threads)

        def work(index):
            barrier.wait()
            with span(f"test_trace.root_{index}"):
                for depth in range(3):
                    with span(f"test_trace.child_{index}_{depth}"):
                        pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        records = {rec["name"]: rec for rec in trace_records()}
        assert len(records) == n_threads * 4
        for index in range(n_threads):
            root = records[f"test_trace.root_{index}"]
            assert root["parent_id"] is None
            for depth in range(3):
                child = records[f"test_trace.child_{index}_{depth}"]
                # Each child nests under its own thread's root, never
                # under another thread's concurrently-open spans.
                assert child["parent_id"] == root["span_id"]
                assert child["thread"] == root["thread"]


class TestAlwaysMeasuring:
    def test_seconds_and_histograms_work_while_disabled(self):
        assert not enabled()
        with span("test_trace.measured") as sp:
            pass
        assert sp.seconds > 0.0
        summary = get_registry().snapshot()["histograms"]
        assert summary["test_trace.measured.seconds"]["count"] >= 1
        assert trace_records() == []

    def test_set_and_elapsed(self):
        with span("test_trace.attrs", fixed=1) as sp:
            assert sp.elapsed() >= 0.0
            sp.set(bytes=512, outcome="hit")
        assert sp.attrs == {"fixed": 1, "bytes": 512, "outcome": "hit"}


class TestSinks:
    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing(path) as active:
            assert active == str(path)
            with span("test_trace.io", shape=(3, 4), n=np.int64(7)):
                pass
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [rec["name"] for rec in lines] == ["test_trace.io"]
        record = lines[0]
        assert set(record) == {
            "name", "span_id", "parent_id", "thread", "pid", "start",
            "seconds", "attrs",
        }
        # Attributes arrive JSON-native: numpy scalars unwrap, tuples
        # become lists.
        assert record["attrs"] == {"shape": [3, 4], "n": 7}

    def test_tracing_contextmanager_disables_on_exit(self):
        with tracing():
            assert enabled()
        assert not enabled()

    def test_memory_buffer_and_clear(self):
        enable()
        with span("test_trace.buffered"):
            pass
        assert len(trace_records()) == 1
        clear_trace()
        assert trace_records() == []

    def test_disable_mid_span_drops_the_record_quietly(self):
        enable()
        sp = span("test_trace.inflight")
        sp.__enter__()
        disable()
        sp.__exit__(None, None, None)  # must not raise
        assert trace_records() == []

    def test_reenable_replaces_the_sink(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        enable(first)
        with span("test_trace.first"):
            pass
        enable(second)
        with span("test_trace.second"):
            pass
        disable()
        assert "test_trace.first" in first.read_text()
        assert "test_trace.second" in second.read_text()
        assert "test_trace.second" not in first.read_text()
