"""benchwatch: trajectory history, rolling-median gates, CLI exit codes."""

from __future__ import annotations

import json
import os

import pytest

from benchmarks._report import write_report
from tools.benchwatch import (
    MIN_HISTORY,
    WATCHLIST,
    WatchedMetric,
    append_history,
    check_report,
    load_history,
    main,
    metric_value,
)


def _fit_report(speedup, schema=2):
    report = {
        "schema": schema,
        "benchmark": "fit",
        "summary": {"speedup": speedup},
    }
    if schema >= 2:
        report["git"] = {"sha": "f" * 40, "branch": "main"}
        report["timestamp"] = "2026-08-08T12:00:00+00:00"
    return report


def _seed_history(history_dir, values):
    for value in values:
        append_history(str(history_dir), _fit_report(value))


class TestMetricValue:
    def test_resolves_dotted_paths(self):
        summary = {"latency": {"speedup": 3.5}}
        assert metric_value(summary, "latency.speedup") == 3.5

    def test_absent_path_is_none(self):
        assert metric_value({}, "latency.speedup") is None
        assert metric_value({"latency": 2.0}, "latency.speedup") is None

    def test_non_numeric_is_none(self):
        assert metric_value({"speedup": "fast"}, "speedup") is None


class TestRegressionGate:
    def test_higher_is_better_direction(self):
        watched = WatchedMetric("fit", "speedup", higher_is_better=True)
        assert watched.regressed(0.9, 2.0, tolerance=0.5)
        assert not watched.regressed(1.1, 2.0, tolerance=0.5)

    def test_lower_is_better_direction(self):
        watched = WatchedMetric("x", "overhead", higher_is_better=False)
        assert watched.regressed(3.1, 2.0, tolerance=0.5)
        assert not watched.regressed(2.9, 2.0, tolerance=0.5)

    def test_abs_slack_guards_near_zero_metrics(self):
        # disabled_overhead's median is ~0: without absolute slack any
        # positive wobble would be "beyond relative tolerance".
        watched = WatchedMetric(
            "telemetry_overhead", "disabled_overhead",
            higher_is_better=False, abs_slack=0.02,
        )
        assert not watched.regressed(0.015, 0.0, tolerance=0.5)
        assert watched.regressed(0.05, 0.0, tolerance=0.5)


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        _seed_history(tmp_path, [2.0, 2.1])
        entries = load_history(str(tmp_path), "fit")
        assert [entry["metrics"]["speedup"] for entry in entries] == [2.0, 2.1]
        assert entries[0]["git"]["branch"] == "main"

    def test_v1_reports_are_tolerated(self, tmp_path):
        append_history(str(tmp_path), _fit_report(2.0, schema=1))
        (entry,) = load_history(str(tmp_path), "fit")
        assert entry["git"] is None
        assert entry["timestamp"] is None
        assert entry["metrics"]["speedup"] == 2.0

    def test_torn_history_line_is_skipped(self, tmp_path):
        _seed_history(tmp_path, [2.0])
        with open(tmp_path / "fit.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        assert len(load_history(str(tmp_path), "fit")) == 1


class TestCheckReport:
    def test_warming_up_never_fails(self, tmp_path):
        _seed_history(tmp_path, [2.0] * (MIN_HISTORY - 1))
        history = load_history(str(tmp_path), "fit")
        regressions, lines = check_report(_fit_report(0.1), history)
        assert regressions == []
        assert any("warming up" in line for line in lines)

    def test_healthy_run_passes(self, tmp_path):
        _seed_history(tmp_path, [2.0, 2.1, 1.9, 2.05])
        history = load_history(str(tmp_path), "fit")
        regressions, _ = check_report(_fit_report(1.95), history)
        assert regressions == []

    def test_seeded_regression_names_the_metric(self, tmp_path):
        _seed_history(tmp_path, [2.0, 2.1, 1.9, 2.05])
        history = load_history(str(tmp_path), "fit")
        regressions, _ = check_report(_fit_report(0.5), history)
        (message,) = regressions
        assert "fit:speedup" in message
        assert "REGRESSION" in message

    def test_window_limits_the_median(self, tmp_path):
        # Ancient slow history outside the window must not mask a
        # regression against the recent fast plateau.
        _seed_history(tmp_path, [0.5] * 10 + [2.0] * 5)
        history = load_history(str(tmp_path), "fit")
        regressions, _ = check_report(_fit_report(0.6), history, window=5)
        assert len(regressions) == 1


class TestCli:
    def _write(self, path, report):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle)

    def test_check_passes_on_healthy_report(self, tmp_path):
        hist = tmp_path / "hist"
        _seed_history(hist, [2.0, 2.1, 1.9, 2.05])
        report_path = tmp_path / "BENCH_fit.json"
        self._write(report_path, _fit_report(2.0))
        assert main(["--check", "--history", str(hist), str(report_path)]) == 0

    def test_check_fails_nonzero_and_names_metric(self, tmp_path, capsys):
        hist = tmp_path / "hist"
        _seed_history(hist, [2.0, 2.1, 1.9, 2.05])
        report_path = tmp_path / "BENCH_fit.json"
        self._write(report_path, _fit_report(0.5))
        assert main(["--check", "--history", str(hist), str(report_path)]) == 1
        out = capsys.readouterr().out
        assert "fit:speedup" in out
        assert "REGRESSION" in out

    def test_without_check_regressions_only_warn(self, tmp_path):
        hist = tmp_path / "hist"
        _seed_history(hist, [2.0, 2.1, 1.9, 2.05])
        report_path = tmp_path / "BENCH_fit.json"
        self._write(report_path, _fit_report(0.5))
        assert main(["--history", str(hist), "--no-append", str(report_path)]) == 0

    def test_append_records_after_judging(self, tmp_path):
        hist = tmp_path / "hist"
        _seed_history(hist, [2.0, 2.1, 1.9])
        report_path = tmp_path / "BENCH_fit.json"
        self._write(report_path, _fit_report(0.5))
        # The bad run fails --check (judged against pre-append history)
        # but is still recorded for forensics.
        assert main(["--check", "--history", str(hist), str(report_path)]) == 1
        entries = load_history(str(hist), "fit")
        assert entries[-1]["metrics"]["speedup"] == 0.5

    def test_no_append_leaves_history_untouched(self, tmp_path):
        hist = tmp_path / "hist"
        _seed_history(hist, [2.0, 2.1, 1.9])
        report_path = tmp_path / "BENCH_fit.json"
        self._write(report_path, _fit_report(2.0))
        main(["--no-append", "--history", str(hist), str(report_path)])
        assert len(load_history(str(hist), "fit")) == 3

    def test_no_reports_is_a_clean_exit(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--history", str(tmp_path / "hist")]) == 0

    def test_unreadable_report_is_skipped(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_broken.json"
        bad.write_text("{not json")
        assert main(["--check", "--history", str(tmp_path / "hist"), str(bad)]) == 0
        assert "unreadable" in capsys.readouterr().out

    def test_end_to_end_with_real_report_writer(self, tmp_path, monkeypatch):
        """write_report -> benchwatch: the real v2 artifact flows through."""
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "BENCH_fit.json"))
        path = write_report("fit", {"speedup": 2.0})
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["schema"] == 2
        assert "timestamp" in report
        hist = tmp_path / "hist"
        for _ in range(MIN_HISTORY):
            append_history(str(hist), report)
        assert main(["--check", "--history", str(hist), path]) == 0
        entries = load_history(str(hist), "fit")
        assert entries[-1]["repro_version"] == report["repro_version"]


class TestWatchlist:
    def test_every_ci_benchmark_is_defended(self):
        defended = {watched.benchmark for watched in WATCHLIST}
        assert defended == {
            "serving", "fit", "batched_synthesis", "storage",
            "telemetry_overhead", "autotune",
        }

    def test_keys_are_unique(self):
        keys = [watched.key for watched in WATCHLIST]
        assert len(keys) == len(set(keys))
