"""Metrics registry: instruments, naming, snapshots, thread atomicity."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry, counter_add, get_registry, reset_metrics


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestInstruments:
    def test_counters_accumulate(self, registry):
        registry.add("test.counter")
        registry.add("test.counter", 2.5)
        assert registry.counter("test.counter") == 3.5
        assert registry.counter("test.absent", default=-1.0) == -1.0

    def test_gauges_last_write_wins(self, registry):
        registry.set_gauge("test.gauge", 4)
        registry.set_gauge("test.gauge", 7.5)
        assert registry.gauge("test.gauge") == 7.5

    def test_histogram_summary_statistics(self, registry):
        for value in [1.0, 2.0, 3.0, 4.0]:
            registry.observe("test.hist", value)
        summary = registry.snapshot()["histograms"]["test.hist"]
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 3.0  # nearest-rank over the window

    def test_malformed_names_are_rejected(self, registry):
        for bad in ("hits", "Serving.hits", "serving..hits", "serving.Hits", ""):
            with pytest.raises(ValueError, match="dotted lowercase"):
                registry.add(bad)

    def test_cross_kind_reuse_is_rejected(self, registry):
        registry.add("test.name")
        with pytest.raises(ValueError, match="different instrument kind"):
            registry.observe("test.name", 1.0)
        with pytest.raises(ValueError, match="different instrument kind"):
            registry.set_gauge("test.name", 1.0)

    def test_snapshot_is_sorted_and_detached(self, registry):
        registry.add("b.two")
        registry.add("a.one")
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.one", "b.two"]
        snap["counters"]["a.one"] = 99.0
        assert registry.counter("a.one") == 1.0

    def test_reset_by_prefix_spares_other_components(self, registry):
        registry.add("sht.plan_cache.hits")
        registry.add("sht.plan_cache.misses")
        registry.observe("sht.forward.seconds", 0.1)
        registry.reset("sht.plan_cache")
        assert registry.counter("sht.plan_cache.hits") == 0.0
        assert registry.snapshot()["histograms"]["sht.forward.seconds"]["count"] == 1

    def test_full_reset_clears_every_kind(self, registry):
        registry.add("a.counter")
        registry.set_gauge("a.gauge", 1.0)
        registry.observe("a.hist", 1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestConcurrency:
    def test_counter_adds_are_atomic_across_8_threads(self, registry):
        n_threads, n_each = 8, 10_000
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(n_each):
                registry.add("test.atomic")

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("test.atomic") == n_threads * n_each

    def test_concurrent_mixed_instruments_survive(self, registry):
        barrier = threading.Barrier(4)

        def writer(index):
            barrier.wait()
            for step in range(2_000):
                registry.add(f"test.worker_{index}.events")
                registry.observe(f"test.worker_{index}.seconds", step * 1e-6)
                registry.set_gauge(f"test.worker_{index}.depth", step)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        for index in range(4):
            assert snap["counters"][f"test.worker_{index}.events"] == 2_000
            assert snap["histograms"][f"test.worker_{index}.seconds"]["count"] == 2_000
            assert snap["gauges"][f"test.worker_{index}.depth"] == 1_999


class TestGlobalRegistry:
    def test_module_helpers_hit_the_process_registry(self):
        reset_metrics("test.global")
        counter_add("test.global.events", 2.0)
        assert get_registry().counter("test.global.events") == 2.0
        reset_metrics("test.global")
        assert get_registry().counter("test.global.events") == 0.0
