"""SLO declaration and evaluation, plus EmulationService.slo_report."""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_SERVING_SLOS,
    SLO,
    MetricsRegistry,
    evaluate_slos,
)
from repro.serving.request import FieldRequest
from repro.serving.service import EmulationService


class TestDeclaration:
    def test_requires_at_least_one_objective(self):
        with pytest.raises(ValueError, match="no objective"):
            SLO("serve.get.seconds")

    def test_rejects_malformed_names(self):
        with pytest.raises(ValueError, match="dotted"):
            SLO("NotDotted", p99=1.0)

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError, match="positive"):
            SLO("serve.get.seconds", p99=0.0)
        with pytest.raises(ValueError, match="positive"):
            SLO("serve.get.seconds", mean=-1.0)

    def test_objectives_lists_set_fields_only(self):
        slo = SLO("serve.get.seconds", p50=0.01, p99=0.05)
        assert slo.objectives() == {"p50": 0.01, "p99": 0.05}

    def test_frozen(self):
        slo = SLO("serve.get.seconds", p99=0.05)
        with pytest.raises(AttributeError):
            slo.p99 = 0.1


class TestEvaluation:
    def _registry(self, *values):
        registry = MetricsRegistry()
        for value in values:
            registry.observe("serve.get.seconds", value)
        return registry

    def test_met_objective(self):
        registry = self._registry(0.001, 0.002, 0.003)
        report = evaluate_slos(
            [SLO("serve.get.seconds", p99=0.05)], registry=registry
        )
        assert report["ok"] is True
        assert report["violations"] == []
        (entry,) = report["slos"]
        assert entry["status"] == "ok"
        assert entry["objectives"]["p99"]["observed"] == 0.003

    def test_violated_objective_names_metric_and_values(self):
        registry = self._registry(0.2)
        report = evaluate_slos(
            [SLO("serve.get.seconds", p99=0.05)], registry=registry
        )
        assert report["ok"] is False
        (violation,) = report["violations"]
        assert "serve.get.seconds" in violation
        assert "p99" in violation
        (entry,) = report["slos"]
        assert entry["status"] == "violated"
        assert entry["objectives"]["p99"]["ok"] is False

    def test_no_data_is_not_a_violation(self):
        report = evaluate_slos(
            [SLO("serve.get.seconds", p99=0.05)], registry=MetricsRegistry()
        )
        assert report["ok"] is True
        (entry,) = report["slos"]
        assert entry["status"] == "no_data"
        assert entry["objectives"]["p99"]["observed"] is None

    def test_multiple_objectives_evaluated_independently(self):
        registry = self._registry(0.01, 0.01, 0.04)
        report = evaluate_slos(
            [SLO("serve.get.seconds", p50=0.02, max=0.02)], registry=registry
        )
        (entry,) = report["slos"]
        assert entry["objectives"]["p50"]["ok"] is True
        assert entry["objectives"]["max"]["ok"] is False
        assert entry["status"] == "violated"

    def test_explicit_snapshot_wins_over_registry(self):
        snapshot = {
            "counters": {}, "gauges": {},
            "histograms": {"serve.get.seconds": {
                "count": 1, "sum": 1.0, "min": 1.0, "max": 1.0,
                "mean": 1.0, "p50": 1.0, "p90": 1.0, "p99": 1.0,
            }},
        }
        report = evaluate_slos(
            [SLO("serve.get.seconds", p99=0.05)], snapshot=snapshot
        )
        assert report["ok"] is False

    def test_evaluation_is_read_only(self):
        registry = self._registry(0.01)
        before = registry.snapshot()
        evaluate_slos([SLO("serve.get.seconds", p99=0.05)], registry=registry)
        assert registry.snapshot() == before


class TestServiceReport:
    def test_default_serving_slos(self, fitted_emulator):
        service = EmulationService(fitted_emulator, seed=13)
        service.get(FieldRequest(scenario="historical", realization=0,
                                 year_start=0, year_stop=1))
        report = service.slo_report()
        names = [entry["name"] for entry in report["slos"]]
        assert names == [slo.name for slo in DEFAULT_SERVING_SLOS]
        # The span histogram exists, so the objective is evaluated
        # against real data (ok or violated, never no_data).
        (entry,) = report["slos"]
        assert entry["status"] in ("ok", "violated")

    def test_custom_slos_deterministic_outcomes(self, fitted_emulator):
        service = EmulationService(fitted_emulator, seed=13)
        service.get(FieldRequest(scenario="historical", realization=0,
                                 year_start=0, year_stop=1))
        generous = service.slo_report([SLO("serve.get.seconds", p99=1e9)])
        assert generous["ok"] is True
        tight = service.slo_report([SLO("serve.get.seconds", p99=1e-12)])
        assert tight["ok"] is False
        assert "serve.get.seconds" in tight["violations"][0]
