"""tracereport: self-time attribution, sibling merging, layer coverage."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.obs import disable, tracing
from repro.serving.request import FieldRequest
from repro.serving.service import EmulationService
from repro.sht.plancache import clear_plan_cache, get_plan
from repro.storage.chunkstore import ChunkStore
from tools.tracereport import aggregate, load_trace, main, render_table


@pytest.fixture(autouse=True)
def clean_tracing():
    disable()
    yield
    disable()


def _record(name, span_id, parent_id, seconds, pid=100):
    return {
        "name": name, "span_id": span_id, "parent_id": parent_id,
        "thread": 1, "pid": pid, "start": 0.0, "seconds": seconds,
        "attrs": {},
    }


class TestAggregate:
    def test_self_time_subtracts_direct_children(self):
        records = [
            _record("outer", 1, None, 1.0),
            _record("mid", 2, 1, 0.6),
            _record("leaf", 3, 2, 0.25),
            _record("leaf", 4, 2, 0.15),
        ]
        rows = {row["name"]: row for row in aggregate(records)}
        # outer spends 0.6 inside mid, mid 0.4 inside its two leaves;
        # leaves have no children, so self == total.
        assert rows["outer"]["self_s"] == pytest.approx(0.4)
        assert rows["mid"]["self_s"] == pytest.approx(0.2)
        assert rows["leaf"]["self_s"] == pytest.approx(0.4)
        assert rows["leaf"]["calls"] == 2
        assert rows["leaf"]["total_s"] == pytest.approx(0.4)

    def test_child_attribution_is_keyed_per_process(self):
        # Same span ids in two processes must not cross-attribute: the
        # pid-200 child hangs off span 1 *in pid 200*, not pid 100's.
        records = [
            _record("parent", 1, None, 1.0, pid=100),
            _record("parent", 1, None, 1.0, pid=200),
            _record("child", 2, 1, 0.5, pid=200),
        ]
        rows = {row["name"]: row for row in aggregate(records)}
        assert rows["parent"]["self_s"] == pytest.approx(1.0 + 0.5)
        assert rows["child"]["self_s"] == pytest.approx(0.5)

    def test_self_time_clamps_at_zero_for_concurrent_children(self):
        # Threaded children inside one span can sum past their parent's
        # wall time; self time clamps instead of going negative.
        records = [
            _record("batch", 1, None, 1.0),
            _record("worker", 2, 1, 0.8),
            _record("worker", 3, 1, 0.9),
        ]
        rows = {row["name"]: row for row in aggregate(records)}
        assert rows["batch"]["self_s"] == 0.0

    def test_rows_sorted_by_self_time_then_name(self):
        records = [
            _record("b.slow", 1, None, 2.0),
            _record("a.tied", 2, None, 1.0),
            _record("b.tied", 3, None, 1.0),
        ]
        assert [row["name"] for row in aggregate(records)] == [
            "b.slow", "a.tied", "b.tied",
        ]

    def test_percentiles_over_single_call(self):
        rows = aggregate([_record("once", 1, None, 0.5)])
        (row,) = rows
        assert row["p50_s"] == row["p90_s"] == row["p99_s"] == 0.5
        assert row["mean_s"] == row["max_s"] == 0.5


class TestLoadTrace:
    def test_merges_numeric_pid_siblings_only(self, tmp_path):
        base = tmp_path / "trace.jsonl"
        base.write_text(json.dumps(_record("main", 1, None, 1.0)) + "\n")
        (tmp_path / "trace.jsonl.4242").write_text(
            json.dumps(_record("worker", 1, None, 0.5, pid=4242)) + "\n"
        )
        (tmp_path / "trace.jsonl.bak").write_text("not json\n")
        names = sorted(rec["name"] for rec in load_trace(base))
        assert names == ["main", "worker"]

    def test_skips_blank_lines(self, tmp_path):
        base = tmp_path / "trace.jsonl"
        base.write_text("\n" + json.dumps(_record("only", 1, None, 1.0)) + "\n\n")
        assert len(load_trace(base)) == 1

    def test_tolerates_torn_trailing_line(self, tmp_path):
        # A campaign worker killed mid-write leaves a truncated last
        # record; the report must keep the intact spans and count the
        # skip instead of crashing.
        base = tmp_path / "trace.jsonl"
        intact = json.dumps(_record("kept", 1, None, 1.0))
        torn = json.dumps(_record("torn", 2, 1, 0.5))[:-17]
        base.write_text(intact + "\n" + torn + "\n")
        records = load_trace(base)
        assert [rec["name"] for rec in records] == ["kept"]
        assert records.skipped == 1

    def test_counts_torn_lines_across_siblings(self, tmp_path):
        base = tmp_path / "trace.jsonl"
        base.write_text(json.dumps(_record("main", 1, None, 1.0)) + "\n{tor")
        (tmp_path / "trace.jsonl.77").write_text(
            json.dumps(_record("worker", 1, None, 0.5, pid=77)) + "\n[1, 2"
        )
        records = load_trace(base)
        assert sorted(rec["name"] for rec in records) == ["main", "worker"]
        assert records.skipped == 2

    def test_non_object_json_line_is_skipped(self, tmp_path):
        base = tmp_path / "trace.jsonl"
        base.write_text('"just a string"\n' + json.dumps(_record("ok", 1, None, 1.0)) + "\n")
        records = load_trace(base)
        assert [rec["name"] for rec in records] == ["ok"]
        assert records.skipped == 1


class TestRendering:
    def test_table_has_header_rule_and_aligned_names(self):
        rows = aggregate([
            _record("a.long_name", 1, None, 1.0),
            _record("b", 2, None, 0.5),
        ])
        lines = render_table(rows).splitlines()
        assert lines[0].startswith("name")
        assert "self_s" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("a.long_name")

    def test_main_json_mode(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(json.dumps(_record("solo", 1, None, 1.0)) + "\n")
        assert main([str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 1
        assert payload["rows"][0]["name"] == "solo"

    def test_main_fails_on_empty_trace(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main([str(trace)]) == 1
        assert "no span records" in capsys.readouterr().err

    def test_main_reports_skipped_corrupt_lines(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(json.dumps(_record("solo", 1, None, 1.0)) + '\n{"torn": ')
        assert main([str(trace)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 corrupt line(s)" in captured.err
        assert "1 corrupt skipped" in captured.out

    def test_main_json_mode_carries_skip_count(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(json.dumps(_record("solo", 1, None, 1.0)) + "\n{bad")
        assert main([str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 1
        assert payload["skipped"] == 1


class TestLayerCoverage:
    def test_one_traced_workload_profiles_every_layer(
        self, fitted_emulator, small_grid, tmp_path, capsys
    ):
        """A single trace file captures spans from the facade, SHT,
        plan cache, serving, and chunk-store layers, and tracereport
        aggregates them into one profile."""
        clear_plan_cache()
        trace = tmp_path / "trace.jsonl"
        with tracing(trace):
            get_plan("fast", 8, small_grid)
            repro.emulate(fitted_emulator, n_realizations=1, n_times=4,
                          rng=np.random.default_rng(0))
            service = EmulationService(fitted_emulator, seed=1)
            service.get(FieldRequest("ssp-low", realization=0,
                                     year_start=0, year_stop=1))
            store = ChunkStore(tmp_path / "store")
            store.put("addr-1", np.arange(6.0).reshape(2, 3))
            store.get("addr-1")

        rows = aggregate(load_trace(trace))
        names = {row["name"] for row in rows}
        for expected in ("facade.emulate", "sht.inverse",
                         "sht.plan_cache.build", "serve.get",
                         "chunkstore.put", "chunkstore.get"):
            assert expected in names, f"missing {expected} in {sorted(names)}"
        # sht.inverse nests under the facade/serving spans, so the
        # parents' self time excludes it.
        facade = next(r for r in rows if r["name"] == "facade.emulate")
        assert facade["self_s"] < facade["total_s"]
        assert main([str(trace), "--sort", "total", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "names" in out.splitlines()[0]
        # summary line + header + rule + the 3 requested rows
        assert len(out.splitlines()) == 3 + 3
