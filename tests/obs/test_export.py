"""Prometheus/JSON export: rendering, format spec, the live endpoint."""

from __future__ import annotations

import json
import re
import urllib.error
from pathlib import Path
from urllib.request import urlopen

import pytest

import repro
from repro.obs import (
    SLO,
    MetricsRegistry,
    clear_readiness,
    components_ready,
    evaluate_slos,
    mark_ready,
    readiness,
    render_json,
    render_prometheus,
    start_metrics_server,
)
from repro.serving.request import FieldRequest
from repro.serving.service import EmulationService

GOLDEN = Path(__file__).parent / "data" / "golden_exposition.txt"

#: One exposition sample line: name, optional label set, value.
#: Mirrors the 0.0.4 text-format grammar (metric names ``[a-zA-Z_:]``
#: then ``[a-zA-Z0-9_:]*``; label values with backslash escapes; values
#: as floats or +Inf/-Inf/NaN).
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*\})?'
    r' (?P<value>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\+Inf|-Inf|NaN)$'
)

_VALID_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def parse_exposition(text: str):
    """Validate exposition text line-by-line against the format spec.

    Returns ``(types, samples)``: the ``# TYPE`` map and the list of
    ``(name, labels, value)`` sample tuples.  Asserts the grammar on
    every line: comments are well-formed HELP/TYPE, samples match the
    sample grammar, every sample's base series has a declared type, and
    TYPE precedes the samples it covers.
    """
    types: dict = {}
    helps: dict = {}
    samples = []
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name, _, doc = line[len("# HELP "):].partition(" ")
            assert name not in helps, f"duplicate HELP for {name}"
            assert "\n" not in doc
            helps[name] = doc
        elif line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            assert kind in _VALID_TYPES, f"invalid TYPE {kind!r} for {name}"
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
        else:
            assert not line.startswith("#"), f"unknown comment: {line!r}"
            match = _SAMPLE_RE.match(line)
            assert match, f"malformed sample line: {line!r}"
            name = match.group("name")
            base = re.sub(r"_(sum|count)$", "", name)
            assert name in types or base in types, f"sample {name} has no TYPE"
            samples.append((name, match.group("labels"), match.group("value")))
    return types, samples


@pytest.fixture()
def clean_readiness():
    clear_readiness()
    yield
    clear_readiness()


def _registry_with_everything() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.add("sht.plan_cache.hits", 42)
    registry.add("campaign.store.chunks", 7)
    registry.set_gauge("resource.rss_bytes", 1048576.0)
    registry.set_gauge("campaign.progress.runs_done", 3.0)
    for value in (0.001, 0.002, 0.004, 0.008):
        registry.observe("serve.get.seconds", value)
    return registry


class TestNameMangling:
    def test_dotted_names_become_underscored(self):
        text = render_prometheus(
            {"counters": {"sht.plan_cache.hits": 1.0}, "gauges": {}, "histograms": {}}
        )
        assert "sht_plan_cache_hits 1.0" in text
        assert "sht.plan_cache.hits" not in text.splitlines()[-2]

    def test_original_name_survives_in_help(self):
        text = render_prometheus(
            {"counters": {"sht.plan_cache.hits": 1.0}, "gauges": {}, "histograms": {}}
        )
        assert "# HELP sht_plan_cache_hits repro counter sht.plan_cache.hits" in text

    def test_arbitrary_characters_are_mangled(self):
        text = render_prometheus(
            {"counters": {"weird-name with spaces": 1.0}, "gauges": {}, "histograms": {}}
        )
        assert "weird_name_with_spaces 1.0" in text

    def test_leading_digit_gets_underscore_prefix(self):
        text = render_prometheus(
            {"counters": {"9lives": 1.0}, "gauges": {}, "histograms": {}}
        )
        assert "_9lives 1.0" in text
        parse_exposition(text)


class TestEscaping:
    def test_help_escapes_backslash_and_newline(self):
        text = render_prometheus(
            {"counters": {"a\\b\nc.x": 1.0}, "gauges": {}, "histograms": {}}
        )
        help_line = next(line for line in text.splitlines() if "HELP" in line)
        assert "\\\\" in help_line
        assert "\\n" in help_line
        assert "\n" not in help_line

    def test_label_values_escape_quotes_backslashes_newlines(self):
        report = {
            "ok": True,
            "violations": [],
            "slos": [{
                "name": 'nasty"value\\with\nall',
                "status": "ok",
                "objectives": {
                    "p99": {"target": 1.0, "observed": 0.5, "ok": True}
                },
            }],
        }
        text = render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}}, slo_report=report
        )
        line = next(l for l in text.splitlines() if l.startswith("slo_ok{"))
        assert '\\"' in line
        assert "\\\\" in line
        assert "\\n" in line
        parse_exposition(text)


class TestValueFormatting:
    def test_non_finite_values_use_spec_spellings(self):
        snapshot = {
            "counters": {},
            "gauges": {
                "test.pos": float("inf"),
                "test.neg": float("-inf"),
                "test.nan": float("nan"),
            },
            "histograms": {},
        }
        text = render_prometheus(snapshot)
        assert "test_pos +Inf" in text
        assert "test_neg -Inf" in text
        assert "test_nan NaN" in text
        parse_exposition(text)


class TestHistogramRendering:
    def test_quantiles_sum_count(self):
        registry = _registry_with_everything()
        text = render_prometheus(registry.snapshot())
        assert "# TYPE serve_get_seconds summary" in text
        assert 'serve_get_seconds{quantile="0.5"} 0.004' in text
        assert 'serve_get_seconds{quantile="0.9"} 0.008' in text
        assert 'serve_get_seconds{quantile="0.99"} 0.008' in text
        assert "serve_get_seconds_sum 0.015" in text
        assert "serve_get_seconds_count 4.0" in text


class TestGoldenExposition:
    def test_render_matches_golden_file(self):
        registry = _registry_with_everything()
        snapshot = registry.snapshot()
        report = evaluate_slos(
            [SLO("serve.get.seconds", p99=0.05)], snapshot=snapshot
        )
        assert render_prometheus(snapshot, slo_report=report) == GOLDEN.read_text()

    def test_golden_file_parses_against_format_spec(self):
        types, samples = parse_exposition(GOLDEN.read_text())
        assert types["sht_plan_cache_hits"] == "counter"
        assert types["resource_rss_bytes"] == "gauge"
        assert types["serve_get_seconds"] == "summary"
        assert types["slo_ok"] == "gauge"
        names = [name for name, _, _ in samples]
        assert "serve_get_seconds_sum" in names
        assert "serve_get_seconds_count" in names
        labelled = [
            labels for name, labels, _ in samples if name == "serve_get_seconds"
        ]
        assert '{quantile="0.5"}' in labelled


class TestRenderJson:
    def test_round_trips_snapshot_and_slo(self):
        registry = _registry_with_everything()
        snapshot = registry.snapshot()
        report = evaluate_slos([SLO("serve.get.seconds", p99=0.05)], snapshot=snapshot)
        document = json.loads(render_json(snapshot, slo_report=report))
        assert document["metrics"] == snapshot
        assert document["slo"]["ok"] is True

    def test_omits_slo_block_when_absent(self):
        document = json.loads(
            render_json({"counters": {}, "gauges": {}, "histograms": {}})
        )
        assert "slo" not in document


class TestReadiness:
    def test_empty_registry_is_not_ready(self, clean_readiness):
        assert not components_ready()
        assert readiness() == {}

    def test_mark_and_withdraw(self, clean_readiness):
        mark_ready("serving")
        assert components_ready()
        mark_ready("store", ready=False)
        assert not components_ready()
        assert readiness() == {"serving": True, "store": False}
        mark_ready("store")
        assert components_ready()

    def test_service_construction_marks_serving_ready(
        self, fitted_emulator, clean_readiness
    ):
        assert not components_ready()
        EmulationService(fitted_emulator, seed=3)
        assert readiness().get("serving") is True
        assert components_ready()


class TestMetricsServer:
    def test_serves_prometheus_on_ephemeral_port(self):
        registry = _registry_with_everything()
        with start_metrics_server(registry=registry) as server:
            assert server.port > 0
            with urlopen(f"{server.url}/metrics") as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == "text/plain; version=0.0.4"
                body = response.read().decode("utf-8")
        types, _ = parse_exposition(body)
        assert types["sht_plan_cache_hits"] == "counter"

    def test_serves_json_view(self):
        registry = _registry_with_everything()
        with start_metrics_server(
            registry=registry, slos=(SLO("serve.get.seconds", p99=0.05),)
        ) as server:
            with urlopen(f"{server.url}/metrics.json") as response:
                document = json.loads(response.read())
        assert document["metrics"]["counters"]["sht.plan_cache.hits"] == 42.0
        assert document["slo"]["ok"] is True

    def test_healthz_always_200(self):
        with start_metrics_server(registry=MetricsRegistry()) as server:
            with urlopen(f"{server.url}/healthz") as response:
                assert response.status == 200

    def test_readyz_transitions_with_components(self, clean_readiness):
        with start_metrics_server(registry=MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urlopen(f"{server.url}/readyz")
            excinfo.value.close()
            assert excinfo.value.code == 503
            mark_ready("serving")
            with urlopen(f"{server.url}/readyz") as response:
                assert response.status == 200
                assert json.loads(response.read())["components"] == {"serving": True}

    def test_unknown_path_is_404(self):
        with start_metrics_server(registry=MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urlopen(f"{server.url}/nope")
            excinfo.value.close()
            assert excinfo.value.code == 404

    def test_scrapes_are_read_only(self):
        registry = _registry_with_everything()
        before = registry.snapshot()
        with start_metrics_server(
            registry=registry, slos=(SLO("serve.get.seconds", p99=0.05),)
        ) as server:
            for _ in range(3):
                with urlopen(f"{server.url}/metrics") as response:
                    response.read()
        assert registry.snapshot() == before


class TestLiveCampaignServing:
    def test_live_endpoint_during_campaign_and_serving(
        self, fitted_emulator, clean_readiness
    ):
        """The acceptance scenario: during a campaign + serving run the
        live ``/metrics`` serves spec-valid exposition with sampler
        gauges and SLO status present."""
        from repro.obs import ResourceSampler

        service = EmulationService(fitted_emulator, seed=11)
        service.get(FieldRequest(scenario="historical", realization=0,
                                 year_start=0, year_stop=1))
        with start_metrics_server(
            slos=(SLO("serve.get.seconds", p99=1e9),)
        ) as server, ResourceSampler(interval_seconds=60.0, service=service):
            repro.run_campaign(fitted_emulator, ["historical"], 2, n_times=24, seed=11)
            with urlopen(f"{server.url}/metrics") as response:
                body = response.read().decode("utf-8")
            with urlopen(f"{server.url}/readyz") as response:
                assert response.status == 200
        types, samples = parse_exposition(body)
        names = {name for name, _, _ in samples}
        assert "resource_rss_bytes" in names
        assert "resource_threads" in names
        assert "campaign_progress_runs_done" in names
        assert "slo_ok" in names
        assert types["serve_get_seconds"] == "summary"
