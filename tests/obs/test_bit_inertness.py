"""Telemetry is bit-inert, and the legacy stat surfaces are pinned.

Two contracts from the observability layer's charter:

* **bit-inert** — every emitted array (fit state, emulated fields,
  served fields, campaign outputs) is bit-identical with tracing off,
  on, or toggled mid-run;
* **back-compat** — ``EmulationService.stats()`` and
  ``plan_cache_stats()`` keep their exact pre-telemetry keys and values
  now that the numbers come from metrics registries.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro.obs import clear_trace, disable, enable, trace_records, tracing
from repro.scenarios.campaign import run_campaign
from repro.serving.request import FieldRequest
from repro.serving.service import EmulationService
from repro.sht.plancache import clear_plan_cache, get_plan, plan_cache_stats
from repro.util.compare import assert_states_bit_identical


@pytest.fixture(autouse=True)
def clean_tracing():
    disable()
    clear_trace()
    yield
    disable()
    clear_trace()


def _fit(small_ensemble):
    return repro.fit(small_ensemble, lmax=8, n_harmonics=2, var_order=1,
                     tile_size=16, rho_grid=(0.3, 0.7))


class TestBitInertness:
    def test_fit_is_bit_inert(self, small_ensemble):
        baseline = _fit(small_ensemble)
        with tracing():
            traced = _fit(small_ensemble)
        assert trace_records(), "tracing produced no spans for fit"
        assert_states_bit_identical(baseline.state_dict(), traced.state_dict())

    def test_emulate_is_bit_inert(self, fitted_emulator):
        baseline = repro.emulate(fitted_emulator, n_realizations=2, n_times=8,
                                 rng=np.random.default_rng(11))
        with tracing():
            traced = repro.emulate(fitted_emulator, n_realizations=2, n_times=8,
                                   rng=np.random.default_rng(11))
        assert np.array_equal(baseline.data, traced.data)

    def test_emulate_stream_survives_mid_run_toggles(self, fitted_emulator):
        def chunks():
            return repro.emulate_stream(fitted_emulator, n_times=24,
                                        chunk_size=6,
                                        rng=np.random.default_rng(5))

        baseline = [chunk.data for chunk in chunks()]
        toggled = []
        # enable -> disable -> enable while the stream is mid-flight.
        for index, chunk in enumerate(chunks()):
            toggled.append(chunk.data)
            if index % 2 == 0:
                enable()
            else:
                disable()
        assert len(baseline) == len(toggled) == 4
        for expected, got in zip(baseline, toggled):
            assert np.array_equal(expected, got)

    def test_serving_is_bit_inert(self, fitted_emulator):
        request = FieldRequest("ssp-high", realization=1, year_start=0,
                               year_stop=2)
        baseline = EmulationService(fitted_emulator, seed=99).get(request)
        with tracing():
            traced = EmulationService(fitted_emulator, seed=99).get(request)
        assert np.array_equal(baseline, traced)

    def test_campaign_is_bit_inert_across_a_mid_campaign_toggle(
        self, fitted_emulator, tmp_path
    ):
        def campaign():
            return run_campaign(fitted_emulator, ["ssp-low", "ssp-high"], 2,
                                n_times=8, seed=7, collect="global-mean")

        baseline = campaign()
        enable(tmp_path / "campaign.jsonl")
        first_traced = campaign()
        disable()
        untraced = campaign()
        enable()
        second_traced = campaign()
        disable()

        for manifest in (first_traced, untraced, second_traced):
            assert manifest.n_runs == baseline.n_runs
            assert manifest.total_output_bytes == baseline.total_output_bytes
            for expected, got in zip(baseline.runs, manifest.runs):
                # Run records are timing-free by design: wall_seconds is
                # a separate field, never part of to_dict().
                assert expected.to_dict() == got.to_dict()
                assert np.array_equal(expected.collected, got.collected)
        trace_names = {rec["name"] for rec in trace_records()}
        assert "campaign.run" in trace_names
        assert "campaign.total" in trace_names


class TestOperationalBitInertness:
    """The exporter and sampler are covered by the same contract: a
    live scrape endpoint and a running resource watchdog never change
    an emitted array — on, off, or toggled mid-run."""

    def test_emulate_with_exporter_and_sampler_live(self, fitted_emulator):
        from urllib.request import urlopen

        from repro.obs import ResourceSampler, start_metrics_server

        baseline = repro.emulate(fitted_emulator, n_realizations=2, n_times=8,
                                 rng=np.random.default_rng(21))
        with start_metrics_server() as server, ResourceSampler(0.01):
            with urlopen(f"{server.url}/metrics") as response:
                response.read()
            observed = repro.emulate(fitted_emulator, n_realizations=2,
                                     n_times=8, rng=np.random.default_rng(21))
            with urlopen(f"{server.url}/metrics") as response:
                response.read()
        assert np.array_equal(baseline.data, observed.data)

    def test_stream_survives_exporter_sampler_toggles_mid_run(
        self, fitted_emulator
    ):
        from urllib.request import urlopen

        from repro.obs import ResourceSampler, start_metrics_server

        def chunks():
            return repro.emulate_stream(fitted_emulator, n_times=24,
                                        chunk_size=6,
                                        rng=np.random.default_rng(31))

        baseline = [chunk.data for chunk in chunks()]
        toggled = []
        sampler = ResourceSampler(0.01)
        server = None
        try:
            # exporter+sampler start mid-stream, stop mid-stream: the
            # chunks keep their bits either way.
            for index, chunk in enumerate(chunks()):
                toggled.append(chunk.data)
                if index == 0:
                    server = start_metrics_server()
                    sampler.start()
                elif index == 2:
                    sampler.stop()
                    with urlopen(f"{server.url}/metrics") as response:
                        response.read()
                    server.stop()
                    server = None
        finally:
            sampler.stop()
            if server is not None:
                server.stop()
        assert len(baseline) == len(toggled) == 4
        for expected, got in zip(baseline, toggled):
            assert np.array_equal(expected, got)

    def test_campaign_with_heartbeat_sampler_and_scrapes(self, fitted_emulator):
        from urllib.request import urlopen

        from repro.obs import ResourceSampler, start_metrics_server

        def campaign(**kwargs):
            return run_campaign(fitted_emulator, ["ssp-low"], 2,
                                n_times=8, seed=17, collect="global-mean",
                                **kwargs)

        baseline = campaign()
        beats = []
        with start_metrics_server() as server, ResourceSampler(0.01):
            observed = campaign(progress=beats.append)
            with urlopen(f"{server.url}/metrics") as response:
                body = response.read().decode("utf-8")
        assert beats[-1]["runs_done"] == baseline.n_runs
        assert "campaign_progress_runs_done" in body
        assert "resource_rss_bytes" in body
        for expected, got in zip(baseline.runs, observed.runs):
            assert expected.to_dict() == got.to_dict()
            assert np.array_equal(expected.collected, got.collected)


class TestBackCompatPinning:
    def test_plan_cache_stats_keys_and_values(self, small_grid):
        clear_plan_cache()
        plan = get_plan("fast", 8, small_grid)
        again = get_plan("fast", 8, small_grid)
        assert again is plan
        stats = plan_cache_stats()
        assert list(stats) == [
            "size", "bytes", "hits", "misses", "evictions", "limit_bytes",
            "pid", "keys",
        ]
        assert stats["size"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["pid"] == os.getpid()
        assert stats["bytes"] > 0
        assert len(stats["keys"]) == 1
        clear_plan_cache()

    def test_service_stats_shape_and_values_pinned(self, fitted_emulator):
        service = EmulationService(fitted_emulator, seed=3)
        request = FieldRequest("ssp-low", realization=0, year_start=0,
                               year_stop=1)
        first = service.get(request)
        service.get(request)
        stats = service.stats()
        assert list(stats) == [
            "seed", "steps_per_year", "artifact_bytes", "requests",
            "request_hits", "request_misses", "served_bytes",
            "store_chunk_hits", "chunk_cache", "synthesis", "store",
        ]
        assert stats["seed"] == 3
        assert stats["requests"] == 2
        assert stats["request_misses"] == 1
        assert stats["request_hits"] == 1
        assert stats["served_bytes"] == 2 * first.nbytes
        assert list(stats["chunk_cache"]) == [
            "entries", "bytes", "max_bytes", "hits", "misses", "evictions",
        ]
        assert list(stats["synthesis"]) == [
            "flights", "batched_flights", "coalesced_realizations",
            "coalesced_waits", "chunks", "seconds", "stream_resumes",
            "live_streams",
        ]
        assert stats["store"] is None
        assert stats["synthesis"]["flights"] == 1
        assert isinstance(stats["synthesis"]["seconds"], float)

    def test_service_metrics_registry_is_per_instance(self, fitted_emulator):
        a = EmulationService(fitted_emulator, seed=1)
        b = EmulationService(fitted_emulator, seed=2)
        a.get(FieldRequest("ssp-low", realization=0, year_start=0, year_stop=1))
        assert a.stats()["requests"] == 1
        assert b.stats()["requests"] == 0
        assert a.metrics is not b.metrics
