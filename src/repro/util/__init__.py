"""Dependency-free utilities shared across layers.

Modules here may be imported by any package in the library (including the
leaf packages :mod:`repro.sht` and :mod:`repro.linalg`) and must therefore
not import from any other ``repro`` subpackage.

* :mod:`repro.util.registry` — the :class:`BackendRegistry` mechanism
  behind the named SHT and Cholesky-precision backends (re-exported through
  :mod:`repro.api.registry` for the public API).
* :mod:`repro.util.compare` — bit-exact ``state_dict`` tree comparison,
  shared by the test-suite and the benchmark harness to pin the
  determinism contracts.
"""

from repro.util.compare import assert_states_bit_identical
from repro.util.registry import BackendRegistry, BackendSpec, UnknownBackendError

__all__ = [
    "BackendRegistry",
    "BackendSpec",
    "UnknownBackendError",
    "assert_states_bit_identical",
]
