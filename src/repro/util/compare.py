"""Bit-exact comparison of nested ``state_dict`` trees.

The library's determinism contracts ("``batch_size`` never changes the
fitted state", "sharded campaigns equal serial ones") are pinned by
comparing whole ``state_dict()`` trees bit for bit.  The recursive walk
lives here — a dependency-free leaf — so the test-suite and the
benchmark harness share one implementation instead of drifting copies.
"""

from __future__ import annotations

import numpy as np

__all__ = ["assert_states_bit_identical"]


def assert_states_bit_identical(a, b, path: str = "") -> None:
    """Raise ``AssertionError`` unless two state trees are bit-identical.

    Walks nested dicts; array leaves must compare equal under
    :func:`numpy.array_equal` (bit-identical values, NaNs excluded as in
    the fitted-state contract — fitted arrays are finite), any other
    leaf under ``==``.  The failing ``path`` (e.g.
    ``/spectral_model/covariance``) is included in the error.
    """
    if isinstance(a, dict):
        assert isinstance(b, dict) and a.keys() == b.keys(), (
            f"state keys differ at {path or '/'}"
        )
        for key in a:
            assert_states_bit_identical(a[key], b[key], f"{path}/{key}")
    elif isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b),
                                      err_msg=path or "/")
    else:
        assert a == b, f"state leaves differ at {path or '/'}: {a!r} != {b!r}"
