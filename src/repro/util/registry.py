"""Named, self-describing backend registries.

Compute-kernel selection in the emulator — which spherical-harmonic
transform implementation to use, which precision policy the tile Cholesky
factorises under — used to be scattered ``if name == ...`` string dispatch.
This module provides the single mechanism that replaces it: a
:class:`BackendRegistry` maps a case-insensitive name to a factory, carries
a one-line description per backend, and raises an error that *lists the
available names* when a lookup fails.

Two registries are populated by the packages that own the backends:

* :data:`repro.sht.backends.SHT_BACKENDS` — ``"fast"`` (FFT/Wigner plan)
  and ``"direct"`` (explicit-summation reference);
* :data:`repro.linalg.policies.CHOLESKY_VARIANTS` — the ``DP``, ``DP/SP``,
  ``DP/SP/HP`` and ``DP/HP`` precision policies.

Registering a new backend requires no edits to the consumers: any name the
registry resolves can be placed in :class:`~repro.core.config.EmulatorConfig`.

This module is a dependency-free leaf (it imports nothing from ``repro``),
so every layer — including :mod:`repro.sht` and :mod:`repro.linalg` — can
use it without touching the API layer; :mod:`repro.api.registry` re-exports
it as the public spelling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["BackendRegistry", "BackendSpec", "UnknownBackendError"]

#: Monotone stamp handed to each registration (see BackendSpec.revision).
_REVISIONS = itertools.count(1)


class UnknownBackendError(ValueError):
    """A backend name that no registered backend answers to.

    Subclasses :class:`ValueError` so call sites that historically raised
    ``ValueError`` for unknown names keep their contract.
    """


def _canonical(name: str) -> str:
    """Case-insensitive, whitespace-free lookup key for a backend name."""
    return str(name).strip().lower().replace(" ", "")


@dataclass(frozen=True)
class BackendSpec:
    """A registered backend: display name, factory and documentation.

    ``revision`` is a process-wide monotone stamp assigned at registration
    time; caches keyed on a backend (e.g. the SHT plan cache) include it
    so that re-registering a name under ``overwrite=True`` invalidates
    entries built from the replaced factory.
    """

    name: str
    factory: Callable[..., Any]
    description: str = ""
    aliases: tuple[str, ...] = ()
    revision: int = 0


class BackendRegistry:
    """A mapping from backend names to factories.

    Parameters
    ----------
    kind:
        Human-readable description of what the registry holds (e.g.
        ``"SHT backend"``); used in error messages.
    doc_hint:
        Optional pointer to the documentation page cataloguing the
        registered backends (e.g. ``"docs/api.md"``); appended to
        unknown-name error messages so the error itself says where the
        catalogue lives.

    Examples
    --------
    >>> registry = BackendRegistry("demo backend")
    >>> @registry.register("double", description="multiply by two")
    ... def make_doubler():
    ...     return lambda x: 2 * x
    >>> registry.create("Double")(21)
    42
    """

    def __init__(self, kind: str, doc_hint: str = "") -> None:
        self.kind = kind
        self.doc_hint = doc_hint
        self._specs: dict[str, BackendSpec] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        description: str = "",
        aliases: tuple[str, ...] = (),
        overwrite: bool = False,
    ):
        """Register a backend factory under ``name``.

        Usable directly (``registry.register("fast", make_fast)``) or as a
        decorator (``@registry.register("fast")``).  ``aliases`` are extra
        names resolving to the same backend; an alias may never shadow
        another backend's primary name.  Re-registering an existing name
        raises unless ``overwrite=True``.  Validation happens before any
        mutation, so a rejected registration leaves the registry unchanged.
        """
        if factory is None:
            def decorator(func: Callable[..., Any]) -> Callable[..., Any]:
                self.register(
                    name, func, description=description, aliases=aliases,
                    overwrite=overwrite,
                )
                return func
            return decorator

        key = _canonical(name)
        alias_keys: dict[str, str] = {}
        for alias in aliases:
            akey = _canonical(alias)
            if akey != key:
                alias_keys[akey] = str(alias)

        # Validate every key before touching any state.
        if not overwrite and (key in self._specs or key in self._aliases):
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        for akey, alias in alias_keys.items():
            if akey in self._specs:
                raise ValueError(
                    f"{self.kind} alias {alias!r} would shadow the registered "
                    f"backend {self._specs[akey].name!r}"
                )
            if not overwrite and akey in self._aliases:
                raise ValueError(f"{self.kind} alias {alias!r} is already registered")

        spec = BackendSpec(
            name=str(name), factory=factory, description=description,
            aliases=tuple(str(a) for a in aliases), revision=next(_REVISIONS),
        )
        # A stale alias pointing elsewhere would shadow the new spec at
        # resolve() time (aliases are consulted first), so retire it.
        self._aliases.pop(key, None)
        self._specs[key] = spec
        for akey in alias_keys:
            self._aliases[akey] = key
        return factory

    def unregister(self, name: str) -> None:
        """Remove a backend (and its aliases) from the registry."""
        key = _canonical(name)
        key = self._aliases.get(key, key)
        spec = self._specs.pop(key, None)
        if spec is None:
            raise UnknownBackendError(self._unknown_message(name))
        self._aliases = {a: k for a, k in self._aliases.items() if k != key}

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolve(self, name: str) -> BackendSpec:
        """The :class:`BackendSpec` registered under ``name`` (or an alias).

        Raises
        ------
        UnknownBackendError
            When no backend answers to ``name``; the message lists every
            available name.
        """
        key = _canonical(name)
        key = self._aliases.get(key, key)
        spec = self._specs.get(key)
        if spec is None:
            raise UnknownBackendError(self._unknown_message(name))
        return spec

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Resolve ``name`` and call its factory with the given arguments."""
        return self.resolve(name).factory(*args, **kwargs)

    def _unknown_message(self, name: str) -> str:
        available = ", ".join(repr(n) for n in self.names()) or "<none registered>"
        message = f"unknown {self.kind} {str(name)!r}; available backends: {available}"
        if self.doc_hint:
            message += f" (see {self.doc_hint})"
        return message

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        """Display names of every registered backend, sorted."""
        return sorted(spec.name for spec in self._specs.values())

    def describe(self) -> dict[str, str]:
        """Mapping from display name to the backend's description."""
        return {spec.name: spec.description for spec in self._specs.values()}

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        key = _canonical(name)
        return key in self._specs or key in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BackendRegistry(kind={self.kind!r}, names={self.names()})"
