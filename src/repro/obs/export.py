"""Live metrics export: Prometheus/JSON rendering and the scrape endpoint.

This is the *operational* face of the metrics registry
(:mod:`repro.obs.metrics`): instead of callers polling
:func:`~repro.obs.metrics.metrics_snapshot` in-process, a snapshot can
be rendered to the Prometheus text exposition format (version 0.0.4)
or to JSON, and :func:`start_metrics_server` serves both from a
stdlib-``http.server`` daemon thread so any scraper — ``curl``, a
Prometheus instance, a load balancer's health probe — can watch a
campaign or a serving process live.

Endpoints of the server:

* ``/metrics`` — Prometheus text exposition of the registry snapshot
  (dotted instrument names are mangled to underscores:
  ``sht.plan_cache.hits`` becomes ``sht_plan_cache_hits``; histograms
  render as Prometheus summaries with ``quantile`` labels plus
  ``_sum``/``_count``), with SLO status gauges appended when the server
  was given objectives;
* ``/metrics.json`` — the same snapshot as a JSON document;
* ``/healthz`` — liveness: 200 whenever the process can answer at all;
* ``/readyz`` — readiness: 200 once at least one component has called
  :func:`mark_ready` and none has withdrawn —
  :class:`~repro.serving.service.EmulationService` marks ``"serving"``
  ready on construction, so a fresh serving process flips from 503 to
  200 exactly when it can answer field requests.

The whole module is **strictly read-only** over the registry: rendering
takes a detached snapshot, the server never mutates an instrument, and
the export path is covered by the same bit-inertness contract as
tracing (``tests/obs/test_bit_inertness.py`` pins emitted arrays
bit-identical with the exporter and sampler on, off, or toggled
mid-run).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.slo import evaluate_slos

__all__ = [
    "MetricsServer",
    "clear_readiness",
    "components_ready",
    "mark_ready",
    "readiness",
    "render_json",
    "render_prometheus",
    "start_metrics_server",
]

#: Characters Prometheus allows in a metric name; everything else is
#: mangled to ``_`` (dotted registry names become underscored).
_NAME_OK_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram summary statistics exported as ``quantile`` labels.
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))

_LOCK = threading.Lock()
_READY: dict[str, bool] = {}


# --------------------------------------------------------------------- #
# Readiness
# --------------------------------------------------------------------- #
def mark_ready(component: str, ready: bool = True) -> None:
    """Declare ``component`` ready (or withdraw it with ``ready=False``).

    ``/readyz`` answers 200 once at least one component is ready and no
    registered component is unready.  Construction-time wiring:
    :class:`~repro.serving.service.EmulationService` calls
    ``mark_ready("serving")`` when it finishes initialising, so a
    serving process becomes ready exactly when it can answer requests.
    """
    with _LOCK:
        _READY[str(component)] = bool(ready)


def readiness() -> dict:
    """Copy of the readiness map (``component -> ready``)."""
    with _LOCK:
        return dict(sorted(_READY.items()))


def components_ready() -> bool:
    """Whether at least one component registered and none is unready."""
    with _LOCK:
        return bool(_READY) and all(_READY.values())


def clear_readiness() -> None:
    """Forget every registered component (tests, forked workers)."""
    with _LOCK:
        _READY.clear()


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #
def _mangle(name: str) -> str:
    """Prometheus-legal metric name for a dotted registry name."""
    mangled = _NAME_OK_RE.sub("_", str(name))
    if not mangled or mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring per the exposition format spec."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    """Escape a label *value* per the exposition format spec."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Exposition spelling of a sample value (``+Inf``/``-Inf``/``NaN``)."""
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def _labels(pairs: dict) -> str:
    """Rendered ``{key="value",...}`` label set (sorted, escaped)."""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(pairs.items())
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: dict, *, slo_report: "dict | None" = None) -> str:
    """Render a registry snapshot to Prometheus text exposition format.

    ``snapshot`` is the :meth:`~repro.obs.MetricsRegistry.snapshot`
    layout (``counters``/``gauges``/``histograms``).  Counters and
    gauges render as their own types; histogram summaries render as
    Prometheus *summaries*: nearest-rank window quantiles as
    ``quantile``-labelled samples plus lifetime ``_sum``/``_count``
    series.  Instrument names are mangled (``.`` and any other
    non-``[a-zA-Z0-9_:]`` character become ``_``); the original dotted
    name is kept in the ``# HELP`` line.

    ``slo_report`` (an :func:`repro.obs.slo.evaluate_slos` report)
    appends ``slo_ok``/``slo_target``/``slo_observed`` gauges labelled
    by objective so scrapers can alert on objective violations without
    re-deriving thresholds.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        mangled = _mangle(name)
        lines.append(f"# HELP {mangled} {_escape_help(f'repro counter {name}')}")
        lines.append(f"# TYPE {mangled} counter")
        lines.append(f"{mangled} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        mangled = _mangle(name)
        lines.append(f"# HELP {mangled} {_escape_help(f'repro gauge {name}')}")
        lines.append(f"# TYPE {mangled} gauge")
        lines.append(f"{mangled} {_format_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        mangled = _mangle(name)
        lines.append(f"# HELP {mangled} {_escape_help(f'repro histogram {name}')}")
        lines.append(f"# TYPE {mangled} summary")
        for quantile, stat in _QUANTILES:
            if stat in summary:
                lines.append(
                    f"{mangled}{_labels({'quantile': quantile})} "
                    f"{_format_value(summary[stat])}"
                )
        lines.append(f"{mangled}_sum {_format_value(summary.get('sum', 0.0))}")
        lines.append(f"{mangled}_count {_format_value(summary.get('count', 0))}")
    if slo_report is not None:
        for series in ("slo_ok", "slo_target", "slo_observed"):
            lines.append(
                f"# HELP {series} "
                f"{_escape_help('repro SLO status (see repro.obs.slo)')}"
            )
            lines.append(f"# TYPE {series} gauge")
        for entry in slo_report.get("slos", []):
            for objective, detail in entry.get("objectives", {}).items():
                labels = _labels({"slo": entry["name"], "objective": objective})
                lines.append(
                    f"slo_ok{labels} {_format_value(1.0 if detail['ok'] else 0.0)}"
                )
                lines.append(f"slo_target{labels} {_format_value(detail['target'])}")
                if detail.get("observed") is not None:
                    lines.append(
                        f"slo_observed{labels} {_format_value(detail['observed'])}"
                    )
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict, *, slo_report: "dict | None" = None) -> str:
    """Render a registry snapshot (plus optional SLO report) as JSON."""
    document = {"metrics": snapshot}
    if slo_report is not None:
        document["slo"] = slo_report
    return json.dumps(document, sort_keys=True, indent=2)


# --------------------------------------------------------------------- #
# The scrape endpoint
# --------------------------------------------------------------------- #
class MetricsServer:
    """A read-only metrics endpoint on a daemon thread.

    Serves ``/metrics`` (Prometheus text), ``/metrics.json``,
    ``/healthz`` and ``/readyz`` from ``registry`` (the process-wide
    registry by default).  The server renders a fresh detached snapshot
    per scrape and never writes an instrument, so it is covered by the
    telemetry layer's bit-inertness contract.  Use
    :func:`start_metrics_server` (or the context-manager form) rather
    than instantiating directly::

        with start_metrics_server(port=0) as server:
            print(server.url)          # http://127.0.0.1:<port>

    ``port=0`` binds an ephemeral port (tests); production scrapes pin
    one.  ``slos`` adds SLO status gauges to every ``/metrics`` scrape.
    """

    def __init__(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        registry: "MetricsRegistry | None" = None,
        slos: tuple = (),
    ):
        self._registry = get_registry() if registry is None else registry
        self._slos = tuple(slos)
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # quiet: scrapes are not news
                pass

            def do_GET(self) -> None:
                server._respond(self)

        self._http = ThreadingHTTPServer((host, int(port)), _Handler)
        self._http.daemon_threads = True
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()

    @property
    def host(self) -> str:
        """Bound host."""
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the real one, also when constructed with ``port=0``)."""
        return int(self._http.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the endpoint (``http://host:port``)."""
        return f"http://{self.host}:{self.port}"

    def _slo_report(self) -> "dict | None":
        if not self._slos:
            return None
        return evaluate_slos(self._slos, snapshot=self._registry.snapshot())

    def _respond(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(
                self._registry.snapshot(), slo_report=self._slo_report()
            )
            self._send(handler, 200, body, "text/plain; version=0.0.4")
        elif path == "/metrics.json":
            body = render_json(
                self._registry.snapshot(), slo_report=self._slo_report()
            )
            self._send(handler, 200, body, "application/json")
        elif path == "/healthz":
            self._send(handler, 200, "ok\n", "text/plain")
        elif path == "/readyz":
            ready = components_ready()
            body = json.dumps({"ready": ready, "components": readiness()}) + "\n"
            self._send(handler, 200 if ready else 503, body, "application/json")
        else:
            self._send(handler, 404, "not found\n", "text/plain")

    @staticmethod
    def _send(
        handler: BaseHTTPRequestHandler, status: int, body: str, content_type: str
    ) -> None:
        payload = body.encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(payload)))
        handler.end_headers()
        handler.wfile.write(payload)

    def stop(self) -> None:
        """Shut the endpoint down and join its thread (idempotent)."""
        self._http.shutdown()
        self._http.server_close()
        self._thread.join(timeout=10.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def start_metrics_server(
    port: int = 0,
    *,
    host: str = "127.0.0.1",
    registry: "MetricsRegistry | None" = None,
    slos: tuple = (),
) -> MetricsServer:
    """Start the metrics endpoint on a daemon thread and return it.

    Parameters
    ----------
    port:
        TCP port to bind (``0`` picks a free ephemeral port; read it
        back from ``server.port``).
    host:
        Bind address (loopback by default — exporting a scrape endpoint
        beyond the host is a deployment decision, not a default).
    registry:
        Registry to serve (the process-wide one by default).  Serving
        a per-instance registry — an
        :class:`~repro.serving.service.EmulationService`'s
        ``service.metrics`` — works the same way on another port.
    slos:
        :class:`~repro.obs.slo.SLO` objectives evaluated per scrape and
        appended to ``/metrics`` as ``slo_ok``/``slo_target``/
        ``slo_observed`` gauges.

    Returns
    -------
    MetricsServer
        The live endpoint; call ``stop()`` (or use it as a context
        manager) to shut it down.
    """
    return MetricsServer(port, host=host, registry=registry, slos=slos)
