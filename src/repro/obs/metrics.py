"""Thread-safe metrics registry: counters, gauges and histograms.

The registry is the *numeric* half of the telemetry layer (the tracing
half lives in :mod:`repro.obs.tracing`).  It holds three instrument
kinds, all keyed by dotted lowercase names (``sht.plan_cache.hits``):

* **counters** — monotonically accumulating floats (``add``);
* **gauges** — last-value-wins floats (``set_gauge``);
* **histograms** — value distributions (``observe``) that retain a
  bounded window of recent samples for percentile summaries alongside
  exact ``count``/``sum``/``min``/``max`` over *all* samples.

A name is bound to one kind for the registry's lifetime; observing a
counter name as a histogram raises, which is what keeps snapshots
machine-comparable across PRs (the ``telemetry-hygiene`` lint rule
enforces the same property statically).

The module-level registry (:func:`get_registry`) is process-wide and is
what the plan cache, the SHT transforms, the chunk store and the spans'
automatic duration histograms write to.  Components with per-instance
statistics (each :class:`~repro.serving.service.EmulationService`)
construct their own :class:`MetricsRegistry` so two services never
conflate counts.

Metrics are **always on**: they are a handful of dict operations under a
lock per event, they never influence emitted arrays, and back-compat
surfaces (``EmulationService.stats()``, ``plan_cache_stats()``) read
from them unconditionally.  Only *trace recording* has an on/off switch.
"""

from __future__ import annotations

import re
import threading
from collections import deque

__all__ = [
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "counter_add",
    "gauge_set",
    "get_registry",
    "metrics_snapshot",
    "observe",
    "reset_metrics",
]

#: Instrument names are dotted lowercase with at least two segments.
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Retained samples per histogram; percentiles summarise this window.
HISTOGRAM_WINDOW = 4096


class MetricsRegistry:
    """A process- or instance-scoped set of named instruments.

    Every method is safe to call from any thread; a single lock guards
    the instrument maps (events are tiny, so one lock beats per-name
    locks in both simplicity and measured overhead).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # -- write side ------------------------------------------------------

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value`` (creating it at 0)."""
        with self._lock:
            self._check_kind_locked(name, self._counters)
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._check_kind_locked(name, self._gauges)
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        with self._lock:
            self._check_kind_locked(name, self._histograms)
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram()
            hist.observe(float(value))

    # -- read side -------------------------------------------------------

    def counter(self, name: str, default: float = 0.0) -> float:
        """Current value of counter ``name`` (``default`` when absent)."""
        with self._lock:
            return self._counters.get(name, default)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current value of gauge ``name`` (``default`` when absent)."""
        with self._lock:
            return self._gauges.get(name, default)

    def snapshot(self) -> dict:
        """Point-in-time copy of every instrument, JSON-serialisable.

        ``{"counters": {name: value}, "gauges": {name: value},
        "histograms": {name: summary}}`` where each histogram summary has
        ``count``/``sum``/``min``/``max``/``mean`` over all samples and
        ``p50``/``p90``/``p99`` over the retained window (the most recent
        ``HISTOGRAM_WINDOW`` observations).
        """
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.summary()
                    for name, hist in sorted(self._histograms.items())
                },
            }

    def reset(self, prefix: "str | None" = None) -> None:
        """Remove instruments (all of them, or those under ``prefix.``).

        ``reset("sht.plan_cache")`` drops ``sht.plan_cache.hits`` but not
        ``sht.forward.seconds`` — the granularity ``clear_plan_cache``
        needs without erasing unrelated components' counts.
        """
        with self._lock:
            if prefix is None:
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
                return
            dot = prefix + "."
            for table in (self._counters, self._gauges, self._histograms):
                for name in [n for n in table if n == prefix or n.startswith(dot)]:
                    del table[name]

    # -- internals -------------------------------------------------------

    def _check_kind_locked(self, name: str, own_table: dict) -> None:
        """Validate the name and reject cross-kind reuse (lock held)."""
        if name not in own_table:
            if not METRIC_NAME_RE.match(name):
                raise ValueError(
                    f"metric name {name!r} is not dotted lowercase "
                    "(expected e.g. 'sht.plan_cache.hits')"
                )
            for table in (self._counters, self._gauges, self._histograms):
                if table is not own_table and name in table:
                    raise ValueError(
                        f"metric name {name!r} is already registered as a "
                        "different instrument kind"
                    )


class _Histogram:
    """Exact totals plus a bounded window of recent samples."""

    __slots__ = ("count", "total", "min", "max", "window")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.window: deque[float] = deque(maxlen=HISTOGRAM_WINDOW)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.window.append(value)

    def summary(self) -> dict:
        if not self.count:  # pragma: no cover - empty histograms are never kept
            return {"count": 0}
        ordered = sorted(self.window)
        last = len(ordered) - 1
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
            "p50": ordered[int(round(0.50 * last))],
            "p90": ordered[int(round(0.90 * last))],
            "p99": ordered[int(round(0.99 * last))],
        }


_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry shared by all module-level helpers."""
    return _GLOBAL


def counter_add(name: str, value: float = 1.0) -> None:
    """Increment counter ``name`` on the process-wide registry."""
    _GLOBAL.add(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` on the process-wide registry."""
    _GLOBAL.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` on the process-wide registry."""
    _GLOBAL.observe(name, value)


def metrics_snapshot() -> dict:
    """Snapshot of the process-wide registry (see :meth:`MetricsRegistry.snapshot`)."""
    return _GLOBAL.snapshot()


def reset_metrics(prefix: "str | None" = None) -> None:
    """Reset the process-wide registry (see :meth:`MetricsRegistry.reset`)."""
    _GLOBAL.reset(prefix)
