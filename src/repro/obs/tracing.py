"""Hierarchical tracing spans with JSON-lines export.

A span measures one timed region of the hot path::

    with span("fit.analysis", lmax=48) as sp:
        ...
        sp.set(slices=n_slices)

Spans nest: each thread keeps its own stack, so a ``sht.forward`` span
opened while ``fit.spectral`` is active records ``fit.spectral`` as its
parent.  Work handed to another thread links explicitly —
``span("campaign.run", parent=batch_span)`` — because a worker thread's
stack starts empty.

Spans **always measure** (two ``perf_counter`` reads plus a duration
histogram in the process-wide metrics registry, so ``sp.seconds`` and
the ``<name>.seconds`` histograms work unconditionally), but they only
**record trace events** while tracing is enabled (:func:`enable` /
:func:`tracing` / the ``REPRO_TRACE`` environment variable).  Recording
appends one JSON object per span to an in-memory ring buffer
(:func:`trace_records`) and, when a path was given, one line to a
JSON-lines file that :mod:`tools.tracereport` aggregates.

Two contracts the test-suite pins:

* **bit-inert** — spans never touch the arrays flowing through them;
  outputs are bit-identical with tracing on, off, or toggled mid-run;
* **toggle-safe** — :func:`disable` may race with spans in flight; a
  span that closes after the sink closed simply drops its record.

Trace records are ``{"name", "span_id", "parent_id", "thread", "pid",
"start", "seconds", "attrs"}`` with ``start`` measured from the process
trace epoch.  Child processes (campaign process workers) write to
``<path>.<pid>`` so concurrent workers never interleave one file.
"""

from __future__ import annotations

import atexit
import itertools
import json
import multiprocessing
import os
import threading
import time
from collections import deque
from contextlib import contextmanager

from repro.obs import metrics as _metrics

__all__ = [
    "Span",
    "clear_trace",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "span",
    "trace_records",
    "tracing",
]

#: Retained in-memory trace records; older records drop off the front.
TRACE_BUFFER = 100_000

#: Environment variable that switches tracing on at import time.
TRACE_ENV = "REPRO_TRACE"

_IDS = itertools.count(1)
_EPOCH = time.perf_counter()
_LOCAL = threading.local()

_ENABLED = False
_SINK_LOCK = threading.Lock()
_RECORDS: deque[dict] = deque(maxlen=TRACE_BUFFER)
_FILE = None
_FILE_PATH: "str | None" = None
_FILE_PID: "int | None" = None


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def _sanitize(value):
    """Coerce an attribute value to a JSON-serialisable form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _sanitize(item())
        except (TypeError, ValueError):
            # Non-scalar ``.item`` (e.g. a multi-element array): fall
            # back to the generic string form below.
            return str(value)
    return str(value)


class Span:
    """One timed, attributed region; use via :func:`span` as a context manager."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "seconds", "start", "_t0")

    def __init__(self, name: str, parent_id: "int | None", attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id = next(_IDS)
        self.parent_id = parent_id
        self.seconds = 0.0
        self.start = 0.0
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (chunk counts, bytes, ...)."""
        self.attrs.update(attrs)
        return self

    def elapsed(self) -> float:
        """Seconds since the span was entered (without closing it)."""
        return time.perf_counter() - self._t0

    def __enter__(self) -> "Span":
        stack = _stack()
        if self.parent_id is None and stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self._t0 = time.perf_counter()
        self.start = self._t0 - _EPOCH
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - unbalanced exit ordering
            stack.remove(self)
        _metrics.observe(f"{self.name}.seconds", self.seconds)
        if _ENABLED:
            _record(self)


def span(name: str, parent: "Span | None" = None, **attrs) -> Span:
    """Open a span named ``name`` with the given attributes.

    ``parent`` links a span to one opened in *another* thread; within a
    thread, nesting is automatic via the per-thread span stack.  Names
    follow the metric convention (dotted lowercase); every span feeds a
    ``<name>.seconds`` duration histogram in the process-wide registry.
    """
    return Span(name, None if parent is None else parent.span_id, attrs)


def current_span() -> "Span | None":
    """The innermost open span on this thread, or ``None``."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None


def enable(trace_path: "str | os.PathLike | None" = None) -> None:
    """Switch trace recording on, optionally writing a JSON-lines file.

    Without ``trace_path`` records only accumulate in the in-memory
    buffer (:func:`trace_records`).  With a path, each span appends one
    line as it closes (line-buffered, so a crashed process still leaves
    a usable trace).  In a child process (campaign process workers) the
    file is opened as ``<path>.<pid>`` so workers never share a file.
    Calling :func:`enable` again replaces the previous sink.
    """
    global _ENABLED, _FILE, _FILE_PATH, _FILE_PID
    with _SINK_LOCK:
        if _FILE is not None:
            _FILE.close()
            _FILE = None
        _FILE_PATH = None
        _FILE_PID = None
        if trace_path is not None:
            path = os.fspath(trace_path)
            if multiprocessing.parent_process() is not None:
                path = f"{path}.{os.getpid()}"
            _FILE = open(path, "w", encoding="utf-8", buffering=1)
            _FILE_PATH = path
            _FILE_PID = os.getpid()
        _ENABLED = True


def disable() -> None:
    """Switch trace recording off and close the trace file (if any).

    Safe to call while spans are in flight: a span closing after the
    sink closed drops its record instead of raising.  The in-memory
    buffer is kept until :func:`clear_trace`.
    """
    global _ENABLED, _FILE, _FILE_PATH, _FILE_PID
    with _SINK_LOCK:
        _ENABLED = False
        if _FILE is not None:
            _FILE.close()
        _FILE = None
        _FILE_PATH = None
        _FILE_PID = None


def enabled() -> bool:
    """Whether trace recording is currently on."""
    # reprolint: allow[lock-discipline] lock-free boolean read; _record re-checks under the lock
    return _ENABLED


def trace_records() -> list[dict]:
    """Copy of the in-memory trace buffer (oldest first)."""
    with _SINK_LOCK:
        return list(_RECORDS)


def clear_trace() -> None:
    """Empty the in-memory trace buffer."""
    with _SINK_LOCK:
        _RECORDS.clear()


@contextmanager
def tracing(trace_path: "str | os.PathLike | None" = None):
    """Scoped tracing: enable on entry, disable on exit.

    Yields the path the current process is writing to (``None`` for
    in-memory-only tracing)::

        with tracing("trace.jsonl"):
            field = repro.emulate(emulator, n_times=4, seed=0)
    """
    enable(trace_path)
    try:
        with _SINK_LOCK:
            path = _FILE_PATH
        yield path
    finally:
        disable()


def _record(sp: Span) -> None:
    """Append one closed span to the buffer and the file sink."""
    global _FILE, _FILE_PATH, _FILE_PID
    record = {
        "name": sp.name,
        "span_id": sp.span_id,
        "parent_id": sp.parent_id,
        "thread": threading.current_thread().name,
        "pid": os.getpid(),
        "start": sp.start,
        "seconds": sp.seconds,
        "attrs": {key: _sanitize(value) for key, value in sp.attrs.items()},
    }
    line = json.dumps(record, sort_keys=True)
    with _SINK_LOCK:
        if not _ENABLED:
            return
        _RECORDS.append(record)
        if _FILE is None:
            return
        if _FILE_PID != os.getpid():
            # Inherited across fork: give this process its own file.
            base = _FILE_PATH
            _FILE = open(f"{base}.{os.getpid()}", "a", encoding="utf-8", buffering=1)
            _FILE_PATH = f"{base}.{os.getpid()}"
            _FILE_PID = os.getpid()
        _FILE.write(line + "\n")


atexit.register(disable)

_env = os.environ.get(TRACE_ENV)
if _env:
    enable(None if _env in {"1", "true", "yes"} else _env)
del _env
