"""Unified telemetry: tracing spans + metrics registry for every hot path.

The observability layer the serving gateway and the performance-model
autotuner read from.  It has two halves:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges
  and histograms with dotted lowercase names (``sht.plan_cache.hits``).
  Always on; `EmulationService.stats()` and ``plan_cache_stats()`` are
  back-compat views over it.
* :mod:`repro.obs.tracing` — hierarchical spans
  (``with span("fit.analysis", lmax=48):``) that nest per thread, link
  across threads via ``parent=``, carry structured attributes (bytes,
  shapes, cache outcomes, flop estimates) and export JSON-lines traces
  for :mod:`tools.tracereport`.

Telemetry is contractually **bit-inert** (arrays are bit-identical with
tracing on, off, or toggled mid-run) and **near-free when disabled**
(<2% on the batched-synthesis path, gated by
``benchmarks/bench_telemetry_overhead.py``).

Quick start::

    import repro.obs as obs

    with obs.tracing("trace.jsonl"):
        field = repro.emulate(emulator, n_times=4, seed=0)
    print(obs.metrics_snapshot()["counters"])

Set ``REPRO_TRACE=trace.jsonl`` in the environment to trace a whole
process without touching its code, then summarise the file with
``python tools/tracereport.py trace.jsonl``.
"""

from __future__ import annotations

from repro.obs.metrics import (
    METRIC_NAME_RE,
    MetricsRegistry,
    counter_add,
    gauge_set,
    get_registry,
    metrics_snapshot,
    observe,
    reset_metrics,
)
from repro.obs.tracing import (
    Span,
    clear_trace,
    current_span,
    disable,
    enable,
    enabled,
    span,
    trace_records,
    tracing,
)

__all__ = [
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "Span",
    "clear_trace",
    "counter_add",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "gauge_set",
    "get_registry",
    "metrics_snapshot",
    "observe",
    "reset_metrics",
    "span",
    "trace_records",
    "tracing",
]
