"""Unified telemetry: tracing spans + metrics registry for every hot path.

The observability layer the serving gateway and the performance-model
autotuner read from.  It has two halves:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges
  and histograms with dotted lowercase names (``sht.plan_cache.hits``).
  Always on; `EmulationService.stats()` and ``plan_cache_stats()`` are
  back-compat views over it.
* :mod:`repro.obs.tracing` — hierarchical spans
  (``with span("fit.analysis", lmax=48):``) that nest per thread, link
  across threads via ``parent=``, carry structured attributes (bytes,
  shapes, cache outcomes, flop estimates) and export JSON-lines traces
  for :mod:`tools.tracereport`.

On top sits the *operational* half:

* :mod:`repro.obs.export` — Prometheus/JSON rendering of registry
  snapshots and :func:`start_metrics_server` serving ``/metrics``,
  ``/healthz`` and ``/readyz`` from a daemon thread;
* :mod:`repro.obs.sampler` — :class:`ResourceSampler`, a background
  resource watchdog publishing ``resource.*`` gauges (RSS, open fds,
  threads, cache and store footprints) on an interval;
* :mod:`repro.obs.slo` — :class:`SLO` objectives over named latency
  histograms, evaluated by :func:`evaluate_slos` and surfaced as
  ``EmulationService.slo_report()``.

Telemetry is contractually **bit-inert** (arrays are bit-identical with
tracing on, off, or toggled mid-run) and **near-free when disabled**
(<2% on the batched-synthesis path, gated by
``benchmarks/bench_telemetry_overhead.py``).

Quick start::

    import repro.obs as obs

    with obs.tracing("trace.jsonl"):
        field = repro.emulate(emulator, n_times=4, seed=0)
    print(obs.metrics_snapshot()["counters"])

Set ``REPRO_TRACE=trace.jsonl`` in the environment to trace a whole
process without touching its code, then summarise the file with
``python tools/tracereport.py trace.jsonl``.
"""

from __future__ import annotations

from repro.obs.export import (
    MetricsServer,
    clear_readiness,
    components_ready,
    mark_ready,
    readiness,
    render_json,
    render_prometheus,
    start_metrics_server,
)
from repro.obs.metrics import (
    METRIC_NAME_RE,
    MetricsRegistry,
    counter_add,
    gauge_set,
    get_registry,
    metrics_snapshot,
    observe,
    reset_metrics,
)
from repro.obs.sampler import ResourceSampler
from repro.obs.slo import DEFAULT_SERVING_SLOS, SLO, evaluate_slos
from repro.obs.tracing import (
    Span,
    clear_trace,
    current_span,
    disable,
    enable,
    enabled,
    span,
    trace_records,
    tracing,
)

__all__ = [
    "DEFAULT_SERVING_SLOS",
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "MetricsServer",
    "ResourceSampler",
    "SLO",
    "Span",
    "clear_readiness",
    "clear_trace",
    "components_ready",
    "counter_add",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "evaluate_slos",
    "gauge_set",
    "get_registry",
    "mark_ready",
    "metrics_snapshot",
    "observe",
    "readiness",
    "render_json",
    "render_prometheus",
    "reset_metrics",
    "span",
    "start_metrics_server",
    "trace_records",
    "tracing",
]
