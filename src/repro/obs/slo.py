"""Service-level objectives over named metric histograms.

The telemetry layer records latency histograms for every span
(:mod:`repro.obs.tracing` always observes ``<name>.seconds``); this
module declares *objectives* over those histograms and evaluates them
from registry summaries, so "is serving healthy?" becomes a data
question instead of a judgement call::

    from repro.obs import SLO, evaluate_slos

    report = evaluate_slos([SLO("serve.get.seconds", p99=0.050)])
    report["ok"]                      # every objective met?
    report["violations"]              # ["serve.get.seconds p99 ..."] if not

:class:`~repro.serving.service.EmulationService` surfaces the serving
defaults directly as :meth:`~repro.serving.service.EmulationService.slo_report`,
and :func:`repro.obs.export.start_metrics_server` renders any report as
``slo_ok``/``slo_target``/``slo_observed`` gauges on ``/metrics`` so
scrapers can alert on objective violations.

Evaluation is read-only over a snapshot — declaring or evaluating SLOs
never touches an instrument, so the bit-inertness contract holds.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.obs.metrics import METRIC_NAME_RE, MetricsRegistry, get_registry

__all__ = ["DEFAULT_SERVING_SLOS", "SLO", "evaluate_slos"]

#: Histogram summary statistics an objective may bound.  Each maps an
#: ``SLO`` field to the key in the registry's histogram summary dict.
_OBJECTIVE_STATS = ("p50", "p90", "p99", "mean", "max")


@dataclass(frozen=True)
class SLO:
    """An objective over one named histogram: upper bounds on its stats.

    ``name`` is the dotted histogram name as recorded in the registry
    (span histograms are ``<span name>.seconds``).  Each of ``p50``,
    ``p90``, ``p99``, ``mean`` and ``max`` is an optional upper bound
    in the histogram's unit; at least one must be set::

        SLO("serve.get.seconds", p99=0.050)     # p99 latency <= 50 ms

    The objective is *violated* when the observed statistic exceeds its
    bound, and has *no data* (neither met nor violated; reported as
    ``"no_data"`` and not counted against ``ok``) when the histogram
    has not been observed yet.
    """

    name: str
    p50: "float | None" = None
    p90: "float | None" = None
    p99: "float | None" = None
    mean: "float | None" = None
    max: "float | None" = None

    def __post_init__(self):
        if not METRIC_NAME_RE.fullmatch(self.name):
            raise ValueError(
                f"SLO name {self.name!r} is not a valid dotted metric name"
            )
        if not self.objectives():
            raise ValueError(
                f"SLO {self.name!r} declares no objective; set at least one "
                f"of {_OBJECTIVE_STATS}"
            )
        for stat, bound in self.objectives().items():
            if not float(bound) > 0.0:
                raise ValueError(
                    f"SLO {self.name!r} {stat} bound must be positive, "
                    f"got {bound!r}"
                )

    def objectives(self) -> dict:
        """The declared bounds as ``{stat: bound}`` (set fields only)."""
        return {
            field.name: float(getattr(self, field.name))
            for field in fields(self)
            if field.name in _OBJECTIVE_STATS
            and getattr(self, field.name) is not None
        }


#: The serving layer's default objectives, evaluated by
#: ``EmulationService.slo_report()``: hot-path field gets under 50 ms
#: at the 99th percentile.
DEFAULT_SERVING_SLOS = (SLO("serve.get.seconds", p99=0.050),)


def evaluate_slos(
    slos,
    *,
    snapshot: "dict | None" = None,
    registry: "MetricsRegistry | None" = None,
) -> dict:
    """Evaluate objectives against a registry snapshot.

    Parameters
    ----------
    slos:
        Iterable of :class:`SLO` objectives.
    snapshot:
        A :meth:`~repro.obs.MetricsRegistry.snapshot` dict to evaluate
        against.  Taken from ``registry`` when omitted.
    registry:
        Registry to snapshot when ``snapshot`` is not given (the
        process-wide registry by default).  Span histograms live in the
        *global* registry, so serving-latency SLOs evaluate there even
        for services with their own instance registry.

    Returns
    -------
    dict
        ``{"ok": bool, "violations": [str, ...], "slos": [entry, ...]}``
        where each entry is ``{"name", "status", "objectives"}`` with
        ``status`` one of ``"ok"``, ``"violated"`` or ``"no_data"`` and
        ``objectives`` mapping each declared stat to
        ``{"target", "observed", "ok"}`` (``observed`` is ``None`` and
        ``ok`` is ``True`` when the histogram has no data).
    """
    if snapshot is None:
        snapshot = (get_registry() if registry is None else registry).snapshot()
    histograms = snapshot.get("histograms", {})

    entries = []
    violations = []
    for slo in slos:
        summary = histograms.get(slo.name)
        objectives = {}
        violated = False
        for stat, target in sorted(slo.objectives().items()):
            observed = None if summary is None else summary.get(stat)
            met = observed is None or float(observed) <= target
            objectives[stat] = {
                "target": target,
                "observed": None if observed is None else float(observed),
                "ok": met,
            }
            if not met:
                violated = True
                violations.append(
                    f"{slo.name} {stat} {float(observed):.6g} "
                    f"exceeds target {target:.6g}"
                )
        if summary is None:
            status = "no_data"
        elif violated:
            status = "violated"
        else:
            status = "ok"
        entries.append({"name": slo.name, "status": status, "objectives": objectives})

    return {"ok": not violations, "violations": violations, "slos": entries}
