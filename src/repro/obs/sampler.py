"""Resource watchdog: a background thread publishing process gauges.

Long campaigns and long-lived serving processes fail operationally
before they fail numerically — RSS creeps until the OOM killer fires,
file descriptors leak, caches grow past their budgets.
:class:`ResourceSampler` watches for that: a daemon thread that, on an
interval, publishes process-level gauges into the metrics registry
(and therefore onto a live ``/metrics`` endpoint, see
:mod:`repro.obs.export`)::

    from repro.obs import ResourceSampler

    with ResourceSampler(interval_seconds=5.0, service=service):
        ...  # resource.* gauges update every 5 s while this runs

Published gauges (all prefixed ``resource.``):

* ``resource.rss_bytes`` — process resident set size;
* ``resource.open_fds`` — open file descriptors (where ``/proc`` is
  available; omitted otherwise);
* ``resource.threads`` — live Python threads;
* ``resource.plan_cache_bytes`` — SHT plan-cache footprint
  (:func:`repro.sht.plancache.plan_cache_stats`);
* ``resource.chunk_cache_bytes`` — the attached service's in-memory
  chunk LRU footprint;
* ``resource.store_bytes`` / ``resource.store_chunks`` — the attached
  :class:`~repro.storage.chunkstore.ChunkStore`'s persisted footprint;
* ``resource.pid`` — the sampling process id;

plus a ``resource.samples`` counter (one per sweep).

Sampling is *per process*: the registry is process-wide but not shared
across forks, so under campaign process workers each worker that wants
resource gauges starts its own sampler (cheap — one daemon thread) and
``resource.pid`` tells a scraper whose numbers it is reading.  Sampling
only reads OS counters and cache statistics — it never touches emitter
state, so the bit-inertness contract holds with the sampler on, off, or
toggled mid-run.

Probing uses raw OS interfaces (``/proc``, :func:`resource.getrusage`)
by design; the ``telemetry-hygiene`` lint rule permits those calls here
— inside ``src/repro/obs/`` — and bans them elsewhere in the library.
"""

from __future__ import annotations

import os
import resource as _resource
import threading

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["ResourceSampler"]

#: Gauge-name prefix for every published sample.
_PREFIX = "resource"


def _rss_bytes_fallback() -> "int | None":
    """Peak RSS via getrusage (kilobytes on Linux) where /proc is absent."""
    try:
        return _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss * 1024
    except OSError:
        return None


def _rss_bytes() -> "int | None":
    """Resident set size in bytes, or ``None`` if unprobeable."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return _rss_bytes_fallback()


def _open_fds() -> "int | None":
    """Open file-descriptor count, or ``None`` where /proc is absent."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


class ResourceSampler:
    """Background thread publishing ``resource.*`` gauges on an interval.

    Parameters
    ----------
    interval_seconds:
        Seconds between sweeps (must be positive).  ``start()`` takes
        one sample immediately, so gauges exist before the first
        interval elapses.
    registry:
        Registry to publish into (the process-wide one by default).
    service:
        Optional :class:`~repro.serving.service.EmulationService`; when
        attached, its chunk-cache footprint (and its store's, if any)
        are sampled too.
    store:
        Optional :class:`~repro.storage.chunkstore.ChunkStore` to
        sample directly (takes precedence over the service's store).

    The sampler is a context manager (``start`` on enter, ``stop`` on
    exit); ``start``/``stop`` are idempotent and the thread is a daemon,
    so a forgotten sampler never blocks interpreter exit.
    """

    def __init__(
        self,
        interval_seconds: float = 5.0,
        *,
        registry: "MetricsRegistry | None" = None,
        service=None,
        store=None,
    ):
        if not float(interval_seconds) > 0.0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds!r}"
            )
        self._interval = float(interval_seconds)
        self._registry = get_registry() if registry is None else registry
        self._service = service
        self._store = store
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    def sample_once(self) -> dict:
        """Take one sweep now and return the published ``{gauge: value}``."""
        values: dict = {f"{_PREFIX}.pid": float(os.getpid())}

        rss = _rss_bytes()
        if rss is not None:
            values[f"{_PREFIX}.rss_bytes"] = float(rss)
        fds = _open_fds()
        if fds is not None:
            values[f"{_PREFIX}.open_fds"] = float(fds)
        values[f"{_PREFIX}.threads"] = float(threading.active_count())

        # Imported lazily: plancache itself imports repro.obs, so a
        # module-level import here would be circular.
        from repro.sht.plancache import plan_cache_stats

        values[f"{_PREFIX}.plan_cache_bytes"] = float(
            plan_cache_stats().get("bytes", 0)
        )

        store = self._store
        if self._service is not None:
            stats = self._service.stats()
            values[f"{_PREFIX}.chunk_cache_bytes"] = float(
                stats.get("chunk_cache", {}).get("bytes", 0)
            )
            if store is None:
                store = getattr(self._service, "_store", None)
        if store is not None:
            store_stats = store.stats()
            values[f"{_PREFIX}.store_bytes"] = float(
                store_stats.get("encoded_bytes", 0)
            )
            values[f"{_PREFIX}.store_chunks"] = float(
                store_stats.get("n_chunks", 0)
            )

        for gauge, value in values.items():
            self._registry.set_gauge(gauge, value)
        self._registry.add(f"{_PREFIX}.samples", 1)
        return values

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self.sample_once()

    def start(self) -> "ResourceSampler":
        """Take an immediate sample and start the interval thread."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self.sample_once()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the interval thread and join it (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=10.0)
        self._thread = None

    @property
    def running(self) -> bool:
        """Whether the interval thread is currently alive."""
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
