"""The ``T_compute + T_comm + T_latency`` cost model, applied to campaigns.

The paper predicts distributed-Cholesky wall time with three additive
terms — compute at the achievable kernel rate, communication volume over
bandwidth, and per-message start-up latency.  This module carries that
exact structure over to the workloads this package actually executes:
ensemble campaigns sharded across a worker pool on one host.

:class:`CampaignShape` summarises a campaign the way a matrix order
summarises a factorisation; :class:`CampaignCostModel` combines a shape
with a measured :class:`~repro.tuning.profile.MachineProfile` and
predicts wall seconds for any ``(executor, max_workers, batch_size)``
candidate.  Structure comes from the runtime's DAG analysis: the model
builds the campaign's block-level :class:`~repro.runtime.dag.TaskGraph`
(store commits serialise on the shared manifest, exactly as the real
chunk-store lock does) and bounds usable parallelism by the graph's
width profile, so a two-block campaign never gets credited with
sixteen-way speedup.

:class:`CostEstimate` is the shared currency of prediction: the systems
layer's :class:`~repro.systems.perf_model.CholeskyPerformanceModel`
returns the same type for the paper-scale GPU estimates, with
``workers`` meaning GPUs there and pool workers here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.dag import TaskGraph, build_task_graph
from repro.runtime.task import Task
from repro.tuning.profile import MachineProfile

__all__ = [
    "CampaignCostModel",
    "CampaignShape",
    "CostEstimate",
    "scaling_efficiencies",
]

#: Fixed per-block dispatch overhead (future creation, result hand-back,
#: manifest record append) — the campaign analogue of the paper's
#: per-message ``alpha``.
_DISPATCH_SECONDS = 2.0e-4

#: Python-level per-block bookkeeping that does not parallelise
#: (seed spawning, plan construction, chunk accounting).
_SERIAL_BLOCK_SECONDS = 1.0e-3

#: Fraction of a process-pool worker's input/output that crosses the
#: pickle boundary relative to the run's output bytes.  Thread pools
#: share memory and pay none of this.
_PROCESS_IPC_FRACTION = 1.0


@dataclass(frozen=True)
class CostEstimate:
    """Predicted wall time of one configuration, split into the three terms.

    The shared result type of every cost model in the package: the
    systems layer prices paper-scale factorisations with it (``workers``
    = GPUs) and the tuning layer prices local campaigns (``workers`` =
    pool workers).  ``label`` says what was priced — a system/variant
    string at paper scale, an ``executor x workers x batch`` string for
    a campaign candidate.
    """

    label: str
    workers: int
    compute_s: float
    comm_s: float
    latency_s: float
    flops: float

    @property
    def total_s(self) -> float:
        """Predicted wall seconds (the sum of the three terms)."""
        return self.compute_s + self.comm_s + self.latency_s

    @property
    def flops_per_s(self) -> float:
        """Achieved Flop/s implied by the prediction."""
        return self.flops / self.total_s if self.total_s > 0 else 0.0

    @property
    def pflops(self) -> float:
        """Achieved PFlop/s."""
        return self.flops_per_s / 1.0e15

    @property
    def eflops(self) -> float:
        """Achieved EFlop/s."""
        return self.flops_per_s / 1.0e18

    @property
    def tflops_per_worker(self) -> float:
        """Achieved TFlop/s per worker (Table I's normalised metric)."""
        return self.flops_per_s / 1.0e12 / self.workers if self.workers else 0.0


def scaling_efficiencies(
    estimates: "list[CostEstimate]", baseline_index: int = 0
) -> "list[float]":
    """Per-worker efficiency of a scaling series relative to a baseline.

    The standard weak/strong-scaling normalisation: each point's
    TFlop/s-per-worker divided by the baseline point's.  1.0 everywhere
    means perfect scaling.
    """
    per_worker = [e.tflops_per_worker for e in estimates]
    if not per_worker:
        return []
    base = per_worker[baseline_index]
    return [p / base if base else 0.0 for p in per_worker]


@dataclass(frozen=True)
class CampaignShape:
    """The size facts of a campaign that determine its cost.

    Built by the planner from the emulator's
    :class:`~repro.core.emulator.TrainingSummary` plus the
    :func:`~repro.scenarios.campaign.run_campaign` arguments; everything
    here is a count or a flag, so shapes are cheap to construct and
    deterministic.
    """

    n_scenarios: int
    n_realizations: int
    n_times: int
    steps_per_year: int
    lmax: int
    ntheta: int
    nphi: int
    store: bool = False
    writes_output: bool = False
    collect: str = "global-mean"

    @property
    def n_runs(self) -> int:
        """Total runs (scenarios x realizations)."""
        return self.n_scenarios * self.n_realizations

    @property
    def per_step_flops(self) -> float:
        """Arithmetic cost of synthesising one time step for one run.

        The inverse spherical-harmonic transform dominates: a Legendre
        contraction of ``O((lmax+1)^2 * ntheta)`` followed by an FFT of
        ``O(ntheta * nphi * log2(nphi))`` per step.
        """
        legendre = 2.0 * float(self.lmax + 1) ** 2 * float(self.ntheta)
        fft = 5.0 * float(self.ntheta) * float(self.nphi) * float(
            np.log2(max(self.nphi, 2))
        )
        return legendre + fft

    @property
    def run_flops(self) -> float:
        """Arithmetic cost of one full run."""
        return self.per_step_flops * float(self.n_times)

    @property
    def total_flops(self) -> float:
        """Arithmetic cost of the whole campaign."""
        return self.run_flops * float(self.n_runs)

    @property
    def run_output_bytes(self) -> int:
        """Float64 bytes one run synthesises across its full horizon."""
        return int(self.ntheta) * int(self.nphi) * int(self.n_times) * 8

    @property
    def written_bytes(self) -> int:
        """Bytes the campaign actually lands on disk (store and/or NPZ)."""
        sinks = int(bool(self.store)) + int(bool(self.writes_output))
        return self.run_output_bytes * self.n_runs * sinks


class CampaignCostModel:
    """Price campaign execution candidates against a measured profile.

    Parameters
    ----------
    profile:
        The host's measured :class:`~repro.tuning.profile.MachineProfile`.

    The prediction follows the paper's decomposition:

    * ``T_compute`` — campaign flops over the measured GEMM rate at the
      candidate's *effective* operator size (batching stacks ``b`` runs
      into one synthesis, moving the rate up the measured curve), divided
      by the usable worker count — the measured thread-scaling efficiency
      *and* the block DAG's width profile both cap it;
    * ``T_comm`` — written bytes over the measured store bandwidth
      (commits serialise on the manifest, so this term never shrinks
      with workers), plus pickle traffic for process pools;
    * ``T_latency`` — per-block dispatch cost, plus process-spawn cost
      for process pools, plus the serial per-block bookkeeping.
    """

    def __init__(self, profile: MachineProfile) -> None:
        self.profile = profile

    # ------------------------------------------------------------------ #
    # DAG structure
    # ------------------------------------------------------------------ #
    def build_graph(self, shape: CampaignShape, batch_size: int = 1) -> TaskGraph:
        """The campaign's block-level task graph at a given batch size.

        One ``synth`` task per executed block (a batch of same-scenario
        realizations), every block reading the shared fitted artifact;
        when the campaign writes, one ``commit`` task per block that
        reads the block's output and writes the shared manifest — the
        write-after-write chain on the manifest tile models the store
        lock's serialisation of commits.
        """
        batch_size = max(int(batch_size), 1)
        tasks: "list[Task]" = []
        block = 0
        for s in range(shape.n_scenarios):
            for start in range(0, shape.n_realizations, batch_size):
                width = min(batch_size, shape.n_realizations - start)
                tasks.append(
                    Task(
                        name=f"synth({block})",
                        kind="synth",
                        reads=(("artifact",),),
                        writes=(("block", block),),
                        flops=shape.run_flops * width,
                        metadata={"scenario": s, "width": width},
                    )
                )
                if shape.store or shape.writes_output:
                    tasks.append(
                        Task(
                            name=f"commit({block})",
                            kind="commit",
                            reads=(("block", block),),
                            writes=(("manifest",),),
                            flops=0.0,
                        )
                    )
                block += 1
        return build_task_graph(tasks)

    # ------------------------------------------------------------------ #
    # The three terms
    # ------------------------------------------------------------------ #
    def _effective_order(self, shape: CampaignShape, batch_size: int) -> int:
        """Square-GEMM order whose measured rate proxies one block's synthesis.

        The synthesis contraction multiplies an ``ntheta x (lmax+1)^2``
        operator against a stacked coefficient block whose width grows
        with the batch; the equivalent-work square order grows with the
        cube root of the total block flops.
        """
        block_flops = shape.per_step_flops * batch_size
        return max(int(round((block_flops / 2.0) ** (1.0 / 3.0))), 8)

    def predict(
        self,
        shape: CampaignShape,
        *,
        executor: str = "thread",
        max_workers: int = 1,
        batch_size: int = 1,
    ) -> CostEstimate:
        """Predicted wall time of running ``shape`` with one configuration."""
        workers = max(int(max_workers), 1)
        batch_size = max(int(batch_size), 1)
        graph = self.build_graph(shape, batch_size)
        n_blocks = sum(1 for t in graph.tasks if t.kind == "synth")

        # Usable parallelism: the pool can never use more lanes than the
        # DAG is wide, and threaded throughput degrades along the
        # measured memory-bandwidth curve.
        width = max(
            graph.max_parallelism() if shape.store or shape.writes_output else n_blocks,
            1,
        )
        usable = min(workers, width, n_blocks)
        efficiency = self.profile.parallel_efficiency(usable)
        if executor == "process":
            # Workers are separate interpreters: no shared-cache
            # contention, but also no benefit below one block per worker.
            efficiency = 1.0

        rate = self.profile.gemm_rate_gflops(
            self._effective_order(shape, batch_size)
        ) * 1.0e9
        compute = shape.total_flops / (rate * usable * max(efficiency, 1e-3))

        comm = shape.written_bytes / max(self.profile.write_bandwidth_bytes, 1.0)
        if executor == "process":
            ipc = shape.run_output_bytes * shape.n_runs * _PROCESS_IPC_FRACTION
            comm += ipc / max(self.profile.write_bandwidth_bytes, 1.0)

        latency = n_blocks * _DISPATCH_SECONDS + n_blocks * _SERIAL_BLOCK_SECONDS
        if executor == "process":
            latency += self.profile.spawn_seconds * workers

        return CostEstimate(
            label=f"{executor} x{workers} batch={batch_size}",
            workers=workers,
            compute_s=float(compute),
            comm_s=float(comm),
            latency_s=float(latency),
            flops=shape.total_flops,
        )
