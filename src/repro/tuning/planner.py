"""Plan selection: pick the cheapest bit-inert execution configuration.

The planner enumerates a small deterministic candidate grid over the
knobs that cannot change emulation output — ``executor``,
``max_workers``, ``batch_size`` for campaigns, cache bytes for serving —
prices every candidate with the :class:`~repro.tuning.costmodel.
CampaignCostModel`, and returns the argmin as a :class:`TuningPlan`.

Explicit caller choices always win: a knob passed to
:func:`plan_campaign_execution` is pinned, the grid only varies the
knobs left unset, and the plan records per knob whether it was chosen by
the planner or by the caller.  Ties break deterministically (smallest
predicted time, then fewest workers, then threads before processes, then
smallest batch), so the same profile and shape always yield the same
plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tuning.costmodel import CampaignCostModel, CampaignShape, CostEstimate
from repro.tuning.profile import MachineProfile

__all__ = [
    "TuningPlan",
    "plan_campaign_execution",
    "plan_serving_cache_bytes",
]

#: Largest batch the candidate grid will propose; beyond this the
#: stacked synthesis stops gaining from batching and peak memory grows
#: linearly.
_MAX_BATCH = 32

#: Serving-cache clamp: never plan below 64 MiB (a handful of chunks)
#: and never above a quarter of physical memory.
_MIN_CACHE_BYTES = 64 * 2**20
_CACHE_MEMORY_FRACTION = 4


@dataclass(frozen=True)
class TuningPlan:
    """The planner's decision for one campaign, with its provenance.

    ``chosen`` maps each knob to ``"planner"`` or ``"caller"``, so the
    manifest header can say exactly which knobs autotuning actually
    decided.  ``predicted_seconds`` is the winning candidate's modelled
    wall time; :func:`~repro.scenarios.campaign.run_campaign` records it
    next to the measured time so prediction error is visible per run.
    """

    executor: str
    max_workers: int
    batch_size: int
    predicted_seconds: float
    chosen: dict = field(default_factory=dict)
    candidates: int = 0
    profile_hostname: str = ""

    def to_dict(self) -> dict:
        """JSON-able plan (what lands in the campaign manifest header)."""
        return {
            "executor": str(self.executor),
            "max_workers": int(self.max_workers),
            "batch_size": int(self.batch_size),
            "predicted_seconds": float(self.predicted_seconds),
            "chosen": {str(k): str(v) for k, v in self.chosen.items()},
            "candidates": int(self.candidates),
            "profile_hostname": str(self.profile_hostname),
        }


def _worker_grid(cpu_count: int, n_runs: int) -> "list[int]":
    """Powers of two up to the CPU count, capped by the run count."""
    grid = []
    w = 1
    while w <= max(cpu_count, 1):
        grid.append(min(w, max(n_runs, 1)))
        w *= 2
    return sorted(set(grid))


def _batch_grid(n_realizations: int) -> "list[int]":
    """Powers of two up to ``min(n_realizations, _MAX_BATCH)``."""
    cap = max(min(n_realizations, _MAX_BATCH), 1)
    grid = []
    b = 1
    while b <= cap:
        grid.append(b)
        b *= 2
    return grid


def plan_campaign_execution(
    profile: MachineProfile,
    shape: CampaignShape,
    *,
    executor: "str | None" = None,
    max_workers: "int | None" = None,
    batch_size: "int | None" = None,
) -> TuningPlan:
    """Pick ``(executor, max_workers, batch_size)`` for a campaign.

    Knobs passed explicitly are pinned to the caller's value and marked
    ``"caller"`` in the plan's provenance; only unset knobs are searched.
    Every candidate is priced by :meth:`CampaignCostModel.predict
    <repro.tuning.costmodel.CampaignCostModel.predict>` and the argmin
    wins under the deterministic tie-break (time, workers,
    thread-before-process, batch).
    """
    model = CampaignCostModel(profile)
    executors = [executor] if executor is not None else (
        ["thread", "process"] if profile.processes_available else ["thread"]
    )
    workers_grid = (
        [int(max_workers)]
        if max_workers is not None
        else _worker_grid(profile.cpu_count, shape.n_runs)
    )
    batch_grid = (
        [int(batch_size)] if batch_size is not None else _batch_grid(shape.n_realizations)
    )

    best: "tuple | None" = None
    best_estimate: "CostEstimate | None" = None
    best_knobs: "tuple[str, int, int] | None" = None
    candidates = 0
    for ex in executors:
        for w in workers_grid:
            for b in batch_grid:
                estimate = model.predict(
                    shape, executor=ex, max_workers=w, batch_size=b
                )
                candidates += 1
                key = (estimate.total_s, w, 0 if ex == "thread" else 1, b)
                if best is None or key < best:
                    best = key
                    best_estimate = estimate
                    best_knobs = (ex, w, b)

    ex, w, b = best_knobs
    return TuningPlan(
        executor=ex,
        max_workers=w,
        batch_size=b,
        predicted_seconds=best_estimate.total_s,
        chosen={
            "executor": "caller" if executor is not None else "planner",
            "max_workers": "caller" if max_workers is not None else "planner",
            "batch_size": "caller" if batch_size is not None else "planner",
        },
        candidates=candidates,
        profile_hostname=profile.hostname,
    )


def plan_serving_cache_bytes(
    profile: MachineProfile,
    chunk_bytes: int,
    *,
    expected_streams: int = 4,
    chunks_per_stream: int = 16,
) -> int:
    """Pick a serving chunk-cache budget from the host's memory.

    Sizes the cache to the expected working set (``expected_streams``
    concurrently-served streams times ``chunks_per_stream`` hot chunks),
    clamped between 64 MiB and a quarter of physical memory — the same
    never-trust-the-model guardrails a human operator would apply.
    """
    working_set = max(int(chunk_bytes), 1) * expected_streams * chunks_per_stream
    ceiling = (
        profile.memory_bytes // _CACHE_MEMORY_FRACTION
        if profile.memory_bytes > 0
        else _MIN_CACHE_BYTES * 16
    )
    return int(min(max(working_set, _MIN_CACHE_BYTES), max(ceiling, _MIN_CACHE_BYTES)))
