"""Cost-model-driven autotuning of campaign and serving execution.

The paper's runtime plans work against a machine model; this package is
the local analogue, in three layers:

* :mod:`repro.tuning.profile` — :class:`MachineProfile`, the measured
  facts of one host (GEMM rates at operator shapes, thread-scaling
  curve, process-spawn cost, store write bandwidth), produced by a short
  deterministic micro-calibration and cached as JSON under the
  store/artifact root;
* :mod:`repro.tuning.costmodel` — the paper's
  ``T_compute + T_comm + T_latency`` decomposition applied to campaign
  shapes, structured by the runtime's block-level task DAG; the shared
  :class:`CostEstimate` currency is also what the systems layer's
  paper-scale Cholesky model returns;
* :mod:`repro.tuning.planner` — deterministic argmin over the bit-inert
  knobs (``executor``, ``max_workers``, ``batch_size``, cache bytes),
  with explicit caller choices always pinned.

Entry points for users: ``run_campaign(..., tune="auto")`` and
``repro.serve(..., cache_bytes="auto")`` consult the planner
automatically; :func:`calibrate_machine` / :func:`load_or_calibrate`
manage the profile directly.  Tuning never touches output bits — every
knob it chooses is a throughput knob, and the campaign tests pin that.
"""

from repro.tuning.costmodel import (
    CampaignCostModel,
    CampaignShape,
    CostEstimate,
    scaling_efficiencies,
)
from repro.tuning.planner import (
    TuningPlan,
    plan_campaign_execution,
    plan_serving_cache_bytes,
)
from repro.tuning.profile import MachineProfile, calibrate_machine, load_or_calibrate

__all__ = [
    "CampaignCostModel",
    "CampaignShape",
    "CostEstimate",
    "MachineProfile",
    "TuningPlan",
    "calibrate_machine",
    "load_or_calibrate",
    "plan_campaign_execution",
    "plan_serving_cache_bytes",
    "scaling_efficiencies",
]
