"""Measured machine profiles: the facts the campaign planner runs on.

The paper's runtime schedules against a *machine model* (per-GPU rates,
interconnect bandwidth, memory).  On the Python substrate the analogous
facts are measured, not catalogued: how fast this host multiplies
matrices at the operator shapes the emulator actually runs, how GEMM
throughput scales across pool threads, what spawning a worker process
costs, and how fast the chunk-store root accepts bytes.

:func:`calibrate_machine` measures all four with a short deterministic
micro-benchmark (fixed seeds, fixed shapes; every region timed through
:func:`repro.obs.span`, so calibration shows up in traces and the
``tuning.calibrate.*`` histograms like any other instrumented path).
The result is a :class:`MachineProfile` — a frozen value object with the
uniform ``state_dict()`` / ``from_state()`` protocol — cached as JSON
under the store/artifact root by :func:`load_or_calibrate`, which
re-calibrates (instead of crashing) whenever the cached file is missing,
corrupt, from another schema, or from another host.

Calibration measures wall time, so two calibrations of one host differ —
but a profile never touches emulation *output*: the planner it feeds
chooses only bit-inert execution knobs (``executor``, ``max_workers``,
``batch_size``, cache bytes).
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.obs import span

__all__ = [
    "MachineProfile",
    "calibrate_machine",
    "load_or_calibrate",
    "profile_path",
]

#: Schema stamp of the cached profile JSON; bump on layout changes so
#: stale caches re-calibrate instead of being misread.
PROFILE_SCHEMA = 1

#: File name of the cached profile under a store/artifact root.
PROFILE_FILENAME = "machine_profile.json"

#: Square GEMM orders measured by the calibration.  They bracket the
#: per-order operator shapes of the synthesis path at the band-limits
#: this package runs (lmax 16-256) — the cost model interpolates
#: between them and batching moves the effective size up this curve.
_GEMM_SIZES = (64, 128, 256, 512)

#: Repetitions per timed GEMM region (the median-free mean over a few
#: reps smooths scheduler noise without a long calibration).
_GEMM_REPS = 3

#: Worker counts probed for the thread-scaling curve (clamped to the
#: host's CPU count).
_THREAD_POINTS = (1, 2, 4, 8)

#: Bytes written by the chunk-store write-bandwidth probe.
_WRITE_PROBE_BYTES = 4 * 2**20

#: Spawn cost recorded when process pools are unusable on the host
#: (sandboxes without fork/spawn support); large enough that the
#: planner never prefers the process executor.
_SPAWN_UNAVAILABLE_S = 60.0


def _noop() -> int:
    """Picklable no-op shipped through a process pool by the spawn probe."""
    return 0


def _gemm_workload(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic operands for the ``n x n`` GEMM probe."""
    rng = np.random.default_rng(np.random.SeedSequence(0))
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    return a, b


@dataclass(frozen=True)
class MachineProfile:
    """Measured execution facts of one host.

    Attributes
    ----------
    schema:
        Layout stamp (:data:`PROFILE_SCHEMA`); mismatches re-calibrate.
    hostname / cpu_count / memory_bytes:
        Host identity and capacity; a cached profile from a different
        host or core count is stale by definition.
    gemm_gflops:
        Measured dense-GEMM rate (GFlop/s) per square matrix order.
    thread_efficiency:
        Measured parallel efficiency of threaded GEMM per worker count
        (1.0 = perfect scaling; NumPy releases the GIL, so this is a
        real memory-bandwidth curve, not a GIL artifact).
    spawn_seconds:
        Round-trip cost of spawning one process-pool worker (pool
        start + trivial task + shutdown); :data:`_SPAWN_UNAVAILABLE_S`
        when the host cannot run process pools at all.
    write_bandwidth_bytes:
        Measured sequential write bandwidth (bytes/s) at the profiled
        root — the rate campaign chunks land in the store.
    """

    schema: int
    hostname: str
    cpu_count: int
    memory_bytes: int
    gemm_gflops: dict
    thread_efficiency: dict
    spawn_seconds: float
    write_bandwidth_bytes: float

    # ------------------------------------------------------------------ #
    # Uniform persistence protocol
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """JSON-able state; :meth:`from_state` round-trips it bit-exactly."""
        return {
            "schema": int(self.schema),
            "hostname": str(self.hostname),
            "cpu_count": int(self.cpu_count),
            "memory_bytes": int(self.memory_bytes),
            "gemm_gflops": {str(k): float(v) for k, v in self.gemm_gflops.items()},
            "thread_efficiency": {
                str(k): float(v) for k, v in self.thread_efficiency.items()
            },
            "spawn_seconds": float(self.spawn_seconds),
            "write_bandwidth_bytes": float(self.write_bandwidth_bytes),
        }

    @classmethod
    def from_state(cls, state: dict) -> "MachineProfile":
        """Rebuild a profile from :meth:`state_dict` output."""
        return cls(
            schema=int(state["schema"]),
            hostname=str(state["hostname"]),
            cpu_count=int(state["cpu_count"]),
            memory_bytes=int(state["memory_bytes"]),
            gemm_gflops={int(k): float(v) for k, v in state["gemm_gflops"].items()},
            thread_efficiency={
                int(k): float(v) for k, v in state["thread_efficiency"].items()
            },
            spawn_seconds=float(state["spawn_seconds"]),
            write_bandwidth_bytes=float(state["write_bandwidth_bytes"]),
        )

    def save(self, path: "str | os.PathLike") -> str:
        """Atomically write the profile JSON to ``path``; returns the path.

        ``repr``-roundtrip floats keep the JSON bit-exact under
        :meth:`load`, and the temp-file + ``os.replace`` dance keeps a
        concurrent reader from ever seeing a half-written profile.
        """
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".profile-", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.state_dict(), handle, indent=2, sort_keys=True)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - replace failed
                os.unlink(tmp)
        return path

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "MachineProfile":
        """Read a profile written by :meth:`save` (raises on corruption)."""
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            return cls.from_state(json.load(handle))

    # ------------------------------------------------------------------ #
    # Interpolated queries (what the cost model asks)
    # ------------------------------------------------------------------ #
    def gemm_rate_gflops(self, n: int) -> float:
        """Measured GEMM rate at order ``n`` (log-linear interpolation).

        Orders outside the calibrated range clamp to the nearest
        measured point — extrapolating a roofline beyond measurement
        would let the planner trust a rate nothing ever achieved.
        """
        sizes = sorted(int(k) for k in self.gemm_gflops)
        if not sizes:
            raise ValueError("profile has no GEMM calibration points")
        rates = [float(self.gemm_gflops[k]) for k in sizes]
        if n <= sizes[0]:
            return rates[0]
        if n >= sizes[-1]:
            return rates[-1]
        return float(
            np.interp(np.log(float(n)), np.log(np.asarray(sizes, dtype=np.float64)),
                      np.asarray(rates, dtype=np.float64))
        )

    def parallel_efficiency(self, workers: int) -> float:
        """Measured thread-scaling efficiency at ``workers`` (clamped)."""
        points = sorted(int(k) for k in self.thread_efficiency)
        if not points:
            return 1.0
        values = [float(self.thread_efficiency[k]) for k in points]
        if workers <= points[0]:
            return values[0]
        if workers >= points[-1]:
            return values[-1]
        return float(
            np.interp(float(workers), np.asarray(points, dtype=np.float64),
                      np.asarray(values, dtype=np.float64))
        )

    @property
    def processes_available(self) -> bool:
        """Whether the spawn probe managed to run a process pool at all."""
        return self.spawn_seconds < _SPAWN_UNAVAILABLE_S


def profile_path(root: "str | os.PathLike | None") -> str:
    """The cached-profile path under ``root``.

    ``None`` falls back to a per-user directory under the system temp
    root — callers without a store/artifact root still share one cache.
    """
    if root is None:
        root = os.path.join(tempfile.gettempdir(), "repro-tuning")
    return os.path.join(os.fspath(root), PROFILE_FILENAME)


def _measure_gemm(sizes: "tuple[int, ...]") -> dict:
    """GFlop/s of ``a @ b`` per square order, mean over warm repetitions."""
    rates: dict = {}
    for n in sizes:
        a, b = _gemm_workload(n)
        out = a @ b  # warm-up: page in operands, settle BLAS threads
        flops = 2.0 * float(n) ** 3 * _GEMM_REPS
        with span("tuning.calibrate.gemm", n=n, reps=_GEMM_REPS) as sp:
            for _ in range(_GEMM_REPS):
                out = a @ b
        del out
        rates[int(n)] = flops / max(sp.seconds, 1e-9) / 1.0e9
    return rates


def _measure_thread_scaling(points: "tuple[int, ...]", cpu_count: int) -> dict:
    """Parallel efficiency of concurrent GEMMs per thread count."""
    n = _GEMM_SIZES[-2]
    a, b = _gemm_workload(n)
    grid = sorted({w for w in points if w <= cpu_count} | {1})

    def one(_: int) -> float:
        return float((a @ b)[0, 0])

    seconds: dict = {}
    for workers in grid:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(one, range(workers)))  # warm the pool
            with span("tuning.calibrate.threads", workers=workers) as sp:
                # Each worker multiplies once; perfect scaling keeps the
                # wall time flat as workers grow.
                list(pool.map(one, range(workers)))
        seconds[workers] = max(sp.seconds, 1e-9)
    base = seconds[1]
    return {w: min(base / seconds[w], 1.0) for w in grid}


def _measure_spawn() -> float:
    """Round-trip seconds of a one-worker process pool (or the sentinel)."""
    try:
        with span("tuning.calibrate.spawn") as sp:
            with ProcessPoolExecutor(max_workers=1) as pool:
                pool.submit(_noop).result(timeout=30)
        return max(sp.seconds, 1e-6)
    except Exception:  # pragma: no cover - host-dependent
        # No fork/spawn on this host (restricted sandboxes): record the
        # sentinel so the planner never chooses the process executor.
        return _SPAWN_UNAVAILABLE_S


def _measure_write_bandwidth(root: "str | os.PathLike | None") -> float:
    """Sequential write bytes/s at ``root`` (or the temp dir)."""
    directory = os.path.dirname(profile_path(root))
    os.makedirs(directory, exist_ok=True)
    payload = np.zeros(_WRITE_PROBE_BYTES, dtype=np.uint8).tobytes()
    fd, tmp = tempfile.mkstemp(prefix=".write-probe-", dir=directory)
    try:
        with span("tuning.calibrate.write", bytes=_WRITE_PROBE_BYTES) as sp:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
        return _WRITE_PROBE_BYTES / max(sp.seconds, 1e-9)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _memory_bytes() -> int:
    """Physical memory of the host (0 when the OS will not say)."""
    try:
        return int(os.sysconf("SC_PAGE_SIZE")) * int(os.sysconf("SC_PHYS_PAGES"))
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        return 0


def calibrate_machine(root: "str | os.PathLike | None" = None) -> MachineProfile:
    """Measure this host and return a fresh :class:`MachineProfile`.

    The micro-calibration is deterministic in everything but the clock:
    fixed seeds, fixed shapes, a fixed probe schedule.  It takes a
    fraction of a second plus one process spawn, and every region is
    timed through :func:`repro.obs.span` (``tuning.calibrate.*``), so a
    trace of a tuned campaign shows exactly what calibration cost.

    ``root`` is only used by the write-bandwidth probe (measured where
    the campaign will actually write); pass the store/artifact root when
    there is one.
    """
    with span("tuning.calibrate") as sp:
        cpu_count = os.cpu_count() or 1
        profile = MachineProfile(
            schema=PROFILE_SCHEMA,
            hostname=socket.gethostname(),
            cpu_count=cpu_count,
            memory_bytes=_memory_bytes(),
            gemm_gflops=_measure_gemm(_GEMM_SIZES),
            thread_efficiency=_measure_thread_scaling(_THREAD_POINTS, cpu_count),
            spawn_seconds=_measure_spawn(),
            write_bandwidth_bytes=_measure_write_bandwidth(root),
        )
        sp.set(hostname=profile.hostname, cpu_count=cpu_count)
    return profile


def load_or_calibrate(
    root: "str | os.PathLike | None" = None, *, force: bool = False
) -> MachineProfile:
    """The host's profile from the cache under ``root``, measuring if needed.

    A usable cached profile is returned as-is; a missing, unparsable,
    wrong-schema or foreign-host file triggers a fresh calibration whose
    result atomically replaces the cache.  ``force=True`` always
    re-measures.  Corruption is a cache miss, never an error: the cache
    only ever saves time.
    """
    path = profile_path(root)
    if not force:
        try:
            profile = MachineProfile.load(path)
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            profile = None
        if (
            profile is not None
            and profile.schema == PROFILE_SCHEMA
            and profile.hostname == socket.gethostname()
            and profile.cpu_count == (os.cpu_count() or 1)
        ):
            return profile
    profile = calibrate_machine(root)
    profile.save(path)
    return profile
