"""Precision descriptors for mixed-precision tile algorithms.

Modern GPUs execute single- and half-precision dense kernels a large factor
faster than double precision (the paper quotes 2x/16x for V100, 16x/32x for
A100 and 14.7x/29.5x for H100).  The mixed-precision Cholesky exploits this
by storing weakly correlated off-diagonal tiles at reduced precision.  This
module defines the three storage/compute precisions, conversions between
them, and the relative-speed metadata used by the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["Precision", "PRECISIONS", "parse_precision"]


class Precision(str, Enum):
    """Floating-point precision of a tile (storage and compute)."""

    DOUBLE = "fp64"
    SINGLE = "fp32"
    HALF = "fp16"

    # ------------------------------------------------------------------ #
    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype used to store tiles at this precision."""
        return {
            Precision.DOUBLE: np.dtype(np.float64),
            Precision.SINGLE: np.dtype(np.float32),
            Precision.HALF: np.dtype(np.float16),
        }[self]

    @property
    def bytes_per_element(self) -> int:
        """Storage cost per element."""
        return int(self.dtype.itemsize)

    @property
    def epsilon(self) -> float:
        """Unit roundoff of the precision."""
        return float(np.finfo(self.dtype).eps)

    @property
    def short_name(self) -> str:
        """The paper's shorthand: DP, SP or HP."""
        return {
            Precision.DOUBLE: "DP",
            Precision.SINGLE: "SP",
            Precision.HALF: "HP",
        }[self]

    def convert(self, array: np.ndarray) -> np.ndarray:
        """Round an array to this precision (returned as the target dtype)."""
        return np.asarray(array).astype(self.dtype)

    def convert_via(self, array: np.ndarray) -> np.ndarray:
        """Round-trip an array through this precision back to float64.

        This is how a mixed-precision kernel's inputs look to a
        double-precision accumulation: the values carry the low-precision
        rounding error but participate in arithmetic as float64.
        """
        return self.convert(array).astype(np.float64)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: All precisions ordered from most to least accurate.
PRECISIONS: tuple[Precision, ...] = (
    Precision.DOUBLE,
    Precision.SINGLE,
    Precision.HALF,
)


@dataclass(frozen=True)
class _Alias:
    names: tuple[str, ...]
    precision: Precision


_ALIASES = (
    _Alias(("fp64", "dp", "double", "float64", "d"), Precision.DOUBLE),
    _Alias(("fp32", "sp", "single", "float32", "s"), Precision.SINGLE),
    _Alias(("fp16", "hp", "half", "float16", "h"), Precision.HALF),
)


def parse_precision(name: str | Precision) -> Precision:
    """Parse a precision from any common spelling (``"DP"``, ``"fp32"``...)."""
    if isinstance(name, Precision):
        return name
    lowered = str(name).strip().lower()
    for alias in _ALIASES:
        if lowered in alias.names:
            return alias.precision
    raise ValueError(f"unknown precision {name!r}")
