"""A single matrix tile with an assigned storage precision.

Tiles are the unit of data in the tile-based algorithms: an ``nb x nb``
block of the matrix stored at one of the three precisions.  Values are kept
in their native dtype so that reduced-precision tiles really do lose the
corresponding mantissa bits (the accuracy ablations depend on this), and
are promoted to float64 on demand when a kernel accumulates in double
precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.linalg.precision import Precision

__all__ = ["Tile"]


@dataclass
class Tile:
    """An ``m x n`` tile stored at a given precision.

    Parameters
    ----------
    data:
        The tile values; stored with the dtype of ``precision``.
    precision:
        Storage precision of the tile.
    """

    data: np.ndarray
    precision: Precision = Precision.DOUBLE
    conversions: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data).astype(self.precision.dtype)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, int]:
        """Tile shape."""
        return tuple(self.data.shape)  # type: ignore[return-value]

    @property
    def nbytes(self) -> int:
        """Bytes occupied by the tile at its storage precision."""
        return int(self.data.nbytes)

    def as_float64(self) -> np.ndarray:
        """The tile values promoted to float64 (used inside kernels)."""
        return self.data.astype(np.float64)

    def set_from_float64(self, values: np.ndarray) -> None:
        """Store float64 values, rounding to the tile's precision."""
        self.data = np.asarray(values).astype(self.precision.dtype)

    def convert_to(self, precision: Precision) -> "Tile":
        """Return a copy of the tile at another precision."""
        return Tile(data=self.data.astype(precision.dtype), precision=precision,
                    conversions=self.conversions + 1)

    def round_trip_error(self) -> float:
        """Max abs difference between the tile and its float64 promotion.

        Zero by construction (the stored values *are* the rounded values);
        provided for symmetry with :meth:`quantisation_error`.
        """
        return float(np.max(np.abs(self.as_float64() - self.data.astype(np.float64)))) if self.data.size else 0.0

    def quantisation_error(self, reference: np.ndarray) -> float:
        """Max abs difference between the tile and a float64 reference."""
        if self.data.size == 0:
            return 0.0
        return float(np.max(np.abs(self.as_float64() - np.asarray(reference, dtype=np.float64))))
