"""Tile-based mixed-precision Cholesky factorisation.

This is the numerical heart of the emulator's HPC layer: the covariance
matrix of the spectral innovations is tiled, each tile is assigned a storage
precision by a :class:`~repro.linalg.policies.PrecisionPolicy`, and the
right-looking tile Cholesky is expressed as a DAG of POTRF / TRSM / SYRK /
GEMM tasks executed by the runtime.  Kernels accumulate in double precision
but read and write tiles at their storage precision, so the reduced-
precision variants genuinely lose the corresponding mantissa bits — the
accuracy ablations (paper Fig. 4) measure exactly that loss.

Communication metadata (who broadcasts which tile to how many consumers,
and where precision conversions happen) is attached to the tasks so the
analytic performance model can price the sender-side versus
receiver-side conversion strategies of Section V-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import cholesky as scipy_cholesky
from scipy.linalg import solve_triangular

from repro.linalg.flops import gemm_flops, potrf_flops, syrk_flops, trsm_flops
from repro.linalg.policies import PrecisionPolicy, variant_policy
from repro.linalg.precision import PRECISIONS, Precision
from repro.linalg.tile import Tile
from repro.linalg.tiled_matrix import TiledSymmetricMatrix
from repro.runtime.machine import ConversionSide
from repro.runtime.dag import TaskGraph, build_task_graph
from repro.runtime.executor import LocalExecutor, TileStore
from repro.runtime.task import Task

__all__ = [
    "dense_cholesky",
    "generate_cholesky_tasks",
    "CholeskyPlan",
    "CholeskyResult",
    "MixedPrecisionCholesky",
]


def dense_cholesky(matrix: np.ndarray, jitter: float = 0.0) -> np.ndarray:
    """Dense double-precision lower Cholesky factor (reference algorithm).

    ``jitter`` adds a relative ridge ``jitter * mean(diag)`` to the diagonal
    before factorising, the same safeguard the paper applies when the
    empirical covariance is rank-deficient (``R (T - P) < L^2``).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if jitter > 0:
        matrix = matrix + np.eye(matrix.shape[0]) * jitter * float(np.mean(np.diag(matrix)))
    return scipy_cholesky(matrix, lower=True)


# --------------------------------------------------------------------------- #
# Kernel factories
# --------------------------------------------------------------------------- #
def _store_write(store: TileStore, key, values: np.ndarray) -> None:
    store[key] = np.asarray(values).astype(store[key].dtype)


def _potrf_kernel(label: str, k: int, jitter: float):
    def kernel(store: TileStore) -> None:
        a = store[(label, k, k)].astype(np.float64)
        a = 0.5 * (a + a.T)
        if jitter > 0:
            a = a + np.eye(a.shape[0]) * jitter * float(np.mean(np.diag(a)))
        scale = float(np.mean(np.abs(np.diag(a)))) or 1.0
        # Reduced-precision updates can push a trailing diagonal block
        # slightly indefinite; retry with an escalating ridge (the paper's
        # "minor perturbation along the diagonal" safeguard).
        for ridge in (0.0, 1e-8, 1e-6, 1e-4, 1e-2):
            try:
                l = scipy_cholesky(a + np.eye(a.shape[0]) * ridge * scale, lower=True)
                break
            except np.linalg.LinAlgError:
                continue
        else:  # pragma: no cover - pathological inputs only
            raise np.linalg.LinAlgError(
                f"diagonal tile {k} is not positive definite even with a 1e-2 ridge"
            )
        _store_write(store, (label, k, k), np.tril(l))
    return kernel


def _trsm_kernel(label: str, i: int, k: int):
    def kernel(store: TileStore) -> None:
        l_kk = np.tril(store[(label, k, k)].astype(np.float64))
        a_ik = store[(label, i, k)].astype(np.float64)
        # Solve X * L_kk^T = A_ik  =>  X = A_ik * L_kk^{-T}
        x = solve_triangular(l_kk, a_ik.T, lower=True, trans="N").T
        _store_write(store, (label, i, k), x)
    return kernel


def _syrk_kernel(label: str, i: int, k: int):
    def kernel(store: TileStore) -> None:
        a_ik = store[(label, i, k)].astype(np.float64)
        a_ii = store[(label, i, i)].astype(np.float64)
        _store_write(store, (label, i, i), a_ii - a_ik @ a_ik.T)
    return kernel


def _gemm_kernel(label: str, i: int, j: int, k: int):
    def kernel(store: TileStore) -> None:
        a_ik = store[(label, i, k)].astype(np.float64)
        a_jk = store[(label, j, k)].astype(np.float64)
        a_ij = store[(label, i, j)].astype(np.float64)
        _store_write(store, (label, i, j), a_ij - a_ik @ a_jk.T)
    return kernel


# --------------------------------------------------------------------------- #
# Task generation
# --------------------------------------------------------------------------- #
def generate_cholesky_tasks(
    tiled: TiledSymmetricMatrix,
    label: str = "A",
    conversion: ConversionSide | str = ConversionSide.SENDER,
    jitter: float = 0.0,
) -> list[Task]:
    """Generate the right-looking tile Cholesky task list for ``tiled``.

    The returned tasks carry real kernels (so the local executor produces
    the factor), per-kernel flop counts, the compute precision taken from
    the output tile's storage precision, and communication metadata
    (broadcast fan-out and conversion counts under the chosen conversion
    side).
    """
    side = ConversionSide(conversion)
    nt = tiled.n_tiles
    nb = tiled.tile_size
    tasks: list[Task] = []

    def tile_precision(i: int, j: int) -> Precision:
        return tiled.tiles[(i, j)].precision

    for k in range(nt):
        panel_priority = 2 * (nt - k)
        # POTRF on the diagonal tile.
        consumers = [tile_precision(i, k) for i in range(k + 1, nt)]
        conversions = _conversion_count(tile_precision(k, k), consumers, side)
        tasks.append(
            Task(
                name=f"POTRF({k})",
                kind="POTRF",
                reads=(),
                writes=((label, k, k),),
                flops=potrf_flops(tiled.tile_rows(k)),
                precision=tile_precision(k, k).value,
                func=_potrf_kernel(label, k, jitter),
                priority=panel_priority + 1,
                metadata={
                    "panel": k,
                    "broadcast_fanout": len(consumers),
                    "conversions": conversions,
                },
            )
        )
        for i in range(k + 1, nt):
            # TRSM: panel update of tile (i, k); consumed by GEMM/SYRK tasks.
            gemm_consumers = [tile_precision(i, j) for j in range(k + 1, i)]
            gemm_consumers += [tile_precision(r, i) for r in range(i + 1, nt)]
            gemm_consumers += [tile_precision(i, i)]
            conversions = _conversion_count(tile_precision(i, k), gemm_consumers, side)
            tasks.append(
                Task(
                    name=f"TRSM({i},{k})",
                    kind="TRSM",
                    reads=((label, k, k),),
                    writes=((label, i, k),),
                    flops=trsm_flops(nb) * (tiled.tile_rows(i) / nb),
                    precision=tile_precision(i, k).value,
                    func=_trsm_kernel(label, i, k),
                    priority=panel_priority,
                    metadata={
                        "panel": k,
                        "broadcast_fanout": len(gemm_consumers),
                        "conversions": conversions,
                    },
                )
            )
        for i in range(k + 1, nt):
            tasks.append(
                Task(
                    name=f"SYRK({i},{k})",
                    kind="SYRK",
                    reads=((label, i, k),),
                    writes=((label, i, i),),
                    flops=syrk_flops(tiled.tile_rows(i)),
                    precision=tile_precision(i, i).value,
                    func=_syrk_kernel(label, i, k),
                    priority=panel_priority - 1,
                    metadata={"panel": k},
                )
            )
            for j in range(k + 1, i):
                tasks.append(
                    Task(
                        name=f"GEMM({i},{j},{k})",
                        kind="GEMM",
                        reads=((label, i, k), (label, j, k)),
                        writes=((label, i, j),),
                        flops=gemm_flops(nb)
                        * (tiled.tile_rows(i) / nb)
                        * (tiled.tile_rows(j) / nb),
                        precision=tile_precision(i, j).value,
                        func=_gemm_kernel(label, i, j, k),
                        priority=panel_priority - 2,
                        metadata={"panel": k},
                    )
                )
    return tasks


def _conversion_count(
    source: Precision, consumers: list[Precision], side: ConversionSide
) -> int:
    """Number of precision conversions implied by a broadcast."""
    needing = [c for c in consumers if c != source]
    if not needing:
        return 0
    if side is ConversionSide.SENDER:
        # one conversion per distinct target precision at the producer
        return len({c for c in needing})
    return len(needing)


# --------------------------------------------------------------------------- #
# Plans and results
# --------------------------------------------------------------------------- #
@dataclass
class CholeskyResult:
    """Outcome of a mixed-precision factorisation."""

    factor: TiledSymmetricMatrix
    variant: str
    tile_size: int
    flops_by_precision: dict[str, float]
    total_flops: float
    storage_bytes: int
    dense_bytes: int
    conversions: int
    n_tasks: int

    def lower(self) -> np.ndarray:
        """Dense lower-triangular factor in float64."""
        return np.tril(self.factor.to_dense(lower_only=True))

    def reconstruction(self) -> np.ndarray:
        """``L @ L.T`` of the computed factor."""
        l = self.lower()
        return l @ l.T

    def relative_error(self, matrix: np.ndarray) -> float:
        """``||L L^T - A||_F / ||A||_F`` against the original matrix."""
        a = np.asarray(matrix, dtype=np.float64)
        return float(np.linalg.norm(self.reconstruction() - a, "fro") / np.linalg.norm(a, "fro"))

    def factor_error(self, reference_lower: np.ndarray) -> float:
        """Relative Frobenius error of the factor against a DP reference."""
        ref = np.asarray(reference_lower, dtype=np.float64)
        return float(np.linalg.norm(self.lower() - ref, "fro") / np.linalg.norm(ref, "fro"))

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] = 1) -> np.ndarray:
        """Draw ``N(0, L L^T)`` samples using the computed factor."""
        n = self.factor.n
        shape = (size,) if isinstance(size, int) else tuple(size)
        z = rng.standard_normal(shape + (n,))
        return z @ self.lower().T

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Arrays and metadata from which :meth:`from_state` rebuilds the result.

        Each lower-triangle tile is stored *at its native precision* (fp64 /
        fp32 / fp16 all serialise losslessly to NPZ), so the round trip is
        bit-exact and the on-disk artifact genuinely reflects the
        mixed-precision storage savings rather than re-inflating every tile
        to float64.
        """
        tiles = {
            f"{i}_{j}": tile.data for (i, j), tile in self.factor.tiles.items()
        }
        return {
            "tiles": tiles,
            "n": int(self.factor.n),
            "variant": str(self.variant),
            "tile_size": int(self.tile_size),
            "flops_by_precision": {k: float(v) for k, v in self.flops_by_precision.items()},
            "total_flops": float(self.total_flops),
            "storage_bytes": int(self.storage_bytes),
            "dense_bytes": int(self.dense_bytes),
            "conversions": int(self.conversions),
            "n_tasks": int(self.n_tasks),
        }

    @classmethod
    def from_state(cls, state: dict) -> "CholeskyResult":
        """Rebuild a factorisation result from :meth:`state_dict` output."""
        dtype_to_precision = {p.dtype: p for p in PRECISIONS}
        tiles: dict[tuple[int, int], Tile] = {}
        for key, data in state["tiles"].items():
            i, j = (int(part) for part in key.split("_"))
            data = np.asarray(data)
            precision = dtype_to_precision.get(data.dtype)
            if precision is None:
                raise ValueError(f"tile ({i}, {j}) has unsupported dtype {data.dtype}")
            tiles[(i, j)] = Tile(data=data, precision=precision)
        factor = TiledSymmetricMatrix(
            n=int(state["n"]), tile_size=int(state["tile_size"]), tiles=tiles
        )
        return cls(
            factor=factor,
            variant=str(state["variant"]),
            tile_size=int(state["tile_size"]),
            flops_by_precision={str(k): float(v) for k, v in state["flops_by_precision"].items()},
            total_flops=float(state["total_flops"]),
            storage_bytes=int(state["storage_bytes"]),
            dense_bytes=int(state["dense_bytes"]),
            conversions=int(state["conversions"]),
            n_tasks=int(state["n_tasks"]),
        )


@dataclass
class CholeskyPlan:
    """A tiled matrix together with its factorisation task graph."""

    tiled: TiledSymmetricMatrix
    tasks: list[Task]
    label: str = "A"
    graph: TaskGraph = field(init=False)

    def __post_init__(self) -> None:
        self.graph = build_task_graph(self.tasks)

    def execute(self, validate: bool = True) -> TiledSymmetricMatrix:
        """Run the kernels locally; the tiled matrix becomes its factor."""
        store = self.tiled.as_tile_store(self.label)
        LocalExecutor(validate=validate).run(self.graph, store)
        self.tiled.adopt_store(store, self.label)
        return self.tiled

    def tile_bytes(self) -> dict[tuple, float]:
        """Store-key to byte-size mapping (communication-volume accounting)."""
        return self.tiled.tile_bytes_map(self.label)


class MixedPrecisionCholesky:
    """High-level mixed-precision Cholesky driver.

    Parameters
    ----------
    tile_size:
        Tile edge length.
    variant:
        One of ``"DP"``, ``"DP/SP"``, ``"DP/SP/HP"``, ``"DP/HP"`` or a
        custom :class:`PrecisionPolicy`.
    conversion:
        ``"sender"`` or ``"receiver"`` precision-conversion placement.
    jitter:
        Relative diagonal ridge applied inside POTRF kernels (stabilises the
        aggressive half-precision variants and rank-deficient covariances).
    """

    def __init__(
        self,
        tile_size: int,
        variant: str | PrecisionPolicy = "DP",
        conversion: ConversionSide | str = ConversionSide.SENDER,
        jitter: float = 0.0,
    ) -> None:
        if tile_size < 1:
            raise ValueError("tile_size must be positive")
        self.tile_size = tile_size
        self.policy = variant if isinstance(variant, PrecisionPolicy) else variant_policy(variant)
        self.conversion = ConversionSide(conversion)
        self.jitter = jitter

    def plan(self, matrix: np.ndarray) -> CholeskyPlan:
        """Tile ``matrix`` and build the factorisation task graph."""
        tiled = TiledSymmetricMatrix.from_dense(matrix, self.tile_size, self.policy)
        tasks = generate_cholesky_tasks(
            tiled, conversion=self.conversion, jitter=self.jitter
        )
        return CholeskyPlan(tiled=tiled, tasks=tasks)

    def factorize(self, matrix: np.ndarray) -> CholeskyResult:
        """Factorise ``matrix`` and return the result with accounting."""
        matrix = np.asarray(matrix, dtype=np.float64)
        plan = self.plan(matrix)
        dense_bytes = matrix.shape[0] * matrix.shape[0] * 8
        flops_by_precision: dict[str, float] = {}
        conversions = 0
        for t in plan.tasks:
            flops_by_precision[t.precision] = flops_by_precision.get(t.precision, 0.0) + t.flops
            conversions += int(t.metadata.get("conversions", 0))
        factor = plan.execute()
        return CholeskyResult(
            factor=factor,
            variant=self.policy.name,
            tile_size=self.tile_size,
            flops_by_precision=flops_by_precision,
            total_flops=sum(flops_by_precision.values()),
            storage_bytes=factor.storage_bytes(),
            dense_bytes=dense_bytes,
            conversions=conversions,
            n_tasks=len(plan.tasks),
        )
