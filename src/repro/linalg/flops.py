"""Floating-point operation counts for tile kernels and factorisations.

The performance figures in the paper are reported as achieved Flop/s for a
Cholesky factorisation, using the standard ``n^3 / 3`` operation count.
These helpers provide the per-kernel counts used to weight tasks in the DAG
and the closed-form totals used by the analytic performance model and the
benchmark harness.
"""

from __future__ import annotations

__all__ = [
    "potrf_flops",
    "trsm_flops",
    "syrk_flops",
    "gemm_flops",
    "gemm_flops_mnk",
    "sht_contraction_flops",
    "cholesky_flops",
    "cholesky_tile_counts",
]


def potrf_flops(nb: int) -> float:
    """Flops of a Cholesky factorisation of an ``nb x nb`` tile (~nb^3/3)."""
    n = float(nb)
    return n ** 3 / 3.0 + n ** 2 / 2.0 + n / 6.0


def trsm_flops(nb: int) -> float:
    """Flops of a triangular solve update of an ``nb x nb`` tile (~nb^3)."""
    n = float(nb)
    return n ** 3


def syrk_flops(nb: int) -> float:
    """Flops of a symmetric rank-``nb`` update of an ``nb x nb`` tile (~nb^3)."""
    n = float(nb)
    return n ** 3 + n ** 2


def gemm_flops(nb: int) -> float:
    """Flops of an ``nb x nb x nb`` matrix multiply-accumulate (2 nb^3)."""
    n = float(nb)
    return 2.0 * n ** 3


def gemm_flops_mnk(m: int, n: int, k: int) -> float:
    """Flops of a rectangular ``(m x k) @ (k x n)`` multiply-accumulate."""
    return 2.0 * float(m) * float(n) * float(k)


def sht_contraction_flops(lmax: int, n_slices: int = 1) -> float:
    """Flops of one Wigner/GEMM contraction stage at band-limit ``lmax``.

    Summed over signed orders ``m``, each order multiplies ``n_slices``
    rows against an ``ntheta x (lmax - |m|)`` operator for every of the
    ``2 lmax - 1`` orders; with ``ntheta = 2 lmax - 1`` the closed form
    is ``2 * n_slices * (2 lmax - 1) * lmax^2`` — the per-call attribute
    the SHT spans report so a trace carries its own roofline numbers.
    """
    return 2.0 * float(n_slices) * float(2 * lmax - 1) * float(lmax) ** 2


def cholesky_flops(n: int) -> float:
    """Total flops of a dense Cholesky factorisation of order ``n``."""
    nf = float(n)
    return nf ** 3 / 3.0 + nf ** 2 / 2.0 + nf / 6.0


def cholesky_tile_counts(n_tiles: int) -> dict[str, int]:
    """Number of tasks of each kind in a tiled Cholesky with ``n_tiles`` tiles.

    ``POTRF``: one per diagonal tile; ``TRSM``: one per sub-diagonal tile of
    each panel; ``SYRK``: one per diagonal update; ``GEMM``: the strictly
    lower-triangular updates.
    """
    t = n_tiles
    return {
        "POTRF": t,
        "TRSM": t * (t - 1) // 2,
        "SYRK": t * (t - 1) // 2,
        "GEMM": t * (t - 1) * (t - 2) // 6,
    }
