"""Tiled storage of symmetric positive-definite matrices.

The covariance matrix ``U`` of the emulator's spectral innovations is
symmetric positive definite; only its lower triangle is stored, partitioned
into square tiles whose individual storage precision is dictated by a
:class:`~repro.linalg.policies.PrecisionPolicy`.  The container provides
conversion to and from dense float64 matrices, per-precision byte
accounting (the memory-saving side of mixed precision), and the tile store
consumed by the runtime executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.linalg.policies import PrecisionPolicy, variant_policy
from repro.linalg.precision import Precision
from repro.linalg.tile import Tile
from repro.runtime.executor import TileStore

__all__ = ["TiledSymmetricMatrix"]


@dataclass
class TiledSymmetricMatrix:
    """Lower-triangular tiled storage of a symmetric matrix.

    Parameters
    ----------
    n:
        Matrix order.
    tile_size:
        Tile edge length ``nb``; the last tile row/column may be smaller.
    tiles:
        Mapping ``(i, j) -> Tile`` for ``i >= j``.
    policy:
        The precision policy the tiles were built with (kept for reporting).
    """

    n: int
    tile_size: int
    tiles: dict[tuple[int, int], Tile] = field(default_factory=dict)
    policy: PrecisionPolicy | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(
        cls,
        matrix: np.ndarray,
        tile_size: int,
        policy: PrecisionPolicy | str = "DP",
    ) -> "TiledSymmetricMatrix":
        """Tile a dense symmetric matrix under a precision policy."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        if tile_size < 1:
            raise ValueError("tile_size must be positive")
        if isinstance(policy, str):
            policy = variant_policy(policy)
        n = matrix.shape[0]
        n_tiles = int(np.ceil(n / tile_size))
        tiles: dict[tuple[int, int], Tile] = {}
        for i in range(n_tiles):
            for j in range(i + 1):
                block = matrix[
                    i * tile_size: min((i + 1) * tile_size, n),
                    j * tile_size: min((j + 1) * tile_size, n),
                ]
                precision = policy.assign(i, j, n_tiles)
                tiles[(i, j)] = Tile(data=block.copy(), precision=precision)
        return cls(n=n, tile_size=tile_size, tiles=tiles, policy=policy)

    # ------------------------------------------------------------------ #
    # Shape helpers
    # ------------------------------------------------------------------ #
    @property
    def n_tiles(self) -> int:
        """Number of tile rows/columns."""
        return int(np.ceil(self.n / self.tile_size))

    def tile_rows(self, i: int) -> int:
        """Row count of tiles in tile-row ``i``."""
        return min(self.tile_size, self.n - i * self.tile_size)

    def tile(self, i: int, j: int) -> Tile:
        """The tile at ``(i, j)`` of the lower triangle."""
        if j > i:
            raise KeyError("only the lower triangle is stored")
        return self.tiles[(i, j)]

    # ------------------------------------------------------------------ #
    # Conversions and accounting
    # ------------------------------------------------------------------ #
    def to_dense(self, lower_only: bool = False) -> np.ndarray:
        """Reassemble a dense float64 matrix (symmetrised unless asked not to)."""
        out = np.zeros((self.n, self.n), dtype=np.float64)
        nb = self.tile_size
        for (i, j), tile in self.tiles.items():
            ri = slice(i * nb, i * nb + tile.shape[0])
            cj = slice(j * nb, j * nb + tile.shape[1])
            out[ri, cj] = tile.as_float64()
        if not lower_only:
            out = np.tril(out) + np.tril(out, -1).T
        return out

    def storage_bytes(self) -> int:
        """Total bytes of the tiled (mixed-precision) representation."""
        return int(sum(t.nbytes for t in self.tiles.values()))

    def dense_bytes(self, precision: Precision = Precision.DOUBLE) -> int:
        """Bytes of a dense full-matrix copy at a uniform precision."""
        return int(self.n) * int(self.n) * precision.bytes_per_element

    def bytes_by_precision(self) -> dict[Precision, int]:
        """Tiled storage grouped by precision."""
        out: dict[Precision, int] = {p: 0 for p in Precision}
        for tile in self.tiles.values():
            out[tile.precision] += tile.nbytes
        return {p: b for p, b in out.items() if b}

    def compression_ratio(self) -> float:
        """Dense double-precision bytes divided by mixed-precision bytes.

        Only the stored lower triangle is compared against its dense
        double-precision equivalent, so a full-DP policy reports 1.0.
        """
        dense_lower = 0
        nb = self.tile_size
        for (i, j), tile in self.tiles.items():
            dense_lower += tile.data.size * Precision.DOUBLE.bytes_per_element
        stored = self.storage_bytes()
        return dense_lower / stored if stored else 1.0

    def precision_counts(self) -> dict[str, int]:
        """Number of tiles per precision short-name."""
        out: dict[str, int] = {}
        for tile in self.tiles.values():
            key = tile.precision.short_name
            out[key] = out.get(key, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    # Runtime integration
    # ------------------------------------------------------------------ #
    def as_tile_store(self, label: str = "A") -> TileStore:
        """A runtime tile store viewing the tiles as ``(label, i, j)`` keys.

        The store holds the *same* arrays as the tiles, so kernels executed
        by the runtime mutate this matrix in place.
        """
        store = TileStore()
        for (i, j), tile in self.tiles.items():
            store[(label, i, j)] = tile.data
        return store

    def adopt_store(self, store: TileStore, label: str = "A") -> None:
        """Re-bind tile arrays from a store (after kernels replaced them)."""
        for (i, j), tile in self.tiles.items():
            tile.data = np.asarray(store[(label, i, j)]).astype(tile.precision.dtype)

    def tile_bytes_map(self, label: str = "A") -> dict[tuple, float]:
        """Mapping from store keys to tile sizes in bytes (byte accounting)."""
        return {(label, i, j): float(t.nbytes) for (i, j), t in self.tiles.items()}
