"""Tile-based mixed-precision dense linear algebra.

The emulator's heaviest kernel is the Cholesky factorisation of the
``L^2 x L^2`` innovation covariance matrix (Eq. 9).  The paper performs it
with a tile algorithm whose tiles are stored and computed at different
precisions (double, single, half) according to a band policy, executed as a
task DAG by PaRSEC.  This subpackage reproduces the numerical side of that
machinery with NumPy:

* :mod:`repro.linalg.precision` — the precision descriptors (fp64 / fp32 /
  fp16), conversion helpers and byte accounting.
* :mod:`repro.linalg.flops` — kernel and factorisation flop counts.
* :mod:`repro.linalg.tile` / :mod:`repro.linalg.tiled_matrix` — tile storage
  and the tiled symmetric matrix container.
* :mod:`repro.linalg.policies` — the precision-assignment policies: DP,
  DP/SP, DP/SP/HP, DP/HP band variants plus a data-adaptive (tile-centric)
  policy.
* :mod:`repro.linalg.cholesky` — the tiled Cholesky factorisation: task
  generation (POTRF / TRSM / SYRK / GEMM), real mixed-precision execution
  through the local runtime executor, sender- versus receiver-side
  conversion accounting, and dense reference algorithms.
"""

from repro.linalg.precision import Precision, PRECISIONS
from repro.linalg.flops import (
    cholesky_flops,
    gemm_flops,
    potrf_flops,
    syrk_flops,
    trsm_flops,
)
from repro.linalg.policies import (
    CHOLESKY_VARIANTS,
    PrecisionPolicy,
    VARIANTS,
    adaptive_policy,
    band_policy,
    variant_policy,
)
from repro.linalg.tile import Tile
from repro.linalg.tiled_matrix import TiledSymmetricMatrix
from repro.linalg.cholesky import (
    CholeskyPlan,
    MixedPrecisionCholesky,
    dense_cholesky,
    generate_cholesky_tasks,
)

__all__ = [
    "CHOLESKY_VARIANTS",
    "CholeskyPlan",
    "MixedPrecisionCholesky",
    "PRECISIONS",
    "Precision",
    "PrecisionPolicy",
    "Tile",
    "TiledSymmetricMatrix",
    "VARIANTS",
    "adaptive_policy",
    "band_policy",
    "cholesky_flops",
    "dense_cholesky",
    "gemm_flops",
    "generate_cholesky_tasks",
    "potrf_flops",
    "syrk_flops",
    "trsm_flops",
    "variant_policy",
]
