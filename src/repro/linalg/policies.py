"""Precision-assignment policies for tiled symmetric matrices.

The paper evaluates four precision variants of the tile Cholesky
factorisation (Section IV-B):

* ``DP`` — every tile in double precision (the reference);
* ``DP/SP`` — the diagonal band in double precision, every other tile in
  single precision;
* ``DP/SP/HP`` — the diagonal band in double precision, the nearest 5% of
  off-diagonal bands in single precision, everything else in half
  precision;
* ``DP/HP`` — the diagonal band in double precision, everything else in
  half precision.

Band policies reflect the covariance structure of the spherical-harmonic
innovation matrix: correlation strength (and hence the numerical weight of
a tile) decays away from the diagonal, so distant tiles tolerate lower
precision.  A data-adaptive (tile-centric) policy is also provided, which
inspects tile norms instead of positions, mirroring the adaptive approach
of the authors' earlier work cited in Section III-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.linalg.precision import Precision
from repro.util.registry import BackendRegistry

__all__ = [
    "CHOLESKY_VARIANTS",
    "PrecisionPolicy",
    "band_policy",
    "variant_policy",
    "adaptive_policy",
    "VARIANTS",
]


@dataclass(frozen=True)
class PrecisionPolicy:
    """Assign a storage precision to each tile of a tiled matrix.

    Parameters
    ----------
    name:
        Display name (e.g. ``"DP/HP"``).
    assign:
        Callable ``assign(i, j, n_tiles) -> Precision`` for tile ``(i, j)``
        of an ``n_tiles x n_tiles`` tile grid (lower-triangular indices,
        ``i >= j``).
    """

    name: str
    assign: Callable[[int, int, int], Precision]

    def precision_map(self, n_tiles: int) -> dict[tuple[int, int], Precision]:
        """Precisions of every lower-triangular tile."""
        return {
            (i, j): self.assign(i, j, n_tiles)
            for i in range(n_tiles)
            for j in range(i + 1)
        }

    def fractions(self, n_tiles: int) -> dict[Precision, float]:
        """Fraction of lower-triangular tiles at each precision."""
        counts: dict[Precision, int] = {p: 0 for p in Precision}
        total = 0
        for i in range(n_tiles):
            for j in range(i + 1):
                counts[self.assign(i, j, n_tiles)] += 1
                total += 1
        return {p: c / total for p, c in counts.items() if total}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def band_policy(
    name: str,
    bands: tuple[tuple[int | float, Precision], ...],
    default: Precision,
) -> PrecisionPolicy:
    """Build a policy from (band-width, precision) pairs.

    ``bands`` is a sequence of ``(width, precision)`` tuples interpreted in
    order: a tile ``(i, j)`` whose distance from the diagonal ``|i - j|`` is
    strictly less than the cumulative width receives that precision.  A
    float width in ``(0, 1)`` is interpreted as a fraction of ``n_tiles``.
    Tiles beyond every band get ``default``.
    """

    def assign(i: int, j: int, n_tiles: int) -> Precision:
        distance = abs(i - j)
        cumulative = 0.0
        for width, precision in bands:
            w = width * n_tiles if isinstance(width, float) and width < 1 else width
            cumulative += max(float(w), 0.0)
            if distance < cumulative:
                return precision
        return default

    return PrecisionPolicy(name=name, assign=assign)


#: Registry of named Cholesky tile-precision policies.  The four paper
#: variants are registered below; new policies can be added with
#: ``CHOLESKY_VARIANTS.register(name, factory)`` and then referenced by
#: name from :class:`~repro.core.config.EmulatorConfig` without touching
#: any consumer code.
CHOLESKY_VARIANTS = BackendRegistry(
    "Cholesky precision variant", doc_hint="docs/api.md#cholesky-precision-variants"
)

CHOLESKY_VARIANTS.register(
    "DP",
    lambda: band_policy("DP", (), Precision.DOUBLE),
    description="every tile in double precision (the reference)",
)
CHOLESKY_VARIANTS.register(
    "DP/SP",
    lambda: band_policy("DP/SP", ((1, Precision.DOUBLE),), Precision.SINGLE),
    description="double-precision diagonal band, single precision elsewhere",
)
CHOLESKY_VARIANTS.register(
    "DP/SP/HP",
    lambda: band_policy(
        "DP/SP/HP",
        ((1, Precision.DOUBLE), (0.05, Precision.SINGLE)),
        Precision.HALF,
    ),
    description=(
        "double-precision diagonal band, nearest 5% of off-diagonal bands "
        "in single precision, half precision elsewhere"
    ),
)
CHOLESKY_VARIANTS.register(
    "DP/HP",
    lambda: band_policy("DP/HP", ((1, Precision.DOUBLE),), Precision.HALF),
    description="double-precision diagonal band, half precision elsewhere",
)


def variant_policy(variant: str) -> PrecisionPolicy:
    """The paper's named variants (DP, DP/SP, DP/SP/HP, DP/HP) by name.

    The diagonal band (distance 0, i.e. the diagonal tiles and their
    immediate neighbours' diagonal blocks) stays in double precision in all
    mixed variants; DP/SP/HP additionally keeps the nearest 5% of
    off-diagonal bands in single precision (Section IV-B).  Resolution goes
    through :data:`CHOLESKY_VARIANTS`, so policies registered there are
    available here (and through :class:`~repro.core.config.EmulatorConfig`)
    under their registered names; unknown names raise an error listing the
    available variants.
    """
    return CHOLESKY_VARIANTS.create(variant)


#: The four variants studied in the paper, in increasing aggressiveness.
VARIANTS: tuple[str, ...] = ("DP", "DP/SP", "DP/SP/HP", "DP/HP")


def adaptive_policy(
    matrix: np.ndarray,
    tile_size: int,
    sp_threshold: float = 1e-2,
    hp_threshold: float = 1e-4,
    name: str = "adaptive",
) -> PrecisionPolicy:
    """Tile-centric adaptive policy based on relative tile norms.

    Tiles whose Frobenius norm relative to the largest diagonal tile norm
    falls below ``sp_threshold`` are stored in single precision, and below
    ``hp_threshold`` in half precision; diagonal tiles always stay double.
    This mimics the numerics-driven ("tile-centric") precision selection of
    the authors' earlier geospatial work.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    n_tiles = int(np.ceil(n / tile_size))
    norms = np.zeros((n_tiles, n_tiles))
    for i in range(n_tiles):
        for j in range(i + 1):
            block = matrix[
                i * tile_size: min((i + 1) * tile_size, n),
                j * tile_size: min((j + 1) * tile_size, n),
            ]
            norms[i, j] = np.linalg.norm(block)
    diag_ref = max(norms[i, i] for i in range(n_tiles)) or 1.0
    rel = norms / diag_ref

    def assign(i: int, j: int, nt: int) -> Precision:
        if i == j:
            return Precision.DOUBLE
        if i >= rel.shape[0] or j >= rel.shape[1]:
            return Precision.DOUBLE
        value = rel[i, j]
        if value < hp_threshold:
            return Precision.HALF
        if value < sp_threshold:
            return Precision.SINGLE
        return Precision.DOUBLE

    return PrecisionPolicy(name=name, assign=assign)
