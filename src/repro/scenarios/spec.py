"""Scenario specification: a named, serialisable sum of forcing components.

A :class:`ScenarioSpec` is the unit the scenario engine trades in: the
registry stores factories producing them, the campaign runner fans them
out across workers, and :meth:`ClimateEmulator.emulate
<repro.core.emulator.ClimateEmulator.emulate>` accepts one directly in
place of a raw forcing array.  Like every other pipeline stage it follows
the ``state_dict()`` / ``from_state()`` protocol, so a scenario travels
inside manifests and artifacts as plain JSON-able data.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.scenarios.components import ForcingComponent, component_from_state

__all__ = ["ScenarioSpec"]


@dataclass(frozen=True)
class ScenarioSpec:
    """A forcing pathway assembled from additive components.

    Parameters
    ----------
    name:
        Identifier used in registries, manifests and output file names.
    components:
        The additive :class:`~repro.scenarios.components.ForcingComponent`
        parts; their annual series are summed in order.
    description:
        One-line human description (surfaced by ``repro.list_scenarios``).

    Examples
    --------
    >>> from repro.scenarios.components import GHGRamp, VolcanicEruption
    >>> spec = ScenarioSpec("ramp+eruption", (
    ...     GHGRamp(base=2.0, rate=0.1),
    ...     VolcanicEruption(year_index=3, magnitude=-2.0),
    ... ))
    >>> spec.annual_forcing(5).round(2).tolist()
    [2.0, 2.1, 2.2, 0.3, 1.37]
    """

    name: str
    components: tuple[ForcingComponent, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "components", tuple(self.components))
        if not str(self.name):
            raise ValueError("a scenario needs a non-empty name")
        for component in self.components:
            if not callable(getattr(component, "annual_series", None)):
                raise TypeError(
                    f"scenario component {component!r} does not provide annual_series()"
                )

    # ------------------------------------------------------------------ #
    # Evaluation and composition
    # ------------------------------------------------------------------ #
    def annual_forcing(self, n_years: int) -> np.ndarray:
        """Annual forcing trajectory (W m^-2) for years ``0 .. n_years - 1``."""
        n_years = int(n_years)
        if n_years < 1:
            raise ValueError("n_years must be positive")
        if not self.components:
            return np.zeros(n_years, dtype=np.float64)
        total = np.array(self.components[0].annual_series(n_years), dtype=np.float64)
        for component in self.components[1:]:
            total += component.annual_series(n_years)
        return total

    def with_component(self, *components: ForcingComponent) -> "ScenarioSpec":
        """A new spec with ``components`` appended (the original is unchanged)."""
        return dataclasses.replace(self, components=self.components + tuple(components))

    def rename(self, name: str, description: str | None = None) -> "ScenarioSpec":
        """The same pathway under a new name (e.g. before re-registering)."""
        return dataclasses.replace(
            self, name=name,
            description=self.description if description is None else description,
        )

    def __add__(self, other: "ForcingComponent | ScenarioSpec") -> "ScenarioSpec":
        """Compose by addition: ``spec + component`` or ``spec + spec``."""
        if isinstance(other, ScenarioSpec):
            return dataclasses.replace(
                self, components=self.components + other.components
            )
        return self.with_component(other)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """JSON-able state from which :meth:`from_state` rebuilds the spec."""
        return {
            "name": str(self.name),
            "description": str(self.description),
            "components": [component.state_dict() for component in self.components],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`state_dict` output."""
        return cls(
            name=str(state["name"]),
            description=str(state.get("description", "")),
            components=tuple(
                component_from_state(component) for component in state["components"]
            ),
        )
