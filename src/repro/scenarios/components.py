"""Composable radiative-forcing components.

A forcing pathway is a *sum of physically named parts*: a greenhouse-gas
ramp, discrete volcanic eruptions, an aerosol offset that fades as air
quality improves, the quasi-periodic solar cycle, and a
stabilisation-to-target drawdown.  Each part is a small frozen dataclass
with one job — turn a year count into an annual W m^-2 series — so new
pathways are assembled by composition instead of by editing a dispatch
table.  :class:`~repro.scenarios.spec.ScenarioSpec` holds a tuple of
components and sums them.

Every component serialises through the same ``state_dict()`` /
``component_from_state()`` protocol the rest of the pipeline uses; the
``kind`` tag is resolved through :data:`FORCING_COMPONENTS`, a
:class:`~repro.util.registry.BackendRegistry`, so third-party components
register themselves without edits here.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.util.registry import BackendRegistry

__all__ = [
    "AerosolOffset",
    "FORCING_COMPONENTS",
    "ForcingComponent",
    "GHGRamp",
    "HISTORICAL_VOLCANOES",
    "SolarCycle",
    "Stabilisation",
    "VolcanicEruption",
    "component_from_state",
    "historical_pathway",
]

#: Registry resolving a component ``kind`` tag to its dataclass.
FORCING_COMPONENTS = BackendRegistry("forcing component")


def _years(n_years: int) -> np.ndarray:
    """Validated year axis ``0 .. n_years - 1`` as float64."""
    n_years = int(n_years)
    if n_years < 1:
        raise ValueError("n_years must be positive")
    return np.arange(n_years, dtype=np.float64)


class ForcingComponent:
    """One additive term of a forcing pathway.

    Subclasses are frozen dataclasses of scalars, declare a unique
    ``kind`` tag, register themselves in :data:`FORCING_COMPONENTS`, and
    implement :meth:`annual_series`.
    """

    kind: ClassVar[str] = ""

    def annual_series(self, n_years: int) -> np.ndarray:
        """Annual contribution (W m^-2) for years ``0 .. n_years - 1``."""
        raise NotImplementedError

    def state_dict(self) -> dict:
        """JSON-able parameters plus the ``kind`` tag for re-dispatch."""
        return {"kind": self.kind, **dataclasses.asdict(self)}

    @classmethod
    def from_state(cls, state: dict) -> "ForcingComponent":
        """Rebuild a component from :meth:`state_dict` output.

        Dispatches on the ``kind`` tag through
        :func:`component_from_state`; calling this on a concrete subclass
        additionally asserts the rebuilt component is of that subclass.
        """
        component = component_from_state(state)
        if not isinstance(component, cls):
            raise TypeError(
                f"state kind {state.get('kind')!r} rebuilds a "
                f"{type(component).__name__}, not a {cls.__name__}"
            )
        return component


def component_from_state(state: dict) -> ForcingComponent:
    """Rebuild a component from :meth:`ForcingComponent.state_dict` output.

    The ``kind`` tag is resolved through :data:`FORCING_COMPONENTS`, so an
    unknown tag raises an error listing every registered component kind.
    """
    params = {key: value for key, value in state.items() if key != "kind"}
    return FORCING_COMPONENTS.create(state["kind"], **params)


@FORCING_COMPONENTS.register("ghg-ramp", description="(accelerating) greenhouse-gas ramp")
@dataclass(frozen=True)
class GHGRamp(ForcingComponent):
    """Greenhouse-gas growth ``base + rate * y * (1 + acceleration * y)``.

    ``acceleration = 0`` gives a linear ramp; ``rate = 0`` a constant
    level.  The default historical reconstruction uses a gently
    accelerating ramp.
    """

    base: float
    rate: float = 0.0
    acceleration: float = 0.0

    kind: ClassVar[str] = "ghg-ramp"

    def annual_series(self, n_years: int) -> np.ndarray:
        years = _years(n_years)
        return self.base + self.rate * years * (1.0 + self.acceleration * years)


@FORCING_COMPONENTS.register("volcanic-eruption", description="negative eruption excursion with exponential decay")
@dataclass(frozen=True)
class VolcanicEruption(ForcingComponent):
    """A short negative excursion starting at ``year_index``.

    Contributes ``magnitude * exp(-(y - year_index) / decay_years)`` from
    the eruption year onward and nothing before it (eruptions beyond the
    record contribute nothing).
    """

    year_index: int
    magnitude: float
    decay_years: float = 1.5

    kind: ClassVar[str] = "volcanic-eruption"

    def __post_init__(self) -> None:
        if self.year_index < 0:
            raise ValueError("year_index must be non-negative")
        if self.decay_years <= 0:
            raise ValueError("decay_years must be positive")

    def annual_series(self, n_years: int) -> np.ndarray:
        years = _years(n_years)
        decay = np.exp(-np.maximum(years - self.year_index, 0.0) / self.decay_years)
        decay[years < self.year_index] = 0.0
        return self.magnitude * decay


@FORCING_COMPONENTS.register("aerosol-offset", description="aerosol offset, optionally fading out")
@dataclass(frozen=True)
class AerosolOffset(ForcingComponent):
    """A (typically negative) aerosol term.

    Constant at ``magnitude`` when ``fade_years`` is ``None``; otherwise it
    decays as ``exp(-(y - fade_start_year) / fade_years)`` once clean-air
    measures begin at ``fade_start_year`` — the forcing *rises* as the
    offset fades, the usual aerosol-cleanup effect in SSP pathways.
    """

    magnitude: float
    fade_start_year: float = 0.0
    fade_years: float | None = None

    kind: ClassVar[str] = "aerosol-offset"

    def __post_init__(self) -> None:
        if self.fade_years is not None and self.fade_years <= 0:
            raise ValueError("fade_years must be positive (or None for no fade)")

    def annual_series(self, n_years: int) -> np.ndarray:
        years = _years(n_years)
        if self.fade_years is None:
            return np.full(years.shape, self.magnitude)
        fade = np.exp(-np.maximum(years - self.fade_start_year, 0.0) / self.fade_years)
        return self.magnitude * fade


@FORCING_COMPONENTS.register("solar-cycle", description="sinusoidal solar activity cycle")
@dataclass(frozen=True)
class SolarCycle(ForcingComponent):
    """Quasi-periodic solar variability ``amplitude * sin(2 pi (y + phase) / period)``."""

    amplitude: float
    period_years: float = 11.0
    phase_years: float = 0.0

    kind: ClassVar[str] = "solar-cycle"

    def __post_init__(self) -> None:
        if self.period_years <= 0:
            raise ValueError("period_years must be positive")

    def annual_series(self, n_years: int) -> np.ndarray:
        years = _years(n_years)
        phase = 2.0 * np.pi * (years + self.phase_years) / self.period_years
        return self.amplitude * np.sin(phase)


@FORCING_COMPONENTS.register("stabilisation", description="exponential approach to a stabilisation target")
@dataclass(frozen=True)
class Stabilisation(ForcingComponent):
    """Stabilisation-to-target: approach ``base + amplitude`` on ``timescale_years``.

    ``base + amplitude * (1 - exp(-(y - delay_years) / timescale_years))``,
    flat at ``base`` before ``delay_years``.  A negative ``amplitude`` with
    a positive delay models a delayed drawdown, the second leg of an
    overshoot pathway.
    """

    base: float
    amplitude: float
    timescale_years: float
    delay_years: float = 0.0

    kind: ClassVar[str] = "stabilisation"

    def __post_init__(self) -> None:
        if self.timescale_years <= 0:
            raise ValueError("timescale_years must be positive")

    @property
    def target(self) -> float:
        """The level approached as ``y -> inf``."""
        return self.base + self.amplitude

    def annual_series(self, n_years: int) -> np.ndarray:
        years = _years(n_years)
        ramp = 1.0 - np.exp(-np.maximum(years - self.delay_years, 0.0) / self.timescale_years)
        return self.base + self.amplitude * ramp


#: The three historical-like eruptions of the 1940-2022 reconstruction.
HISTORICAL_VOLCANOES: tuple[VolcanicEruption, ...] = (
    VolcanicEruption(year_index=23, magnitude=-2.0),   # Agung-like
    VolcanicEruption(year_index=42, magnitude=-2.5),   # El Chichon-like
    VolcanicEruption(year_index=51, magnitude=-3.0),   # Pinatubo-like
)


def historical_pathway(
    base: float = 0.3,
    growth: float = 0.035,
    acceleration: float = 0.012,
    volcanoes: tuple[VolcanicEruption, ...] = HISTORICAL_VOLCANOES,
) -> tuple[ForcingComponent, ...]:
    """Components of the historical-like reconstruction.

    A slowly accelerating greenhouse-gas ramp plus the three canonical
    eruptions; :func:`repro.data.forcing.historical_forcing` sums exactly
    these components.
    """
    return (GHGRamp(base=base, rate=growth, acceleration=acceleration), *volcanoes)
