"""Scenario engine: composable forcing pathways and campaign execution.

The paper's storage claim — parameters replace petabytes — pays off when
one fitted emulator is replayed across many futures.  This subpackage is
that replay layer:

* :mod:`repro.scenarios.components` — additive forcing building blocks
  (GHG ramps, volcanic eruptions, aerosol offsets, the solar cycle,
  stabilisation-to-target), each a small serialisable dataclass;
* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, a named sum of
  components with the pipeline-wide ``state_dict()`` / ``from_state()``
  protocol; accepted directly by ``repro.emulate`` in place of a forcing
  array;
* :mod:`repro.scenarios.registry` — the named pathway registry
  (:data:`SCENARIOS`), pre-populated with the five legacy scenarios and
  SSP-like low / medium / high / overshoot pathways; registering a new
  pathway needs no core edits;
* :mod:`repro.scenarios.campaign` — :func:`run_campaign`, the sharded
  multi-scenario, multi-realization runner with per-run
  ``SeedSequence``-spawned streams and a :class:`CampaignManifest`.

``campaign`` imports the API facade and is therefore loaded lazily here:
this package's lower layers (components/spec/registry) are imported by
:mod:`repro.data.forcing` while the core package is still initialising,
and an eager campaign import would close an import cycle through
``repro.api``.
"""

from __future__ import annotations

from repro.scenarios.components import (
    FORCING_COMPONENTS,
    AerosolOffset,
    ForcingComponent,
    GHGRamp,
    SolarCycle,
    Stabilisation,
    VolcanicEruption,
    component_from_state,
)
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.registry import (
    SCENARIOS,
    list_scenarios,
    register_scenario,
    resolve_scenario,
    resolve_scenario_state,
)

__all__ = [
    "AerosolOffset",
    "CampaignManifest",
    "CampaignRunPlan",
    "CampaignRunRecord",
    "FORCING_COMPONENTS",
    "ForcingComponent",
    "GHGRamp",
    "SCENARIOS",
    "ScenarioSpec",
    "SolarCycle",
    "Stabilisation",
    "VolcanicEruption",
    "component_from_state",
    "iter_chunk_arrays",
    "list_scenarios",
    "plan_campaign",
    "register_scenario",
    "resolve_scenario",
    "resolve_scenario_state",
    "run_campaign",
]

_CAMPAIGN_EXPORTS = {
    "CampaignManifest",
    "CampaignRunPlan",
    "CampaignRunRecord",
    "iter_chunk_arrays",
    "plan_campaign",
    "run_campaign",
}


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS or name == "campaign":
        from repro.scenarios import campaign

        return campaign if name == "campaign" else getattr(campaign, name)
    raise AttributeError(f"module 'repro.scenarios' has no attribute {name!r}")
