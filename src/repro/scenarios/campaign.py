"""Parallel ensemble-campaign runner: fit once, replay across many futures.

The storage story of the paper only pays off when one fitted emulator is
replayed across many forcing pathways and realisations.  This module turns
that replay into a single sharded job: :func:`run_campaign` takes a fitted
emulator (or a saved artifact path) plus ``scenarios x realizations``, and

* assigns every run an independent, reproducible random stream via
  ``np.random.SeedSequence.spawn`` — run ``i`` always gets the child with
  ``spawn_key == (i,)``, so a campaign is bit-identical no matter how many
  workers execute it or in which order they finish;
* shards the runs across ``concurrent.futures`` workers (threads by
  default — generation is read-only on the fitted state — or processes);
* drives :meth:`ClimateEmulator.emulate_stream
  <repro.core.emulator.ClimateEmulator.emulate_stream>` so peak memory
  stays at one chunk per worker regardless of scenario length, optionally
  writing each chunk straight to disk;
* optionally *batches* realizations of the same scenario
  (``batch_size > 1``): each batched run keeps its own per-run generator,
  but the VAR recursion and the inverse spherical-harmonic transform run
  once on the stacked coefficient block
  (:meth:`EmulationGenerator.generate_stream_multi
  <repro.core.generator.EmulationGenerator.generate_stream_multi>`), which
  amortises the ``O(L^3)`` synthesis over the batch with bit-identical
  output;
* emits a :class:`CampaignManifest` recording, per run, the scenario, the
  seed spawn key, the chunk layout and the measured output bytes — the
  numbers :func:`repro.storage.accounting.campaign_storage_report` turns
  into the artifact-to-output "boost factor";
* optionally lands every chunk in the serving tier's persistent
  :class:`~repro.storage.chunkstore.ChunkStore` (``store=``): chunks are
  keyed by the same ``(stream, realization, year)`` content-addresses
  :class:`~repro.serving.service.EmulationService` uses, and store-backed
  runs draw realization ``r`` from ``SeedSequence(seed, spawn_key=(r,))``
  — the service's own stream — so a campaign *pre-warms* serving: every
  campaign chunk is later served from the store with zero cold synthesis,
  bit-identical for a lossless (float64) store.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import tempfile
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.api.facade import _resolve as _resolve_emulator
from repro.obs import counter_add, gauge_set, span
from repro.scenarios.registry import resolve_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.serving.request import FieldRequest, chunk_address
from repro.storage.chunkstore import ChunkStore
from repro.tuning import CampaignShape, load_or_calibrate, plan_campaign_execution

__all__ = [
    "CampaignManifest",
    "CampaignRunPlan",
    "CampaignRunRecord",
    "iter_chunk_arrays",
    "plan_campaign",
    "run_campaign",
]

_COLLECT_MODES = ("global-mean", "fields", "none")


def _slug(name: str) -> str:
    """File-name-safe spelling of a scenario name."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", str(name)).strip("-") or "scenario"


@dataclass(frozen=True)
class CampaignRunPlan:
    """Everything one worker needs to execute one campaign run.

    ``index_width`` / ``chunk_width`` are the zero-padding widths of the
    output chunk filenames, computed by :func:`plan_campaign` from the
    campaign's actual run and chunk counts (never below the historical
    3/4 digits) so lexicographic filename order equals execution order
    even for campaigns beyond 1000 runs or 10000 chunks.

    ``store_root``/``store_encoding``/``stream_address`` are set when the
    campaign writes into a :class:`~repro.storage.chunkstore.ChunkStore`:
    plain strings rather than a store handle, so plans stay picklable for
    process pools (each worker opens its own handle, cached per process).
    ``stream_address`` is the run's scenario-stream content-address from
    :meth:`repro.serving.request.FieldRequest.stream_address`.
    """

    index: int
    scenario: str
    realization: int
    seed: np.random.SeedSequence
    forcing: np.ndarray
    n_times: int
    chunk_size: int
    include_nugget: bool
    collect: str
    output_dir: str | None
    index_width: int = 3
    chunk_width: int = 4
    store_root: str | None = None
    store_encoding: str = "float64"
    stream_address: str | None = None

    @property
    def spawn_key(self) -> tuple[int, ...]:
        """The run's ``SeedSequence`` spawn key (recorded in the manifest)."""
        return tuple(int(k) for k in self.seed.spawn_key)


@dataclass
class CampaignRunRecord:
    """Outcome of one campaign run, as recorded in the manifest."""

    index: int
    scenario: str
    realization: int
    spawn_key: tuple[int, ...]
    n_times: int
    chunk_sizes: list[int]
    output_bytes: int
    output_files: list[str] = field(default_factory=list)
    #: Content-addresses of this run's chunks in the campaign's
    #: ``ChunkStore`` (chunk order), empty for store-less campaigns.
    #: These are the exact addresses ``FieldRequest`` serving resolves,
    #: so the serving tier and :func:`iter_chunk_arrays` address the
    #: same bytes.
    chunk_addresses: list[str] = field(default_factory=list)
    collected: np.ndarray | None = None
    #: Measured wall-clock seconds of the run's execution block.  Runs
    #: batched through ``batch_size > 1`` share one synthesis pass, so
    #: they report the block's wall time, not a per-run share.  Like
    #: ``collected``, timing is measurement rather than content: it stays
    #: off :meth:`to_dict`, which campaign tests pin bit-identical across
    #: executors and batch sizes (the manifest-level ``timing`` block
    #: carries it instead).
    wall_seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-able summary (the ``collected`` array stays on the object)."""
        return {
            "index": int(self.index),
            "scenario": str(self.scenario),
            "realization": int(self.realization),
            "spawn_key": list(self.spawn_key),
            "n_times": int(self.n_times),
            "chunk_sizes": [int(c) for c in self.chunk_sizes],
            "output_bytes": int(self.output_bytes),
            "output_files": [str(f) for f in self.output_files],
            "chunk_addresses": [str(a) for a in self.chunk_addresses],
        }


@dataclass
class CampaignManifest:
    """The record of a campaign: settings plus one entry per run."""

    seed: int
    n_times: int
    steps_per_year: int
    chunk_size: int
    collect: str
    max_workers: int
    executor: str
    artifact_bytes: int
    runs: list[CampaignRunRecord] = field(default_factory=list)
    batch_size: int = 1
    #: Wall-clock seconds of the whole execution phase (planning through
    #: the last worker), measured by the ``campaign.total`` span.
    total_wall_seconds: float = 0.0
    #: One ``{"scenario", "n_runs", "wall_seconds"}`` entry per executed
    #: block, in campaign order (sourced from the ``campaign.batch`` /
    #: ``campaign.run`` spans).
    batch_timings: list[dict] = field(default_factory=list)
    #: Persistent-store header when the campaign wrote into a
    #: :class:`~repro.storage.chunkstore.ChunkStore`:
    #: ``{"root", "encoding", "stream_addresses": {scenario: address}}``.
    #: ``None`` for NPZ-only campaigns.
    store: "dict | None" = None
    #: Autotuning header when the campaign ran with ``tune="auto"``: the
    #: chosen plan (:meth:`repro.tuning.TuningPlan.to_dict`) plus
    #: ``actual_seconds``, so predicted-vs-measured wall time is visible
    #: per campaign.  ``None`` for untuned campaigns.  Like ``timing``,
    #: this is provenance, not content — ``runs`` stays bit-identical
    #: tuned or not.
    tuning: "dict | None" = None

    @property
    def n_runs(self) -> int:
        """Number of executed runs (scenarios x realizations)."""
        return len(self.runs)

    @property
    def scenario_names(self) -> list[str]:
        """Distinct scenario names, in campaign order."""
        return list(dict.fromkeys(run.scenario for run in self.runs))

    @property
    def total_output_bytes(self) -> int:
        """Measured bytes of emulated output across every run."""
        return sum(run.output_bytes for run in self.runs)

    @property
    def runs_per_second(self) -> float:
        """Executed runs per wall-clock second (0.0 when unmeasured)."""
        if self.total_wall_seconds <= 0.0:
            return 0.0
        return self.n_runs / self.total_wall_seconds

    @property
    def output_bytes_per_second(self) -> float:
        """Emulated output bytes per wall-clock second (0.0 when unmeasured)."""
        if self.total_wall_seconds <= 0.0:
            return 0.0
        return self.total_output_bytes / self.total_wall_seconds

    def run(self, scenario: str, realization: int) -> CampaignRunRecord:
        """The record for one (scenario, realization) pair."""
        for record in self.runs:
            if record.scenario == scenario and record.realization == realization:
                return record
        raise KeyError(f"no run for scenario {scenario!r}, realization {realization}")

    def collected(self) -> dict[tuple[str, int], np.ndarray]:
        """Mapping ``(scenario, realization) -> collected array``."""
        return {
            (record.scenario, record.realization): record.collected
            for record in self.runs
            if record.collected is not None
        }

    def to_dict(self) -> dict:
        """JSON-able manifest."""
        return {
            "schema": 1,
            "seed": int(self.seed),
            "n_times": int(self.n_times),
            "steps_per_year": int(self.steps_per_year),
            "chunk_size": int(self.chunk_size),
            "collect": str(self.collect),
            "max_workers": int(self.max_workers),
            "executor": str(self.executor),
            "batch_size": int(self.batch_size),
            "artifact_bytes": int(self.artifact_bytes),
            "n_runs": self.n_runs,
            "total_output_bytes": int(self.total_output_bytes),
            "scenarios": self.scenario_names,
            "store": None if self.store is None else dict(self.store),
            "tuning": None if self.tuning is None else dict(self.tuning),
            "runs": [record.to_dict() for record in self.runs],
            # Timing sits in the header, next to max_workers/executor:
            # like those knobs it is provenance, not content — the
            # ``runs`` entries stay bit-identical across executors.
            "timing": {
                "total_wall_seconds": float(self.total_wall_seconds),
                "runs_per_second": float(self.runs_per_second),
                "output_bytes_per_second": float(self.output_bytes_per_second),
                "run_wall_seconds": [float(r.wall_seconds) for r in self.runs],
                "batches": [dict(entry) for entry in self.batch_timings],
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The manifest as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: "str | os.PathLike") -> str:
        """Write the manifest JSON to ``path``; returns the path."""
        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        return path


def plan_campaign(
    scenarios,
    n_realizations: int,
    *,
    n_times: int,
    steps_per_year: int,
    chunk_size: int,
    seed: int = 0,
    include_nugget: bool = True,
    collect: str = "global-mean",
    output_dir: "str | os.PathLike | None" = None,
    start_level: float = 2.5,
    store_root: "str | None" = None,
    store_encoding: str = "float64",
) -> list[CampaignRunPlan]:
    """Expand ``scenarios x realizations`` into per-run execution plans.

    Runs are ordered scenario-major, and run ``i`` is pinned to the
    ``SeedSequence`` child with ``spawn_key == (i,)`` — the property that
    makes sharded execution bit-identical to serial execution.

    When ``store_root`` is set (the campaign writes into a
    :class:`~repro.storage.chunkstore.ChunkStore`), seeding switches to
    the serving contract instead: realization ``r`` of *every* scenario
    draws from the child with ``spawn_key == (r,)`` — exactly the stream
    :class:`~repro.serving.service.EmulationService` synthesizes from —
    so the chunks a campaign lands under their serving content-addresses
    are the chunks serving would have produced.  Sharded execution stays
    bit-identical to serial either way (each run still owns one child).
    """
    specs = [resolve_scenario(s, start_level=start_level) for s in scenarios]
    if not specs:
        raise ValueError("a campaign needs at least one scenario")
    names = [spec.name for spec in specs]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        # Manifest lookups are keyed by (scenario, realization); duplicate
        # names would make runs unreachable, so reject them up front.
        raise ValueError(
            f"duplicate scenario names in campaign: {duplicates}; "
            f"rename one spec (ScenarioSpec.rename) to keep runs addressable"
        )
    if n_realizations < 1:
        raise ValueError("n_realizations must be positive")
    if collect not in _COLLECT_MODES:
        raise ValueError(f"collect must be one of {_COLLECT_MODES}, got {collect!r}")
    n_years = -(-int(n_times) // int(steps_per_year))
    n_runs = len(specs) * n_realizations
    n_chunks = -(-int(n_times) // int(chunk_size))
    # Padding widths sized to the campaign (floors keep historical names
    # stable): a 12000-run or 20000-chunk campaign still sorts correctly.
    index_width = max(3, len(str(n_runs - 1)))
    chunk_width = max(4, len(str(n_chunks - 1)))
    if store_root is None:
        # Legacy run-indexed seeding: run i draws from spawn_key (i,).
        children = np.random.SeedSequence(seed).spawn(n_runs)
    else:
        # Serving-contract seeding: realization r draws from spawn_key
        # (r,) whatever its scenario, matching EmulationService.
        children = np.random.SeedSequence(seed).spawn(n_realizations)
    out_dir = None if output_dir is None else os.fspath(output_dir)
    plans: list[CampaignRunPlan] = []
    for spec in specs:
        forcing = spec.annual_forcing(n_years)
        stream_address = None
        if store_root is not None:
            # The serving layer's own canonicalization, so campaign and
            # FieldRequest addresses can never drift apart.
            stream_address = FieldRequest(
                spec, include_nugget=include_nugget, start_level=start_level
            ).stream_address()
        for realization in range(n_realizations):
            index = len(plans)
            plans.append(CampaignRunPlan(
                index=index,
                scenario=spec.name,
                realization=realization,
                seed=children[index if store_root is None else realization],
                forcing=forcing,
                n_times=int(n_times),
                chunk_size=int(chunk_size),
                include_nugget=include_nugget,
                collect=collect,
                output_dir=out_dir,
                index_width=index_width,
                chunk_width=chunk_width,
                store_root=store_root,
                store_encoding=str(store_encoding),
                stream_address=stream_address,
            ))
    return plans


@dataclass
class _RunAccumulator:
    """Per-run bookkeeping shared by the serial and batched executors."""

    plan: CampaignRunPlan
    chunk_sizes: list[int] = field(default_factory=list)
    output_files: list[str] = field(default_factory=list)
    collected_parts: "list[np.ndarray]" = field(default_factory=list)
    #: ``address -> float64 chunk`` staged for the campaign's store,
    #: flushed once per execution block through ``put_many`` (one
    #: manifest transaction per block, not per chunk).
    store_chunks: "dict[str, np.ndarray]" = field(default_factory=dict)
    chunk_addresses: list[str] = field(default_factory=list)
    output_bytes: int = 0

    def add_chunk(
        self, j: int, t_start: int, member: np.ndarray, global_means: np.ndarray
    ) -> None:
        """Record one chunk of this run.

        ``member`` is the run's ``(1, nt, ntheta, nphi)`` slice of the
        chunk; ``global_means`` its ``(nt,)`` area-weighted mean series.
        """
        plan = self.plan
        nt = member.shape[1]
        self.chunk_sizes.append(nt)
        self.output_bytes += member.size * np.dtype(np.float32).itemsize
        if plan.store_root is not None:
            # One chunk == one model year (run_campaign pins chunk_size
            # to steps_per_year for store campaigns), so the chunk's
            # serving address is (stream, realization, t_start // spy).
            # The full-precision float64 data is staged — the store's
            # lossless tier preserves the service's bit-exactness
            # contract, unlike the float32 NPZ shards.
            address = chunk_address(
                plan.stream_address, plan.realization, t_start // plan.chunk_size
            )
            self.chunk_addresses.append(address)
            self.store_chunks[address] = np.ascontiguousarray(
                np.asarray(member[0], dtype=np.float64)
            )
        if plan.collect == "global-mean":
            self.collected_parts.append(global_means)
        elif plan.collect == "fields":
            self.collected_parts.append(member[0])
        if plan.output_dir is not None:
            # The run index alone makes the name unique (scenario slugs can
            # collide after sanitisation; realizations repeat across
            # scenarios); the slug and realization are readability only.
            name = (
                f"run{plan.index:0{plan.index_width}d}_{_slug(plan.scenario)}"
                f"_r{plan.realization}_chunk{j:0{plan.chunk_width}d}.npz"
            )
            path = os.path.join(plan.output_dir, name)
            np.savez(
                path,
                data=member.astype(np.float32),
                t_start=t_start,
                scenario=plan.scenario,
                realization=plan.realization,
            )
            self.output_files.append(path)

    def record(self) -> CampaignRunRecord:
        """Finish the run and build its manifest record."""
        collected = (
            np.concatenate(self.collected_parts, axis=0)
            if self.collected_parts else None
        )
        return CampaignRunRecord(
            index=self.plan.index,
            scenario=self.plan.scenario,
            realization=self.plan.realization,
            spawn_key=self.plan.spawn_key,
            n_times=self.plan.n_times,
            chunk_sizes=self.chunk_sizes,
            output_bytes=self.output_bytes,
            output_files=self.output_files,
            chunk_addresses=self.chunk_addresses,
            collected=collected,
        )


def _flush_store(
    store: "ChunkStore | None", accs: "list[_RunAccumulator]"
) -> None:
    """Land an execution block's staged chunks in the store, one batch.

    ``put_many`` is one manifest transaction however many runs the block
    held, and it is idempotent under the store's first-writer-wins
    commit protocol — a re-run campaign (or two campaigns sharing
    scenarios and realizations) re-derives the same content-addresses
    and skips the chunks it finds already stored.
    """
    if store is None:
        return
    chunks: dict[str, np.ndarray] = {}
    for acc in accs:
        chunks.update(acc.store_chunks)
    if not chunks:
        return
    nbytes = sum(array.nbytes for array in chunks.values())
    with span("campaign.store_flush", n_chunks=len(chunks), bytes=nbytes):
        store.put_many(chunks)
    counter_add("campaign.store.chunks", len(chunks))
    counter_add("campaign.store.bytes", nbytes)


def _execute_run(
    emulator, plan: CampaignRunPlan, parent=None, store: "ChunkStore | None" = None
) -> CampaignRunRecord:
    """Stream one run chunk by chunk and record its outcome.

    ``parent`` links this run's span to the campaign-level span even when
    the run executes on a pool thread (whose span stack starts empty).
    """
    sp = span(
        "campaign.run",
        parent=parent,
        index=plan.index,
        scenario=plan.scenario,
        realization=plan.realization,
    )
    with sp:
        rng = np.random.default_rng(plan.seed)
        acc = _RunAccumulator(plan)
        stream = emulator.emulate_stream(
            n_realizations=1,
            n_times=plan.n_times,
            annual_forcing=plan.forcing,
            rng=rng,
            include_nugget=plan.include_nugget,
            chunk_size=plan.chunk_size,
        )
        for j, chunk in enumerate(stream):
            t_start = chunk.metadata.get("stream_offset", 0)
            acc.add_chunk(j, t_start, chunk.data, chunk.global_mean_series()[0])
        _flush_store(store, [acc])
        record = acc.record()
        sp.set(output_bytes=record.output_bytes, chunks=len(record.chunk_sizes))
    record.wall_seconds = sp.seconds
    return record


def _execute_batch(
    emulator, plans: "list[CampaignRunPlan]", parent=None,
    store: "ChunkStore | None" = None,
) -> "list[CampaignRunRecord]":
    """Execute a block of same-scenario runs in one vectorized stream.

    Every plan keeps its own ``SeedSequence``-derived generator and
    consumes it in exactly the serial order, so each returned record is
    bit-identical to ``_execute_run`` on the same plan; only the shared
    data-independent work (VAR recursion, inverse SHT, trend/scale
    restore) is amortised across the block.  Each record's
    ``wall_seconds`` is the block's wall time (the synthesis is shared,
    so a per-run share would be fiction).
    """
    if len(plans) == 1:
        return [_execute_run(emulator, plans[0], parent=parent, store=store)]
    first = plans[0]
    assert all(p.scenario == first.scenario for p in plans), (
        "batched plans must share one scenario (one forcing / mean trend)"
    )
    sp = span(
        "campaign.batch",
        parent=parent,
        scenario=first.scenario,
        n_runs=len(plans),
    )
    with sp:
        rngs = [np.random.default_rng(plan.seed) for plan in plans]
        accs = [_RunAccumulator(plan) for plan in plans]
        summary = emulator.training_summary
        stream = emulator.generator().generate_stream_multi(
            rngs,
            n_times=first.n_times,
            annual_forcing=first.forcing,
            include_nugget=first.include_nugget,
            start_year=summary.start_year,
            chunk_size=first.chunk_size,
        )
        for j, chunk in enumerate(stream):
            t_start = chunk.metadata.get("stream_offset", 0)
            means = chunk.global_mean_series()  # (B, nt)
            for b, acc in enumerate(accs):
                acc.add_chunk(j, t_start, chunk.data[b:b + 1], means[b])
        _flush_store(store, accs)
        records = [acc.record() for acc in accs]
    for record in records:
        record.wall_seconds = sp.seconds
    return records


def _batch_plans(
    plans: "list[CampaignRunPlan]", batch_size: int | None
) -> "list[list[CampaignRunPlan]]":
    """Group plans into same-scenario blocks of at most ``batch_size``.

    Plans are scenario-major (see :func:`plan_campaign`), so consecutive
    runs of one scenario form each block; ``None`` or 1 degenerates to
    one-run blocks (the per-run serial path).
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be positive")
    size = 1 if batch_size is None else int(batch_size)
    blocks: list[list[CampaignRunPlan]] = []
    for plan in plans:
        if (
            blocks
            and len(blocks[-1]) < size
            and blocks[-1][0].scenario == plan.scenario
        ):
            blocks[-1].append(plan)
        else:
            blocks.append([plan])
    return blocks


# Per-worker caches, shared by the thread path (the lock makes them
# thread-safe) and re-populated per process by pool workers: each
# ProcessPoolExecutor worker loads the artifact / opens the store once
# and replays every block assigned to it from the same handles.
# Workers die with the pool, so entries never go stale; store handles
# pick up foreign commits through the store's own refresh protocol.
_WORKER_LOCK = threading.Lock()
_WORKER_EMULATORS: dict[str, object] = {}
_WORKER_STORES: dict[tuple[str, str], ChunkStore] = {}


def _store_handle(root: str, encoding: str) -> ChunkStore:
    """This process's store handle for ``root`` (opened once, cached)."""
    key = (os.fspath(root), str(encoding))
    with _WORKER_LOCK:
        store = _WORKER_STORES.get(key)
        if store is None:
            store = _WORKER_STORES[key] = ChunkStore(key[0], key[1])
        return store


def _execute_batch_in_process(
    plans: "list[CampaignRunPlan]", source
) -> "list[CampaignRunRecord]":
    """Process-pool entry point: resolve the emulator once per worker.

    Loading through :func:`repro.api.facade.load` warms the worker's own
    SHT plan cache, so every block the worker executes reuses one set of
    precomputed transform tables.
    """
    key = os.fspath(source)
    with _WORKER_LOCK:
        emulator = _WORKER_EMULATORS.get(key)
    if emulator is None:
        emulator = _resolve_emulator(source)
        with _WORKER_LOCK:
            emulator = _WORKER_EMULATORS.setdefault(key, emulator)
    first = plans[0]
    store = (
        _store_handle(first.store_root, first.store_encoding)
        if first.store_root is not None else None
    )
    return _execute_batch(emulator, plans, store=store)


def _resolve_reader_store(manifest, store) -> "ChunkStore | None":
    """The :class:`ChunkStore` to read a campaign back from, if any.

    ``store=True`` opens the store the manifest records; a path opens
    that root with the manifest's recorded encoding (falling back to
    lossless); a :class:`ChunkStore` instance is used as-is.
    """
    if store is None or isinstance(store, ChunkStore):
        return store
    header = manifest.get("store") if isinstance(manifest, dict) else manifest.store
    if store is True:
        if not header:
            raise ValueError(
                "iter_chunk_arrays(store=True) needs a manifest from a "
                "store-backed campaign (run_campaign(store=...)), but this "
                "manifest records no store"
            )
        return _store_handle(str(header["root"]), str(header["encoding"]))
    encoding = str(header["encoding"]) if header else "float64"
    return _store_handle(os.fspath(store), encoding)


def iter_chunk_arrays(manifest, *, store=None):
    """Load the chunk shards of a campaign back, manifest-driven.

    Yields ``(run, member)`` for every run that wrote output:
    ``run`` is the manifest's run entry (a :class:`CampaignRunRecord`,
    or a plain dict when iterating a JSON-loaded manifest) and
    ``member`` is the run's reassembled ``float32`` field array of shape
    ``(n_times, ntheta, nphi)``.

    With ``store=None`` (default) the run's NPZ ``output_files`` are
    read; with ``store=True`` (the store the manifest records), a store
    root path, or a :class:`~repro.storage.chunkstore.ChunkStore`, the
    run's ``chunk_addresses`` are fetched from the persistent store —
    the same bytes ``FieldRequest`` serving resolves, cast to float32
    so both paths yield identical arrays for a lossless store.

    Every chunk is validated against the manifest's recorded layout
    before anything is yielded: chunk count and per-chunk length must
    match ``chunk_sizes``, ``t_start`` markers must tile the run
    contiguously, spatial shapes must agree across chunks, and NPZ
    shards must carry the run's own scenario/realization stamp — a
    missing, truncated, reordered or foreign shard raises a ``ValueError``
    naming the run and shard instead of silently yielding a corrupt
    record.

    Parameters
    ----------
    manifest:
        A :class:`CampaignManifest`, its :meth:`CampaignManifest.to_dict`
        form, or a JSON-loaded manifest document.
    store:
        ``None`` (read NPZ files), ``True`` (read the manifest's
        recorded store), a store root path, or an open
        :class:`~repro.storage.chunkstore.ChunkStore`.
    """
    reader_store = _resolve_reader_store(manifest, store)
    runs = manifest["runs"] if isinstance(manifest, dict) else manifest.runs
    for run in runs:
        if isinstance(run, dict):
            files = [str(f) for f in run.get("output_files", [])]
            addresses = [str(a) for a in run.get("chunk_addresses", [])]
            chunk_sizes = [int(c) for c in run["chunk_sizes"]]
            n_times = int(run["n_times"])
            scenario = str(run["scenario"])
            realization = int(run["realization"])
            label = f"run {run['index']} ({scenario!r}, r{realization})"
        else:
            files = list(run.output_files)
            addresses = list(run.chunk_addresses)
            chunk_sizes = [int(c) for c in run.chunk_sizes]
            n_times = int(run.n_times)
            scenario = str(run.scenario)
            realization = int(run.realization)
            label = f"run {run.index} ({scenario!r}, r{realization})"
        if reader_store is not None:
            if not addresses:
                raise ValueError(
                    f"{label}: the manifest records no chunk_addresses — "
                    f"the campaign did not write into a store "
                    f"(run_campaign(store=...)); read its NPZ files instead"
                )
            if len(addresses) != len(chunk_sizes):
                raise ValueError(
                    f"{label}: the manifest records {len(addresses)} "
                    f"chunk_addresses but {len(chunk_sizes)} chunk_sizes; "
                    f"the manifest is corrupt"
                )
            arrays = []
            for j, address in enumerate(addresses):
                array = reader_store.get(address)
                if array is None:
                    raise ValueError(
                        f"{label}: chunk {j} (address {address[:12]}...) is "
                        f"not in the store at {reader_store.root}; it was "
                        f"pruned or never committed"
                    )
                arrays.append(array)
            # Addresses are recorded in chunk order; their t_starts are
            # the manifest layout's running offsets by construction.
            parts = [
                (sum(chunk_sizes[:j]), array) for j, array in enumerate(arrays)
            ]
            source = f"store {reader_store.root}"
        else:
            if not files:
                continue
            parts = []
            for path in files:
                with np.load(path) as payload:
                    if "scenario" in payload and str(payload["scenario"]) != scenario:
                        raise ValueError(
                            f"{label}: shard {path} belongs to scenario "
                            f"{str(payload['scenario'])!r}; the manifest and "
                            f"the files on disk disagree"
                        )
                    if (
                        "realization" in payload
                        and int(payload["realization"]) != realization
                    ):
                        raise ValueError(
                            f"{label}: shard {path} belongs to realization "
                            f"r{int(payload['realization'])}; the manifest "
                            f"and the files on disk disagree"
                        )
                    parts.append(
                        (int(payload["t_start"]), np.asarray(payload["data"][0]))
                    )
            parts.sort(key=lambda item: item[0])
            source = "files"
        expected = 0
        for j, (t_start, data) in enumerate(parts):
            if t_start != expected:
                raise ValueError(
                    f"{label}: chunk at t_start={t_start} does not continue "
                    f"the record (expected t_start={expected}); a shard is "
                    f"missing or duplicated"
                )
            if j < len(chunk_sizes) and data.shape[0] != chunk_sizes[j]:
                raise ValueError(
                    f"{label}: chunk {j} holds {data.shape[0]} time steps "
                    f"but the manifest records {chunk_sizes[j]}; the shard "
                    f"was truncated or rewritten since the campaign ran"
                )
            if data.shape[1:] != parts[0][1].shape[1:]:
                raise ValueError(
                    f"{label}: chunk {j} has spatial shape "
                    f"{tuple(data.shape[1:])} but chunk 0 has "
                    f"{tuple(parts[0][1].shape[1:])}; shards of one run "
                    f"must share one grid"
                )
            expected += data.shape[0]
        if expected != n_times:
            raise ValueError(
                f"{label}: chunks cover {expected} of {n_times} time steps"
            )
        if len(parts) != len(chunk_sizes):
            raise ValueError(
                f"{label}: {source} hold {len(parts)} chunks but the "
                f"manifest records {len(chunk_sizes)}"
            )
        member = np.concatenate([data for _, data in parts], axis=0)
        yield run, np.asarray(member, dtype=np.float32)


class _Heartbeat:
    """Structured campaign progress: live gauges plus an optional callback.

    Long campaigns were only observable post-hoc through the manifest's
    ``timing`` block; the heartbeat publishes progress *while* the
    campaign runs, after every completed execution block, as gauges on
    the process-wide registry (and so onto any live ``/metrics``
    endpoint): ``campaign.progress.runs_done`` / ``runs_total`` /
    ``runs_per_second`` / ``eta_seconds``.

    Updates happen only on the coordinating thread (workers hand
    finished blocks back through the in-order ``pool.map`` iterable),
    so the counter needs no lock; timing reads the open
    ``campaign.total`` span's clock, so the heartbeat adds no timer of
    its own and stays inside the telemetry layer's hygiene contract.
    """

    def __init__(self, n_runs: int, clock_span, callback=None):
        self._n_runs = int(n_runs)
        self._clock = clock_span
        self._callback = callback
        self._done = 0
        self._publish()

    def update(self, n_completed: int) -> None:
        """Record ``n_completed`` more finished runs and re-publish."""
        self._done += int(n_completed)
        self._publish()

    def _publish(self) -> None:
        elapsed = float(self._clock.elapsed())
        rate = self._done / elapsed if elapsed > 0.0 else 0.0
        eta = (self._n_runs - self._done) / rate if rate > 0.0 else None
        gauge_set("campaign.progress.runs_done", float(self._done))
        gauge_set("campaign.progress.runs_total", float(self._n_runs))
        gauge_set("campaign.progress.runs_per_second", rate)
        if eta is not None:
            gauge_set("campaign.progress.eta_seconds", eta)
        if self._callback is not None:
            self._callback({
                "runs_done": self._done,
                "runs_total": self._n_runs,
                "elapsed_seconds": elapsed,
                "runs_per_second": rate,
                "eta_seconds": eta,
            })


def run_campaign(
    source,
    scenarios,
    n_realizations: int = 1,
    *,
    n_times: int | None = None,
    chunk_size: int | None = None,
    seed: int = 0,
    max_workers: int | None = None,
    executor: "str | None" = None,
    batch_size: int | None = None,
    tune: "str | None" = None,
    include_nugget: bool = True,
    collect: str = "global-mean",
    output_dir: "str | os.PathLike | None" = None,
    start_level: float = 2.5,
    store: "ChunkStore | str | os.PathLike | None" = None,
    progress=None,
) -> CampaignManifest:
    """Replay a fitted emulator across ``scenarios x realizations`` runs.

    Determinism guarantee: every per-run output (the run records, the
    collected reductions, the NPZ chunks, the stored chunks) is a pure
    function of ``(source, scenarios, n_realizations, n_times,
    chunk_size, seed, include_nugget, collect, start_level, store
    encoding)``.  Run ``i`` always draws from the ``SeedSequence`` child
    with ``spawn_key == (i,)`` — or, for store-backed campaigns,
    realization ``r`` draws from the child with ``spawn_key == (r,)``
    (see below) — so ``max_workers``, ``executor``, ``batch_size`` and
    ``tune`` are throughput knobs only: any combination produces
    bit-identical runs.  (The manifest *header* records those execution knobs for
    provenance, so whole-manifest JSON differs across them even though
    ``runs`` never does.)

    Parameters
    ----------
    source:
        A fitted :class:`~repro.core.emulator.ClimateEmulator` or the path
        of a saved artifact.
    scenarios:
        Iterable of registered scenario names (or
        :class:`~repro.scenarios.spec.ScenarioSpec` objects).
    n_realizations:
        Realisations generated per scenario.
    n_times:
        Steps per run (training length by default).
    chunk_size:
        Streaming chunk length (one model year by default).
    seed:
        Root entropy; run ``i`` draws from the ``SeedSequence`` child with
        ``spawn_key == (i,)``, so results do not depend on ``max_workers``.
    max_workers:
        Worker count; 1 runs serially.  ``None`` resolves explicitly —
        to the autotuning plan under ``tune="auto"``, else to
        ``os.cpu_count()`` — and the manifest header always records the
        resolved integer, never ``null``.
    batch_size:
        Realizations of one scenario synthesised together per vectorized
        block (``None`` or 1 keeps the per-run path; under
        ``tune="auto"`` an unset value is chosen by the planner).
        Batched runs keep their own per-run generators, so output is
        bit-identical to the serial path; the VAR recursion and the
        ``O(L^3)`` inverse SHT run once per block instead of once per
        run.  Work is sharded across workers block-wise, so for small
        campaigns a large ``batch_size`` trades worker parallelism for
        vectorization.
    executor:
        ``"thread"`` (the untuned default; generation is read-only on
        the fitted state) or ``"process"`` (each worker process loads
        the artifact once; an in-memory emulator source is spilled to a
        temporary artifact for the pool's lifetime).  ``None`` under
        ``tune="auto"`` lets the planner choose.
    tune:
        ``"auto"`` plans the execution knobs with the cost-model
        autotuner (:mod:`repro.tuning`): the host's cached
        :class:`~repro.tuning.MachineProfile` (measured on first use)
        prices every ``(executor, max_workers, batch_size)`` candidate
        for this campaign's shape and the argmin wins.  Knobs passed
        explicitly are **always** honoured — the planner only fills the
        ones left unset — and every tuned knob is bit-inert, so tuned
        and untuned campaigns produce identical runs.  The chosen plan
        and its predicted-vs-actual seconds land in the manifest's
        ``tuning`` header and on the ``tuning.campaign.*`` gauges.
    include_nugget:
        Include the truncation nugget in the emulations.
    collect:
        Per-run reduction kept on the manifest: ``"global-mean"`` (the
        area-weighted series, default), ``"fields"`` (the full member —
        unbounded memory, test-sized runs only) or ``"none"``.
    output_dir:
        When given, every chunk is written there as an NPZ file as it is
        generated (bounded-memory streaming to disk).
    start_level:
        Baseline forcing handed to the scenario factories.
    store:
        A :class:`~repro.storage.chunkstore.ChunkStore` (or a store root
        path, opened lossless) the campaign lands every chunk in, keyed
        by the serving tier's ``(stream, realization, year)``
        content-addresses — so an
        :class:`~repro.serving.service.EmulationService` over the same
        root (same seed) serves every campaign chunk with **zero** cold
        synthesis, bit-identical for a float64 store.  Two contracts
        change under ``store=``:

        * **seeding** follows the service: realization ``r`` of every
          scenario draws from ``SeedSequence(seed, spawn_key=(r,))``
          instead of the run-indexed ``(i,)`` key, so one store root is
          coherent for one ``(artifact, seed)`` pair across scenarios;
        * **chunking** is pinned to the canonical year stream:
          ``chunk_size`` must equal ``steps_per_year`` (the default) and
          ``n_times`` must be a whole number of years, because serving
          addresses chunks by model year.

        Chunks are staged per execution block and committed with one
        ``put_many`` transaction per block (multi-process safe; a
        re-run campaign finds its addresses already stored and skips
        them).  The full float64 data is stored; ``output_dir`` NPZ
        shards (float32) can be written alongside.
    progress:
        Optional callback for the structured progress heartbeat.  After
        every completed execution block (and once at start) the campaign
        publishes ``campaign.progress.runs_done`` / ``runs_total`` /
        ``runs_per_second`` / ``eta_seconds`` gauges to the process-wide
        registry — visible live on a
        :func:`repro.obs.start_metrics_server` endpoint — and, when
        given, calls ``progress(info)`` from the coordinating thread
        with ``info = {"runs_done", "runs_total", "elapsed_seconds",
        "runs_per_second", "eta_seconds"}`` (``eta_seconds`` is ``None``
        until a rate exists).  The heartbeat never touches run output:
        results stay bit-identical with or without it.

    Returns
    -------
    CampaignManifest
        Per-run scenario, seed spawn key, chunk layout, chunk store
        addresses, measured output bytes and the collected reduction.
    """
    if executor is not None and executor not in ("thread", "process"):
        raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
    if tune not in (None, "auto"):
        raise ValueError(f"tune must be None or 'auto', got {tune!r}")
    emulator = _resolve_emulator(source)
    if emulator.training_summary is None or not emulator.is_fitted:
        raise RuntimeError("run_campaign needs a fitted emulator")
    summary = emulator.training_summary
    if n_times is None:
        n_times = summary.n_times
    n_times = int(n_times)
    if n_times < 1:
        raise ValueError(f"n_times must be >= 1, got {n_times}")
    chunk_size = int(chunk_size) if chunk_size is not None else summary.steps_per_year
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if batch_size is not None and int(batch_size) < 1:
        raise ValueError("batch_size must be positive")
    if max_workers is not None and int(max_workers) < 1:
        raise ValueError("max_workers must be positive")
    if output_dir is not None:
        os.makedirs(os.fspath(output_dir), exist_ok=True)

    store_obj: "ChunkStore | None" = None
    if store is not None:
        store_obj = (
            store if isinstance(store, ChunkStore)
            else ChunkStore(os.fspath(store))
        )
        # Serving addresses chunks by model year of the canonical
        # year-chunked stream; any other layout would land chunks the
        # service can never resolve.
        if chunk_size != summary.steps_per_year:
            raise ValueError(
                f"store-backed campaigns must use the canonical year "
                f"chunking: chunk_size={chunk_size} != steps_per_year="
                f"{summary.steps_per_year} (leave chunk_size unset)"
            )
        if n_times % summary.steps_per_year != 0:
            raise ValueError(
                f"store-backed campaigns must cover whole model years: "
                f"n_times={n_times} is not a multiple of steps_per_year="
                f"{summary.steps_per_year}"
            )

    plans = plan_campaign(
        scenarios, n_realizations,
        n_times=n_times, steps_per_year=summary.steps_per_year,
        chunk_size=chunk_size, seed=seed, include_nugget=include_nugget,
        collect=collect, output_dir=output_dir, start_level=start_level,
        store_root=None if store_obj is None else store_obj.root,
        store_encoding="float64" if store_obj is None else store_obj.encoding,
    )

    # The measured artifact size: for a path source the on-disk file is the
    # measurement; only an in-memory emulator needs an (emulator-cached)
    # serialisation pass.
    if isinstance(source, (str, os.PathLike)):
        artifact_bytes = os.path.getsize(os.fspath(source))
    else:
        artifact_bytes = emulator.measured_artifact_bytes()

    # Resolve the execution knobs.  Under ``tune="auto"`` the planner
    # fills whichever of (executor, max_workers, batch_size) the caller
    # left unset — explicit kwargs are pinned and always win.  Untuned,
    # the legacy defaults apply, except that ``max_workers=None`` now
    # resolves explicitly to the host's CPU count instead of silently
    # meaning serial: the manifest header records the resolved integer
    # either way.
    tuning_header = None
    if tune == "auto":
        with span("tuning.plan", n_runs=len(plans)) as plan_span:
            profile_root = (
                store_obj.root if store_obj is not None
                else os.path.dirname(os.fspath(source))
                if isinstance(source, (str, os.PathLike)) else None
            )
            profile = load_or_calibrate(profile_root)
            shape = CampaignShape(
                n_scenarios=len({plan.scenario for plan in plans}),
                n_realizations=int(n_realizations),
                n_times=n_times,
                steps_per_year=summary.steps_per_year,
                lmax=emulator.config.lmax,
                ntheta=summary.grid.ntheta,
                nphi=summary.grid.nphi,
                store=store_obj is not None,
                writes_output=output_dir is not None,
                collect=collect,
            )
            plan = plan_campaign_execution(
                profile, shape,
                executor=executor,
                max_workers=None if max_workers is None else int(max_workers),
                batch_size=None if batch_size is None else int(batch_size),
            )
            plan_span.set(
                executor=plan.executor,
                max_workers=plan.max_workers,
                batch_size=plan.batch_size,
                candidates=plan.candidates,
            )
        executor = plan.executor
        workers = plan.max_workers
        batch_size = plan.batch_size
        tuning_header = plan.to_dict()
        gauge_set("tuning.campaign.predicted_seconds", plan.predicted_seconds)
    else:
        executor = "thread" if executor is None else executor
        workers = (os.cpu_count() or 1) if max_workers is None else int(max_workers)

    blocks = _batch_plans(plans, batch_size)
    total_span = span(
        "campaign.total",
        n_runs=len(plans),
        n_blocks=len(blocks),
        executor=executor,
        max_workers=workers,
    )
    with total_span:
        heartbeat = _Heartbeat(len(plans), total_span, progress)
        records = []
        # Every executor hands back an in-order lazy iterable of
        # per-block record lists, so the coordinating thread drains it
        # block by block and beats the progress heartbeat as each block
        # lands — identical records, now observable mid-flight.
        if workers == 1:
            batched = (
                _execute_batch(emulator, block, parent=total_span, store=store_obj)
                for block in blocks
            )
            for block_records in batched:
                records.extend(block_records)
                heartbeat.update(len(block_records))
        elif executor == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                batched = pool.map(
                    partial(
                        _execute_batch, emulator,
                        parent=total_span, store=store_obj,
                    ),
                    blocks,
                )
                for block_records in batched:
                    records.extend(block_records)
                    heartbeat.update(len(block_records))
        else:
            with contextlib.ExitStack() as stack:
                worker_source = source
                if not isinstance(source, (str, os.PathLike)):
                    # Worker processes need a picklable source; an in-memory
                    # emulator is spilled to a temporary artifact for the
                    # lifetime of the pool.
                    tmp_dir = stack.enter_context(
                        tempfile.TemporaryDirectory(prefix="repro-campaign-")
                    )
                    worker_source = emulator.save(
                        os.path.join(tmp_dir, "emulator.npz")
                    )
                pool = stack.enter_context(ProcessPoolExecutor(max_workers=workers))
                batched = pool.map(
                    partial(_execute_batch_in_process, source=worker_source), blocks
                )
                for block_records in batched:
                    records.extend(block_records)
                    heartbeat.update(len(block_records))
        if store_obj is not None:
            # Process workers commit through their own handles; one
            # refresh makes their entries visible on the caller's.
            store_obj.refresh()

    # Per-block timing, reassembled by slicing the (order-preserving)
    # flattened records back into the planned blocks.  Records of one
    # block share its wall time, so the block entry reads it from any
    # member.
    batch_timings: list[dict] = []
    offset = 0
    for block in blocks:
        block_records = records[offset:offset + len(block)]
        offset += len(block)
        batch_timings.append({
            "scenario": block[0].scenario,
            "n_runs": len(block),
            "wall_seconds": float(
                max(rec.wall_seconds for rec in block_records)
            ),
        })

    if tuning_header is not None:
        tuning_header["actual_seconds"] = float(total_span.seconds)
        gauge_set("tuning.campaign.actual_seconds", float(total_span.seconds))

    store_header = None
    if store_obj is not None:
        store_header = {
            "root": store_obj.root,
            "encoding": store_obj.encoding,
            "stream_addresses": {
                plan.scenario: plan.stream_address
                for plan in plans
                if plan.realization == 0
            },
        }

    return CampaignManifest(
        seed=int(seed),
        n_times=n_times,
        steps_per_year=summary.steps_per_year,
        chunk_size=chunk_size,
        collect=collect,
        max_workers=workers,
        executor=executor,
        artifact_bytes=artifact_bytes,
        runs=records,
        batch_size=1 if batch_size is None else int(batch_size),
        total_wall_seconds=total_span.seconds,
        batch_timings=batch_timings,
        store=store_header,
        tuning=tuning_header,
    )
