"""Parallel ensemble-campaign runner: fit once, replay across many futures.

The storage story of the paper only pays off when one fitted emulator is
replayed across many forcing pathways and realisations.  This module turns
that replay into a single sharded job: :func:`run_campaign` takes a fitted
emulator (or a saved artifact path) plus ``scenarios x realizations``, and

* assigns every run an independent, reproducible random stream via
  ``np.random.SeedSequence.spawn`` — run ``i`` always gets the child with
  ``spawn_key == (i,)``, so a campaign is bit-identical no matter how many
  workers execute it or in which order they finish;
* shards the runs across ``concurrent.futures`` workers (threads by
  default — generation is read-only on the fitted state — or processes);
* drives :meth:`ClimateEmulator.emulate_stream
  <repro.core.emulator.ClimateEmulator.emulate_stream>` so peak memory
  stays at one chunk per worker regardless of scenario length, optionally
  writing each chunk straight to disk;
* optionally *batches* realizations of the same scenario
  (``batch_size > 1``): each batched run keeps its own per-run generator,
  but the VAR recursion and the inverse spherical-harmonic transform run
  once on the stacked coefficient block
  (:meth:`EmulationGenerator.generate_stream_multi
  <repro.core.generator.EmulationGenerator.generate_stream_multi>`), which
  amortises the ``O(L^3)`` synthesis over the batch with bit-identical
  output;
* emits a :class:`CampaignManifest` recording, per run, the scenario, the
  seed spawn key, the chunk layout and the measured output bytes — the
  numbers :func:`repro.storage.accounting.campaign_storage_report` turns
  into the artifact-to-output "boost factor".
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.api.facade import _resolve as _resolve_emulator
from repro.obs import span
from repro.scenarios.registry import resolve_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "CampaignManifest",
    "CampaignRunPlan",
    "CampaignRunRecord",
    "iter_chunk_arrays",
    "plan_campaign",
    "run_campaign",
]

_COLLECT_MODES = ("global-mean", "fields", "none")


def _slug(name: str) -> str:
    """File-name-safe spelling of a scenario name."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", str(name)).strip("-") or "scenario"


@dataclass(frozen=True)
class CampaignRunPlan:
    """Everything one worker needs to execute one campaign run.

    ``index_width`` / ``chunk_width`` are the zero-padding widths of the
    output chunk filenames, computed by :func:`plan_campaign` from the
    campaign's actual run and chunk counts (never below the historical
    3/4 digits) so lexicographic filename order equals execution order
    even for campaigns beyond 1000 runs or 10000 chunks.
    """

    index: int
    scenario: str
    realization: int
    seed: np.random.SeedSequence
    forcing: np.ndarray
    n_times: int
    chunk_size: int
    include_nugget: bool
    collect: str
    output_dir: str | None
    index_width: int = 3
    chunk_width: int = 4

    @property
    def spawn_key(self) -> tuple[int, ...]:
        """The run's ``SeedSequence`` spawn key (recorded in the manifest)."""
        return tuple(int(k) for k in self.seed.spawn_key)


@dataclass
class CampaignRunRecord:
    """Outcome of one campaign run, as recorded in the manifest."""

    index: int
    scenario: str
    realization: int
    spawn_key: tuple[int, ...]
    n_times: int
    chunk_sizes: list[int]
    output_bytes: int
    output_files: list[str] = field(default_factory=list)
    collected: np.ndarray | None = None
    #: Measured wall-clock seconds of the run's execution block.  Runs
    #: batched through ``batch_size > 1`` share one synthesis pass, so
    #: they report the block's wall time, not a per-run share.  Like
    #: ``collected``, timing is measurement rather than content: it stays
    #: off :meth:`to_dict`, which campaign tests pin bit-identical across
    #: executors and batch sizes (the manifest-level ``timing`` block
    #: carries it instead).
    wall_seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-able summary (the ``collected`` array stays on the object)."""
        return {
            "index": int(self.index),
            "scenario": str(self.scenario),
            "realization": int(self.realization),
            "spawn_key": list(self.spawn_key),
            "n_times": int(self.n_times),
            "chunk_sizes": [int(c) for c in self.chunk_sizes],
            "output_bytes": int(self.output_bytes),
            "output_files": [str(f) for f in self.output_files],
        }


@dataclass
class CampaignManifest:
    """The record of a campaign: settings plus one entry per run."""

    seed: int
    n_times: int
    steps_per_year: int
    chunk_size: int
    collect: str
    max_workers: int
    executor: str
    artifact_bytes: int
    runs: list[CampaignRunRecord] = field(default_factory=list)
    batch_size: int = 1
    #: Wall-clock seconds of the whole execution phase (planning through
    #: the last worker), measured by the ``campaign.total`` span.
    total_wall_seconds: float = 0.0
    #: One ``{"scenario", "n_runs", "wall_seconds"}`` entry per executed
    #: block, in campaign order (sourced from the ``campaign.batch`` /
    #: ``campaign.run`` spans).
    batch_timings: list[dict] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        """Number of executed runs (scenarios x realizations)."""
        return len(self.runs)

    @property
    def scenario_names(self) -> list[str]:
        """Distinct scenario names, in campaign order."""
        return list(dict.fromkeys(run.scenario for run in self.runs))

    @property
    def total_output_bytes(self) -> int:
        """Measured bytes of emulated output across every run."""
        return sum(run.output_bytes for run in self.runs)

    @property
    def runs_per_second(self) -> float:
        """Executed runs per wall-clock second (0.0 when unmeasured)."""
        if self.total_wall_seconds <= 0.0:
            return 0.0
        return self.n_runs / self.total_wall_seconds

    @property
    def output_bytes_per_second(self) -> float:
        """Emulated output bytes per wall-clock second (0.0 when unmeasured)."""
        if self.total_wall_seconds <= 0.0:
            return 0.0
        return self.total_output_bytes / self.total_wall_seconds

    def run(self, scenario: str, realization: int) -> CampaignRunRecord:
        """The record for one (scenario, realization) pair."""
        for record in self.runs:
            if record.scenario == scenario and record.realization == realization:
                return record
        raise KeyError(f"no run for scenario {scenario!r}, realization {realization}")

    def collected(self) -> dict[tuple[str, int], np.ndarray]:
        """Mapping ``(scenario, realization) -> collected array``."""
        return {
            (record.scenario, record.realization): record.collected
            for record in self.runs
            if record.collected is not None
        }

    def to_dict(self) -> dict:
        """JSON-able manifest."""
        return {
            "schema": 1,
            "seed": int(self.seed),
            "n_times": int(self.n_times),
            "steps_per_year": int(self.steps_per_year),
            "chunk_size": int(self.chunk_size),
            "collect": str(self.collect),
            "max_workers": int(self.max_workers),
            "executor": str(self.executor),
            "batch_size": int(self.batch_size),
            "artifact_bytes": int(self.artifact_bytes),
            "n_runs": self.n_runs,
            "total_output_bytes": int(self.total_output_bytes),
            "scenarios": self.scenario_names,
            "runs": [record.to_dict() for record in self.runs],
            # Timing sits in the header, next to max_workers/executor:
            # like those knobs it is provenance, not content — the
            # ``runs`` entries stay bit-identical across executors.
            "timing": {
                "total_wall_seconds": float(self.total_wall_seconds),
                "runs_per_second": float(self.runs_per_second),
                "output_bytes_per_second": float(self.output_bytes_per_second),
                "run_wall_seconds": [float(r.wall_seconds) for r in self.runs],
                "batches": [dict(entry) for entry in self.batch_timings],
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The manifest as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: "str | os.PathLike") -> str:
        """Write the manifest JSON to ``path``; returns the path."""
        path = os.fspath(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        return path


def plan_campaign(
    scenarios,
    n_realizations: int,
    *,
    n_times: int,
    steps_per_year: int,
    chunk_size: int,
    seed: int = 0,
    include_nugget: bool = True,
    collect: str = "global-mean",
    output_dir: "str | os.PathLike | None" = None,
    start_level: float = 2.5,
) -> list[CampaignRunPlan]:
    """Expand ``scenarios x realizations`` into per-run execution plans.

    Runs are ordered scenario-major, and run ``i`` is pinned to the
    ``SeedSequence`` child with ``spawn_key == (i,)`` — the property that
    makes sharded execution bit-identical to serial execution.
    """
    specs = [resolve_scenario(s, start_level=start_level) for s in scenarios]
    if not specs:
        raise ValueError("a campaign needs at least one scenario")
    names = [spec.name for spec in specs]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        # Manifest lookups are keyed by (scenario, realization); duplicate
        # names would make runs unreachable, so reject them up front.
        raise ValueError(
            f"duplicate scenario names in campaign: {duplicates}; "
            f"rename one spec (ScenarioSpec.rename) to keep runs addressable"
        )
    if n_realizations < 1:
        raise ValueError("n_realizations must be positive")
    if collect not in _COLLECT_MODES:
        raise ValueError(f"collect must be one of {_COLLECT_MODES}, got {collect!r}")
    n_years = -(-int(n_times) // int(steps_per_year))
    n_runs = len(specs) * n_realizations
    n_chunks = -(-int(n_times) // int(chunk_size))
    # Padding widths sized to the campaign (floors keep historical names
    # stable): a 12000-run or 20000-chunk campaign still sorts correctly.
    index_width = max(3, len(str(n_runs - 1)))
    chunk_width = max(4, len(str(n_chunks - 1)))
    children = np.random.SeedSequence(seed).spawn(n_runs)
    out_dir = None if output_dir is None else os.fspath(output_dir)
    plans: list[CampaignRunPlan] = []
    for spec in specs:
        forcing = spec.annual_forcing(n_years)
        for realization in range(n_realizations):
            index = len(plans)
            plans.append(CampaignRunPlan(
                index=index,
                scenario=spec.name,
                realization=realization,
                seed=children[index],
                forcing=forcing,
                n_times=int(n_times),
                chunk_size=int(chunk_size),
                include_nugget=include_nugget,
                collect=collect,
                output_dir=out_dir,
                index_width=index_width,
                chunk_width=chunk_width,
            ))
    return plans


@dataclass
class _RunAccumulator:
    """Per-run bookkeeping shared by the serial and batched executors."""

    plan: CampaignRunPlan
    chunk_sizes: list[int] = field(default_factory=list)
    output_files: list[str] = field(default_factory=list)
    collected_parts: "list[np.ndarray]" = field(default_factory=list)
    output_bytes: int = 0

    def add_chunk(
        self, j: int, t_start: int, member: np.ndarray, global_means: np.ndarray
    ) -> None:
        """Record one chunk of this run.

        ``member`` is the run's ``(1, nt, ntheta, nphi)`` slice of the
        chunk; ``global_means`` its ``(nt,)`` area-weighted mean series.
        """
        plan = self.plan
        nt = member.shape[1]
        self.chunk_sizes.append(nt)
        self.output_bytes += member.size * np.dtype(np.float32).itemsize
        if plan.collect == "global-mean":
            self.collected_parts.append(global_means)
        elif plan.collect == "fields":
            self.collected_parts.append(member[0])
        if plan.output_dir is not None:
            # The run index alone makes the name unique (scenario slugs can
            # collide after sanitisation; realizations repeat across
            # scenarios); the slug and realization are readability only.
            name = (
                f"run{plan.index:0{plan.index_width}d}_{_slug(plan.scenario)}"
                f"_r{plan.realization}_chunk{j:0{plan.chunk_width}d}.npz"
            )
            path = os.path.join(plan.output_dir, name)
            np.savez(
                path,
                data=member.astype(np.float32),
                t_start=t_start,
                scenario=plan.scenario,
                realization=plan.realization,
            )
            self.output_files.append(path)

    def record(self) -> CampaignRunRecord:
        """Finish the run and build its manifest record."""
        collected = (
            np.concatenate(self.collected_parts, axis=0)
            if self.collected_parts else None
        )
        return CampaignRunRecord(
            index=self.plan.index,
            scenario=self.plan.scenario,
            realization=self.plan.realization,
            spawn_key=self.plan.spawn_key,
            n_times=self.plan.n_times,
            chunk_sizes=self.chunk_sizes,
            output_bytes=self.output_bytes,
            output_files=self.output_files,
            collected=collected,
        )


def _execute_run(
    emulator, plan: CampaignRunPlan, parent=None
) -> CampaignRunRecord:
    """Stream one run chunk by chunk and record its outcome.

    ``parent`` links this run's span to the campaign-level span even when
    the run executes on a pool thread (whose span stack starts empty).
    """
    sp = span(
        "campaign.run",
        parent=parent,
        index=plan.index,
        scenario=plan.scenario,
        realization=plan.realization,
    )
    with sp:
        rng = np.random.default_rng(plan.seed)
        acc = _RunAccumulator(plan)
        stream = emulator.emulate_stream(
            n_realizations=1,
            n_times=plan.n_times,
            annual_forcing=plan.forcing,
            rng=rng,
            include_nugget=plan.include_nugget,
            chunk_size=plan.chunk_size,
        )
        for j, chunk in enumerate(stream):
            t_start = chunk.metadata.get("stream_offset", 0)
            acc.add_chunk(j, t_start, chunk.data, chunk.global_mean_series()[0])
        record = acc.record()
        sp.set(output_bytes=record.output_bytes, chunks=len(record.chunk_sizes))
    record.wall_seconds = sp.seconds
    return record


def _execute_batch(
    emulator, plans: "list[CampaignRunPlan]", parent=None
) -> "list[CampaignRunRecord]":
    """Execute a block of same-scenario runs in one vectorized stream.

    Every plan keeps its own ``SeedSequence``-derived generator and
    consumes it in exactly the serial order, so each returned record is
    bit-identical to ``_execute_run`` on the same plan; only the shared
    data-independent work (VAR recursion, inverse SHT, trend/scale
    restore) is amortised across the block.  Each record's
    ``wall_seconds`` is the block's wall time (the synthesis is shared,
    so a per-run share would be fiction).
    """
    if len(plans) == 1:
        return [_execute_run(emulator, plans[0], parent=parent)]
    first = plans[0]
    assert all(p.scenario == first.scenario for p in plans), (
        "batched plans must share one scenario (one forcing / mean trend)"
    )
    sp = span(
        "campaign.batch",
        parent=parent,
        scenario=first.scenario,
        n_runs=len(plans),
    )
    with sp:
        rngs = [np.random.default_rng(plan.seed) for plan in plans]
        accs = [_RunAccumulator(plan) for plan in plans]
        summary = emulator.training_summary
        stream = emulator.generator().generate_stream_multi(
            rngs,
            n_times=first.n_times,
            annual_forcing=first.forcing,
            include_nugget=first.include_nugget,
            start_year=summary.start_year,
            chunk_size=first.chunk_size,
        )
        for j, chunk in enumerate(stream):
            t_start = chunk.metadata.get("stream_offset", 0)
            means = chunk.global_mean_series()  # (B, nt)
            for b, acc in enumerate(accs):
                acc.add_chunk(j, t_start, chunk.data[b:b + 1], means[b])
        records = [acc.record() for acc in accs]
    for record in records:
        record.wall_seconds = sp.seconds
    return records


def _batch_plans(
    plans: "list[CampaignRunPlan]", batch_size: int | None
) -> "list[list[CampaignRunPlan]]":
    """Group plans into same-scenario blocks of at most ``batch_size``.

    Plans are scenario-major (see :func:`plan_campaign`), so consecutive
    runs of one scenario form each block; ``None`` or 1 degenerates to
    one-run blocks (the per-run serial path).
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be positive")
    size = 1 if batch_size is None else int(batch_size)
    blocks: list[list[CampaignRunPlan]] = []
    for plan in plans:
        if (
            blocks
            and len(blocks[-1]) < size
            and blocks[-1][0].scenario == plan.scenario
        ):
            blocks[-1].append(plan)
        else:
            blocks.append([plan])
    return blocks


# Per-worker-process cache: each ProcessPoolExecutor worker loads the
# artifact once and replays every run assigned to it from the same
# emulator.  Workers die with the pool, so entries never go stale.
_WORKER_EMULATORS: dict[str, object] = {}


def _execute_batch_in_process(
    plans: "list[CampaignRunPlan]", source
) -> "list[CampaignRunRecord]":
    """Process-pool entry point: resolve the emulator once per worker.

    Loading through :func:`repro.api.facade.load` warms the worker's own
    SHT plan cache, so every block the worker executes reuses one set of
    precomputed transform tables.
    """
    key = os.fspath(source)
    emulator = _WORKER_EMULATORS.get(key)
    if emulator is None:
        emulator = _WORKER_EMULATORS[key] = _resolve_emulator(source)
    return _execute_batch(emulator, plans)


def iter_chunk_arrays(manifest):
    """Load the NPZ chunk shards of a campaign back, manifest-driven.

    Yields ``(run, member)`` for every run that wrote output files:
    ``run`` is the manifest's run entry (a :class:`CampaignRunRecord`,
    or a plain dict when iterating a JSON-loaded manifest) and
    ``member`` is the run's reassembled ``float32`` field array of shape
    ``(n_times, ntheta, nphi)``.  Chunks are ordered by their recorded
    ``t_start`` (not by filename parsing) and validated to tile the run
    contiguously, so a missing or truncated shard raises instead of
    silently yielding a gapped record.

    Parameters
    ----------
    manifest:
        A :class:`CampaignManifest`, its :meth:`CampaignManifest.to_dict`
        form, or a JSON-loaded manifest document.
    """
    runs = manifest["runs"] if isinstance(manifest, dict) else manifest.runs
    for run in runs:
        if isinstance(run, dict):
            files = [str(f) for f in run.get("output_files", [])]
            n_times = int(run["n_times"])
            label = f"run {run['index']} ({run['scenario']!r}, r{run['realization']})"
        else:
            files = list(run.output_files)
            n_times = int(run.n_times)
            label = f"run {run.index} ({run.scenario!r}, r{run.realization})"
        if not files:
            continue
        parts: list[tuple[int, np.ndarray]] = []
        for path in files:
            with np.load(path) as payload:
                parts.append((int(payload["t_start"]), np.asarray(payload["data"][0])))
        parts.sort(key=lambda item: item[0])
        expected = 0
        for t_start, data in parts:
            if t_start != expected:
                raise ValueError(
                    f"{label}: chunk at t_start={t_start} does not continue "
                    f"the record (expected t_start={expected}); a shard is "
                    f"missing or duplicated"
                )
            expected += data.shape[0]
        if expected != n_times:
            raise ValueError(
                f"{label}: chunks cover {expected} of {n_times} time steps"
            )
        yield run, np.concatenate([data for _, data in parts], axis=0)


def run_campaign(
    source,
    scenarios,
    n_realizations: int = 1,
    *,
    n_times: int | None = None,
    chunk_size: int | None = None,
    seed: int = 0,
    max_workers: int | None = None,
    executor: str = "thread",
    batch_size: int | None = None,
    include_nugget: bool = True,
    collect: str = "global-mean",
    output_dir: "str | os.PathLike | None" = None,
    start_level: float = 2.5,
) -> CampaignManifest:
    """Replay a fitted emulator across ``scenarios x realizations`` runs.

    Determinism guarantee: every per-run output (the run records, the
    collected reductions, the NPZ chunks) is a pure function of
    ``(source, scenarios, n_realizations, n_times, chunk_size, seed,
    include_nugget, collect, start_level)``.  Run ``i`` always draws
    from the ``SeedSequence`` child with ``spawn_key == (i,)``, so
    ``max_workers``, ``executor`` and ``batch_size`` are throughput
    knobs only — any combination produces bit-identical runs.  (The
    manifest *header* records those execution knobs for provenance, so
    whole-manifest JSON differs across them even though ``runs`` never
    does.)

    Parameters
    ----------
    source:
        A fitted :class:`~repro.core.emulator.ClimateEmulator` or the path
        of a saved artifact.
    scenarios:
        Iterable of registered scenario names (or
        :class:`~repro.scenarios.spec.ScenarioSpec` objects).
    n_realizations:
        Realisations generated per scenario.
    n_times:
        Steps per run (training length by default).
    chunk_size:
        Streaming chunk length (one model year by default).
    seed:
        Root entropy; run ``i`` draws from the ``SeedSequence`` child with
        ``spawn_key == (i,)``, so results do not depend on ``max_workers``.
    max_workers:
        Worker count; ``None`` or 1 runs serially.
    batch_size:
        Realizations of one scenario synthesised together per vectorized
        block (``None`` or 1 keeps the per-run path).  Batched runs keep
        their own per-run generators, so output is bit-identical to the
        serial path; the VAR recursion and the ``O(L^3)`` inverse SHT run
        once per block instead of once per run.  Work is sharded across
        workers block-wise, so for small campaigns a large ``batch_size``
        trades worker parallelism for vectorization.
    executor:
        ``"thread"`` (default; generation is read-only on the fitted
        state) or ``"process"`` (each worker process loads the artifact
        once; an in-memory emulator source is spilled to a temporary
        artifact for the pool's lifetime).
    include_nugget:
        Include the truncation nugget in the emulations.
    collect:
        Per-run reduction kept on the manifest: ``"global-mean"`` (the
        area-weighted series, default), ``"fields"`` (the full member —
        unbounded memory, test-sized runs only) or ``"none"``.
    output_dir:
        When given, every chunk is written there as an NPZ file as it is
        generated (bounded-memory streaming to disk).
    start_level:
        Baseline forcing handed to the scenario factories.

    Returns
    -------
    CampaignManifest
        Per-run scenario, seed spawn key, chunk layout, measured output
        bytes and the collected reduction.
    """
    if executor not in ("thread", "process"):
        raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
    emulator = _resolve_emulator(source)
    if emulator.training_summary is None or not emulator.is_fitted:
        raise RuntimeError("run_campaign needs a fitted emulator")
    summary = emulator.training_summary
    if n_times is None:
        n_times = summary.n_times
    n_times = int(n_times)
    if n_times < 1:
        raise ValueError(f"n_times must be >= 1, got {n_times}")
    chunk_size = int(chunk_size) if chunk_size is not None else summary.steps_per_year
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if batch_size is not None and int(batch_size) < 1:
        raise ValueError("batch_size must be positive")
    workers = 1 if max_workers is None else int(max_workers)
    if workers < 1:
        raise ValueError("max_workers must be positive")
    if output_dir is not None:
        os.makedirs(os.fspath(output_dir), exist_ok=True)

    plans = plan_campaign(
        scenarios, n_realizations,
        n_times=n_times, steps_per_year=summary.steps_per_year,
        chunk_size=chunk_size, seed=seed, include_nugget=include_nugget,
        collect=collect, output_dir=output_dir, start_level=start_level,
    )

    # The measured artifact size: for a path source the on-disk file is the
    # measurement; only an in-memory emulator needs an (emulator-cached)
    # serialisation pass.
    if isinstance(source, (str, os.PathLike)):
        artifact_bytes = os.path.getsize(os.fspath(source))
    else:
        artifact_bytes = emulator.measured_artifact_bytes()

    blocks = _batch_plans(plans, batch_size)
    total_span = span(
        "campaign.total",
        n_runs=len(plans),
        n_blocks=len(blocks),
        executor=executor,
        max_workers=workers,
    )
    with total_span:
        if workers == 1:
            records = [
                rec
                for block in blocks
                for rec in _execute_batch(emulator, block, parent=total_span)
            ]
        elif executor == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                batched = pool.map(
                    partial(_execute_batch, emulator, parent=total_span), blocks
                )
                records = [rec for block_records in batched for rec in block_records]
        else:
            with contextlib.ExitStack() as stack:
                worker_source = source
                if not isinstance(source, (str, os.PathLike)):
                    # Worker processes need a picklable source; an in-memory
                    # emulator is spilled to a temporary artifact for the
                    # lifetime of the pool.
                    tmp_dir = stack.enter_context(
                        tempfile.TemporaryDirectory(prefix="repro-campaign-")
                    )
                    worker_source = emulator.save(
                        os.path.join(tmp_dir, "emulator.npz")
                    )
                pool = stack.enter_context(ProcessPoolExecutor(max_workers=workers))
                batched = pool.map(
                    partial(_execute_batch_in_process, source=worker_source), blocks
                )
                records = [rec for block_records in batched for rec in block_records]

    # Per-block timing, reassembled by slicing the (order-preserving)
    # flattened records back into the planned blocks.  Records of one
    # block share its wall time, so the block entry reads it from any
    # member.
    batch_timings: list[dict] = []
    offset = 0
    for block in blocks:
        block_records = records[offset:offset + len(block)]
        offset += len(block)
        batch_timings.append({
            "scenario": block[0].scenario,
            "n_runs": len(block),
            "wall_seconds": float(
                max(rec.wall_seconds for rec in block_records)
            ),
        })

    return CampaignManifest(
        seed=int(seed),
        n_times=n_times,
        steps_per_year=summary.steps_per_year,
        chunk_size=chunk_size,
        collect=collect,
        max_workers=workers,
        executor=executor,
        artifact_bytes=artifact_bytes,
        runs=records,
        batch_size=1 if batch_size is None else int(batch_size),
        total_wall_seconds=total_span.seconds,
        batch_timings=batch_timings,
    )
