"""The named forcing-scenario registry.

Scenario lookup used to be a hardcoded five-member enum with if/else
dispatch in :mod:`repro.data.forcing`; it is now a
:class:`~repro.util.registry.BackendRegistry` of factories producing
:class:`~repro.scenarios.spec.ScenarioSpec` objects.  The five legacy
names remain registered with bit-identical trajectories, joined by
SSP-like low / medium / high / overshoot pathways, and
``scenario_forcing`` is a thin lookup over this table — registering a new
pathway needs no edits to :mod:`repro.data.forcing` or ``repro.core``.

Every factory takes ``start_level`` (the year-0 greenhouse-gas level in
W m^-2, default 2.5) so one registered shape serves any baseline; an
unknown name raises an error listing every registered scenario.
"""

from __future__ import annotations

from repro.scenarios.components import (
    AerosolOffset,
    GHGRamp,
    SolarCycle,
    Stabilisation,
    historical_pathway,
)
from repro.scenarios.spec import ScenarioSpec
from repro.util.registry import BackendRegistry

__all__ = [
    "SCENARIOS",
    "list_scenarios",
    "register_scenario",
    "resolve_scenario",
    "resolve_scenario_state",
]

#: Registry of named forcing pathways (factories returning ScenarioSpec).
SCENARIOS = BackendRegistry("forcing scenario", doc_hint="docs/api.md#scenarios")


def register_scenario(
    name: str,
    factory=None,
    *,
    description: str = "",
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
):
    """Register a scenario factory (usable as a decorator).

    The factory must accept ``start_level: float = 2.5`` and return a
    :class:`ScenarioSpec`.  A plain :class:`ScenarioSpec` may also be
    passed; it is wrapped in a constant factory ignoring ``start_level``.
    """
    if isinstance(factory, ScenarioSpec):
        spec = factory
        return SCENARIOS.register(
            name, lambda start_level=2.5: spec,
            description=description or spec.description,
            aliases=aliases, overwrite=overwrite,
        )
    return SCENARIOS.register(
        name, factory, description=description, aliases=aliases, overwrite=overwrite
    )


def resolve_scenario(scenario, start_level: float = 2.5) -> ScenarioSpec:
    """Resolve a scenario given by spec, name or legacy enum member.

    Raises
    ------
    repro.util.registry.UnknownBackendError
        (a ``ValueError``) for an unrecognised name; the message lists
        every registered scenario.
    """
    if isinstance(scenario, ScenarioSpec):
        return scenario
    name = getattr(scenario, "value", scenario)  # accept ForcingScenario members
    spec = SCENARIOS.create(name, start_level=start_level)
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(
            f"scenario factory {name!r} returned {type(spec).__name__}, "
            f"expected ScenarioSpec"
        )
    return spec


def resolve_scenario_state(scenario, start_level: float = 2.5) -> dict:
    """The canonical, JSON-able state of a scenario reference.

    Request addressing (:meth:`repro.serving.FieldRequest.address
    <repro.serving.request.FieldRequest.address>`) must give one address to
    every spelling of the same pathway — a registered name, an alias, or
    the :class:`ScenarioSpec` those resolve to.  This helper is that
    normalisation: resolve through the registry (names and aliases land
    on the same spec at the same ``start_level``) and return the spec's
    ``state_dict()``, which is a pure function of the pathway's
    components.
    """
    return resolve_scenario(scenario, start_level=start_level).state_dict()


def list_scenarios() -> dict[str, str]:
    """Mapping from registered scenario name to its one-line description."""
    return SCENARIOS.describe()


# --------------------------------------------------------------------- #
# The five legacy scenarios (trajectories bit-identical to the old enum
# dispatch; pinned by tests/data/test_data.py).
# --------------------------------------------------------------------- #
@register_scenario("historical", description="historical-like reconstruction: accelerating GHG ramp + three eruptions")
def _historical(start_level: float = 2.5) -> ScenarioSpec:
    # The reconstruction pins its own 1940-like baseline; start_level is
    # ignored to preserve the legacy scenario_forcing contract.
    return ScenarioSpec(
        "historical", historical_pathway(),
        description="historical-like reconstruction (GHG ramp + volcanic dips)",
    )


@register_scenario("constant", description="constant forcing at start_level")
def _constant(start_level: float = 2.5) -> ScenarioSpec:
    return ScenarioSpec(
        "constant", (GHGRamp(base=start_level),),
        description=f"constant forcing at {start_level} W m^-2",
    )


@register_scenario("linear-ramp", description="linear ramp, +0.05 W m^-2 per year")
def _linear_ramp(start_level: float = 2.5) -> ScenarioSpec:
    return ScenarioSpec(
        "linear-ramp", (GHGRamp(base=start_level, rate=0.05),),
        description="linear ramp, +0.05 W m^-2 per year",
    )


@register_scenario("high-emissions", description="accelerating high-emissions ramp")
def _high_emissions(start_level: float = 2.5) -> ScenarioSpec:
    return ScenarioSpec(
        "high-emissions", (GHGRamp(base=start_level, rate=0.085, acceleration=0.01),),
        description="accelerating high-emissions ramp",
    )


@register_scenario("stabilisation", description="exponential stabilisation +2.5 W m^-2 on a 30-year timescale")
def _stabilisation(start_level: float = 2.5) -> ScenarioSpec:
    return ScenarioSpec(
        "stabilisation", (Stabilisation(base=start_level, amplitude=2.5, timescale_years=30.0),),
        description="exponential stabilisation +2.5 W m^-2 (30-year timescale)",
    )


# --------------------------------------------------------------------- #
# SSP-like pathways: low / medium / high / overshoot.
# --------------------------------------------------------------------- #
@register_scenario("ssp-low", aliases=("ssp1-2.6",),
                   description="low pathway: early peak then decline (SSP1-2.6-like)")
def _ssp_low(start_level: float = 2.5) -> ScenarioSpec:
    return ScenarioSpec(
        "ssp-low",
        (
            Stabilisation(base=start_level, amplitude=1.0, timescale_years=15.0),
            Stabilisation(base=0.0, amplitude=-0.8, timescale_years=30.0, delay_years=30.0),
            AerosolOffset(magnitude=-0.15, fade_start_year=5.0, fade_years=20.0),
        ),
        description="early peak then decline (SSP1-2.6-like)",
    )


@register_scenario("ssp-medium", aliases=("ssp2-4.5",),
                   description="middle-of-the-road stabilisation (SSP2-4.5-like)")
def _ssp_medium(start_level: float = 2.5) -> ScenarioSpec:
    return ScenarioSpec(
        "ssp-medium",
        (
            Stabilisation(base=start_level, amplitude=2.0, timescale_years=45.0),
            AerosolOffset(magnitude=-0.3, fade_start_year=0.0, fade_years=40.0),
            SolarCycle(amplitude=0.05),
        ),
        description="middle-of-the-road stabilisation (SSP2-4.5-like)",
    )


@register_scenario("ssp-high", aliases=("ssp5-8.5",),
                   description="fossil-fuelled accelerating growth (SSP5-8.5-like)")
def _ssp_high(start_level: float = 2.5) -> ScenarioSpec:
    return ScenarioSpec(
        "ssp-high",
        (
            GHGRamp(base=start_level, rate=0.1, acceleration=0.012),
            SolarCycle(amplitude=0.05),
        ),
        description="fossil-fuelled accelerating growth (SSP5-8.5-like)",
    )


@register_scenario("overshoot", aliases=("ssp-overshoot",),
                   description="peak then delayed net-negative drawdown")
def _overshoot(start_level: float = 2.5) -> ScenarioSpec:
    return ScenarioSpec(
        "overshoot",
        (
            Stabilisation(base=start_level, amplitude=3.0, timescale_years=25.0),
            Stabilisation(base=0.0, amplitude=-2.2, timescale_years=20.0, delay_years=40.0),
        ),
        description="peak then delayed net-negative drawdown",
    )
