"""repro — reproduction of the SC 2024 exascale climate emulator.

This package reimplements, in pure Python/NumPy, the system described in
"Boosting Earth System Model Outputs And Saving PetaBytes in Their Storage
Using Exascale Climate Emulators" (Abdulah et al., SC 2024):

* :mod:`repro.sht` — spherical harmonic transform substrate (Eqs. 3-8).
* :mod:`repro.core` — the climate emulator itself: distributed-lag mean
  trend, spectral stochastic model with a diagonal VAR, innovation
  covariance and Cholesky factorisation, and emulation generation.
* :mod:`repro.linalg` — tile-based mixed-precision dense linear algebra
  (DP / DP-SP / DP-SP-HP / DP-HP Cholesky variants).
* :mod:`repro.runtime` — a PaRSEC-like task runtime: DAG construction,
  schedulers, a discrete-event distributed-machine simulator, and a local
  numerical executor.
* :mod:`repro.systems` — machine models of Frontier, Alps, Leonardo and
  Summit plus the performance model used by the benchmark harness.
* :mod:`repro.data` — synthetic ERA5-like data generation, radiative
  forcing trajectories and ensembles.
* :mod:`repro.storage` — storage accounting behind the "saving petabytes"
  claims.
* :mod:`repro.stats` — statistical-consistency diagnostics between
  simulations and emulations.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
