"""repro — reproduction of the SC 2024 exascale climate emulator.

This package reimplements, in pure Python/NumPy, the system described in
"Boosting Earth System Model Outputs And Saving PetaBytes in Their Storage
Using Exascale Climate Emulators" (Abdulah et al., SC 2024):

* :mod:`repro.api` — the public API layer: the versioned
  :class:`EmulatorArtifact` persistence format, the backend registries
  behind the named SHT and Cholesky-precision variants, and the
  :func:`fit` / :func:`save` / :func:`load` / :func:`emulate` /
  :func:`emulate_stream` facade re-exported here.
* :mod:`repro.sht` — spherical harmonic transform substrate (Eqs. 3-8),
  including the process-wide plan cache (:func:`get_plan`) and the
  batched GEMM/FFT synthesis path behind emulation generation.
* :mod:`repro.core` — the climate emulator itself: distributed-lag mean
  trend, spectral stochastic model with a diagonal VAR, innovation
  covariance and Cholesky factorisation, and emulation generation.
* :mod:`repro.linalg` — tile-based mixed-precision dense linear algebra
  (DP / DP-SP / DP-SP-HP / DP-HP Cholesky variants).
* :mod:`repro.runtime` — a PaRSEC-like task runtime: DAG construction
  and analysis (critical path, parallelism profile), machine specs, and
  a local numerical executor.
* :mod:`repro.systems` — machine models of Frontier, Alps, Leonardo and
  Summit plus the performance model used by the benchmark harness.
* :mod:`repro.tuning` — cost-model-driven autotuning: a measured
  per-host :class:`MachineProfile` and the
  ``T_compute + T_comm + T_latency`` planner behind
  ``run_campaign(..., tune="auto")`` and ``serve(...,
  cache_bytes="auto")`` (see :func:`calibrate_machine`).
* :mod:`repro.data` — synthetic ERA5-like data generation, radiative
  forcing trajectories and ensembles.
* :mod:`repro.scenarios` — the scenario engine: composable forcing
  components summed into named :class:`ScenarioSpec` pathways (resolved
  through the :data:`SCENARIOS` registry) and the sharded
  multi-scenario, multi-realization campaign runner :func:`run_campaign`.
* :mod:`repro.serving` — the on-demand emulation service: content-addressed
  :class:`FieldRequest` objects served by :class:`EmulationService` from
  a bytes-capped chunk cache, an optional persistent
  :class:`ChunkStore`, or coalesced batched synthesis
  (built via :func:`serve`).
* :mod:`repro.storage` — storage accounting behind the "saving petabytes"
  claims, plus the persistent quantizable :class:`ChunkStore` tier.
* :mod:`repro.stats` — statistical-consistency diagnostics between
  simulations and emulations.
* :mod:`repro.obs` — the unified telemetry layer: a thread-safe metrics
  registry plus hierarchical tracing spans instrumenting every hot path
  (fit, both SHT directions, the plan cache, serving, chunk-store I/O
  and campaigns), exported as JSON-lines traces for
  ``tools/tracereport.py``.

Quickstart
----------
>>> import repro                                           # doctest: +SKIP
>>> sims = repro.Era5LikeGenerator(
...     repro.Era5LikeConfig(lmax=16, n_years=5)).generate()  # doctest: +SKIP
>>> emulator = repro.fit(sims, lmax=16)                    # doctest: +SKIP
>>> repro.save(emulator, "emulator.npz")                   # doctest: +SKIP
>>> emulations = repro.emulate("emulator.npz", 5)          # doctest: +SKIP
>>> manifest = repro.run_campaign(                         # doctest: +SKIP
...     "emulator.npz", ["ssp-low", "ssp-medium", "ssp-high"],
...     n_realizations=5, max_workers=4)
"""

__version__ = "1.10.0"

from repro import obs
from repro.core.config import EmulatorConfig
from repro.core.emulator import ClimateEmulator
from repro.core.window import SpatialWindow
from repro.data.ensemble import ClimateEnsemble
from repro.data.era5_like import Era5LikeConfig, Era5LikeGenerator
from repro.linalg.policies import CHOLESKY_VARIANTS
from repro.sht.backends import SHT_BACKENDS
from repro.sht.plancache import (
    clear_plan_cache,
    get_plan,
    plan_cache_stats,
    set_plan_cache_limit,
)
from repro.api.registry import BackendRegistry, UnknownBackendError
from repro.api.artifact import (
    SCHEMA_VERSION,
    ArtifactError,
    EmulatorArtifact,
    SchemaVersionError,
)
from repro.api.facade import emulate, emulate_stream, fit, load, save, serve
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.registry import SCENARIOS, list_scenarios, register_scenario
from repro.storage.chunkstore import ChunkStore
# Imported after the facade: the campaign runner and the serving layer
# build on repro.api.
from repro.scenarios.campaign import CampaignManifest, iter_chunk_arrays, run_campaign
from repro.serving.request import FieldRequest
from repro.serving.service import EmulationService
from repro.tuning import MachineProfile, TuningPlan, calibrate_machine

__all__ = [
    "ArtifactError",
    "BackendRegistry",
    "CHOLESKY_VARIANTS",
    "CampaignManifest",
    "ChunkStore",
    "ClimateEmulator",
    "ClimateEnsemble",
    "EmulationService",
    "EmulatorArtifact",
    "EmulatorConfig",
    "Era5LikeConfig",
    "Era5LikeGenerator",
    "FieldRequest",
    "MachineProfile",
    "SCENARIOS",
    "SCHEMA_VERSION",
    "SHT_BACKENDS",
    "ScenarioSpec",
    "SchemaVersionError",
    "SpatialWindow",
    "TuningPlan",
    "UnknownBackendError",
    "__version__",
    "calibrate_machine",
    "clear_plan_cache",
    "emulate",
    "emulate_stream",
    "fit",
    "get_plan",
    "iter_chunk_arrays",
    "list_scenarios",
    "load",
    "obs",
    "plan_cache_stats",
    "register_scenario",
    "run_campaign",
    "save",
    "serve",
    "set_plan_cache_limit",
]
