"""The spectral stochastic model (paper Section III-A.1 and III-A.3).

The standardised residual fields are transformed to the spherical-harmonic
domain, packed into the real coefficient vector ``f_t in R^{L^2}``, fitted
with a diagonal VAR(P), and the VAR innovations' empirical covariance
``U`` (Eq. 9) is factorised with the mixed-precision tile Cholesky.  The
part of the field the band-limited expansion cannot represent is captured
by the per-location nugget variance ``v^2(theta, phi)``, which re-enters
as white noise when emulations are generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import Iterator

from repro.core.var import DiagonalVAR
from repro.linalg.cholesky import CholeskyResult, MixedPrecisionCholesky
from repro.linalg.flops import cholesky_flops
from repro.obs import span
from repro.sht.grid import Grid
from repro.sht.plancache import get_plan
from repro.sht.realform import complex_from_real, real_from_complex

__all__ = ["SpectralStochasticModel", "validate_batch_size"]


def validate_batch_size(batch_size: "int | None") -> "int | None":
    """Validate an SHT working-set cap: ``None`` or a positive integer.

    Shared by every ``batch_size``-accepting entry point (spectral fit
    and generation, :class:`~repro.core.emulator.ClimateEmulator`, the
    generator), so the rule cannot drift between them.  Non-integral
    values are rejected here rather than failing later inside a slice.
    """
    if batch_size is None:
        return None
    if isinstance(batch_size, bool) or not isinstance(
        batch_size, (int, np.integer)
    ):
        raise ValueError(
            f"batch_size must be a positive integer or None, got {batch_size!r}"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    return int(batch_size)


@dataclass
class SpectralStochasticModel:
    """Spectral model of the standardised stochastic component.

    Parameters
    ----------
    lmax:
        Spherical-harmonic band-limit ``L``.
    grid:
        Spatial grid of the training data.
    var_order:
        Diagonal VAR order ``P``.
    tile_size / precision_variant / covariance_jitter:
        Parameters of the mixed-precision Cholesky of the innovation
        covariance.  ``precision_variant`` is resolved by name through
        :data:`repro.linalg.policies.CHOLESKY_VARIANTS`.
    sht_method:
        Name of the SHT backend, resolved through
        :data:`repro.sht.backends.SHT_BACKENDS` (``"fast"`` or
        ``"direct"``; any registered name works).
    """

    lmax: int
    grid: Grid
    var_order: int = 2
    tile_size: int = 32
    precision_variant: str = "DP"
    covariance_jitter: float = 1e-6
    sht_method: str = "fast"

    plan: object = field(init=False, repr=False)
    var: DiagonalVAR = field(init=False, repr=False)
    covariance: np.ndarray | None = field(init=False, default=None, repr=False)
    cholesky: CholeskyResult | None = field(init=False, default=None, repr=False)
    nugget_std: np.ndarray | None = field(init=False, default=None, repr=False)
    initial_state: np.ndarray | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        # Plans are pure precomputation keyed on (backend, lmax, grid), so
        # every model in the process shares one set of Wigner/quadrature
        # tables instead of rebuilding O(L^3) values per instance.
        self.plan = get_plan(self.sht_method, lmax=self.lmax, grid=self.grid)
        self.var = DiagonalVAR(order=self.var_order)

    # ------------------------------------------------------------------ #
    # Forward modelling of the training residuals
    # ------------------------------------------------------------------ #
    def spectral_series(
        self, standardized: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Real spectral coefficient series ``f_t`` for each ensemble member.

        Parameters
        ----------
        standardized:
            Standardised residual fields of shape ``(R, T, ntheta, nphi)``.
        batch_size:
            Cap on ensemble members analysed per forward-SHT pass (all at
            once when ``None``).  A memory knob only: the forward
            transform is independent per leading slice, so the result is
            bit-identical for every value.

        Returns
        -------
        numpy.ndarray
            Real array of shape ``(R, T, L**2)``.
        """
        standardized = np.asarray(standardized, dtype=np.float64)
        if standardized.ndim == 3:
            standardized = standardized[None, ...]
        batch_size = validate_batch_size(batch_size)
        n_real = standardized.shape[0]
        if batch_size is None or batch_size >= n_real:
            coeffs = self.plan.forward(standardized)
            return real_from_complex(coeffs)
        spectral = np.empty(
            standardized.shape[:2] + (self.plan.n_coeffs,), dtype=np.float64
        )
        for start in range(0, n_real, batch_size):
            block = standardized[start:start + batch_size]
            spectral[start:start + batch_size] = real_from_complex(
                self.plan.forward(block)
            )
        return spectral

    def truncation_residual(
        self,
        standardized: np.ndarray,
        spectral: np.ndarray,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Grid-space residual unexplained by the band-limited expansion.

        ``batch_size`` caps the ensemble members reconstructed per
        inverse-SHT pass (all at once when ``None``); the residual is
        bit-identical for every value.
        """
        standardized = np.asarray(standardized, dtype=np.float64)
        if standardized.ndim == 3:
            standardized = standardized[None, ...]
        reconstructed = self._synthesize(
            np.asarray(spectral, dtype=np.float64), batch_size
        )
        return standardized - reconstructed

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(
        self, standardized: np.ndarray, batch_size: int | None = None
    ) -> "SpectralStochasticModel":
        """Fit the VAR, innovation covariance, Cholesky factor and nugget.

        ``batch_size`` caps how many ensemble members each SHT pass (the
        forward analysis of the residuals and the inverse reconstruction
        behind the nugget) materialises at once — the ``O(L^3)`` working
        set of the fit hot path.  A memory/throughput knob only: both
        transforms are independent per leading slice, so the fitted
        state is bit-identical for every ``batch_size``.
        """
        standardized = np.asarray(standardized, dtype=np.float64)
        if standardized.ndim == 3:
            standardized = standardized[None, ...]
        batch_size = validate_batch_size(batch_size)
        n_ens, n_times = standardized.shape[:2]
        if n_times <= self.var_order + 1:
            raise ValueError("record too short for the requested VAR order")

        with span(
            "fit.analysis", lmax=self.lmax, n_ensemble=n_ens, n_times=n_times
        ):
            spectral = self.spectral_series(standardized, batch_size)  # (R, T, K)
        self.var.fit(spectral)
        innovations = self.var.innovations(spectral)           # (R, T-P, K)

        # Empirical innovation covariance (Eq. 9), pooled over ensembles.
        flat = innovations.reshape(-1, innovations.shape[-1])
        n_samples = flat.shape[0]
        cov = flat.T @ flat / max(n_samples, 1)
        k = cov.shape[0]
        if n_samples < k or self.covariance_jitter > 0:
            # "minor perturbation along the diagonal ... to ensure it
            # remains positive definite" (Section III-A.3).
            cov = cov + np.eye(k) * self.covariance_jitter * float(np.mean(np.diag(cov)) or 1.0)
        self.covariance = cov

        solver = MixedPrecisionCholesky(
            tile_size=self.tile_size,
            variant=self.precision_variant,
            jitter=self.covariance_jitter,
        )
        with span(
            "fit.cholesky",
            order=k,
            variant=self.precision_variant,
            flops=cholesky_flops(k),
        ):
            self.cholesky = solver.factorize(cov)

        truncation = self.truncation_residual(standardized, spectral, batch_size)
        self.nugget_std = truncation.std(axis=(0, 1), ddof=1)
        self.initial_state = spectral[:, -max(self.var_order, 1):, :].mean(axis=0)
        return self

    # ------------------------------------------------------------------ #
    # Emulation support
    # ------------------------------------------------------------------ #
    def sample_innovations(
        self, rng: np.random.Generator, n_realizations: int, n_times: int
    ) -> np.ndarray:
        """Draw ``xi_t ~ N(0, U)`` using the mixed-precision factor."""
        if self.cholesky is None:
            raise RuntimeError("fit() must be called first")
        k = self.cholesky.factor.n
        z = rng.standard_normal((n_realizations, n_times, k))
        return z @ self.cholesky.lower().T

    def generate_standardized(
        self,
        rng: np.random.Generator,
        n_realizations: int,
        n_times: int,
        include_nugget: bool = True,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Generate standardised stochastic fields ``Z_t`` (Section III-B).

        Implemented as the single-chunk case of
        :meth:`generate_standardized_stream`, so the two paths cannot
        drift apart.  Output is ``float64`` of shape
        ``(n_realizations, n_times, ntheta, nphi)`` and is a deterministic
        function of ``rng`` alone — ``batch_size`` never changes a bit of
        it (see :meth:`generate_standardized_stream`).
        """
        stream = self.generate_standardized_stream(
            rng, n_realizations, n_times, chunk_size=n_times,
            include_nugget=include_nugget, batch_size=batch_size,
        )
        return next(iter(stream))[1]

    def _synthesize(self, series: np.ndarray, batch_size: int | None) -> np.ndarray:
        """Inverse-transform a real coefficient series, blockwise over axis 0.

        ``series`` has shape ``(R, ..., L**2)``; the inverse SHT is
        applied in axis-0 blocks of at most ``batch_size`` (all at once
        when ``None``), bounding the synthesis working set without
        changing the result: the transform is independent per leading
        slice, so the blocked output is bit-identical to the single-pass
        output.
        """
        batch_size = validate_batch_size(batch_size)
        n_real = series.shape[0]
        if batch_size is None or batch_size >= n_real:
            return self.plan.inverse(complex_from_real(series))
        fields = np.empty(series.shape[:-1] + self.grid.shape, dtype=np.float64)
        for start in range(0, n_real, batch_size):
            block = series[start:start + batch_size]
            fields[start:start + batch_size] = self.plan.inverse(
                complex_from_real(block)
            )
        return fields

    def generate_standardized_stream(
        self,
        rng: np.random.Generator,
        n_realizations: int,
        n_times: int,
        chunk_size: int,
        include_nugget: bool = True,
        batch_size: int | None = None,
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(t_start, fields)`` chunks of the standardised process.

        Bounded-memory generation: at most ``chunk_size`` time steps are
        materialised at once, and the VAR history is carried across chunks
        so the concatenated stream follows the same AR(P) recursion as a
        single monolithic draw.  :meth:`generate_standardized` is the
        single-chunk case (``chunk_size = n_times``), so a stream whose
        first chunk covers the whole record reproduces its output bit for
        bit.

        ``batch_size`` caps how many realizations the inverse transform
        synthesises per pass (the ``O(L^3)`` working set); every random
        draw is made at full ``n_realizations`` width in a fixed order
        (innovations, then nugget, per chunk), so the output is
        bit-identical for every ``batch_size`` under the same ``rng``.
        """
        if self.cholesky is None or self.nugget_std is None:
            raise RuntimeError("fit() must be called first")
        if n_realizations < 1 or n_times < 1:
            raise ValueError("n_realizations and n_times must be positive")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        batch_size = validate_batch_size(batch_size)
        p = self.var_order
        k = self.cholesky.factor.n
        if p > 0:
            init = (
                np.asarray(self.initial_state, dtype=np.float64)
                if self.initial_state is not None
                else np.zeros((p, k))
            )
            history = np.broadcast_to(init[-p:], (n_realizations, p, k)).copy()
        else:
            history = None
        for t_start in range(0, n_times, chunk_size):
            nt = min(chunk_size, n_times - t_start)
            xi = self.sample_innovations(rng, n_realizations, nt)
            series = self.var.simulate(xi, initial=history)
            if p > 0:
                history = np.concatenate([history, series], axis=1)[:, -p:, :]
            fields = self._synthesize(series, batch_size)
            if include_nugget:
                fields = fields + self.nugget_std * rng.standard_normal(fields.shape)
            yield t_start, fields

    def generate_standardized_stream_multi(
        self,
        rngs: "list[np.random.Generator]",
        n_times: int,
        chunk_size: int,
        include_nugget: bool = True,
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Drive ``B`` independent single-realization streams in one pass.

        The batched synthesis hot path: realization ``b`` consumes random
        draws *only* from ``rngs[b]``, in exactly the order a serial
        ``generate_standardized_stream(rngs[b], n_realizations=1, ...)``
        call would (per chunk: one ``(1, nt, L**2)`` innovation draw, then
        one ``(1, nt, ntheta, nphi)`` nugget draw), while the expensive
        data-independent work — the VAR recursion and the inverse SHT —
        runs once on the stacked ``(B, nt, L**2)`` coefficient block.
        Both are computed independently per leading slice (elementwise AR
        update; per-slice einsum/FFT), so chunk ``b`` of the yielded stack
        is bit-identical to the serial stream under ``rngs[b]``.  This is
        what lets :func:`repro.run_campaign` vectorise realizations that
        have per-run ``SeedSequence``-spawned generators without changing
        a single output bit.

        Parameters
        ----------
        rngs:
            One generator per batched stream (``B = len(rngs)``); each is
            advanced exactly as its serial counterpart would be.
        n_times / chunk_size / include_nugget:
            As in :meth:`generate_standardized_stream`.

        Yields
        ------
        tuple[int, numpy.ndarray]
            ``(t_start, fields)`` with ``fields`` of dtype ``float64`` and
            shape ``(B, <=chunk_size, ntheta, nphi)``.
        """
        if self.cholesky is None or self.nugget_std is None:
            raise RuntimeError("fit() must be called first")
        rngs = list(rngs)
        if not rngs:
            raise ValueError("rngs must contain at least one generator")
        if n_times < 1:
            raise ValueError("n_times must be positive")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        n_batch = len(rngs)
        p = self.var_order
        k = self.cholesky.factor.n
        lower_t = self.cholesky.lower().T
        if p > 0:
            init = (
                np.asarray(self.initial_state, dtype=np.float64)
                if self.initial_state is not None
                else np.zeros((p, k))
            )
            history = np.broadcast_to(init[-p:], (n_batch, p, k)).copy()
        else:
            history = None
        for t_start in range(0, n_times, chunk_size):
            nt = min(chunk_size, n_times - t_start)
            # Per-stream draws, stacked: stream b's generator sees the same
            # request sequence as a serial n_realizations=1 run.
            z = np.concatenate(
                [rng.standard_normal((1, nt, k)) for rng in rngs], axis=0
            )
            xi = z @ lower_t
            series = self.var.simulate(xi, initial=history)
            if p > 0:
                history = np.concatenate([history, series], axis=1)[:, -p:, :]
            fields = self.plan.inverse(complex_from_real(series))
            if include_nugget:
                for b, rng in enumerate(rngs):
                    noise = rng.standard_normal((1, nt) + self.grid.shape)
                    fields[b] = fields[b] + self.nugget_std * noise[0]
            yield t_start, fields

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Arrays and metadata from which :meth:`from_state` rebuilds the model."""
        if self.covariance is None or self.cholesky is None or self.nugget_std is None:
            raise RuntimeError("fit() must be called before state_dict()")
        return {
            "lmax": int(self.lmax),
            "grid": {"ntheta": int(self.grid.ntheta), "nphi": int(self.grid.nphi)},
            "var_order": int(self.var_order),
            "tile_size": int(self.tile_size),
            "precision_variant": str(self.precision_variant),
            "covariance_jitter": float(self.covariance_jitter),
            "sht_method": str(self.sht_method),
            "covariance": np.asarray(self.covariance, dtype=np.float64),
            "nugget_std": np.asarray(self.nugget_std, dtype=np.float64),
            "initial_state": (
                np.asarray(self.initial_state, dtype=np.float64)
                if self.initial_state is not None
                else None
            ),
            "var": self.var.state_dict(),
            "cholesky": self.cholesky.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SpectralStochasticModel":
        """Rebuild a fitted model from :meth:`state_dict` output."""
        grid = Grid(ntheta=int(state["grid"]["ntheta"]), nphi=int(state["grid"]["nphi"]))
        model = cls(
            lmax=int(state["lmax"]),
            grid=grid,
            var_order=int(state["var_order"]),
            tile_size=int(state["tile_size"]),
            precision_variant=str(state["precision_variant"]),
            covariance_jitter=float(state["covariance_jitter"]),
            sht_method=str(state.get("sht_method", "fast")),
        )
        model.var = DiagonalVAR.from_state(state["var"])
        model.covariance = np.asarray(state["covariance"], dtype=np.float64)
        model.nugget_std = np.asarray(state["nugget_std"], dtype=np.float64)
        initial_state = state.get("initial_state")
        if initial_state is not None:
            model.initial_state = np.asarray(initial_state, dtype=np.float64)
        model.cholesky = CholeskyResult.from_state(state["cholesky"])
        return model

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def parameter_count(self) -> int:
        """Number of stored model parameters (drives the storage savings)."""
        if self.covariance is None or self.nugget_std is None:
            raise RuntimeError("fit() must be called first")
        k = self.covariance.shape[0]
        cov_params = k * (k + 1) // 2
        var_params = self.var_order * k
        nugget_params = int(np.prod(self.nugget_std.shape))
        return cov_params + var_params + nugget_params
