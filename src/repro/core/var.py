"""Diagonal vector autoregression on spherical-harmonic coefficients.

The temporal dependence of the spectral coefficient vector ``f_t`` is
modelled as ``f_t = sum_p Phi_p f_{t-p} + xi_t`` with *diagonal* matrices
``Phi_p`` (paper Section III-A.3), i.e. every coefficient follows its own
scalar AR(P) process while the innovations ``xi_t`` are allowed a full
``L^2 x L^2`` covariance ``U``.  The diagonal restriction is what keeps the
temporal fit ``O(L^2 T)`` and leaves the heavy lifting to the single
Cholesky factorisation of ``U``.

A dense (non-diagonal) option is provided for small problems so the
benchmark suite can quantify what the diagonal approximation gives up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DiagonalVAR"]


@dataclass
class DiagonalVAR:
    """AR(P) model applied coefficient-wise to a multivariate series.

    Parameters
    ----------
    order:
        Autoregressive order ``P`` (0 disables the temporal model).
    ridge:
        Small Tikhonov term added to the per-coefficient normal equations
        for numerical safety with short records.
    """

    order: int = 2
    ridge: float = 1e-10
    coefficients: np.ndarray | None = field(default=None, init=False)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, series: np.ndarray) -> "DiagonalVAR":
        """Estimate the diagonal AR coefficients.

        Parameters
        ----------
        series:
            Real array of shape ``(R, T, K)`` (ensemble members, time,
            coefficients) or ``(T, K)``.

        Returns
        -------
        DiagonalVAR
            ``self`` with ``coefficients`` of shape ``(P, K)``; lag ``p``
            coefficient of component ``k`` is ``coefficients[p-1, k]``.
        """
        series = np.asarray(series, dtype=np.float64)
        if series.ndim == 2:
            series = series[None, ...]
        if series.ndim != 3:
            raise ValueError("series must have shape (R, T, K)")
        n_ens, n_times, n_comp = series.shape
        p = self.order
        if p == 0:
            self.coefficients = np.zeros((0, n_comp))
            return self
        if n_times <= p:
            raise ValueError(f"need more than order={p} time steps, got {n_times}")

        # Build per-component normal equations, pooling ensembles.
        # A[k] is (P, P), b[k] is (P,).
        a = np.zeros((n_comp, p, p))
        b = np.zeros((n_comp, p))
        for r in range(n_ens):
            x = series[r]
            target = x[p:]  # (T-P, K)
            lags = np.stack([x[p - q - 1: n_times - q - 1] for q in range(p)], axis=-1)
            # lags: (T-P, K, P)
            a += np.einsum("tkp,tkq->kpq", lags, lags)
            b += np.einsum("tkp,tk->kp", lags, target)
        a += self.ridge * np.eye(p)[None, :, :]
        self.coefficients = np.linalg.solve(a, b[..., None])[..., 0].T  # (P, K)
        return self

    # ------------------------------------------------------------------ #
    # Residuals and simulation
    # ------------------------------------------------------------------ #
    def _require_fit(self) -> np.ndarray:
        if self.coefficients is None:
            raise RuntimeError("fit() must be called first")
        return self.coefficients

    def predict_one_step(self, history: np.ndarray) -> np.ndarray:
        """One-step prediction from the last ``P`` rows of ``history``.

        ``history`` has shape ``(..., >=P, K)``; returns ``(..., K)``.
        """
        coeffs = self._require_fit()
        p = self.order
        if p == 0:
            return np.zeros(history.shape[:-2] + history.shape[-1:])
        recent = history[..., -p:, :]
        # coefficient for lag q multiplies history at index -q-1
        pred = np.zeros(history.shape[:-2] + (history.shape[-1],))
        for q in range(p):
            pred = pred + coeffs[q] * recent[..., -q - 1, :]
        return pred

    def innovations(self, series: np.ndarray) -> np.ndarray:
        """Residuals ``xi_t = f_t - sum_p Phi_p f_{t-p}``.

        Parameters
        ----------
        series:
            ``(R, T, K)`` or ``(T, K)`` real array.

        Returns
        -------
        numpy.ndarray
            Innovations of shape ``(R, T - P, K)`` (or ``(T - P, K)``).
        """
        coeffs = self._require_fit()
        series = np.asarray(series, dtype=np.float64)
        squeeze = series.ndim == 2
        if squeeze:
            series = series[None, ...]
        p = self.order
        if p == 0:
            out = series.copy()
        else:
            n_times = series.shape[1]
            pred = np.zeros_like(series[:, p:])
            for q in range(p):
                pred += coeffs[q] * series[:, p - q - 1: n_times - q - 1]
            out = series[:, p:] - pred
        return out[0] if squeeze else out

    def simulate(
        self,
        innovations: np.ndarray,
        initial: np.ndarray | None = None,
    ) -> np.ndarray:
        """Roll the AR recursion forward over a sequence of innovations.

        Parameters
        ----------
        innovations:
            ``(T, K)`` or ``(R, T, K)`` innovations ``xi_t``.
        initial:
            Optional initial history of shape ``(..., P, K)``; zeros when
            omitted.

        Returns
        -------
        numpy.ndarray
            The simulated series, same shape as ``innovations``.
        """
        coeffs = self._require_fit()
        innovations = np.asarray(innovations, dtype=np.float64)
        squeeze = innovations.ndim == 2
        if squeeze:
            innovations = innovations[None, ...]
        n_ens, n_times, n_comp = innovations.shape
        p = self.order
        out = np.zeros_like(innovations)
        if initial is None:
            history = np.zeros((n_ens, p, n_comp))
        else:
            history = np.broadcast_to(
                np.asarray(initial, dtype=np.float64), (n_ens, p, n_comp)
            ).copy()
        for t in range(n_times):
            value = innovations[:, t].copy()
            for q in range(p):
                value += coeffs[q] * history[:, -q - 1, :]
            out[:, t] = value
            if p > 0:
                history = np.concatenate([history[:, 1:], value[:, None, :]], axis=1)
        return out[0] if squeeze else out

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def spectral_radius(self) -> np.ndarray:
        """Largest AR characteristic-root modulus per component.

        Values below one indicate a stationary (stable) process; the
        emulator checks this before generating long emulations.
        """
        coeffs = self._require_fit()
        p, n_comp = coeffs.shape
        if p == 0:
            return np.zeros(n_comp)
        return self._companion_radii(coeffs)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Arrays and metadata from which :meth:`from_state` rebuilds the VAR."""
        return {
            "order": int(self.order),
            "ridge": float(self.ridge),
            "coefficients": (
                np.asarray(self.coefficients, dtype=np.float64)
                if self.coefficients is not None
                else None
            ),
        }

    @classmethod
    def from_state(cls, state: dict) -> "DiagonalVAR":
        """Rebuild a VAR from :meth:`state_dict` output."""
        var = cls(order=int(state["order"]), ridge=float(state["ridge"]))
        coefficients = state.get("coefficients")
        if coefficients is not None:
            var.coefficients = np.asarray(coefficients, dtype=np.float64)
        return var

    @staticmethod
    def _companion_radii(coeffs: np.ndarray) -> np.ndarray:
        p, n_comp = coeffs.shape
        radii = np.empty(n_comp)
        for k in range(n_comp):
            companion = np.zeros((p, p))
            companion[0, :] = coeffs[:, k]
            if p > 1:
                companion[1:, :-1] = np.eye(p - 1)
            radii[k] = np.max(np.abs(np.linalg.eigvals(companion)))
        return radii
