"""The distributed-lag mean-trend model (Eq. 2).

Every spatial location gets its own linear model

``m_t = beta_0 + beta_1 x_{ceil(t/tau)} + beta_2 d_t(rho)
        + sum_k a_k cos(2 pi t k / tau) + b_k sin(2 pi t k / tau)``

where ``x`` is the annual radiative forcing, ``d_t(rho)`` is the
exponentially weighted history ``(1 - rho) sum_s rho^{s-1} x_{year - s}``
and the harmonic terms capture the periodic (seasonal / diurnal) cycle.

Because the regressors depend only on time (not on location), the fit for
*all* locations reduces to one shared design matrix and a single
least-squares solve per candidate ``rho``; the decay ``rho`` itself is
profiled per location over a small grid, which is the "1D MLE per location
with O(T) cost" strategy described in the paper.  Under the Gaussian
residual model, minimising the residual sum of squares is exactly the
profile maximum-likelihood estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TrendFit", "MeanTrendModel", "distributed_lag_series"]


def distributed_lag_series(annual_forcing: np.ndarray, rho: float) -> np.ndarray:
    """Exponentially weighted forcing history ``d_y(rho)`` per year.

    Uses the recursion ``d_y = (1 - rho) x_{y-1} + rho d_{y-1}`` with
    ``d_0 = x_0`` (i.e. an infinite pre-industrial history pinned at the
    first forcing value), which sums the paper's infinite distributed-lag
    series exactly.
    """
    x = np.asarray(annual_forcing, dtype=np.float64)
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must lie in [0, 1)")
    d = np.empty_like(x)
    d[0] = x[0]
    for y in range(1, len(x)):
        d[y] = (1.0 - rho) * x[y - 1] + rho * d[y - 1]
    return d


@dataclass
class TrendFit:
    """Fitted per-location trend parameters.

    All arrays have the spatial grid shape.  ``coefficients`` stacks the
    regression coefficients along the last axis in the order of
    :meth:`MeanTrendModel.design_matrix`.
    """

    coefficients: np.ndarray
    rho: np.ndarray
    residual_variance: np.ndarray
    regressor_names: list[str]

    @property
    def intercept(self) -> np.ndarray:
        """``beta_0`` field."""
        return self.coefficients[..., 0]

    @property
    def forcing_slope(self) -> np.ndarray:
        """``beta_1`` field."""
        return self.coefficients[..., 1]

    def harmonic_amplitude(self, k: int = 1) -> np.ndarray:
        """Amplitude ``sqrt(a_k^2 + b_k^2)`` of harmonic ``k``."""
        names = self.regressor_names
        try:
            ia = names.index(f"cos{k}")
            ib = names.index(f"sin{k}")
        except ValueError as exc:
            raise ValueError(f"harmonic {k} not in the model") from exc
        return np.sqrt(self.coefficients[..., ia] ** 2 + self.coefficients[..., ib] ** 2)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Arrays and metadata from which :meth:`from_state` rebuilds the fit."""
        return {
            "coefficients": np.asarray(self.coefficients, dtype=np.float64),
            "rho": np.asarray(self.rho, dtype=np.float64),
            "residual_variance": np.asarray(self.residual_variance, dtype=np.float64),
            "regressor_names": list(self.regressor_names),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TrendFit":
        """Rebuild a fit from :meth:`state_dict` output."""
        return cls(
            coefficients=np.asarray(state["coefficients"], dtype=np.float64),
            rho=np.asarray(state["rho"], dtype=np.float64),
            residual_variance=np.asarray(state["residual_variance"], dtype=np.float64),
            regressor_names=[str(n) for n in state["regressor_names"]],
        )


class MeanTrendModel:
    """Fit and evaluate the mean-trend model for every grid point.

    Parameters
    ----------
    steps_per_year:
        Temporal resolution ``tau`` (12, 365, 8760, or a synthetic value).
    n_harmonics:
        Number of periodic harmonics ``K``.
    rho_grid:
        Candidate distributed-lag decays profiled per location.
    use_distributed_lag:
        Include the ``beta_2 d_t(rho)`` regressor.
    """

    def __init__(
        self,
        steps_per_year: int,
        n_harmonics: int = 2,
        rho_grid: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
        use_distributed_lag: bool = True,
    ) -> None:
        if steps_per_year < 1:
            raise ValueError("steps_per_year must be positive")
        self.steps_per_year = steps_per_year
        self.n_harmonics = n_harmonics
        self.rho_grid = tuple(rho_grid)
        self.use_distributed_lag = use_distributed_lag
        self.fit_result: TrendFit | None = None

    # ------------------------------------------------------------------ #
    # Design matrix
    # ------------------------------------------------------------------ #
    def regressor_names(self) -> list[str]:
        """Names of the design-matrix columns."""
        names = ["intercept", "forcing"]
        if self.use_distributed_lag:
            names.append("lagged-forcing")
        for k in range(1, self.n_harmonics + 1):
            names += [f"cos{k}", f"sin{k}"]
        return names

    def design_matrix(
        self,
        n_times: int,
        annual_forcing: np.ndarray,
        rho: float,
        t_start: int = 0,
    ) -> np.ndarray:
        """Design matrix of shape ``(T, p)`` shared by all locations.

        ``t_start`` offsets the time axis: the rows cover absolute steps
        ``t_start .. t_start + n_times - 1``, which lets streaming
        generation evaluate the trend chunk by chunk.
        """
        steps = np.arange(t_start, t_start + n_times)
        t = steps.astype(np.float64)
        year = (steps // self.steps_per_year).astype(int)
        x = np.asarray(annual_forcing, dtype=np.float64)
        if year.max() >= len(x):
            raise ValueError("forcing trajectory shorter than the data record")
        cols = [np.ones(n_times), x[year]]
        if self.use_distributed_lag:
            d = distributed_lag_series(x, rho)
            cols.append(d[year])
        for k in range(1, self.n_harmonics + 1):
            phase = 2.0 * np.pi * t * k / self.steps_per_year
            cols.append(np.cos(phase))
            cols.append(np.sin(phase))
        return np.column_stack(cols)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(
        self,
        data: np.ndarray,
        annual_forcing: np.ndarray,
    ) -> TrendFit:
        """Fit the trend at every location.

        Parameters
        ----------
        data:
            Fields of shape ``(R, T, ntheta, nphi)`` or ``(T, ntheta,
            nphi)``; ensemble members share the trend (Eq. 1), so they are
            averaged into the fit target.
        annual_forcing:
            Annual forcing trajectory covering the record.

        Returns
        -------
        TrendFit
            Per-location coefficients, chosen ``rho`` and residual variance.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.ndim == 3:
            data = data[None, ...]
        if data.ndim != 4:
            raise ValueError("data must have shape (R, T, ntheta, nphi)")
        n_ens, n_times = data.shape[:2]
        space_shape = data.shape[2:]
        # The trend is shared across ensembles: fitting on the ensemble mean
        # is the least-squares solution for the pooled problem.
        target = data.mean(axis=0).reshape(n_times, -1)

        rho_candidates = self.rho_grid if self.use_distributed_lag else (0.0,)
        best_sse = np.full(target.shape[1], np.inf)
        best_rho = np.zeros(target.shape[1])
        best_coeffs = None

        for rho in rho_candidates:
            design = self.design_matrix(n_times, annual_forcing, rho)
            coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
            resid = target - design @ coeffs
            sse = np.sum(resid ** 2, axis=0)
            improved = sse < best_sse
            if best_coeffs is None:
                best_coeffs = coeffs.copy()
            best_coeffs[:, improved] = coeffs[:, improved]
            best_rho[improved] = rho
            best_sse[improved] = sse[improved]

        assert best_coeffs is not None
        n_params = best_coeffs.shape[0]
        dof = max(n_times - n_params, 1)
        fit = TrendFit(
            coefficients=best_coeffs.T.reshape(space_shape + (n_params,)),
            rho=best_rho.reshape(space_shape),
            residual_variance=(best_sse / dof).reshape(space_shape),
            regressor_names=self.regressor_names(),
        )
        self.fit_result = fit
        return fit

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(
        self,
        n_times: int,
        annual_forcing: np.ndarray,
        fit: TrendFit | None = None,
        t_start: int = 0,
    ) -> np.ndarray:
        """Evaluate ``m_t`` for every location, shape ``(T, ntheta, nphi)``.

        The per-location ``rho`` values are grouped so each distinct value
        triggers one design-matrix evaluation.  ``t_start`` evaluates the
        trend for absolute steps ``t_start .. t_start + n_times - 1``
        (chunked/streaming generation).
        """
        fit = fit or self.fit_result
        if fit is None:
            raise RuntimeError("fit() must be called before predict()")
        space_shape = fit.rho.shape
        coeffs = fit.coefficients.reshape(-1, fit.coefficients.shape[-1])
        rho_flat = fit.rho.reshape(-1)
        out = np.empty((n_times, coeffs.shape[0]), dtype=np.float64)
        for rho in np.unique(rho_flat):
            design = self.design_matrix(n_times, annual_forcing, float(rho), t_start=t_start)
            mask = rho_flat == rho
            out[:, mask] = design @ coeffs[mask].T
        return out.reshape((n_times,) + space_shape)

    def residuals(
        self,
        data: np.ndarray,
        annual_forcing: np.ndarray,
        fit: TrendFit | None = None,
    ) -> np.ndarray:
        """Residual fields ``y - m`` with shape ``(R, T, ntheta, nphi)``."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim == 3:
            data = data[None, ...]
        mean = self.predict(data.shape[1], annual_forcing, fit)
        return data - mean[None, ...]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Hyper-parameters from which :meth:`from_state` rebuilds the model.

        The fitted coefficients live in :class:`TrendFit` and are serialised
        separately (the model object itself is pure configuration).
        """
        return {
            "steps_per_year": int(self.steps_per_year),
            "n_harmonics": int(self.n_harmonics),
            "rho_grid": [float(r) for r in self.rho_grid],
            "use_distributed_lag": bool(self.use_distributed_lag),
        }

    @classmethod
    def from_state(cls, state: dict) -> "MeanTrendModel":
        """Rebuild a model from :meth:`state_dict` output."""
        return cls(
            steps_per_year=int(state["steps_per_year"]),
            n_harmonics=int(state["n_harmonics"]),
            rho_grid=tuple(float(r) for r in state["rho_grid"]),
            use_distributed_lag=bool(state["use_distributed_lag"]),
        )
