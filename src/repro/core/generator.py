"""Emulation generation (paper Section III-B).

Given a fitted emulator, new realisations are produced by

1. drawing spectral innovations ``xi_t ~ N(0, U)`` with the Cholesky factor
   ``V`` (``O(L^2 T)`` once the factor exists),
2. rolling the diagonal VAR forward to obtain the coefficient series
   ``f_t``,
3. inverse spherical harmonic transform to the grid (``O(L^3 T)``),
4. adding the truncation nugget ``epsilon_t ~ N(0, v^2)``,
5. re-applying the scale field ``sigma`` and the mean trend ``m_t``
   (Eq. 1), optionally under a different forcing scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scale import ScaleField
from repro.core.spectral_model import SpectralStochasticModel
from repro.core.trend import MeanTrendModel, TrendFit
from repro.data.ensemble import ClimateEnsemble
from repro.sht.grid import Grid

__all__ = ["EmulationGenerator"]


@dataclass
class EmulationGenerator:
    """Generate emulations from fitted emulator components.

    Parameters
    ----------
    trend_model / trend_fit:
        The fitted mean-trend model.
    scale:
        The fitted scale field.
    spectral_model:
        The fitted spectral stochastic model.
    grid:
        Spatial grid of the output.
    steps_per_year:
        Temporal resolution of the output.
    """

    trend_model: MeanTrendModel
    trend_fit: TrendFit
    scale: ScaleField
    spectral_model: SpectralStochasticModel
    grid: Grid
    steps_per_year: int

    def generate(
        self,
        n_realizations: int,
        n_times: int,
        annual_forcing: np.ndarray,
        rng: np.random.Generator | None = None,
        include_nugget: bool = True,
        start_year: int = 1940,
    ) -> ClimateEnsemble:
        """Produce an ensemble of emulated fields.

        Parameters
        ----------
        n_realizations:
            Number of emulation members to draw.
        n_times:
            Number of time steps to emulate.
        annual_forcing:
            Annual forcing trajectory driving the mean trend (may be a new
            scenario; must cover ``ceil(n_times / steps_per_year)`` years).
        rng:
            Random generator (a fresh default generator when omitted).
        include_nugget:
            Add the truncation nugget ``epsilon``.

        Returns
        -------
        ClimateEnsemble
            The emulated ensemble, marked ``metadata["source"] = "emulator"``.
        """
        if n_realizations < 1 or n_times < 1:
            raise ValueError("n_realizations and n_times must be positive")
        rng = rng or np.random.default_rng()
        annual_forcing = np.asarray(annual_forcing, dtype=np.float64)

        mean = self.trend_model.predict(n_times, annual_forcing, self.trend_fit)
        z = self.spectral_model.generate_standardized(
            rng, n_realizations, n_times, include_nugget=include_nugget
        )
        fields = mean[None, ...] + self.scale.unstandardize(z)
        return ClimateEnsemble(
            data=fields,
            grid=self.grid,
            forcing_annual=annual_forcing,
            steps_per_year=self.steps_per_year,
            start_year=start_year,
            metadata={"source": "emulator", "include_nugget": include_nugget},
        )
