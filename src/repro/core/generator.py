"""Emulation generation (paper Section III-B).

Given a fitted emulator, new realisations are produced by

1. drawing spectral innovations ``xi_t ~ N(0, U)`` with the Cholesky factor
   ``V`` (``O(L^2 T)`` once the factor exists),
2. rolling the diagonal VAR forward to obtain the coefficient series
   ``f_t``,
3. inverse spherical harmonic transform to the grid (``O(L^3 T)``),
4. adding the truncation nugget ``epsilon_t ~ N(0, v^2)``,
5. re-applying the scale field ``sigma`` and the mean trend ``m_t``
   (Eq. 1), optionally under a different forcing scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.scale import ScaleField
from repro.core.spectral_model import SpectralStochasticModel, validate_batch_size
from repro.core.trend import MeanTrendModel, TrendFit
from repro.data.ensemble import ClimateEnsemble
from repro.sht.grid import Grid

__all__ = ["EmulationGenerator"]


@dataclass
class EmulationGenerator:
    """Generate emulations from fitted emulator components.

    Parameters
    ----------
    trend_model / trend_fit:
        The fitted mean-trend model.
    scale:
        The fitted scale field.
    spectral_model:
        The fitted spectral stochastic model.
    grid:
        Spatial grid of the output.
    steps_per_year:
        Temporal resolution of the output.
    """

    trend_model: MeanTrendModel
    trend_fit: TrendFit
    scale: ScaleField
    spectral_model: SpectralStochasticModel
    grid: Grid
    steps_per_year: int

    def generate(
        self,
        n_realizations: int,
        n_times: int,
        annual_forcing: np.ndarray,
        rng: np.random.Generator | None = None,
        include_nugget: bool = True,
        start_year: int = 1940,
        batch_size: int | None = None,
    ) -> ClimateEnsemble:
        """Produce an ensemble of emulated fields.

        Parameters
        ----------
        n_realizations:
            Number of emulation members to draw.
        n_times:
            Number of time steps to emulate.
        annual_forcing:
            Annual forcing trajectory driving the mean trend (may be a new
            scenario; must cover ``ceil(n_times / steps_per_year)`` years).
        rng:
            Random generator (a fresh default generator when omitted).
        include_nugget:
            Add the truncation nugget ``epsilon``.
        batch_size:
            Cap on realizations synthesised per inverse-SHT pass; the
            output is bit-identical for every value (see
            :meth:`generate_stream`).

        Returns
        -------
        ClimateEnsemble
            The emulated ensemble, marked ``metadata["source"] = "emulator"``.

        Notes
        -----
        Implemented as the single-chunk case of :meth:`generate_stream`
        (``chunk_size = n_times``), so the monolithic and streaming paths
        cannot drift apart.
        """
        annual_forcing = np.asarray(annual_forcing, dtype=np.float64)
        chunk = next(iter(self.generate_stream(
            n_realizations=n_realizations,
            n_times=n_times,
            annual_forcing=annual_forcing,
            rng=rng,
            include_nugget=include_nugget,
            start_year=start_year,
            chunk_size=n_times,
            batch_size=batch_size,
        )))
        return ClimateEnsemble(
            data=chunk.data,
            grid=self.grid,
            forcing_annual=annual_forcing,
            steps_per_year=self.steps_per_year,
            start_year=start_year,
            metadata={"source": "emulator", "include_nugget": include_nugget},
        )

    def generate_stream(
        self,
        n_realizations: int,
        n_times: int,
        annual_forcing: np.ndarray,
        rng: np.random.Generator | None = None,
        include_nugget: bool = True,
        start_year: int = 1940,
        chunk_size: int | None = None,
        batch_size: int | None = None,
    ) -> Iterator[ClimateEnsemble]:
        """Yield the emulation as a stream of time chunks.

        Bounded-memory counterpart of :meth:`generate` for long scenario
        runs: at most ``chunk_size`` time steps are materialised at once.
        The VAR history is carried across chunks, and the mean trend is
        evaluated at the absolute time offset of each chunk, so the
        concatenated chunks form one coherent realisation.  A single chunk
        covering the whole record (``chunk_size >= n_times``) is bit-exact
        with :meth:`generate`.

        Parameters
        ----------
        n_realizations / n_times / annual_forcing / rng / include_nugget:
            As in :meth:`generate`.
        chunk_size:
            Time steps per yielded chunk (one model year when omitted).
        batch_size:
            Cap on realizations synthesised per inverse-SHT pass (all at
            once when ``None``); random draws are made at full width in a
            fixed order, so the stream is bit-identical for every value.

        Yields
        ------
        ClimateEnsemble
            Chunks of shape ``(n_realizations, <=chunk_size, ntheta, nphi)``
            with ``metadata["stream_offset"]`` giving the absolute index of
            the chunk's first time step.  Each chunk's ``forcing_annual``
            is re-based to the chunk's first calendar year, so
            ``forcing_per_step()`` on a chunk is exact whenever chunks
            align with year boundaries (always true for the default
            one-year ``chunk_size``); ``metadata["stream_phase"]`` records
            the intra-year offset otherwise.
        """
        # Validate eagerly (this is a plain function returning a generator),
        # so bad arguments raise at the call site rather than at first next().
        if n_realizations < 1 or n_times < 1:
            raise ValueError("n_realizations and n_times must be positive")
        if chunk_size is None:
            chunk_size = self.steps_per_year
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        rng = rng or np.random.default_rng()
        annual_forcing = np.asarray(annual_forcing, dtype=np.float64)
        needed_years = -(-n_times // self.steps_per_year)
        if len(annual_forcing) < needed_years:
            # A mid-stream failure would leave consumers with a silently
            # truncated scenario, so the forcing horizon is checked up front.
            raise ValueError(
                f"forcing covers {len(annual_forcing)} years but {n_times} "
                f"steps require {needed_years}"
            )
        batch_size = validate_batch_size(batch_size)
        stream = self.spectral_model.generate_standardized_stream(
            rng, n_realizations, n_times, chunk_size,
            include_nugget=include_nugget, batch_size=batch_size,
        )
        return self._wrap_chunks(
            stream, n_times, annual_forcing, include_nugget, start_year
        )

    def generate_stream_multi(
        self,
        rngs: "list[np.random.Generator]",
        n_times: int,
        annual_forcing: np.ndarray,
        include_nugget: bool = True,
        start_year: int = 1940,
        chunk_size: int | None = None,
    ) -> Iterator[ClimateEnsemble]:
        """Stream ``B = len(rngs)`` independent realisations in one batch.

        The campaign hot path: member ``b`` of every yielded chunk draws
        *only* from ``rngs[b]`` in serial order, so it is bit-identical to
        ``generate_stream(n_realizations=1, rng=rngs[b], ...)``, while the
        VAR recursion, the inverse SHT and the trend/scale restore run
        once on the stacked batch (see
        :meth:`SpectralStochasticModel.generate_standardized_stream_multi
        <repro.core.spectral_model.SpectralStochasticModel.generate_standardized_stream_multi>`).
        All batched members share one ``annual_forcing`` (and hence one
        mean trend), which is why :func:`repro.run_campaign` only batches
        realizations of the same scenario together.

        Yields
        ------
        ClimateEnsemble
            Chunks of shape ``(B, <=chunk_size, ntheta, nphi)`` with the
            same metadata layout as :meth:`generate_stream`.
        """
        rngs = list(rngs)
        if not rngs:
            raise ValueError("rngs must contain at least one generator")
        if n_times < 1:
            raise ValueError("n_times must be positive")
        if chunk_size is None:
            chunk_size = self.steps_per_year
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        annual_forcing = np.asarray(annual_forcing, dtype=np.float64)
        needed_years = -(-n_times // self.steps_per_year)
        if len(annual_forcing) < needed_years:
            raise ValueError(
                f"forcing covers {len(annual_forcing)} years but {n_times} "
                f"steps require {needed_years}"
            )
        stream = self.spectral_model.generate_standardized_stream_multi(
            rngs, n_times, chunk_size, include_nugget=include_nugget
        )
        return self._wrap_chunks(
            stream, n_times, annual_forcing, include_nugget, start_year
        )

    def _wrap_chunks(
        self,
        stream: Iterator[tuple[int, np.ndarray]],
        n_times: int,
        annual_forcing: np.ndarray,
        include_nugget: bool,
        start_year: int,
    ) -> Iterator[ClimateEnsemble]:
        """Restore trend and scale, and wrap raw chunks as ensembles."""
        for t_start, z in stream:
            nt = z.shape[1]
            mean = self.trend_model.predict(
                nt, annual_forcing, self.trend_fit, t_start=t_start
            )
            fields = mean[None, ...] + self.scale.unstandardize(z)
            year_offset = t_start // self.steps_per_year
            yield ClimateEnsemble(
                data=fields,
                grid=self.grid,
                forcing_annual=annual_forcing[year_offset:],
                steps_per_year=self.steps_per_year,
                start_year=start_year + year_offset,
                metadata={
                    "source": "emulator",
                    "include_nugget": include_nugget,
                    "stream_offset": t_start,
                    "stream_phase": t_start % self.steps_per_year,
                    "stream_total_times": n_times,
                },
            )
