"""Windowed extraction from emulated chunks.

The serving layer caches *full-grid* year chunks (so every request shape
shares one cache entry per year) and cuts the requested lat/lon window
out at assembly time.  :class:`SpatialWindow` is that cut: a pair of
half-open index ranges over the trailing ``(ntheta, nphi)`` axes of any
field array, validated against a :class:`~repro.sht.grid.Grid` and
serialisable like every other request component, so a window travels
inside the request content-address.

Windows are index-based on purpose — indices are exact and
grid-resolution independent in meaning, which keeps request addresses
deterministic.  :meth:`SpatialWindow.from_degrees` converts a
latitude/longitude box to index ranges for a concrete grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sht.grid import Grid

__all__ = ["SpatialWindow"]


def _normalize(name: str, rng) -> "tuple[int, int] | None":
    if rng is None:
        return None
    start, stop = (int(v) for v in rng)
    if start < 0 or stop <= start:
        raise ValueError(
            f"{name} window must satisfy 0 <= start < stop, got ({start}, {stop})"
        )
    return (start, stop)


@dataclass(frozen=True)
class SpatialWindow:
    """A half-open index window over the trailing ``(ntheta, nphi)`` axes.

    Parameters
    ----------
    lat:
        ``(start, stop)`` range of colatitude rows (row 0 is the north
        pole), or ``None`` for all rows.
    lon:
        ``(start, stop)`` range of longitude columns (column 0 is
        ``phi = 0``), or ``None`` for all columns.  Ranges do not wrap.

    Examples
    --------
    >>> import numpy as np
    >>> window = SpatialWindow(lat=(1, 3), lon=(0, 2))
    >>> window.extract(np.arange(24.0).reshape(1, 4, 6)).shape
    (1, 2, 2)
    """

    lat: "tuple[int, int] | None" = None
    lon: "tuple[int, int] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "lat", _normalize("lat", self.lat))
        object.__setattr__(self, "lon", _normalize("lon", self.lon))

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_degrees(
        cls,
        grid: Grid,
        lat_range: "tuple[float, float] | None" = None,
        lon_range: "tuple[float, float] | None" = None,
    ) -> "SpatialWindow":
        """The index window covering a latitude/longitude box on ``grid``.

        ``lat_range`` is ``(south, north)`` in degrees (order-insensitive);
        ``lon_range`` is ``(west, east)`` in degrees within ``[0, 360)``
        with ``west < east`` (wrap-around boxes are not supported).  Grid
        points lying inside the closed box are selected — with a
        nanodegree tolerance, so coordinates that land on box edges up to
        float rounding (e.g. the 30-degree row of a 10-degree grid) are
        included; an empty selection raises ``ValueError``.
        """
        tol = 1e-9
        lat = lon = None
        if lat_range is not None:
            lo, hi = sorted(float(v) for v in lat_range)
            rows = np.nonzero(
                (grid.latitudes >= lo - tol) & (grid.latitudes <= hi + tol)
            )[0]
            if rows.size == 0:
                raise ValueError(f"no grid rows in latitude range ({lo}, {hi})")
            lat = (int(rows[0]), int(rows[-1]) + 1)
        if lon_range is not None:
            lo, hi = (float(v) for v in lon_range)
            if not lo < hi:
                raise ValueError(
                    f"lon_range must satisfy west < east (no wrap-around), "
                    f"got ({lo}, {hi})"
                )
            cols = np.nonzero(
                (grid.longitudes_deg >= lo - tol) & (grid.longitudes_deg <= hi + tol)
            )[0]
            if cols.size == 0:
                raise ValueError(f"no grid columns in longitude range ({lo}, {hi})")
            lon = (int(cols[0]), int(cols[-1]) + 1)
        return cls(lat=lat, lon=lon)

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #
    @property
    def is_full(self) -> bool:
        """Whether the window selects the entire grid."""
        return self.lat is None and self.lon is None

    def validate_for(self, grid: Grid) -> None:
        """Raise ``ValueError`` unless the window fits inside ``grid``."""
        if self.lat is not None and self.lat[1] > grid.ntheta:
            raise ValueError(
                f"lat window {self.lat} exceeds grid ntheta={grid.ntheta}"
            )
        if self.lon is not None and self.lon[1] > grid.nphi:
            raise ValueError(
                f"lon window {self.lon} exceeds grid nphi={grid.nphi}"
            )

    def shape_on(self, grid: Grid) -> tuple[int, int]:
        """The windowed ``(nlat, nlon)`` shape on ``grid``."""
        self.validate_for(grid)
        lat = self.lat or (0, grid.ntheta)
        lon = self.lon or (0, grid.nphi)
        return (lat[1] - lat[0], lon[1] - lon[0])

    def extract(self, fields: np.ndarray) -> np.ndarray:
        """The window of ``fields`` (a view) over its trailing two axes."""
        fields = np.asarray(fields)
        if fields.ndim < 2:
            raise ValueError("fields must have at least 2 dimensions")
        lat = slice(*self.lat) if self.lat is not None else slice(None)
        lon = slice(*self.lon) if self.lon is not None else slice(None)
        return fields[..., lat, lon]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """JSON-able state from which :meth:`from_state` rebuilds the window."""
        return {
            "lat": list(self.lat) if self.lat is not None else None,
            "lon": list(self.lon) if self.lon is not None else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SpatialWindow":
        """Rebuild a window from :meth:`state_dict` output."""
        return cls(
            lat=tuple(state["lat"]) if state.get("lat") is not None else None,
            lon=tuple(state["lon"]) if state.get("lon") is not None else None,
        )
