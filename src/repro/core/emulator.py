"""The end-to-end climate emulator API.

:class:`ClimateEmulator` ties the pieces together exactly as the paper's
pipeline (Fig. 3) does:

1. fit the per-location distributed-lag mean trend against the radiative
   forcing (Eq. 2),
2. estimate the per-location scale ``sigma`` and standardise the residuals,
3. transform the standardised residuals to the spherical-harmonic domain,
   fit the diagonal VAR(P), estimate the innovation covariance ``U``
   (Eq. 9) and factorise it with the mixed-precision tile Cholesky,
4. generate emulations by sampling the spectral model and undoing the
   standardisation and the trend removal (Eq. 1).

The emulator also reports its own parameter footprint, which is the basis
of the "saving petabytes" storage analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import EmulatorConfig
from repro.core.generator import EmulationGenerator
from repro.core.scale import ScaleField
from repro.core.spectral_model import SpectralStochasticModel
from repro.core.trend import MeanTrendModel, TrendFit
from repro.data.ensemble import ClimateEnsemble

__all__ = ["ClimateEmulator", "EmulatorConfig"]


@dataclass
class ClimateEmulator:
    """Spherical-harmonic stochastic climate emulator.

    Parameters
    ----------
    config:
        Emulator hyper-parameters; a default small configuration is used
        when omitted.

    Examples
    --------
    >>> from repro.core import ClimateEmulator, EmulatorConfig
    >>> from repro.data import Era5LikeConfig, Era5LikeGenerator
    >>> sims = Era5LikeGenerator(Era5LikeConfig(lmax=8, n_years=3,
    ...     steps_per_year=12, n_ensemble=2), seed=1).generate()
    >>> emulator = ClimateEmulator(EmulatorConfig(lmax=8, var_order=1,
    ...     n_harmonics=1, tile_size=16))
    >>> emulator.fit(sims)                                   # doctest: +ELLIPSIS
    ClimateEmulator(...)
    >>> emulations = emulator.emulate(n_realizations=1)
    >>> emulations.data.shape[2:] == sims.grid.shape
    True
    """

    config: EmulatorConfig = field(default_factory=EmulatorConfig)

    trend_model: MeanTrendModel | None = field(init=False, default=None, repr=False)
    trend_fit: TrendFit | None = field(init=False, default=None, repr=False)
    scale: ScaleField | None = field(init=False, default=None, repr=False)
    spectral_model: SpectralStochasticModel | None = field(init=False, default=None, repr=False)
    training: ClimateEnsemble | None = field(init=False, default=None, repr=False)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, ensemble: ClimateEnsemble) -> "ClimateEmulator":
        """Train the emulator on a simulation ensemble."""
        cfg = self.config
        if not ensemble.grid.supports_bandlimit(cfg.lmax):
            raise ValueError(
                f"grid {ensemble.grid.shape} cannot support band-limit {cfg.lmax}"
            )
        self.training = ensemble

        self.trend_model = MeanTrendModel(
            steps_per_year=ensemble.steps_per_year,
            n_harmonics=cfg.n_harmonics,
            rho_grid=cfg.rho_grid,
            use_distributed_lag=cfg.use_distributed_lag,
        )
        self.trend_fit = self.trend_model.fit(ensemble.data, ensemble.forcing_annual)
        residuals = self.trend_model.residuals(
            ensemble.data, ensemble.forcing_annual, self.trend_fit
        )

        self.scale = ScaleField.from_residuals(residuals)
        standardized = self.scale.standardize(residuals)

        self.spectral_model = SpectralStochasticModel(
            lmax=cfg.lmax,
            grid=ensemble.grid,
            var_order=cfg.var_order,
            tile_size=cfg.tile_size,
            precision_variant=cfg.precision_variant,
            covariance_jitter=cfg.covariance_jitter,
        )
        self.spectral_model.fit(standardized)
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.spectral_model is not None and self.spectral_model.cholesky is not None

    def _require_fit(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("the emulator must be fitted before use")

    # ------------------------------------------------------------------ #
    # Emulation
    # ------------------------------------------------------------------ #
    def generator(self) -> EmulationGenerator:
        """The emulation generator built from the fitted components."""
        self._require_fit()
        assert self.training is not None
        return EmulationGenerator(
            trend_model=self.trend_model,
            trend_fit=self.trend_fit,
            scale=self.scale,
            spectral_model=self.spectral_model,
            grid=self.training.grid,
            steps_per_year=self.training.steps_per_year,
        )

    def emulate(
        self,
        n_realizations: int = 1,
        n_times: int | None = None,
        annual_forcing: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        include_nugget: bool = True,
    ) -> ClimateEnsemble:
        """Generate emulations statistically consistent with the training data.

        Parameters
        ----------
        n_realizations:
            Number of emulation members.
        n_times:
            Emulation length (defaults to the training length).
        annual_forcing:
            Forcing trajectory (defaults to the training forcing, i.e. an
            in-sample emulation; pass a scenario trajectory to project).
        rng:
            Random generator.
        include_nugget:
            Include the truncation nugget.
        """
        self._require_fit()
        assert self.training is not None
        n_times = n_times or self.training.n_times
        forcing = (
            np.asarray(annual_forcing, dtype=np.float64)
            if annual_forcing is not None
            else self.training.forcing_annual
        )
        return self.generator().generate(
            n_realizations=n_realizations,
            n_times=n_times,
            annual_forcing=forcing,
            rng=rng,
            include_nugget=include_nugget,
            start_year=self.training.start_year,
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def parameter_count(self) -> int:
        """Total number of stored emulator parameters."""
        self._require_fit()
        assert self.trend_fit is not None and self.scale is not None
        trend_params = int(np.prod(self.trend_fit.coefficients.shape)) + int(
            np.prod(self.trend_fit.rho.shape)
        )
        scale_params = int(np.prod(self.scale.sigma.shape))
        return trend_params + scale_params + self.spectral_model.parameter_count()

    def parameter_bytes(self, bytes_per_value: int = 8) -> int:
        """Storage footprint of the emulator parameters."""
        return self.parameter_count() * bytes_per_value

    def storage_summary(self) -> dict:
        """Raw-training-data versus emulator-parameter storage comparison."""
        self._require_fit()
        assert self.training is not None
        raw = self.training.storage_bytes(np.float32)
        params = self.parameter_bytes()
        return {
            "raw_bytes_float32": raw,
            "parameter_bytes": params,
            "compression_factor": raw / params if params else float("inf"),
            "n_data_points": self.training.n_data_points,
            "n_parameters": self.parameter_count(),
        }

    def describe(self) -> dict:
        """Configuration plus fit-state summary."""
        info = {"config": self.config.describe(), "fitted": self.is_fitted}
        if self.is_fitted:
            assert self.spectral_model is not None
            info["cholesky_variant"] = self.spectral_model.cholesky.variant
            info["n_coeffs"] = self.config.n_coeffs
            info["storage"] = self.storage_summary()
        return info
