"""The end-to-end climate emulator API.

:class:`ClimateEmulator` ties the pieces together exactly as the paper's
pipeline (Fig. 3) does:

1. fit the per-location distributed-lag mean trend against the radiative
   forcing (Eq. 2),
2. estimate the per-location scale ``sigma`` and standardise the residuals,
3. transform the standardised residuals to the spherical-harmonic domain,
   fit the diagonal VAR(P), estimate the innovation covariance ``U``
   (Eq. 9) and factorise it with the mixed-precision tile Cholesky,
4. generate emulations by sampling the spectral model and undoing the
   standardisation and the trend removal (Eq. 1).

The emulator also reports its own parameter footprint, which is the basis
of the "saving petabytes" storage analysis, and serialises to a versioned
:class:`~repro.api.artifact.EmulatorArtifact` via :meth:`ClimateEmulator.save`
/ :meth:`ClimateEmulator.load` — the persisted parameters are all that is
needed to regenerate statistically consistent ensembles, so the raw
training archive can be discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.config import EmulatorConfig
from repro.core.generator import EmulationGenerator
from repro.core.scale import ScaleField
from repro.core.spectral_model import SpectralStochasticModel, validate_batch_size
from repro.core.trend import MeanTrendModel, TrendFit
from repro.data.ensemble import ClimateEnsemble
from repro.obs import span
from repro.sht.grid import Grid

if TYPE_CHECKING:  # pragma: no cover - typing only
    import os

    from repro.api.artifact import EmulatorArtifact
    from repro.scenarios.spec import ScenarioSpec

__all__ = ["ClimateEmulator", "EmulatorConfig", "TrainingSummary"]


@dataclass(frozen=True)
class TrainingSummary:
    """What the emulator remembers about its training data.

    A fitted emulator must be usable *without* the raw ensemble (that is
    the whole point of the artifact story), so everything the emulation and
    reporting paths need — coordinates, calendar, the training forcing used
    for in-sample emulation defaults, and the raw-archive byte counts the
    storage comparison quotes — is captured here at fit time and serialised
    with the artifact.
    """

    grid: Grid
    steps_per_year: int
    start_year: int
    n_times: int
    n_ensemble: int
    forcing_annual: np.ndarray

    @classmethod
    def from_ensemble(cls, ensemble: ClimateEnsemble) -> "TrainingSummary":
        """Summarise a training ensemble."""
        return cls(
            grid=ensemble.grid,
            steps_per_year=ensemble.steps_per_year,
            start_year=ensemble.start_year,
            n_times=ensemble.n_times,
            n_ensemble=ensemble.n_ensemble,
            forcing_annual=np.asarray(ensemble.forcing_annual, dtype=np.float64),
        )

    @property
    def n_data_points(self) -> int:
        """Raw data points ``R * T * N_theta * N_phi`` of the training set."""
        return self.n_ensemble * self.n_times * self.grid.npoints

    def raw_bytes(self, dtype: np.dtype | str = np.float32) -> int:
        """Bytes of the raw training archive at a given element type."""
        return self.n_data_points * np.dtype(dtype).itemsize

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Arrays and metadata from which :meth:`from_state` rebuilds the summary."""
        return {
            "grid": {"ntheta": int(self.grid.ntheta), "nphi": int(self.grid.nphi)},
            "steps_per_year": int(self.steps_per_year),
            "start_year": int(self.start_year),
            "n_times": int(self.n_times),
            "n_ensemble": int(self.n_ensemble),
            "forcing_annual": np.asarray(self.forcing_annual, dtype=np.float64),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TrainingSummary":
        """Rebuild a summary from :meth:`state_dict` output."""
        return cls(
            grid=Grid(ntheta=int(state["grid"]["ntheta"]), nphi=int(state["grid"]["nphi"])),
            steps_per_year=int(state["steps_per_year"]),
            start_year=int(state["start_year"]),
            n_times=int(state["n_times"]),
            n_ensemble=int(state["n_ensemble"]),
            forcing_annual=np.asarray(state["forcing_annual"], dtype=np.float64),
        )


@dataclass
class ClimateEmulator:
    """Spherical-harmonic stochastic climate emulator.

    Parameters
    ----------
    config:
        Emulator hyper-parameters; a default small configuration is used
        when omitted.

    Examples
    --------
    >>> from repro.core import ClimateEmulator, EmulatorConfig
    >>> from repro.data import Era5LikeConfig, Era5LikeGenerator
    >>> sims = Era5LikeGenerator(Era5LikeConfig(lmax=8, n_years=3,
    ...     steps_per_year=12, n_ensemble=2), seed=1).generate()
    >>> emulator = ClimateEmulator(EmulatorConfig(lmax=8, var_order=1,
    ...     n_harmonics=1, tile_size=16))
    >>> emulator.fit(sims)                                   # doctest: +ELLIPSIS
    ClimateEmulator(...)
    >>> emulations = emulator.emulate(n_realizations=1)
    >>> emulations.data.shape[2:] == sims.grid.shape
    True
    """

    config: EmulatorConfig = field(default_factory=EmulatorConfig)

    trend_model: MeanTrendModel | None = field(init=False, default=None, repr=False)
    trend_fit: TrendFit | None = field(init=False, default=None, repr=False)
    scale: ScaleField | None = field(init=False, default=None, repr=False)
    spectral_model: SpectralStochasticModel | None = field(init=False, default=None, repr=False)
    training: ClimateEnsemble | None = field(init=False, default=None, repr=False)
    training_summary: TrainingSummary | None = field(init=False, default=None, repr=False)
    _artifact_nbytes: int | None = field(init=False, default=None, repr=False)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(
        self, ensemble: ClimateEnsemble, batch_size: int | None = None
    ) -> "ClimateEmulator":
        """Train the emulator on a simulation ensemble.

        Parameters
        ----------
        ensemble:
            Training ensemble; ``ensemble.data`` has shape
            ``(R, T, ntheta, nphi)``.
        batch_size:
            Cap on ensemble members per SHT pass during the spectral fit
            (forward analysis of the residuals and the inverse
            reconstruction behind the nugget); all at once when
            ``None``.  A memory knob only: the fitted state is
            bit-identical for every value (pinned by tests).
        """
        cfg = self.config
        if not ensemble.grid.supports_bandlimit(cfg.lmax):
            raise ValueError(
                f"grid {ensemble.grid.shape} cannot support band-limit {cfg.lmax}"
            )
        # Validated before the trend fit so a bad knob fails fast instead
        # of after the expensive per-location regression.
        batch_size = validate_batch_size(batch_size)
        self.training = ensemble
        self.training_summary = TrainingSummary.from_ensemble(ensemble)
        self._artifact_nbytes = None

        self.trend_model = MeanTrendModel(
            steps_per_year=ensemble.steps_per_year,
            n_harmonics=cfg.n_harmonics,
            rho_grid=cfg.rho_grid,
            use_distributed_lag=cfg.use_distributed_lag,
        )
        with span("fit.trend", bytes=ensemble.data.nbytes):
            self.trend_fit = self.trend_model.fit(
                ensemble.data, ensemble.forcing_annual
            )
            residuals = self.trend_model.residuals(
                ensemble.data, ensemble.forcing_annual, self.trend_fit
            )

        with span("fit.scale"):
            self.scale = ScaleField.from_residuals(residuals)
            standardized = self.scale.standardize(residuals)

        self.spectral_model = SpectralStochasticModel(
            lmax=cfg.lmax,
            grid=ensemble.grid,
            var_order=cfg.var_order,
            tile_size=cfg.tile_size,
            precision_variant=cfg.precision_variant,
            covariance_jitter=cfg.covariance_jitter,
            sht_method=cfg.sht_method,
        )
        with span("fit.spectral", lmax=cfg.lmax, var_order=cfg.var_order):
            self.spectral_model.fit(standardized, batch_size=batch_size)
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed (or a fitted state was loaded)."""
        return self.spectral_model is not None and self.spectral_model.cholesky is not None

    def _require_fit(self) -> None:
        if not self.is_fitted or self.training_summary is None:
            raise RuntimeError("the emulator must be fitted before use")

    def _resolve_emulation_args(
        self, n_times: int | None, annual_forcing
    ) -> tuple[int, np.ndarray]:
        """Validated ``(n_times, forcing)`` with training defaults applied.

        ``annual_forcing`` may be a raw annual array, a registered
        scenario name, or a :class:`~repro.scenarios.spec.ScenarioSpec`;
        specs and names are materialised over exactly the years the
        emulation spans.
        """
        # Imported lazily: the scenario engine sits above the core layer,
        # so the core must not depend on it at import time.
        from repro.scenarios.registry import resolve_scenario
        from repro.scenarios.spec import ScenarioSpec

        assert self.training_summary is not None
        if n_times is None:
            n_times = self.training_summary.n_times
        n_times = int(n_times)
        if n_times < 1:
            raise ValueError(f"n_times must be >= 1, got {n_times}")
        if annual_forcing is None:
            forcing = self.training_summary.forcing_annual
        elif isinstance(annual_forcing, (str, ScenarioSpec)):
            spec = resolve_scenario(annual_forcing)
            n_years = -(-n_times // self.training_summary.steps_per_year)
            forcing = spec.annual_forcing(n_years)
        else:
            forcing = np.asarray(annual_forcing, dtype=np.float64)
        return n_times, forcing

    # ------------------------------------------------------------------ #
    # Emulation
    # ------------------------------------------------------------------ #
    def generator(self) -> EmulationGenerator:
        """The emulation generator built from the fitted components."""
        self._require_fit()
        assert self.training_summary is not None
        return EmulationGenerator(
            trend_model=self.trend_model,
            trend_fit=self.trend_fit,
            scale=self.scale,
            spectral_model=self.spectral_model,
            grid=self.training_summary.grid,
            steps_per_year=self.training_summary.steps_per_year,
        )

    def emulate(
        self,
        n_realizations: int = 1,
        n_times: int | None = None,
        annual_forcing: "np.ndarray | str | ScenarioSpec | None" = None,
        rng: np.random.Generator | None = None,
        include_nugget: bool = True,
        batch_size: int | None = None,
    ) -> ClimateEnsemble:
        """Generate emulations statistically consistent with the training data.

        Parameters
        ----------
        n_realizations:
            Number of emulation members.
        n_times:
            Emulation length (defaults to the training length); must be at
            least 1 when given.
        annual_forcing:
            Forcing trajectory (defaults to the training forcing, i.e. an
            in-sample emulation).  Accepts a raw annual array, a
            registered scenario name (``"ssp-high"``), or a
            :class:`~repro.scenarios.spec.ScenarioSpec`.  A bare name is
            materialised at the registry's default baseline
            (``start_level=2.5``); for another baseline pass the spec,
            e.g. ``repro.SCENARIOS.create("ssp-high", start_level=3.0)``.
        rng:
            Random generator.
        include_nugget:
            Include the truncation nugget.
        batch_size:
            Cap on realizations synthesised per inverse-SHT pass (all at
            once when ``None``).  A memory/throughput knob only: the
            output is a deterministic function of ``rng`` and is
            bit-identical for every ``batch_size``.
        """
        self._require_fit()
        assert self.training_summary is not None
        n_times, forcing = self._resolve_emulation_args(n_times, annual_forcing)
        return self.generator().generate(
            n_realizations=n_realizations,
            n_times=n_times,
            annual_forcing=forcing,
            rng=rng,
            include_nugget=include_nugget,
            start_year=self.training_summary.start_year,
            batch_size=batch_size,
        )

    def emulate_stream(
        self,
        n_realizations: int = 1,
        n_times: int | None = None,
        annual_forcing: "np.ndarray | str | ScenarioSpec | None" = None,
        rng: np.random.Generator | None = None,
        include_nugget: bool = True,
        chunk_size: int | None = None,
        batch_size: int | None = None,
    ) -> Iterator[ClimateEnsemble]:
        """Generate an emulation as a stream of bounded-memory time chunks.

        Same statistical model as :meth:`emulate`, but the realisation is
        yielded as consecutive :class:`~repro.data.ensemble.ClimateEnsemble`
        chunks of at most ``chunk_size`` time steps (one model year by
        default), with the VAR state carried across chunks.  This keeps
        peak memory at ``O(R * chunk_size * N_theta * N_phi)`` regardless
        of the scenario length, which is what makes century-scale hourly
        runs writable to disk as they are generated.  With ``chunk_size >=
        n_times`` the single yielded chunk is bit-exact with
        :meth:`emulate` under the same seeded generator.  ``batch_size``
        additionally caps the realizations per inverse-SHT pass without
        changing any output bit (see :meth:`emulate`).
        """
        self._require_fit()
        assert self.training_summary is not None
        n_times, forcing = self._resolve_emulation_args(n_times, annual_forcing)
        return self.generator().generate_stream(
            n_realizations=n_realizations,
            n_times=n_times,
            annual_forcing=forcing,
            rng=rng,
            include_nugget=include_nugget,
            start_year=self.training_summary.start_year,
            chunk_size=chunk_size,
            batch_size=batch_size,
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Nested state of every fitted pipeline stage.

        The layout mirrors the pipeline: ``config``, ``trend_model``,
        ``trend_fit``, ``scale``, ``spectral_model`` (VAR, covariance,
        Cholesky factor, nugget) and ``training`` (the
        :class:`TrainingSummary`).  :meth:`from_state` rebuilds a
        bit-exactly equivalent emulator from it.
        """
        self._require_fit()
        assert self.trend_model is not None and self.trend_fit is not None
        assert self.scale is not None and self.spectral_model is not None
        assert self.training_summary is not None
        return {
            "config": self.config.to_dict(),
            "trend_model": self.trend_model.state_dict(),
            "trend_fit": self.trend_fit.state_dict(),
            "scale": self.scale.state_dict(),
            "spectral_model": self.spectral_model.state_dict(),
            "training": self.training_summary.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ClimateEmulator":
        """Rebuild a fitted emulator from :meth:`state_dict` output."""
        emulator = cls(config=EmulatorConfig.from_dict(state["config"]))
        emulator.trend_model = MeanTrendModel.from_state(state["trend_model"])
        emulator.trend_fit = TrendFit.from_state(state["trend_fit"])
        emulator.trend_model.fit_result = emulator.trend_fit
        emulator.scale = ScaleField.from_state(state["scale"])
        emulator.spectral_model = SpectralStochasticModel.from_state(
            state["spectral_model"]
        )
        emulator.training_summary = TrainingSummary.from_state(state["training"])
        return emulator

    def to_artifact(self) -> "EmulatorArtifact":
        """Wrap the fitted state in a versioned :class:`EmulatorArtifact`."""
        from repro.api.artifact import EmulatorArtifact

        return EmulatorArtifact.from_emulator(self)

    def measured_artifact_bytes(self) -> int:
        """Measured size in bytes of the serialised artifact.

        The fitted state is immutable once :meth:`fit` completes, so the
        serialisation runs once per fit and the size is cached — repeated
        reporting calls stay cheap.
        """
        if self._artifact_nbytes is None:
            self._artifact_nbytes = self.to_artifact().nbytes()
        return self._artifact_nbytes

    def save(self, path: "str | os.PathLike") -> "str":
        """Persist the fitted emulator as an NPZ artifact at ``path``."""
        return self.to_artifact().save(path)

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "ClimateEmulator":
        """Load a fitted emulator from an artifact written by :meth:`save`."""
        from repro.api.artifact import EmulatorArtifact

        return EmulatorArtifact.load(path).to_emulator()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def parameter_count(self) -> int:
        """Total number of stored emulator parameters."""
        self._require_fit()
        assert self.trend_fit is not None and self.scale is not None
        trend_params = int(np.prod(self.trend_fit.coefficients.shape)) + int(
            np.prod(self.trend_fit.rho.shape)
        )
        scale_params = int(np.prod(self.scale.sigma.shape))
        return trend_params + scale_params + self.spectral_model.parameter_count()

    def parameter_bytes(self, bytes_per_value: int = 8) -> int:
        """Storage footprint of the emulator parameters."""
        return self.parameter_count() * bytes_per_value

    def storage_summary(self, measure_artifact: bool = True) -> dict:
        """Raw-training-data versus emulator-parameter storage comparison.

        With ``measure_artifact`` (the default), the fitted state is
        serialised in memory and the *measured* artifact byte count is
        reported next to the theoretical ``parameter_bytes`` — the honest
        version of the "parameters replace petabytes" claim, including
        format overhead and compression.
        """
        self._require_fit()
        assert self.training_summary is not None
        raw = self.training_summary.raw_bytes(np.float32)
        params = self.parameter_bytes()
        summary = {
            "raw_bytes_float32": raw,
            "parameter_bytes": params,
            "compression_factor": raw / params if params else float("inf"),
            "n_data_points": self.training_summary.n_data_points,
            "n_parameters": self.parameter_count(),
        }
        if measure_artifact:
            from repro.storage.accounting import measured_artifact_report

            report = measured_artifact_report(self)
            summary["measured_artifact_bytes"] = report["measured_artifact_bytes"]
            summary["measured_compression_factor"] = report["measured_compression_factor"]
        return summary

    def describe(self) -> dict:
        """Configuration plus fit-state summary."""
        info = {"config": self.config.describe(), "fitted": self.is_fitted}
        if self.is_fitted:
            assert self.spectral_model is not None
            info["cholesky_variant"] = self.spectral_model.cholesky.variant
            info["n_coeffs"] = self.config.n_coeffs
            # Skip the in-memory artifact serialisation: describe() is a
            # cheap reporting call; measured bytes are available on demand
            # through storage_summary().
            info["storage"] = self.storage_summary(measure_artifact=False)
        return info
